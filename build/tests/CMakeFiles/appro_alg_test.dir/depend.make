# Empty dependencies file for appro_alg_test.
# This may be replaced when dependencies are built.
