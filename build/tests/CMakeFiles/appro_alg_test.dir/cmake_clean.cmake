file(REMOVE_RECURSE
  "CMakeFiles/appro_alg_test.dir/appro_alg_test.cpp.o"
  "CMakeFiles/appro_alg_test.dir/appro_alg_test.cpp.o.d"
  "appro_alg_test"
  "appro_alg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appro_alg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
