file(REMOVE_RECURSE
  "CMakeFiles/matroid_test.dir/matroid_test.cpp.o"
  "CMakeFiles/matroid_test.dir/matroid_test.cpp.o.d"
  "matroid_test"
  "matroid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matroid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
