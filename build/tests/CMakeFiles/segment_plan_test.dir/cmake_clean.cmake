file(REMOVE_RECURSE
  "CMakeFiles/segment_plan_test.dir/segment_plan_test.cpp.o"
  "CMakeFiles/segment_plan_test.dir/segment_plan_test.cpp.o.d"
  "segment_plan_test"
  "segment_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
