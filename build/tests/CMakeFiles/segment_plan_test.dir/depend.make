# Empty dependencies file for segment_plan_test.
# This may be replaced when dependencies are built.
