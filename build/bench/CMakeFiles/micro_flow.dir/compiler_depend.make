# Empty compiler generated dependencies file for micro_flow.
# This may be replaced when dependencies are built.
