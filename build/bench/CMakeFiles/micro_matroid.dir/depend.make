# Empty dependencies file for micro_matroid.
# This may be replaced when dependencies are built.
