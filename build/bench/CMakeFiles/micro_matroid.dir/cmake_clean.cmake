file(REMOVE_RECURSE
  "CMakeFiles/micro_matroid.dir/micro_matroid.cpp.o"
  "CMakeFiles/micro_matroid.dir/micro_matroid.cpp.o.d"
  "micro_matroid"
  "micro_matroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
