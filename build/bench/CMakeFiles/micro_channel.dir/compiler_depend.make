# Empty compiler generated dependencies file for micro_channel.
# This may be replaced when dependencies are built.
