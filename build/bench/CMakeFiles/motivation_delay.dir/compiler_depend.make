# Empty compiler generated dependencies file for motivation_delay.
# This may be replaced when dependencies are built.
