file(REMOVE_RECURSE
  "CMakeFiles/motivation_delay.dir/motivation_delay.cpp.o"
  "CMakeFiles/motivation_delay.dir/motivation_delay.cpp.o.d"
  "motivation_delay"
  "motivation_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
