# Empty compiler generated dependencies file for fig4_served_vs_k.
# This may be replaced when dependencies are built.
