file(REMOVE_RECURSE
  "CMakeFiles/fig4_served_vs_k.dir/fig4_served_vs_k.cpp.o"
  "CMakeFiles/fig4_served_vs_k.dir/fig4_served_vs_k.cpp.o.d"
  "fig4_served_vs_k"
  "fig4_served_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_served_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
