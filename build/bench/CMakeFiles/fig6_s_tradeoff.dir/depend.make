# Empty dependencies file for fig6_s_tradeoff.
# This may be replaced when dependencies are built.
