# Empty dependencies file for fig5_served_vs_n.
# This may be replaced when dependencies are built.
