file(REMOVE_RECURSE
  "CMakeFiles/fig5_served_vs_n.dir/fig5_served_vs_n.cpp.o"
  "CMakeFiles/fig5_served_vs_n.dir/fig5_served_vs_n.cpp.o.d"
  "fig5_served_vs_n"
  "fig5_served_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_served_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
