# Empty compiler generated dependencies file for mobility_redeploy.
# This may be replaced when dependencies are built.
