file(REMOVE_RECURSE
  "CMakeFiles/mobility_redeploy.dir/mobility_redeploy.cpp.o"
  "CMakeFiles/mobility_redeploy.dir/mobility_redeploy.cpp.o.d"
  "mobility_redeploy"
  "mobility_redeploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_redeploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
