file(REMOVE_RECURSE
  "CMakeFiles/mission_report.dir/mission_report.cpp.o"
  "CMakeFiles/mission_report.dir/mission_report.cpp.o.d"
  "mission_report"
  "mission_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
