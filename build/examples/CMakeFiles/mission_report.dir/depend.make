# Empty dependencies file for mission_report.
# This may be replaced when dependencies are built.
