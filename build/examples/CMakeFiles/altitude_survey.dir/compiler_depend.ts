# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for altitude_survey.
