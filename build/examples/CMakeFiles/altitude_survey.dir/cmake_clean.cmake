file(REMOVE_RECURSE
  "CMakeFiles/altitude_survey.dir/altitude_survey.cpp.o"
  "CMakeFiles/altitude_survey.dir/altitude_survey.cpp.o.d"
  "altitude_survey"
  "altitude_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altitude_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
