# Empty compiler generated dependencies file for altitude_survey.
# This may be replaced when dependencies are built.
