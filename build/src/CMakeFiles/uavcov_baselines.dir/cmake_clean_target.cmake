file(REMOVE_RECURSE
  "libuavcov_baselines.a"
)
