
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/common.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/common.cpp.o.d"
  "/root/repo/src/baselines/greedy_assign.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/greedy_assign.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/greedy_assign.cpp.o.d"
  "/root/repo/src/baselines/kmeans_place.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/kmeans_place.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/kmeans_place.cpp.o.d"
  "/root/repo/src/baselines/max_throughput.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/max_throughput.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/max_throughput.cpp.o.d"
  "/root/repo/src/baselines/mcs.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/mcs.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/mcs.cpp.o.d"
  "/root/repo/src/baselines/motion_ctrl.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/motion_ctrl.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/motion_ctrl.cpp.o.d"
  "/root/repo/src/baselines/random_connected.cpp" "src/CMakeFiles/uavcov_baselines.dir/baselines/random_connected.cpp.o" "gcc" "src/CMakeFiles/uavcov_baselines.dir/baselines/random_connected.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
