# Empty compiler generated dependencies file for uavcov_baselines.
# This may be replaced when dependencies are built.
