file(REMOVE_RECURSE
  "CMakeFiles/uavcov_baselines.dir/baselines/common.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/common.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/greedy_assign.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/greedy_assign.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/kmeans_place.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/kmeans_place.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/max_throughput.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/max_throughput.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/mcs.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/mcs.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/motion_ctrl.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/motion_ctrl.cpp.o.d"
  "CMakeFiles/uavcov_baselines.dir/baselines/random_connected.cpp.o"
  "CMakeFiles/uavcov_baselines.dir/baselines/random_connected.cpp.o.d"
  "libuavcov_baselines.a"
  "libuavcov_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
