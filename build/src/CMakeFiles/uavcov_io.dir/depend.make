# Empty dependencies file for uavcov_io.
# This may be replaced when dependencies are built.
