file(REMOVE_RECURSE
  "libuavcov_io.a"
)
