file(REMOVE_RECURSE
  "CMakeFiles/uavcov_io.dir/io/serialize.cpp.o"
  "CMakeFiles/uavcov_io.dir/io/serialize.cpp.o.d"
  "libuavcov_io.a"
  "libuavcov_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
