file(REMOVE_RECURSE
  "libuavcov_energy.a"
)
