# Empty dependencies file for uavcov_energy.
# This may be replaced when dependencies are built.
