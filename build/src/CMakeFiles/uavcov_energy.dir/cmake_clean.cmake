file(REMOVE_RECURSE
  "CMakeFiles/uavcov_energy.dir/energy/power.cpp.o"
  "CMakeFiles/uavcov_energy.dir/energy/power.cpp.o.d"
  "libuavcov_energy.a"
  "libuavcov_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
