# Empty dependencies file for uavcov_geometry.
# This may be replaced when dependencies are built.
