file(REMOVE_RECURSE
  "libuavcov_geometry.a"
)
