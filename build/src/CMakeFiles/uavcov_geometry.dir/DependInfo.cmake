
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/grid.cpp" "src/CMakeFiles/uavcov_geometry.dir/geometry/grid.cpp.o" "gcc" "src/CMakeFiles/uavcov_geometry.dir/geometry/grid.cpp.o.d"
  "/root/repo/src/geometry/spatial_index.cpp" "src/CMakeFiles/uavcov_geometry.dir/geometry/spatial_index.cpp.o" "gcc" "src/CMakeFiles/uavcov_geometry.dir/geometry/spatial_index.cpp.o.d"
  "/root/repo/src/geometry/vec.cpp" "src/CMakeFiles/uavcov_geometry.dir/geometry/vec.cpp.o" "gcc" "src/CMakeFiles/uavcov_geometry.dir/geometry/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
