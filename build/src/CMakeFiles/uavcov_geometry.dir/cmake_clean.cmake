file(REMOVE_RECURSE
  "CMakeFiles/uavcov_geometry.dir/geometry/grid.cpp.o"
  "CMakeFiles/uavcov_geometry.dir/geometry/grid.cpp.o.d"
  "CMakeFiles/uavcov_geometry.dir/geometry/spatial_index.cpp.o"
  "CMakeFiles/uavcov_geometry.dir/geometry/spatial_index.cpp.o.d"
  "CMakeFiles/uavcov_geometry.dir/geometry/vec.cpp.o"
  "CMakeFiles/uavcov_geometry.dir/geometry/vec.cpp.o.d"
  "libuavcov_geometry.a"
  "libuavcov_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
