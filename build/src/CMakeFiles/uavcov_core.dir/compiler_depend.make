# Empty compiler generated dependencies file for uavcov_core.
# This may be replaced when dependencies are built.
