file(REMOVE_RECURSE
  "CMakeFiles/uavcov_core.dir/core/appro_alg.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/appro_alg.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/assignment.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/assignment.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/coverage.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/coverage.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/exhaustive.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/exhaustive.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/gateway.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/gateway.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/matroid.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/matroid.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/redeploy.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/redeploy.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/refine.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/refine.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/relay.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/relay.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/scenario.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/segment_plan.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/segment_plan.cpp.o.d"
  "CMakeFiles/uavcov_core.dir/core/solution.cpp.o"
  "CMakeFiles/uavcov_core.dir/core/solution.cpp.o.d"
  "libuavcov_core.a"
  "libuavcov_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
