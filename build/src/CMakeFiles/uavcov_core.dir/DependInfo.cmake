
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appro_alg.cpp" "src/CMakeFiles/uavcov_core.dir/core/appro_alg.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/appro_alg.cpp.o.d"
  "/root/repo/src/core/assignment.cpp" "src/CMakeFiles/uavcov_core.dir/core/assignment.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/assignment.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/CMakeFiles/uavcov_core.dir/core/coverage.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/coverage.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/CMakeFiles/uavcov_core.dir/core/exhaustive.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/exhaustive.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/CMakeFiles/uavcov_core.dir/core/gateway.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/gateway.cpp.o.d"
  "/root/repo/src/core/matroid.cpp" "src/CMakeFiles/uavcov_core.dir/core/matroid.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/matroid.cpp.o.d"
  "/root/repo/src/core/redeploy.cpp" "src/CMakeFiles/uavcov_core.dir/core/redeploy.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/redeploy.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/CMakeFiles/uavcov_core.dir/core/refine.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/refine.cpp.o.d"
  "/root/repo/src/core/relay.cpp" "src/CMakeFiles/uavcov_core.dir/core/relay.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/relay.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/uavcov_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/segment_plan.cpp" "src/CMakeFiles/uavcov_core.dir/core/segment_plan.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/segment_plan.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/CMakeFiles/uavcov_core.dir/core/solution.cpp.o" "gcc" "src/CMakeFiles/uavcov_core.dir/core/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
