file(REMOVE_RECURSE
  "libuavcov_core.a"
)
