file(REMOVE_RECURSE
  "libuavcov_channel.a"
)
