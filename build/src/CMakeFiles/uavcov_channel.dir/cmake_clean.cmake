file(REMOVE_RECURSE
  "CMakeFiles/uavcov_channel.dir/channel/a2g.cpp.o"
  "CMakeFiles/uavcov_channel.dir/channel/a2g.cpp.o.d"
  "CMakeFiles/uavcov_channel.dir/channel/link_budget.cpp.o"
  "CMakeFiles/uavcov_channel.dir/channel/link_budget.cpp.o.d"
  "CMakeFiles/uavcov_channel.dir/channel/radius.cpp.o"
  "CMakeFiles/uavcov_channel.dir/channel/radius.cpp.o.d"
  "libuavcov_channel.a"
  "libuavcov_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
