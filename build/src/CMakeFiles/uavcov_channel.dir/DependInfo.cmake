
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/a2g.cpp" "src/CMakeFiles/uavcov_channel.dir/channel/a2g.cpp.o" "gcc" "src/CMakeFiles/uavcov_channel.dir/channel/a2g.cpp.o.d"
  "/root/repo/src/channel/link_budget.cpp" "src/CMakeFiles/uavcov_channel.dir/channel/link_budget.cpp.o" "gcc" "src/CMakeFiles/uavcov_channel.dir/channel/link_budget.cpp.o.d"
  "/root/repo/src/channel/radius.cpp" "src/CMakeFiles/uavcov_channel.dir/channel/radius.cpp.o" "gcc" "src/CMakeFiles/uavcov_channel.dir/channel/radius.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
