# Empty dependencies file for uavcov_channel.
# This may be replaced when dependencies are built.
