# Empty dependencies file for uavcov_common.
# This may be replaced when dependencies are built.
