file(REMOVE_RECURSE
  "libuavcov_common.a"
)
