file(REMOVE_RECURSE
  "CMakeFiles/uavcov_common.dir/common/check.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/check.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/cli.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/csv.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/log.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/log.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/rng.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/stopwatch.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/stopwatch.cpp.o.d"
  "CMakeFiles/uavcov_common.dir/common/table.cpp.o"
  "CMakeFiles/uavcov_common.dir/common/table.cpp.o.d"
  "libuavcov_common.a"
  "libuavcov_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
