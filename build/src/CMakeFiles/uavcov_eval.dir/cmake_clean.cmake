file(REMOVE_RECURSE
  "CMakeFiles/uavcov_eval.dir/eval/experiment.cpp.o"
  "CMakeFiles/uavcov_eval.dir/eval/experiment.cpp.o.d"
  "CMakeFiles/uavcov_eval.dir/eval/figures.cpp.o"
  "CMakeFiles/uavcov_eval.dir/eval/figures.cpp.o.d"
  "CMakeFiles/uavcov_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/uavcov_eval.dir/eval/metrics.cpp.o.d"
  "libuavcov_eval.a"
  "libuavcov_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
