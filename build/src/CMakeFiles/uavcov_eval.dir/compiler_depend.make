# Empty compiler generated dependencies file for uavcov_eval.
# This may be replaced when dependencies are built.
