file(REMOVE_RECURSE
  "libuavcov_eval.a"
)
