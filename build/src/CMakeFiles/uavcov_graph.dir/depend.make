# Empty dependencies file for uavcov_graph.
# This may be replaced when dependencies are built.
