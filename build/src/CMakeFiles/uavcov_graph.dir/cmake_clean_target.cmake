file(REMOVE_RECURSE
  "libuavcov_graph.a"
)
