
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/articulation.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/articulation.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/articulation.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/dsu.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/dsu.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/dsu.cpp.o.d"
  "/root/repo/src/graph/euler.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/euler.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/euler.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/mst.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/mst.cpp.o.d"
  "/root/repo/src/graph/oracles.cpp" "src/CMakeFiles/uavcov_graph.dir/graph/oracles.cpp.o" "gcc" "src/CMakeFiles/uavcov_graph.dir/graph/oracles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
