file(REMOVE_RECURSE
  "CMakeFiles/uavcov_graph.dir/graph/articulation.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/articulation.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/bfs.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/bfs.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/dsu.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/dsu.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/euler.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/euler.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/mst.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/mst.cpp.o.d"
  "CMakeFiles/uavcov_graph.dir/graph/oracles.cpp.o"
  "CMakeFiles/uavcov_graph.dir/graph/oracles.cpp.o.d"
  "libuavcov_graph.a"
  "libuavcov_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
