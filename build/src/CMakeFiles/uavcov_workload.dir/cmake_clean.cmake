file(REMOVE_RECURSE
  "CMakeFiles/uavcov_workload.dir/workload/distributions.cpp.o"
  "CMakeFiles/uavcov_workload.dir/workload/distributions.cpp.o.d"
  "CMakeFiles/uavcov_workload.dir/workload/fleet.cpp.o"
  "CMakeFiles/uavcov_workload.dir/workload/fleet.cpp.o.d"
  "CMakeFiles/uavcov_workload.dir/workload/mobility.cpp.o"
  "CMakeFiles/uavcov_workload.dir/workload/mobility.cpp.o.d"
  "CMakeFiles/uavcov_workload.dir/workload/scenario_gen.cpp.o"
  "CMakeFiles/uavcov_workload.dir/workload/scenario_gen.cpp.o.d"
  "libuavcov_workload.a"
  "libuavcov_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
