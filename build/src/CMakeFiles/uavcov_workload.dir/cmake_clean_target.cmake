file(REMOVE_RECURSE
  "libuavcov_workload.a"
)
