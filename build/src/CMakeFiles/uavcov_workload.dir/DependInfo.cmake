
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distributions.cpp" "src/CMakeFiles/uavcov_workload.dir/workload/distributions.cpp.o" "gcc" "src/CMakeFiles/uavcov_workload.dir/workload/distributions.cpp.o.d"
  "/root/repo/src/workload/fleet.cpp" "src/CMakeFiles/uavcov_workload.dir/workload/fleet.cpp.o" "gcc" "src/CMakeFiles/uavcov_workload.dir/workload/fleet.cpp.o.d"
  "/root/repo/src/workload/mobility.cpp" "src/CMakeFiles/uavcov_workload.dir/workload/mobility.cpp.o" "gcc" "src/CMakeFiles/uavcov_workload.dir/workload/mobility.cpp.o.d"
  "/root/repo/src/workload/scenario_gen.cpp" "src/CMakeFiles/uavcov_workload.dir/workload/scenario_gen.cpp.o" "gcc" "src/CMakeFiles/uavcov_workload.dir/workload/scenario_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uavcov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/uavcov_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
