# Empty compiler generated dependencies file for uavcov_workload.
# This may be replaced when dependencies are built.
