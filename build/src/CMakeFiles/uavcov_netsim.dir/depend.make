# Empty dependencies file for uavcov_netsim.
# This may be replaced when dependencies are built.
