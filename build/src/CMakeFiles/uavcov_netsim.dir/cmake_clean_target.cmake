file(REMOVE_RECURSE
  "libuavcov_netsim.a"
)
