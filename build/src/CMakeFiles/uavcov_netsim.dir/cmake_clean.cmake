file(REMOVE_RECURSE
  "CMakeFiles/uavcov_netsim.dir/netsim/service_sim.cpp.o"
  "CMakeFiles/uavcov_netsim.dir/netsim/service_sim.cpp.o.d"
  "libuavcov_netsim.a"
  "libuavcov_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
