file(REMOVE_RECURSE
  "libuavcov_viz.a"
)
