file(REMOVE_RECURSE
  "CMakeFiles/uavcov_viz.dir/viz/render.cpp.o"
  "CMakeFiles/uavcov_viz.dir/viz/render.cpp.o.d"
  "CMakeFiles/uavcov_viz.dir/viz/svg.cpp.o"
  "CMakeFiles/uavcov_viz.dir/viz/svg.cpp.o.d"
  "libuavcov_viz.a"
  "libuavcov_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
