# Empty dependencies file for uavcov_viz.
# This may be replaced when dependencies are built.
