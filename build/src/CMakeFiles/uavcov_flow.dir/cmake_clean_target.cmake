file(REMOVE_RECURSE
  "libuavcov_flow.a"
)
