file(REMOVE_RECURSE
  "CMakeFiles/uavcov_flow.dir/flow/dinic.cpp.o"
  "CMakeFiles/uavcov_flow.dir/flow/dinic.cpp.o.d"
  "CMakeFiles/uavcov_flow.dir/flow/incremental.cpp.o"
  "CMakeFiles/uavcov_flow.dir/flow/incremental.cpp.o.d"
  "CMakeFiles/uavcov_flow.dir/flow/oracles.cpp.o"
  "CMakeFiles/uavcov_flow.dir/flow/oracles.cpp.o.d"
  "libuavcov_flow.a"
  "libuavcov_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uavcov_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
