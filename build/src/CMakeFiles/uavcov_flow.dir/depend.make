# Empty dependencies file for uavcov_flow.
# This may be replaced when dependencies are built.
