// Sharded mission service drill (docs/SERVICE.md): tile a scenario, solve
// every tile through the supervised retry / fallback / degradation ladder
// on a thread pool, inject a seeded shard-fault plan, and print what
// happened tile by tile — which tiles recovered, which fell back to the
// greedy baseline, which degraded to empty, and what the stitched
// §II-C-feasible solution serves.
//
// The run is deterministic for a fixed seed regardless of --threads, so
// the same command is also a bit-identity drill:
//
//   $ ./build/examples/sharded_service --users 200 --uavs 8
//       --tiles 2 --faults 2 --seed 101 --threads 4
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "service/service.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "number of users", "200");
  cli.add_flag("uavs", "fleet size", "8");
  cli.add_flag("tiles", "tiles per axis (tiles x tiles grid)", "2");
  cli.add_flag("halo", "halo cells around each tile core", "1");
  cli.add_flag("faults", "tiles to poison with the seeded fault plan "
               "(0 = no chaos)", "2");
  cli.add_flag("poison-depth", "max poisoned attempts per faulted tile", "3");
  cli.add_flag("unrecoverable", "make the first fault unrecoverable "
               "(forces an empty-tile degradation)", "false");
  cli.add_flag("threads", "tile-solve worker threads (0 = all cores)", "1");
  cli.add_flag("seed", "RNG seed", "101");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  Rng rng(seed);
  workload::ScenarioConfig scenario_config;
  scenario_config.width_m = 1500;
  scenario_config.height_m = 1500;
  scenario_config.cell_side_m = 300;
  scenario_config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  scenario_config.fleet.uav_count =
      static_cast<std::int32_t>(cli.get_int("uavs"));
  scenario_config.fleet.capacity_min = 15;
  scenario_config.fleet.capacity_max = 40;
  const Scenario scenario =
      workload::make_disaster_scenario(scenario_config, rng);

  service::MissionConfig config;
  config.tiling.tiles_x = static_cast<std::int32_t>(cli.get_int("tiles"));
  config.tiling.tiles_y = config.tiling.tiles_x;
  config.tiling.halo_cells = static_cast<std::int32_t>(cli.get_int("halo"));
  config.appro.s = 1;
  config.appro.threads = 1;
  config.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  config.validate();

  const std::int32_t tile_count = config.tiling.tiles_x * config.tiling.tiles_y;
  service::ShardFaultConfig chaos_config;
  chaos_config.faults = static_cast<std::int32_t>(cli.get_int("faults"));
  chaos_config.max_poison_depth =
      static_cast<std::int32_t>(cli.get_int("poison-depth"));
  chaos_config.include_unrecoverable = cli.get_bool("unrecoverable");
  const service::ShardFaultPlan chaos =
      service::make_shard_fault_plan(tile_count, chaos_config, seed * 9176);

  std::cout << "Mission: " << scenario.user_count() << " users, "
            << scenario.fleet.size() << " UAVs, " << config.tiling.tiles_x
            << "x" << config.tiling.tiles_y << " tiles (halo "
            << config.tiling.halo_cells << "), " << chaos.faults.size()
            << " injected fault(s), seed " << seed << "\n\n";

  const service::JobResult result = service::solve_mission(
      scenario, config, chaos.faults.empty() ? nullptr : &chaos);

  Table table;
  table.set_header({"tile", "status", "attempts", "served", "uavs", "fault"});
  for (const service::TileReport& tile : result.report.tiles) {
    const service::ShardFault* fault = chaos.fault_for(tile.tile);
    table.add_row({std::to_string(tile.tile.value()),
                   service::to_string(tile.status),
                   std::to_string(tile.attempts), std::to_string(tile.served),
                   std::to_string(tile.uavs),
                   fault ? service::to_string(fault->kind) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nStitched solution: " << result.solution.served << "/"
            << scenario.user_count() << " users served by "
            << result.solution.deployments.size() << " deployments ("
            << result.solution.algorithm << ")\n";
  std::cout << "Degraded tiles: " << result.report.degraded_tiles() << "\n";
  if (result.report.degraded_tiles() > 0) {
    std::cout << result.report.to_string();
  }
  std::cout << "Attempts " << result.stats.attempts << ", retries "
            << result.stats.retries << ", fallbacks "
            << result.stats.fallbacks << ", collisions dropped "
            << result.stats.collisions_dropped << ", relays staffed "
            << result.stats.relays_staffed << ", components dropped "
            << result.stats.components_dropped << "\n";
  std::cout << "Solution fingerprint: " << result.solution.fingerprint()
            << "\n";
  return 0;
}
