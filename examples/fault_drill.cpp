// Fault drill (docs/RESILIENCE.md): deploy, lose UAVs to a seeded fault
// plan, watch the self-healing repair controller react, and measure the
// service-level fallout phase by phase.
//
// Prints the single points of failure of the initial network, then a
// per-phase timeline: which fault hit, whether repair stayed local or
// escalated to a full approAlg re-solve, how many users stayed served,
// and the netsim throughput over the phase.
//
//   $ ./build/examples/fault_drill [--events 4] [--seed 7] [--gateway-loss]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/impact.hpp"
#include "resilience/repair.hpp"
#include "resilience/timeline.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "number of users", "400");
  cli.add_flag("uavs", "fleet size", "8");
  cli.add_flag("events", "faults to inject", "4");
  cli.add_flag("horizon-min", "mission length in minutes", "10");
  cli.add_flag("floor", "escalate to a full re-solve when local repair "
               "serves below this fraction of the last full solve", "0.7");
  cli.add_flag("budget-ms", "time budget per full re-solve "
               "(0 = unbounded)", "0");
  cli.add_flag("gateway-loss", "include a gateway-loss event", "false");
  cli.add_flag("seed", "RNG seed", "7");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  Rng rng(seed);
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  config.fleet.uav_count = static_cast<std::int32_t>(cli.get_int("uavs"));
  const Scenario scenario = workload::make_disaster_scenario(config, rng);

  resilience::TimelineConfig timeline;
  timeline.horizon_s = 60.0 * cli.get_double("horizon-min");
  timeline.policy.local_repair_floor = cli.get_double("floor");
  timeline.policy.appro.s = 2;
  timeline.policy.appro.candidate_cap = 30;
  timeline.policy.appro.time_budget_s = cli.get_double("budget-ms") / 1e3;
  timeline.sim.slot_s = 0.01;

  resilience::RepairController controller(scenario, timeline.policy);
  const Solution initial = controller.deploy();

  resilience::FaultPlanConfig faults;
  faults.events = static_cast<std::int32_t>(cli.get_int("events"));
  faults.horizon_s = timeline.horizon_s;
  faults.include_gateway_loss = cli.get_bool("gateway-loss");
  const resilience::FaultPlan plan =
      resilience::make_fault_plan(scenario, faults, seed * 1000003);

  const resilience::ImpactReport impact =
      resilience::analyze_impact(scenario, initial, plan);
  std::cout << "Initial deployment: " << initial.deployments.size()
            << " UAVs serve " << initial.served << "/"
            << scenario.user_count() << " users\n";
  std::cout << "Single points of failure: ";
  if (impact.single_points_of_failure.empty()) {
    std::cout << "none";
  } else {
    for (std::size_t i = 0; i < impact.single_points_of_failure.size(); ++i) {
      std::cout << (i ? ", " : "") << "UAV "
                << impact.single_points_of_failure[i].value();
    }
  }
  std::cout << "\n\n";

  const resilience::TimelineReport report =
      resilience::run_fault_timeline(scenario, initial, plan, timeline);

  Table table;
  table.set_header({"t (min)", "fault", "repair", "served",
                    "throughput (kb/s)"});
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const resilience::TimelinePhase& phase = report.phases[i];
    std::string fault = "-";
    if (i > 0) {
      const resilience::FaultEvent& e = plan.events[i - 1];
      fault = to_string(e.kind);
      if (e.uav.valid()) fault += " UAV " + std::to_string(e.uav.value());
    }
    table.add_row({format_double(phase.start_s / 60.0, 1), fault,
                   i > 0 ? to_string(phase.repair.action) : "-",
                   std::to_string(phase.served),
                   format_double(phase.service.network_throughput_bps / 1e3,
                                 1)});
  }
  table.print(std::cout);

  std::cout << "\nServed " << report.served_initial << " -> "
            << report.served_final << " users; " << report.local_repairs
            << " local repairs, " << report.full_solves
            << " full re-solves\n";
  return 0;
}
