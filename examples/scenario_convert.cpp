// scenario_convert: convert scenario files between the text and binary
// formats (docs/FORMATS.md), or generate a fresh scenario into either.
//
//   # text → binary (input format is sniffed, never declared):
//   $ ./build/examples/scenario_convert --in s.txt --out s.bin --format binary
//
//   # binary → text:
//   $ ./build/examples/scenario_convert --in s.bin --out s.txt --format text
//
//   # generate a 1M-user instance straight to binary:
//   $ ./build/examples/scenario_convert --gen-users 1000000 --gen-uavs 20
//         --gen-seed 107 --out big.bin --format binary   (one line)
//
// --verify-roundtrip re-loads the written file and checks that its
// fingerprint matches the input's — the bit-exactness contract the two
// formats share.
#include <iostream>
#include <string>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/fingerprint.hpp"
#include "io/serialize.hpp"
#include "workload/builder.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;

  CliParser cli;
  cli.add_flag("in", "input scenario file (text or binary; sniffed)", "");
  cli.add_flag("out", "output scenario file", "");
  cli.add_flag("format", "output format: text | binary", "text");
  cli.add_flag("gen-users", "generate instead of --in: user count", "0");
  cli.add_flag("gen-uavs", "generated fleet size", "20");
  cli.add_flag("gen-seed", "generator seed", "0");
  cli.add_flag("verify-roundtrip",
               "re-load the output and compare fingerprints", "false");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const std::string in_path = cli.get_string("in");
    const std::string out_path = cli.get_string("out");
    const std::string format_name = cli.get_string("format");
    UAVCOV_CHECK_MSG(format_name == "text" || format_name == "binary",
                     "--format must be 'text' or 'binary', got '" +
                         format_name + "'");
    const io::Format format = format_name == "binary" ? io::Format::kBinary
                                                      : io::Format::kText;
    UAVCOV_CHECK_MSG(!out_path.empty(), "--out is required");
    const long long gen_users = cli.get_int("gen-users");
    UAVCOV_CHECK_MSG(in_path.empty() != (gen_users <= 0),
                     "exactly one of --in / --gen-users must be given");

    Scenario scenario =
        in_path.empty()
            ? workload::ScenarioBuilder()
                  .users(static_cast<std::int32_t>(gen_users))
                  .uavs(static_cast<std::int32_t>(cli.get_int("gen-uavs")))
                  .seed(static_cast<std::uint64_t>(cli.get_int("gen-seed")))
                  .build()
            : io::load_scenario_file(in_path);
    const std::uint64_t fingerprint = scenario.fingerprint();
    std::cout << (in_path.empty() ? "generated " : "loaded ")
              << scenario.user_count() << " users / " << scenario.uav_count()
              << " UAVs, fingerprint " << fingerprint_hex(fingerprint)
              << "\n";

    io::save_scenario_file(out_path, scenario, format);
    std::cout << "wrote " << format_name << " scenario to " << out_path
              << "\n";

    if (cli.get_bool("verify-roundtrip")) {
      const Scenario reloaded = io::load_scenario_file(out_path);
      UAVCOV_CHECK_MSG(reloaded.fingerprint() == fingerprint,
                       "round-trip fingerprint mismatch: wrote " +
                           fingerprint_hex(fingerprint) + ", re-read " +
                           fingerprint_hex(reloaded.fingerprint()));
      std::cout << "round trip verified: fingerprint unchanged\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
