// Fleet capacity planning: "how many UAVs do we need to serve X% of the
// trapped population within the first golden hours?"
//
// Sweeps the fleet size K on a fixed scenario and reports the coverage
// curve plus the smallest fleet reaching the target — the operational
// question behind the paper's Fig. 4.
//
//   $ ./build/examples/capacity_planning [--target 0.9] [--users 1000]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/appro_alg.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "trapped users in the area", "1000");
  cli.add_flag("target", "coverage fraction to reach", "0.9");
  cli.add_flag("kmax", "largest fleet considered", "24");
  cli.add_flag("seed", "RNG seed", "11");
  if (!cli.parse(argc, argv)) return 0;

  const double target = cli.get_double("target");
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  // Fleet regenerated per K below; generate users once for a fair sweep.
  config.fleet.uav_count = 1;
  Scenario scenario = workload::make_disaster_scenario(config, rng);

  std::cout << "Capacity planning: " << scenario.user_count()
            << " users, target " << 100 * target << "% coverage\n\n";

  Table table;
  table.set_header({"K", "served", "coverage %", "runtime (s)"});
  std::int32_t needed = -1;
  Rng fleet_rng(rng.fork());
  const auto kmax = static_cast<std::int32_t>(cli.get_int("kmax"));
  for (std::int32_t K = 2; K <= kmax; K += 2) {
    workload::FleetConfig fleet_config;
    fleet_config.uav_count = K;
    Rng per_k = fleet_rng;  // same capacity stream prefix per K
    scenario.fleet = workload::make_fleet(fleet_config, per_k);

    // The coverage model depends on the fleet's radio classes, so it must
    // be rebuilt when the fleet changes — but only once per K, shared by
    // the solver below instead of rebuilt inside it.
    const CoverageModel cov(scenario);
    ApproAlgParams params;
    params.s = 2;
    params.candidate_cap = 40;
    ApproAlgStats stats;
    const Solution sol = solve(scenario, cov, params, &stats);
    const double coverage =
        static_cast<double>(sol.served) / scenario.user_count();
    table.add_row({std::to_string(K), std::to_string(sol.served),
                   format_double(100 * coverage, 1),
                   format_double(stats.seconds, 2)});
    if (needed < 0 && coverage >= target) needed = K;
  }
  table.print(std::cout);
  std::cout << '\n';
  if (needed > 0) {
    std::cout << "Smallest fleet reaching " << 100 * target
              << "% coverage: K = " << needed << "\n";
  } else {
    std::cout << "Target " << 100 * target << "% not reached by K = "
              << cli.get_int("kmax")
              << "; consider more UAVs or higher-capacity base stations\n";
  }
  return 0;
}
