// Re-deployment under user mobility (§II-C): survivors move around the
// disaster zone; the controller keeps the standing UAV placement while it
// serves well (cheap assignment refresh) and re-runs approAlg when
// coverage degrades.  Prints a timeline of served users, re-solve events,
// and cumulative UAV travel.
//
//   $ ./build/examples/mobility_redeploy [--hours 2] [--threshold 0.9]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/redeploy.hpp"
#include "workload/mobility.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("hours", "simulated duration", "2");
  cli.add_flag("step-min", "minutes between control ticks", "10");
  cli.add_flag("threshold", "re-solve when served drops below this "
               "fraction of the last full solve", "0.9");
  cli.add_flag("users", "number of users", "600");
  cli.add_flag("seed", "RNG seed", "77");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  config.fleet.uav_count = 10;
  Scenario scenario = workload::make_disaster_scenario(config, rng);

  RedeployPolicy policy;
  policy.degradation_threshold = cli.get_double("threshold");
  policy.appro.s = 2;
  policy.appro.candidate_cap = 30;
  RedeployController controller(policy);

  workload::MobilityModel mobility(scenario, {}, /*seed=*/rng.next_u64());

  const double step_s = 60.0 * cli.get_double("step-min");
  const auto ticks = static_cast<std::int32_t>(
      cli.get_double("hours") * 3600.0 / step_s);

  Table table;
  table.set_header({"t (min)", "served", "resolved?", "UAV travel (m)"});
  std::int32_t solves_before = 0;
  for (std::int32_t tick = 0; tick <= ticks; ++tick) {
    const Solution& sol = controller.update(scenario);
    const bool resolved = controller.full_solves() > solves_before;
    solves_before = controller.full_solves();
    table.add_row({std::to_string(static_cast<int>(tick * step_s / 60)),
                   std::to_string(sol.served), resolved ? "yes" : "",
                   format_double(controller.uav_travel_m(), 0)});
    if (tick < ticks) mobility.step(scenario, step_s);
  }
  table.print(std::cout);
  std::cout << "\nFull approAlg re-solves: " << controller.full_solves()
            << ", users walked "
            << format_double(mobility.total_displacement_m() / 1000.0, 1)
            << " km in total\n";
  return 0;
}
