// Quickstart: generate a disaster scenario, run approAlg (Algorithm 2),
// and inspect the solution — the 60-second tour of the public API.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/appro_alg.hpp"
#include "workload/builder.hpp"

int main() {
  using namespace uavcov;

  // 1. A disaster area: 3 × 3 km, fat-tailed user density (paper §IV-A),
  //    a heterogeneous fleet of 10 UAVs with capacities in [50, 300].
  const Scenario scenario = workload::ScenarioBuilder()
                                .users(800)
                                .uavs(10)
                                .seed(2024)
                                .build();
  std::cout << "Scenario: " << scenario.user_count() << " users, "
            << scenario.uav_count() << " UAVs (total capacity "
            << scenario.total_capacity() << "), "
            << scenario.grid.size() << " candidate hovering cells\n";

  // 2. Run the paper's approximation algorithm.  s trades solution quality
  //    against runtime (approximation ratio O(sqrt(s/K))); threads > 1
  //    parallelizes the seed-subset search with bit-identical results.
  //    Building the CoverageModel once up front lets the solver and the
  //    audit below share the eligibility precomputation.
  const CoverageModel coverage(scenario);
  ApproAlgParams params;
  params.s = 2;
  params.candidate_cap = 40;  // keep the demo snappy; 0 = exhaustive
  params.threads = 0;         // 0 = use all hardware threads
  ApproAlgStats stats;
  const Solution solution = solve(scenario, coverage, params, &stats);

  // 3. Audit the §II-C constraints (throws on any violation) and report.
  validate_solution(scenario, coverage, solution);

  std::cout << "approAlg served " << solution.served << " / "
            << scenario.user_count() << " users in "
            << stats.seconds << " s\n";
  std::cout << "Algorithm 1 plan: L_max = " << stats.plan.L_max
            << ", h_max = " << stats.plan.h_max
            << ", relay bound g = " << stats.plan.relay_bound << "\n";
  std::cout << "Search: " << stats.subsets_evaluated
            << " seed subsets, " << stats.probes << " flow probes\n\n";

  std::cout << "Deployments (UAV @ cell, load/capacity):\n";
  for (std::size_t d = 0; d < solution.deployments.size(); ++d) {
    const Deployment& dep = solution.deployments[d];
    const Vec2 c = scenario.grid.center(dep.loc);
    std::cout << "  UAV " << dep.uav.value() << " @ (" << c.x << ", " << c.y
              << ")  " << solution.load_of(static_cast<std::int32_t>(d))
              << "/" << scenario.fleet[dep.uav].capacity << "\n";
  }
  return 0;
}
