// Disaster-response walkthrough: the paper's motivating scenario (Fig. 1).
//
// Two population pockets — a collapsed apartment block and a stadium
// shelter — separated by an evacuated zone.  The fleet is heterogeneous:
// two DJI-Matrice-600-class UAVs (powerful base stations) and a set of
// 300-class UAVs (light, low capacity).  A good deployment puts the heavy
// UAVs over the pockets and spends the light ones on the relay bridge;
// the example contrasts approAlg with every baseline and draws an ASCII
// map of the winning deployment.
//
//   $ ./build/examples/disaster_response
#include <iostream>

#include "baselines/greedy_assign.hpp"
#include "baselines/max_throughput.hpp"
#include "baselines/mcs.hpp"
#include "baselines/motion_ctrl.hpp"
#include "common/table.hpp"
#include "core/appro_alg.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace uavcov;

Scenario build_scenario() {
  Scenario sc{
      .grid = Grid(1600, 400, 100),
      .altitude_m = 120.0,
      .uav_range_m = 250.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  Rng rng(99);
  const std::vector<workload::Hotspot> spots = {
      {{250, 200}, 120.0, 1.2},    // collapsed apartment block
      {{1350, 200}, 120.0, 1.0}};  // stadium shelter
  for (const Vec2& p :
       workload::hotspot_positions(160, 1600, 400, spots, 0.05, rng)) {
    sc.users.push_back({p, 2e3});
  }
  // Matrice-600-class: big battery & compute → high capacity.
  sc.fleet.push_back({90, Radio{.tx_power_dbm = 33.0}, 220.0});
  sc.fleet.push_back({90, Radio{.tx_power_dbm = 33.0}, 220.0});
  // Matrice-300-class: light payload → small capacity.
  for (int i = 0; i < 8; ++i) {
    sc.fleet.push_back({8, Radio{.tx_power_dbm = 30.0}, 180.0});
  }
  return sc;
}

void draw_map(const Scenario& sc, const Solution& sol) {
  // One character per grid cell: '6' heavy UAV, '3' light UAV, digit
  // clusters rendered as user-density shades.
  std::vector<std::string> rows(
      static_cast<std::size_t>(sc.grid.rows()),
      std::string(static_cast<std::size_t>(sc.grid.cols()), '.'));
  std::vector<int> density(static_cast<std::size_t>(sc.grid.size()), 0);
  for (const User& u : sc.users) {
    const LocationId cell = sc.grid.locate(u.pos);
    if (cell.valid()) ++density[cell.index()];
  }
  for (const LocationId v : sc.grid.cells()) {
    const int d = density[v.index()];
    if (d > 0) {
      rows[static_cast<std::size_t>(sc.grid.row_of(v))]
          [static_cast<std::size_t>(sc.grid.col_of(v))] =
              d >= 20 ? '#' : (d >= 5 ? '+' : ':');
    }
  }
  for (const Deployment& dep : sol.deployments) {
    const bool heavy =
        sc.fleet[dep.uav].capacity > 50;
    rows[static_cast<std::size_t>(sc.grid.row_of(dep.loc))]
        [static_cast<std::size_t>(sc.grid.col_of(dep.loc))] =
            heavy ? '6' : '3';
  }
  std::cout << "Map (#/+/: user density, 6 = Matrice-600-class UAV, 3 = "
               "300-class):\n";
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    std::cout << "  " << *it << '\n';
  }
}

}  // namespace

int main() {
  const Scenario sc = build_scenario();
  const CoverageModel cov(sc);
  std::cout << "Disaster response: " << sc.user_count()
            << " trapped users in two pockets, fleet of " << sc.uav_count()
            << " heterogeneous UAVs\n\n";

  ApproAlgParams params;
  params.s = 2;
  const Solution ours = appro_alg(sc, cov, params);
  validate_solution(sc, cov, ours);

  Table table;
  table.set_header({"algorithm", "served users", "runtime (s)"});
  auto add = [&table, &sc, &cov](const Solution& sol) {
    validate_solution(sc, cov, sol);
    table.add_row({sol.algorithm, std::to_string(sol.served),
                   format_double(sol.solve_seconds, 3)});
  };
  add(ours);
  add(baselines::solve(sc, cov, baselines::MaxThroughputParams{}));
  add(baselines::solve(sc, cov, baselines::MotionCtrlParams{}));
  add(baselines::solve(sc, cov, baselines::McsParams{}));
  add(baselines::solve(sc, cov, baselines::GreedyAssignParams{}));
  table.print(std::cout);
  std::cout << '\n';

  draw_map(sc, ours);

  std::cout << "\napproAlg load distribution:\n";
  for (std::size_t d = 0; d < ours.deployments.size(); ++d) {
    const Deployment& dep = ours.deployments[d];
    const auto& spec = sc.fleet[dep.uav];
    std::cout << "  UAV " << dep.uav.value() << " (cap " << spec.capacity << ") -> "
              << ours.load_of(static_cast<std::int32_t>(d)) << " users\n";
  }
  return 0;
}
