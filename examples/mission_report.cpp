// Mission report: the full operational pipeline an emergency-response
// operator would run —
//   1. generate/solve the deployment (approAlg),
//   2. hook the network to the emergency communication vehicle (gateway
//      backhaul, paper Fig. 1),
//   3. audit quality: coverage, capacity utilization, load fairness,
//      single-point-of-failure UAVs,
//   4. sanity-check the service plane with the downlink simulator,
//   5. archive the plan: solution file + SVG rendering.
//
//   $ ./build/examples/mission_report [--out-dir /tmp]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/appro_alg.hpp"
#include "core/gateway.hpp"
#include "energy/power.hpp"
#include "eval/metrics.hpp"
#include "io/serialize.hpp"
#include "netsim/service_sim.hpp"
#include "viz/render.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "trapped users", "800");
  cli.add_flag("uavs", "fleet size", "12");
  cli.add_flag("out-dir", "directory for the SVG/solution artifacts",
               "/tmp");
  cli.add_flag("seed", "RNG seed", "31");
  if (!cli.parse(argc, argv)) return 0;
  const std::string out_dir = cli.get_string("out-dir");

  // 1. Scenario + deployment.
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  config.fleet.uav_count = static_cast<std::int32_t>(cli.get_int("uavs"));
  const Scenario scenario = workload::make_disaster_scenario(config, rng);
  const CoverageModel coverage(scenario);
  ApproAlgParams params;
  params.s = 2;
  params.candidate_cap = 30;
  // Keep unused UAVs grounded as spares — the gateway step below may need
  // them for the backhaul chain to the vehicle.
  params.fill_leftover_uavs = false;
  Solution solution = appro_alg(scenario, coverage, params);

  // 2. Backhaul: the emergency vehicle drives up the access road to the
  //    map edge closest to the deployed network and parks there.
  Vec2 vehicle{0.0, 0.0};
  double best_edge_dist = 1e18;
  for (const Deployment& d : solution.deployments) {
    const Vec2 c = scenario.grid.center(d.loc);
    const struct {
      Vec2 pos;
      double dist;
    } options[] = {{{0.0, c.y}, c.x},
                   {{scenario.grid.width(), c.y},
                    scenario.grid.width() - c.x},
                   {{c.x, 0.0}, c.y},
                   {{c.x, scenario.grid.height()},
                    scenario.grid.height() - c.y}};
    for (const auto& o : options) {
      if (o.dist < best_edge_dist) {
        best_edge_dist = o.dist;
        vehicle = o.pos;
      }
    }
  }
  const GatewayResult gateway =
      extend_to_gateway(scenario, coverage, solution, vehicle);
  validate_solution(scenario, coverage, solution);

  // 3. Quality audit.
  const auto metrics = eval::compute_metrics(scenario, coverage, solution);
  std::cout << "=== Mission report ===\n";
  Table audit;
  audit.set_header({"metric", "value"});
  audit.add_row({"served users", std::to_string(metrics.served) + " / " +
                                     std::to_string(scenario.user_count())});
  audit.add_row({"coverage",
                 format_double(100 * metrics.coverage_fraction, 1) + " %"});
  audit.add_row({"deployed UAVs", std::to_string(metrics.deployed_uavs) +
                                      " / " +
                                      std::to_string(scenario.uav_count())});
  audit.add_row(
      {"relay-only UAVs", std::to_string(metrics.relay_only_uavs)});
  audit.add_row({"capacity utilization",
                 format_double(100 * metrics.capacity_utilization, 1) +
                     " %"});
  audit.add_row(
      {"load fairness (Jain)", format_double(metrics.load_fairness, 3)});
  audit.add_row({"mean user rate",
                 format_double(metrics.mean_user_rate_bps / 1e6, 2) +
                     " Mb/s"});
  audit.add_row({"gateway", gateway.connected
                                ? "UAV " + std::to_string(
                                               solution.deployments
                                                   [static_cast<std::size_t>(
                                                        gateway
                                                            .gateway_deployment)]
                                                       .uav.value()) +
                                      " (+" +
                                      std::to_string(gateway.relays_added) +
                                      " relays)"
                                : "NOT CONNECTED"});
  std::string critical = "none";
  if (!metrics.critical_uavs.empty()) {
    critical.clear();
    for (UavId k : metrics.critical_uavs) {
      critical += (critical.empty() ? "" : ", ") + std::to_string(k.value());
    }
  }
  audit.add_row({"single points of failure", critical});
  audit.print(std::cout);

  // 3b. Endurance audit: can the fleet hold the network up for the
  //     requested time on station?
  const double mission_s = 20 * 60.0;
  const auto endurance = energy::endurance_report(
      solution, energy::airframes_for_fleet(scenario), mission_s);
  std::cout << "\nEndurance (mission " << mission_s / 60 << " min): network "
            << "lifetime "
            << format_double(endurance.network_lifetime_s / 60.0, 1)
            << " min";
  if (endurance.infeasible.empty()) {
    std::cout << " — mission feasible\n";
  } else {
    std::cout << " — " << endurance.infeasible.size()
              << " UAV(s) cannot stay on station that long\n";
  }

  // 4. Service plane sanity check.
  netsim::ServiceSimConfig sim;
  sim.duration_s = 5.0;
  const auto service = netsim::simulate_service(scenario, solution, sim);
  std::cout << "\nService simulation (" << sim.duration_s << " s):\n";
  std::cout << "  network throughput "
            << format_double(service.network_throughput_bps / 1e3, 1)
            << " kb/s, mean delay "
            << format_double(service.mean_delay_s * 1e3, 1)
            << " ms, p95 " << format_double(service.p95_delay_s * 1e3, 1)
            << " ms\n";

  // 5. Artifacts.
  const std::string svg_path = out_dir + "/mission_deployment.svg";
  const std::string sol_path = out_dir + "/mission_solution.txt";
  const std::string scen_path = out_dir + "/mission_scenario.txt";
  viz::render_deployment_file(svg_path, scenario, solution);
  io::save_solution_file(sol_path, solution);
  io::save_scenario_file(scen_path, scenario);
  std::cout << "\nArtifacts written:\n  " << svg_path << "\n  " << sol_path
            << "\n  " << scen_path << "\n";
  return 0;
}
