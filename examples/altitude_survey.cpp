// Altitude survey: the channel-model side of the system.
//
// The paper fixes H_uav = 300 m "the optimal altitude for the maximum
// coverage from the sky ... calculated by the algorithms in [2]"
// (Al-Hourani et al.).  This example runs that calculation: for each
// environment preset it sweeps altitude, prints the service-radius curve,
// the golden-section optimum, and the end-to-end effect of altitude on a
// full approAlg deployment.
//
//   $ ./build/examples/altitude_survey
#include <iostream>

#include "channel/radius.hpp"
#include "common/table.hpp"
#include "core/appro_alg.hpp"
#include "workload/scenario_gen.hpp"

int main() {
  using namespace uavcov;
  const Radio radio{};
  const Receiver rx{};
  const double min_rate = 2e6;  // 2 Mb/s target (video from the field)

  std::cout << "Service radius (m) vs altitude for r_min = " << min_rate / 1e6
            << " Mb/s:\n\n";
  struct Env {
    const char* name;
    A2gEnvironment env;
  };
  const std::vector<Env> envs = {{"suburban", suburban_environment()},
                                 {"urban", urban_environment()},
                                 {"dense urban", dense_urban_environment()},
                                 {"highrise", highrise_environment()}};
  Table table;
  std::vector<std::string> header{"altitude (m)"};
  for (const Env& e : envs) header.push_back(e.name);
  table.set_header(header);
  for (double h : {50.0, 100.0, 200.0, 300.0, 500.0, 800.0, 1200.0}) {
    std::vector<std::string> row{format_double(h, 0)};
    for (const Env& e : envs) {
      ChannelParams params;
      params.environment = e.env;
      row.push_back(format_double(
          max_service_radius(params, radio, rx, h, min_rate), 0));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nGolden-section optimum per environment:\n";
  for (const Env& e : envs) {
    ChannelParams params;
    params.environment = e.env;
    const double h = optimal_altitude(params, radio, rx, min_rate);
    const double r = max_service_radius(params, radio, rx, h, min_rate);
    std::cout << "  " << e.name << ": H* = " << format_double(h, 0)
              << " m, radius " << format_double(r, 0) << " m, elevation "
              << format_double(elevation_angle_deg(r, h), 1) << " deg\n";
  }

  // End-to-end: altitude's effect on a deployment.
  std::cout << "\nServed users vs altitude (approAlg, fixed scenario):\n";
  Table served_table;
  served_table.set_header({"altitude (m)", "served"});
  workload::ScenarioConfig config;
  config.user_count = 600;
  config.fleet.uav_count = 8;
  // Demanding users (2 Mb/s): the rate radius, not R_user, now bounds the
  // coverage disc, so altitude visibly moves the served count.
  config.min_rate_bps = 2e6;
  for (double h : {100.0, 300.0, 700.0}) {
    Rng rng(5);  // same users/fleet each altitude
    Scenario sc = workload::make_disaster_scenario(config, rng);
    sc.altitude_m = h;
    // Coverage radii depend on altitude, so the model is rebuilt per h —
    // once, shared with the solver via the coverage-reusing entry point.
    const CoverageModel cov(sc);
    ApproAlgParams params;
    params.s = 1;
    params.candidate_cap = 30;
    const Solution sol = solve(sc, cov, params);
    served_table.add_row(
        {format_double(h, 0), std::to_string(sol.served)});
  }
  served_table.print(std::cout);
  return 0;
}
