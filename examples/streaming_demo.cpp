// Streaming coverage over a churn trace (docs/STREAMING.md): users
// arrive, depart, and drift between solver epochs; the StreamEngine keeps
// the standing placement alive with incremental delta patches and
// escalates to a full approAlg re-solve only when the hysteresis trips
// (served-ratio floor or structural-churn drift).  Prints a per-epoch
// timeline plus the patch/full-solve split, and can persist the generated
// trace for replay.
//
//   $ ./build/examples/streaming_demo [--epochs 12] [--flash-epoch 6]
//                                     [--save-trace trace.txt]
#include <iostream>

#include "common/cli.hpp"
#include "common/fingerprint.hpp"
#include "common/table.hpp"
#include "io/trace.hpp"
#include "stream/engine.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "initial number of users", "300");
  cli.add_flag("uavs", "fleet size", "8");
  cli.add_flag("epochs", "number of churn epochs", "12");
  cli.add_flag("arrivals", "max arrivals per epoch", "12");
  cli.add_flag("departures", "max departures per epoch", "8");
  cli.add_flag("flash-epoch", "epoch of a flash-crowd surge (-1 = none)",
               "6");
  cli.add_flag("flash-size", "extra arrivals in the surge", "40");
  cli.add_flag("served-floor", "keep a patch while served stays at or "
               "above this fraction of the last full solve", "0.9");
  cli.add_flag("max-drift", "re-solve once arrivals+departures since the "
               "last full solve exceed this fraction of the population",
               "0.5");
  cli.add_flag("seed", "RNG seed", "42");
  cli.add_flag("save-trace", "write the generated trace here (text, or "
               ".bin for binary)", "");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  config.fleet.uav_count = static_cast<std::int32_t>(cli.get_int("uavs"));
  const Scenario base = workload::make_disaster_scenario(config, rng);

  stream::ChurnTraceConfig trace_config;
  trace_config.epochs = static_cast<std::int32_t>(cli.get_int("epochs"));
  trace_config.max_arrivals_per_epoch =
      static_cast<std::int32_t>(cli.get_int("arrivals"));
  trace_config.max_departures_per_epoch =
      static_cast<std::int32_t>(cli.get_int("departures"));
  trace_config.flash_crowd_epoch =
      static_cast<std::int32_t>(cli.get_int("flash-epoch"));
  trace_config.flash_crowd_size =
      static_cast<std::int32_t>(cli.get_int("flash-size"));
  const stream::ChurnTrace trace =
      stream::generate_trace(base, trace_config, rng.next_u64());

  const std::string trace_path = cli.get_string("save-trace");
  if (!trace_path.empty()) {
    const bool binary = trace_path.size() > 4 &&
                        trace_path.substr(trace_path.size() - 4) == ".bin";
    io::save_trace_file(trace_path, trace,
                        binary ? io::Format::kBinary : io::Format::kText);
    std::cout << "Trace " << fingerprint_hex(trace.fingerprint())
              << " written to " << trace_path << "\n\n";
  }

  stream::StreamPolicy policy;
  policy.served_floor = cli.get_double("served-floor");
  policy.max_drift_fraction = cli.get_double("max-drift");
  policy.appro.s = 2;
  policy.appro.candidate_cap = 30;
  stream::StreamEngine engine(base, policy);

  Table table;
  table.set_header({"epoch", "+in", "-out", "moved", "live", "served",
                    "mode"});
  for (const stream::Epoch& epoch : trace.epochs) {
    const stream::EpochResult r = engine.step(epoch);
    table.add_row({std::to_string(r.epoch), std::to_string(r.arrivals),
                   std::to_string(r.departures), std::to_string(r.moves),
                   std::to_string(engine.ingest().live_users()),
                   std::to_string(r.solution.served),
                   r.full_solve ? "FULL SOLVE" : "patch"});
  }
  table.print(std::cout);
  std::cout << "\nEpochs: " << engine.epochs_processed() << " ("
            << engine.full_solves() << " full solves, " << engine.patches()
            << " delta patches), final served " << engine.current().served
            << " of " << engine.ingest().live_users() << " live users.\n";
  return 0;
}
