#include "workload/fleet.hpp"

#include "common/check.hpp"

namespace uavcov::workload {

std::vector<UavSpec> make_fleet(const FleetConfig& config, Rng& rng) {
  UAVCOV_CHECK_MSG(config.uav_count >= 1, "fleet needs at least one UAV");
  UAVCOV_CHECK_MSG(1 <= config.capacity_min &&
                       config.capacity_min <= config.capacity_max,
                   "invalid capacity interval");
  UAVCOV_CHECK_MSG(config.heavy_fraction >= 0 && config.heavy_fraction <= 1,
                   "heavy fraction must be in [0, 1]");
  std::vector<UavSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(config.uav_count));
  for (std::int32_t k = 0; k < config.uav_count; ++k) {
    UavSpec spec;
    spec.capacity = static_cast<std::int32_t>(
        rng.uniform_int(config.capacity_min, config.capacity_max));
    spec.radio = config.base_radio;
    spec.user_range_m = config.user_range_m;
    if (config.heavy_fraction > 0 && rng.chance(config.heavy_fraction)) {
      spec.radio.tx_power_dbm += config.heavy_extra_tx_db;
      spec.user_range_m += config.heavy_extra_range_m;
    }
    fleet.push_back(spec);
  }
  return fleet;
}

}  // namespace uavcov::workload
