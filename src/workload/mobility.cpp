#include "workload/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace uavcov::workload {

MobilityModel::MobilityModel(const Scenario& scenario, MobilityConfig config,
                             std::uint64_t seed)
    : config_(config), rng_(seed) {
  UAVCOV_CHECK_MSG(config_.speed_m_s > 0, "speed must be positive");
  UAVCOV_CHECK_MSG(
      config_.waypoint_bias >= 0 && config_.waypoint_bias <= 1,
      "waypoint bias must be in [0, 1]");
  waypoint_.reserve(scenario.users.size());
  for (std::size_t i = 0; i < scenario.users.size(); ++i) {
    waypoint_.push_back(pick_waypoint(scenario));
  }
}

Vec2 MobilityModel::pick_waypoint(const Scenario& scenario) {
  Vec2 anchor{rng_.uniform(0, scenario.grid.width()),
              rng_.uniform(0, scenario.grid.height())};
  if (!scenario.users.empty() && rng_.chance(config_.waypoint_bias)) {
    const auto idx =
        UserId{rng_.next_below(scenario.users.size())};
    anchor = scenario.users[idx].pos;
  }
  const Vec2 p{anchor.x + rng_.normal(0.0, config_.waypoint_sigma_m),
               anchor.y + rng_.normal(0.0, config_.waypoint_sigma_m)};
  return {std::clamp(p.x, 0.0, scenario.grid.width()),
          std::clamp(p.y, 0.0, scenario.grid.height())};
}

void MobilityModel::step(Scenario& scenario, double dt_s) {
  UAVCOV_CHECK_MSG(dt_s > 0, "time step must be positive");
  UAVCOV_CHECK_MSG(waypoint_.size() == scenario.users.size(),
                   "mobility model bound to a different scenario");
  const double stride = config_.speed_m_s * dt_s;
  for (const UserId u : scenario.users.ids()) {
    Vec2& pos = scenario.users[u].pos;
    const Vec2 to_target = waypoint_[u.index()] - pos;
    const double remaining = to_target.norm();
    if (remaining <= stride) {
      total_displacement_m_ += remaining;
      pos = waypoint_[u.index()];
      waypoint_[u.index()] = pick_waypoint(scenario);
      continue;
    }
    pos = pos + to_target * (stride / remaining);
    total_displacement_m_ += stride;
  }
}

}  // namespace uavcov::workload
