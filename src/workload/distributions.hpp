// User-position distributions for the evaluation scenarios (§IV-A): "the
// user density follows a fat-tailed distribution, i.e., many users are
// located at a small portion of places while a few users are sparsely
// located at many other places" (citing Song et al., Nature Physics 2010).
//
// We model that as: N_c cluster centers placed uniformly; cluster weights
// drawn Pareto(α) (heavy-tailed) and normalized; each clustered user picks
// a center by weight and scatters around it with an isotropic Gaussian;
// a `background_fraction` of users is sprinkled uniformly.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/vec.hpp"

namespace uavcov::workload {

struct FatTailedConfig {
  std::int32_t cluster_count = 12;
  double pareto_alpha = 1.2;      ///< tail exponent of cluster weights.
  double cluster_sigma_m = 150.0; ///< Gaussian scatter around a center.
  double background_fraction = 0.15;
};

/// n positions inside [0, width] × [0, height], fat-tailed density.
std::vector<Vec2> fat_tailed_positions(std::int32_t n, double width,
                                       double height,
                                       const FatTailedConfig& config,
                                       Rng& rng);

/// n positions, uniform density (ablation workload).
std::vector<Vec2> uniform_positions(std::int32_t n, double width,
                                    double height, Rng& rng);

/// n positions concentrated in `hotspots` axis-aligned discs with uniform
/// leftovers — a deterministic-structure workload for targeted tests.
struct Hotspot {
  Vec2 center;
  double radius_m = 200.0;
  double weight = 1.0;
};
std::vector<Vec2> hotspot_positions(std::int32_t n, double width,
                                    double height,
                                    const std::vector<Hotspot>& hotspots,
                                    double background_fraction, Rng& rng);

}  // namespace uavcov::workload
