// Fluent construction of generated scenarios.
//
// ScenarioConfig is a plain aggregate with three nested config structs;
// assembling one field by field reads fine in a config file but buries the
// scenario's shape in boilerplate at call sites.  ScenarioBuilder wraps
// the same POD behind chainable setters so the common cases are one
// expression:
//
//   Scenario s = ScenarioBuilder()
//                    .area(3000.0, 3000.0)
//                    .cell_side(300.0)
//                    .users(800)
//                    .uavs(10)
//                    .seed(2024)
//                    .build();
//
// The builder adds no policy of its own: every setter writes exactly one
// ScenarioConfig (or nested) field, defaults are the struct defaults, and
// build() calls make_disaster_scenario — a builder-made scenario is
// bit-identical to one made from the equivalent hand-filled config and the
// same seed, which tests/builder_test.cpp pins.  config() exposes the
// accumulated POD for code that needs to cross back (e.g. bench harnesses
// logging the exact configuration).
#pragma once

#include <cstdint>

#include "workload/scenario_gen.hpp"

namespace uavcov::workload {

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  /// Starts from an existing config (all setters still apply on top).
  explicit ScenarioBuilder(const ScenarioConfig& config) : config_(config) {}

  ScenarioBuilder& area(double width_m, double height_m) {
    config_.width_m = width_m;
    config_.height_m = height_m;
    return *this;
  }
  ScenarioBuilder& cell_side(double cell_side_m) {
    config_.cell_side_m = cell_side_m;
    return *this;
  }
  ScenarioBuilder& altitude(double altitude_m) {
    config_.altitude_m = altitude_m;
    return *this;
  }
  ScenarioBuilder& uav_range(double uav_range_m) {
    config_.uav_range_m = uav_range_m;
    return *this;
  }
  ScenarioBuilder& min_rate(double min_rate_bps) {
    config_.min_rate_bps = min_rate_bps;
    return *this;
  }

  ScenarioBuilder& users(std::int32_t user_count) {
    config_.user_count = user_count;
    return *this;
  }
  ScenarioBuilder& fat_tailed_users(const FatTailedConfig& fat_tailed) {
    config_.distribution = UserDistribution::kFatTailed;
    config_.fat_tailed = fat_tailed;
    return *this;
  }
  ScenarioBuilder& uniform_users() {
    config_.distribution = UserDistribution::kUniform;
    return *this;
  }

  ScenarioBuilder& uavs(std::int32_t uav_count) {
    config_.fleet.uav_count = uav_count;
    return *this;
  }
  ScenarioBuilder& capacity_range(std::int32_t capacity_min,
                                  std::int32_t capacity_max) {
    config_.fleet.capacity_min = capacity_min;
    config_.fleet.capacity_max = capacity_max;
    return *this;
  }
  ScenarioBuilder& user_range(double user_range_m) {
    config_.fleet.user_range_m = user_range_m;
    return *this;
  }
  /// Radio-heterogeneous fleets: `fraction` of UAVs get the heavy radio
  /// class (see FleetConfig).
  ScenarioBuilder& heavy_fraction(double fraction) {
    config_.fleet.heavy_fraction = fraction;
    return *this;
  }
  ScenarioBuilder& fleet(const FleetConfig& fleet) {
    config_.fleet = fleet;
    return *this;
  }

  /// Generator seed for build(); build(Rng&) ignores it.
  ScenarioBuilder& seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  /// The accumulated configuration (what build() will generate from).
  const ScenarioConfig& config() const { return config_; }

  /// Generates with a fresh Rng(seed()) — the common case.
  Scenario build() const;
  /// Generates from a caller-owned Rng (for streams of scenarios).
  Scenario build(Rng& rng) const;

 private:
  ScenarioConfig config_{};
  std::uint64_t seed_ = 0;
};

}  // namespace uavcov::workload
