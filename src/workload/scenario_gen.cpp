#include "workload/scenario_gen.hpp"

#include "common/check.hpp"

namespace uavcov::workload {

Scenario make_disaster_scenario(const ScenarioConfig& config, Rng& rng) {
  std::vector<Vec2> positions;
  switch (config.distribution) {
    case UserDistribution::kFatTailed:
      positions = fat_tailed_positions(config.user_count, config.width_m,
                                       config.height_m, config.fat_tailed,
                                       rng);
      break;
    case UserDistribution::kUniform:
      positions = uniform_positions(config.user_count, config.width_m,
                                    config.height_m, rng);
      break;
  }

  Scenario scenario{
      .grid = Grid(config.width_m, config.height_m, config.cell_side_m),
      .altitude_m = config.altitude_m,
      .uav_range_m = config.uav_range_m,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = make_fleet(config.fleet, rng),
  };
  scenario.users.reserve(positions.size());
  for (const Vec2& p : positions) {
    scenario.users.push_back({p, config.min_rate_bps});
  }
  scenario.validate();
  return scenario;
}

}  // namespace uavcov::workload
