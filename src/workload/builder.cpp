#include "workload/builder.hpp"

namespace uavcov::workload {

Scenario ScenarioBuilder::build() const {
  Rng rng(seed_);
  return build(rng);
}

Scenario ScenarioBuilder::build(Rng& rng) const {
  return make_disaster_scenario(config_, rng);
}

}  // namespace uavcov::workload
