// Heterogeneous fleet generation (§IV-A): service capacity C_k drawn
// uniformly from [C_min, C_max] per UAV; optionally two radio classes
// modelling the DJI Matrice 600 RTK / 300 RTK split the paper motivates
// (larger payload → stronger base station → more Tx power and range).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/scenario.hpp"

namespace uavcov::workload {

struct FleetConfig {
  std::int32_t uav_count = 20;
  std::int32_t capacity_min = 50;   ///< paper: C_min = 50 users.
  std::int32_t capacity_max = 300;  ///< paper: C_max = 300 users.
  double user_range_m = 500.0;      ///< paper: R_user = 500 m.

  /// If > 0, this fraction of UAVs gets the "heavy" radio class (+3 dB Tx
  /// power, +100 m user range) — fully heterogeneous fleets; 0 keeps the
  /// paper's radio-homogeneous / capacity-heterogeneous setting.
  double heavy_fraction = 0.0;
  Radio base_radio{};
  double heavy_extra_tx_db = 3.0;
  double heavy_extra_range_m = 100.0;
};

std::vector<UavSpec> make_fleet(const FleetConfig& config, Rng& rng);

}  // namespace uavcov::workload
