// User mobility for the re-deployment scenario of §II-C: "the users in the
// disaster zone may move around ... we thus need to re-deploy the UAVs".
//
// Random-waypoint walk with attraction back toward the populated spots
// (survivors move between shelters, not uniformly): each user holds a
// waypoint, walks toward it at its speed, and picks a new waypoint (biased
// toward a random other user's position — preserving the fat-tailed
// density) on arrival.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/scenario.hpp"

namespace uavcov::workload {

struct MobilityConfig {
  double speed_m_s = 1.4;          ///< pedestrian walking speed.
  double waypoint_bias = 0.7;      ///< P(waypoint near another user).
  double waypoint_sigma_m = 100.0; ///< scatter around the chosen anchor.
};

/// Mutable mobility state for the users of one scenario.
class MobilityModel {
 public:
  MobilityModel(const Scenario& scenario, MobilityConfig config,
                std::uint64_t seed);

  /// Advance every user by `dt_s` seconds, updating `scenario.users`
  /// positions in place (positions stay inside the area).
  void step(Scenario& scenario, double dt_s);

  /// Total displacement of all users over the model's lifetime [m].
  double total_displacement_m() const { return total_displacement_m_; }

 private:
  Vec2 pick_waypoint(const Scenario& scenario);

  MobilityConfig config_;
  Rng rng_;
  std::vector<Vec2> waypoint_;
  double total_displacement_m_ = 0.0;
};

}  // namespace uavcov::workload
