#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace uavcov::workload {

namespace {
Vec2 clamp_to_area(Vec2 p, double width, double height) {
  return {std::clamp(p.x, 0.0, width), std::clamp(p.y, 0.0, height)};
}

/// Sample an index from a normalized cumulative weight vector.
std::size_t sample_cdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf.begin()),
                  cdf.size() - 1);
}
}  // namespace

std::vector<Vec2> fat_tailed_positions(std::int32_t n, double width,
                                       double height,
                                       const FatTailedConfig& config,
                                       Rng& rng) {
  UAVCOV_CHECK_MSG(n >= 0 && width > 0 && height > 0,
                   "invalid workload dimensions");
  UAVCOV_CHECK_MSG(config.cluster_count >= 1, "need at least one cluster");
  UAVCOV_CHECK_MSG(
      config.background_fraction >= 0 && config.background_fraction <= 1,
      "background fraction must be in [0, 1]");

  // Cluster centers and Pareto-heavy weights.
  std::vector<Vec2> centers;
  std::vector<double> weights;
  centers.reserve(static_cast<std::size_t>(config.cluster_count));
  for (std::int32_t c = 0; c < config.cluster_count; ++c) {
    centers.push_back({rng.uniform(0, width), rng.uniform(0, height)});
    weights.push_back(rng.pareto(config.pareto_alpha, 1.0));
  }
  std::vector<double> cdf(weights.size());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cdf[i] = acc;
  }

  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    if (rng.chance(config.background_fraction)) {
      out.push_back({rng.uniform(0, width), rng.uniform(0, height)});
      continue;
    }
    const Vec2 center = centers[sample_cdf(cdf, rng)];
    const Vec2 p{center.x + rng.normal(0.0, config.cluster_sigma_m),
                 center.y + rng.normal(0.0, config.cluster_sigma_m)};
    out.push_back(clamp_to_area(p, width, height));
  }
  return out;
}

std::vector<Vec2> uniform_positions(std::int32_t n, double width,
                                    double height, Rng& rng) {
  UAVCOV_CHECK_MSG(n >= 0 && width > 0 && height > 0,
                   "invalid workload dimensions");
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0, width), rng.uniform(0, height)});
  }
  return out;
}

std::vector<Vec2> hotspot_positions(std::int32_t n, double width,
                                    double height,
                                    const std::vector<Hotspot>& hotspots,
                                    double background_fraction, Rng& rng) {
  UAVCOV_CHECK_MSG(!hotspots.empty(), "need at least one hotspot");
  UAVCOV_CHECK_MSG(background_fraction >= 0 && background_fraction <= 1,
                   "background fraction must be in [0, 1]");
  std::vector<double> cdf(hotspots.size());
  double total = 0.0;
  for (const Hotspot& h : hotspots) {
    UAVCOV_CHECK_MSG(h.weight > 0 && h.radius_m > 0, "invalid hotspot");
    total += h.weight;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < hotspots.size(); ++i) {
    acc += hotspots[i].weight / total;
    cdf[i] = acc;
  }
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    if (rng.chance(background_fraction)) {
      out.push_back({rng.uniform(0, width), rng.uniform(0, height)});
      continue;
    }
    const Hotspot& h = hotspots[sample_cdf(cdf, rng)];
    // Uniform in the disc: radius ~ sqrt(U), angle ~ U.
    const double r = h.radius_m * std::sqrt(rng.uniform01());
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    out.push_back(clamp_to_area(
        {h.center.x + r * std::cos(phi), h.center.y + r * std::sin(phi)},
        width, height));
  }
  return out;
}

}  // namespace uavcov::workload
