// Scenario assembly for the paper's evaluation setup (§IV-A):
//   * 3 × 3 km disaster zone, fat-tailed user density, 1000–3000 users;
//   * K = 2..20 UAVs, C_k ~ U[50, 300], H_uav = 300 m;
//   * R_uav = 600 m, R_user = 500 m, r_min = 2 kbps.
//
// The paper's hovering grid uses λ = 50 m (m = 3600 candidate cells).  At
// that granularity enumerating C(m, s) seed subsets is infeasible anywhere
// (see DESIGN.md §3), so the default cell side here is 300 m (m = 100);
// `cell_side_m` is a plain knob for studying the granularity trade-off.
#pragma once

#include "common/rng.hpp"
#include "core/scenario.hpp"
#include "workload/distributions.hpp"
#include "workload/fleet.hpp"

namespace uavcov::workload {

enum class UserDistribution { kFatTailed, kUniform };

struct ScenarioConfig {
  double width_m = 3000.0;
  double height_m = 3000.0;
  double cell_side_m = 300.0;
  double altitude_m = 300.0;
  double uav_range_m = 600.0;
  double min_rate_bps = 2e3;
  std::int32_t user_count = 3000;
  UserDistribution distribution = UserDistribution::kFatTailed;
  FatTailedConfig fat_tailed{};
  FleetConfig fleet{};
};

Scenario make_disaster_scenario(const ScenarioConfig& config, Rng& rng);

}  // namespace uavcov::workload
