// Leveled stderr logging for the long-running experiment binaries.
// Deliberately minimal: no global mutable state beyond the level, no
// allocation on disabled paths.
#pragma once

#include <sstream>
#include <string>

namespace uavcov {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default Info).  Not thread-safe by design — set it
/// once at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style logging: UAVCOV_LOG(Info) << "placed " << k << " UAVs";
#define UAVCOV_LOG(level_name)                                        \
  for (bool uavcov_log_once =                                         \
           ::uavcov::log_level() <= ::uavcov::LogLevel::k##level_name; \
       uavcov_log_once; uavcov_log_once = false)                      \
  ::uavcov::detail::LogLine(::uavcov::LogLevel::k##level_name)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace uavcov
