// FNV-1a 64-bit fingerprinting for bench/regression baselines.
//
// The bench harness (bench/bench_runner.cpp) and the golden regression
// tests pin *identity*, not just aggregate counts: a scenario fingerprint
// proves the generator still produces the same instance, a solution
// fingerprint proves the solver still returns bit-identical deployments
// and assignments.  FNV-1a is used because it is trivially portable,
// has no dependencies, and is stable across platforms for the same byte
// sequence — doubles are folded in via std::bit_cast so the hash sees the
// exact IEEE-754 bits (no printf round-tripping).
//
// Not a cryptographic hash; collisions are possible but irrelevant for
// regression detection (we compare against one expected value).
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace uavcov {

/// Incremental FNV-1a 64-bit hasher.  Mix in fields in a fixed documented
/// order; `digest()` is the running hash (safe to call repeatedly).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  Fnv1a& mix_byte(std::uint8_t byte) {
    hash_ ^= byte;
    hash_ *= kPrime;
    return *this;
  }

  Fnv1a& mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    }
    return *this;
  }

  Fnv1a& mix(std::int64_t value) {
    return mix(static_cast<std::uint64_t>(value));
  }
  Fnv1a& mix(std::int32_t value) {
    return mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(value)));
  }
  /// Doubles are hashed by bit pattern: +0.0 and -0.0 differ, NaNs hash by
  /// payload.  Scenario/solution data never legitimately contains either.
  Fnv1a& mix(double value) { return mix(std::bit_cast<std::uint64_t>(value)); }

  Fnv1a& mix(std::string_view text) {
    for (const char c : text) mix_byte(static_cast<std::uint8_t>(c));
    // Length terminator so ("ab","c") != ("a","bc") across field boundaries.
    return mix(static_cast<std::uint64_t>(text.size()));
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// Canonical textual form used in BENCH_coverage.json and the golden
/// regression tests: "0x" + 16 lowercase hex digits.  Fingerprints travel
/// as strings because JSON numbers are doubles and would silently lose
/// bits past 2^53.
inline std::string fingerprint_hex(std::uint64_t digest) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

}  // namespace uavcov
