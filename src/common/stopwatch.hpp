// Wall-clock stopwatch used by the experiment harness (Fig. 6(b) reproduces
// the paper's running-time plot).
#pragma once

#include <chrono>

namespace uavcov {

class Stopwatch {
 public:
  Stopwatch() { restart(); }

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uavcov
