#include "common/rng.hpp"

#include <cmath>

namespace uavcov {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  UAVCOV_CHECK_MSG(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  UAVCOV_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_normal_ = true;
  return u * mul;
}

double Rng::pareto(double alpha, double x_min) {
  UAVCOV_CHECK_MSG(alpha > 0 && x_min > 0, "pareto parameters must be positive");
  // Inverse-CDF sampling; 1 - U avoids log(0).
  const double u = 1.0 - uniform01();
  return x_min / std::pow(u, 1.0 / alpha);
}

}  // namespace uavcov
