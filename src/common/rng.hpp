// Deterministic pseudo-random number generation.
//
// All experiments in the repository are seeded, so runs are reproducible
// bit-for-bit across platforms.  We implement xoshiro256** (public domain,
// Blackman & Vigna) seeded through SplitMix64, rather than relying on
// std::mt19937 whose distributions are not portable across standard
// libraries.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace uavcov {

/// SplitMix64 — tiny 64-bit generator used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with portable output.
/// Distribution helpers are implemented here (not via <random>) so results
/// are identical on every standard library.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's rejection-free-ish
  /// multiply-shift with rejection for exactness.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Standard normal via polar Box–Muller (cached spare).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Pareto(alpha, x_min): heavy-tailed positive variate.
  double pareto(double alpha, double x_min);

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for parallel-safe sub-streams).
  Rng fork() { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace uavcov
