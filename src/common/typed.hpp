// Strongly-typed index and quantity layer (docs/STATIC_ANALYSIS.md).
//
// Four distinct index spaces flow through the solver — users, grid cells,
// UAVs, and Euler-subpath segments — and nearly every container access is
// an integer subscript.  With plain int32 aliases a transposed index
// compiles silently and surfaces only as a wrong answer (or an
// out-of-bounds read) at scale.  StrongId<Tag> makes each space its own
// type: explicit construction, no cross-type comparison or arithmetic, no
// implicit conversion to or from integers, hashable, and provably zero
// cost (trivially copyable, sizeof == sizeof(uint32_t), so it is passed
// in registers exactly like the int32 it replaces).
//
// IdVector<Tag, T> is a std::vector<T> whose operator[] accepts only the
// matching id type — bounds-checked under UAVCOV_DCHECK, unchecked in
// release builds.  raw() exposes the underlying vector for serialization
// and for algorithms that are deliberately generic over index spaces.
//
// Quantity<Tag> wraps doubles that cross module boundaries (Meters, Dbm,
// Seconds) so a power level cannot be passed where a distance is
// expected; conversions layer on the helpers in common/units.hpp.
#pragma once

#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace uavcov {

/// Strongly-typed integer id.  `Tag` is an empty struct naming the index
/// space; two StrongId instantiations with different tags are unrelated
/// types, so cross-space comparison, assignment, and arithmetic are
/// compile errors.  The underlying type is a *signed* 32-bit integer so
/// the -1 "invalid" sentinel used throughout the solver stays
/// representable (same width as uint32_t, which the static_asserts below
/// pin).
template <class Tag>
class StrongId {
 public:
  using underlying_type = std::int32_t;

  constexpr StrongId() = default;

  /// Explicit on purpose: `UserId u = 3;` must not compile.  Accepts any
  /// integer type so `UserId(vec.size())` needs no extra cast.
  template <std::integral I>
  constexpr explicit StrongId(I value)
      : value_(static_cast<underlying_type>(value)) {}

  /// The raw index — the single escape hatch into integer arithmetic
  /// (row/col math, CSR offsets, fingerprint mixing).
  constexpr underlying_type value() const { return value_; }

  /// The raw index as size_t, for subscripting untyped containers.
  constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  /// The conventional -1 sentinel ("no such user/cell/UAV").
  static constexpr StrongId invalid() { return StrongId{-1}; }
  constexpr bool valid() const { return value_ >= 0; }

  /// Same-type ordering and equality only (defaulted <=> also provides
  /// ==); comparing against another tag or a plain int does not compile.
  constexpr auto operator<=>(const StrongId&) const = default;

  /// Increment makes ids usable with std::iota and IdRange iteration.
  /// All other arithmetic is intentionally absent — an id plus an id has
  /// no meaning.
  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    const StrongId old = *this;
    ++value_;
    return old;
  }

 private:
  underlying_type value_ = 0;
};

/// The index spaces of the coverage problem (§II-A) plus the sharded
/// mission service (docs/SERVICE.md).
struct UserTag {};     ///< ground users u_1..u_n.
struct CellTag {};     ///< candidate hovering locations v_1..v_m.
struct UavTag {};      ///< the heterogeneous fleet x_1..x_K.
struct SegmentTag {};  ///< Euler-subpath segments 1..s+1 (Algorithm 1).
struct TileTag {};     ///< spatial shards of the mission service.

using UserId = StrongId<UserTag>;
using CellId = StrongId<CellTag>;
using UavId = StrongId<UavTag>;
using SegmentId = StrongId<SegmentTag>;
using TileId = StrongId<TileTag>;

static_assert(std::is_trivially_copyable_v<UserId> &&
              sizeof(UserId) == sizeof(std::uint32_t));
static_assert(std::is_trivially_copyable_v<CellId> &&
              sizeof(CellId) == sizeof(std::uint32_t));
static_assert(std::is_trivially_copyable_v<UavId> &&
              sizeof(UavId) == sizeof(std::uint32_t));
static_assert(std::is_trivially_copyable_v<SegmentId> &&
              sizeof(SegmentId) == sizeof(std::uint32_t));
static_assert(std::is_trivially_copyable_v<TileId> &&
              sizeof(TileId) == sizeof(std::uint32_t));

/// Half-open range [begin, end) of ids, for typed counting loops:
///
///   for (const UserId u : scenario.user_ids()) { ... }
template <class Id>
class IdRange {
 public:
  class iterator {
   public:
    using value_type = Id;
    using difference_type = std::ptrdiff_t;

    constexpr iterator() = default;
    constexpr explicit iterator(Id at) : at_(at) {}
    constexpr Id operator*() const { return at_; }
    constexpr iterator& operator++() {
      ++at_;
      return *this;
    }
    constexpr iterator operator++(int) {
      const iterator old = *this;
      ++at_;
      return old;
    }
    constexpr bool operator==(const iterator&) const = default;

   private:
    Id at_{};
  };

  constexpr explicit IdRange(std::int32_t count)
      : begin_(Id{0}), end_(Id{count}) {
    UAVCOV_DCHECK(count >= 0);
  }
  constexpr IdRange(Id begin, Id end) : begin_(begin), end_(end) {
    UAVCOV_DCHECK(begin <= end);
  }

  constexpr iterator begin() const { return iterator{begin_}; }
  constexpr iterator end() const { return iterator{end_}; }
  constexpr std::int32_t size() const {
    return end_.value() - begin_.value();
  }
  constexpr bool empty() const { return begin_ == end_; }

 private:
  Id begin_;
  Id end_;
};

/// std::vector<T> indexed by StrongId<Tag> and nothing else.  Subscripts
/// are bounds-checked under UAVCOV_DCHECK (debug builds) and unchecked in
/// release, matching std::vector.  Implicitly constructible from
/// std::vector<T> / initializer lists so aggregate scenario literals and
/// generator output assign without ceremony — the type safety lives in
/// the subscript, not the container boundary.
template <class Tag, class T>
class IdVector {
 public:
  using Id = StrongId<Tag>;
  using value_type = T;
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  IdVector() = default;
  explicit IdVector(std::size_t count) : values_(count) {}
  IdVector(std::size_t count, const T& init) : values_(count, init) {}
  // NOLINTNEXTLINE(google-explicit-constructor): container bridge.
  IdVector(std::initializer_list<T> init) : values_(init) {}
  // NOLINTNEXTLINE(google-explicit-constructor): container bridge.
  IdVector(std::vector<T> values) : values_(std::move(values)) {}

  // decltype(auto) so std::vector<bool>'s proxy reference passes through.
  decltype(auto) operator[](Id id) {
    UAVCOV_DCHECK(id.index() < values_.size());
    return values_[id.index()];
  }
  decltype(auto) operator[](Id id) const {
    UAVCOV_DCHECK(id.index() < values_.size());
    return values_[id.index()];
  }

  /// Always-checked access (throws ContractError out of range).
  decltype(auto) at(Id id) {
    UAVCOV_CHECK(id.index() < values_.size());
    return values_[id.index()];
  }
  decltype(auto) at(Id id) const {
    UAVCOV_CHECK(id.index() < values_.size());
    return values_[id.index()];
  }

  std::size_t size() const { return values_.size(); }
  std::int32_t ssize() const {
    return static_cast<std::int32_t>(values_.size());
  }
  bool empty() const { return values_.empty(); }

  iterator begin() { return values_.begin(); }
  iterator end() { return values_.end(); }
  const_iterator begin() const { return values_.begin(); }
  const_iterator end() const { return values_.end(); }
  const_iterator cbegin() const { return values_.cbegin(); }
  const_iterator cend() const { return values_.cend(); }

  T& front() { return values_.front(); }
  const T& front() const { return values_.front(); }
  T& back() { return values_.back(); }
  const T& back() const { return values_.back(); }
  T* data() { return values_.data(); }
  const T* data() const { return values_.data(); }

  void reserve(std::size_t count) { values_.reserve(count); }
  void resize(std::size_t count) { values_.resize(count); }
  void resize(std::size_t count, const T& init) {
    values_.resize(count, init);
  }
  void assign(std::size_t count, const T& init) {
    values_.assign(count, init);
  }
  void clear() { values_.clear(); }
  void push_back(const T& v) { values_.push_back(v); }
  void push_back(T&& v) { values_.push_back(std::move(v)); }
  void pop_back() { values_.pop_back(); }
  template <class... Args>
  T& emplace_back(Args&&... args) {
    return values_.emplace_back(std::forward<Args>(args)...);
  }

  /// One-past-the-last valid id (== Id{ssize()}).
  Id end_id() const { return Id{ssize()}; }
  /// All valid ids, in order — `for (const Id i : v.ids())`.
  IdRange<Id> ids() const { return IdRange<Id>{ssize()}; }

  /// The untyped view, for serialization and index-space-generic code.
  std::vector<T>& raw() { return values_; }
  const std::vector<T>& raw() const { return values_; }

  bool operator==(const IdVector&) const = default;

 private:
  std::vector<T> values_;
};

/// Strongly-typed physical quantity (a tagged double).  Same-type
/// arithmetic and ordering only; scaling by a dimensionless factor and
/// the ratio of two like quantities are allowed.  Construction from a
/// raw double is explicit, so `height_m(Meters{300.0})` documents its
/// unit at every call site.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  constexpr double value() const { return value_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  constexpr Quantity operator-() const { return Quantity{-value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

 private:
  double value_ = 0.0;
};

struct MetersTag {};
struct DbmTag {};
struct SecondsTag {};

using Meters = Quantity<MetersTag>;   ///< distance / length.
using Dbm = Quantity<DbmTag>;         ///< absolute power, dB-milliwatts.
using Seconds = Quantity<SecondsTag>; ///< wall-clock / simulated time.

static_assert(std::is_trivially_copyable_v<Meters> &&
              sizeof(Meters) == sizeof(double));

// Typed shims over the unit conversions in common/units.hpp.  Note that
// dBm is logarithmic: Dbm + Dbm via Quantity's operator+ is the *product*
// of the underlying powers — convert through milliwatts to sum power.
inline double to_milliwatts(Dbm p) { return dbm_to_mw(p.value()); }
inline Dbm dbm_from_milliwatts(double mw) { return Dbm{mw_to_dbm(mw)}; }
constexpr Meters meters(double v) { return Meters{v}; }
constexpr Seconds seconds(double v) { return Seconds{v}; }

}  // namespace uavcov

/// Ids are hashable so typed keys drop into std::unordered_* and custom
/// hash-based containers without boilerplate.
template <class Tag>
struct std::hash<uavcov::StrongId<Tag>> {
  std::size_t operator()(uavcov::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
