// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name` forms.
// Unknown flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace uavcov {

class CliParser {
 public:
  /// Register a flag with a help string and (textual) default.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);

  /// Parse argv.  Throws ContractError on unknown flags or malformed input.
  /// Returns false if `--help` was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Render help text.
  std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    std::optional<std::string> value;
  };
  const Flag& find(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace uavcov
