// Minimal aligned-column table printer used by the figure harnesses to
// print paper-style result rows to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uavcov {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Example output:
///   K   approAlg  maxThroughput  MotionCtrl  MCS   GreedyAssign
///   2   301       270            198         266   255
class Table {
 public:
  /// Set the header row.  Column count of subsequent rows must match.
  void set_header(std::vector<std::string> header);

  /// Append a row of pre-formatted cells.
  void add_row(std::vector<std::string> row);

  /// Convenience: format arithmetic values with operator<<.
  template <typename... Ts>
  void add_row_of(const Ts&... values) {
    add_row({format_cell(values)...});
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Render the table (header + rows) to `os` with two-space gutters.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

template <typename T>
std::string Table::format_cell(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(static_cast<double>(v));
  } else {
    return std::to_string(v);
  }
}

}  // namespace uavcov
