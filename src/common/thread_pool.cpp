#include "common/thread_pool.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace uavcov {

namespace {

/// Pool metrics (docs/OBSERVABILITY.md): queue depth is sampled at every
/// submit/dequeue (the gauge's high-water mark is the interesting part);
/// task latency is recorded by the executing worker into its own shard.
struct PoolMetrics {
  obs::Gauge queue_depth = obs::gauge("common.thread_pool.queue_depth");
  obs::Counter tasks = obs::counter("common.thread_pool.tasks");
  obs::Histogram task_seconds =
      obs::histogram("common.thread_pool.task_seconds");
};

const PoolMetrics& pool_metrics() {
  static const PoolMetrics metrics;
  return metrics;
}

}  // namespace

ThreadPool::ThreadPool(std::int32_t thread_count) {
  UAVCOV_CHECK_MSG(thread_count >= 1, "thread pool needs >= 1 worker");
  threads_.reserve(static_cast<std::size_t>(thread_count));
  for (std::int32_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const sync::LockGuard lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  UAVCOV_CHECK_MSG(task != nullptr, "cannot submit an empty task");
  std::size_t depth = 0;
  {
    const sync::LockGuard lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  pool_metrics().queue_depth.set(static_cast<std::int64_t>(depth));
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    sync::UniqueLock lock(mu_);
    // Predicate loop in this body (not a lambda handed to the condvar) so
    // the analysis sees the guarded reads of queue_/active_ under mu_.
    while (!queue_.empty() || active_ != 0) all_idle_.wait(lock);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::discard_pending() {
  std::size_t dropped = 0;
  {
    const sync::LockGuard lock(mu_);
    dropped = queue_.size();
    queue_.clear();
    // Workers blocked in worker_loop are waiting for tasks, not for the
    // queue to empty, so only wait_idle() needs a wake-up: with the queue
    // cleared it may now be satisfied even while tasks are still active.
    if (active_ == 0) all_idle_.notify_all();
  }
  pool_metrics().queue_depth.set(0);
  return dropped;
}

std::int32_t ThreadPool::resolve(std::int32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::int32_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::UniqueLock lock(mu_);
      while (!stopping_ && queue_.empty()) task_ready_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    pool_metrics().tasks.inc();
    try {
      const obs::ScopedTimer timer(pool_metrics().task_seconds);
      task();
    } catch (...) {
      const sync::LockGuard lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const sync::LockGuard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace uavcov
