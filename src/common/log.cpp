#include "common/log.hpp"

#include <iostream>

namespace uavcov {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace uavcov
