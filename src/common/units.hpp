// Decibel / linear conversions and physical constants used by the channel
// models.  Kept header-only; these are one-liners on hot paths.
#pragma once

#include <cmath>

namespace uavcov {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Convert a decibel quantity to a linear ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Convert a linear ratio to decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Convert milliwatts to dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert dBm to milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Degrees → radians.
inline constexpr double deg_to_rad(double deg) {
  return deg * 3.14159265358979323846 / 180.0;
}

/// Radians → degrees.
inline constexpr double rad_to_deg(double rad) {
  return rad * 180.0 / 3.14159265358979323846;
}

}  // namespace uavcov
