#include "common/csv.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace uavcov {

std::vector<std::string> parse_csv_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (true) {
    cell.clear();
    if (i < n && line[i] == '"') {
      // Quoted cell: consume until the closing quote; "" is a literal ".
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            cell += '"';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        cell += line[i++];
      }
      if (!closed) {
        throw std::invalid_argument("CSV: unterminated quoted cell");
      }
      if (i < n && line[i] != ',') {
        throw std::invalid_argument(
            "CSV: data after closing quote in cell " +
            std::to_string(cells.size()));
      }
    } else {
      // Unquoted cell: runs to the next comma; RFC 4180 forbids quotes
      // inside it (CsvWriter would have quoted the whole cell).
      while (i < n && line[i] != ',') {
        if (line[i] == '"') {
          throw std::invalid_argument(
              "CSV: quote inside unquoted cell " +
              std::to_string(cells.size()));
        }
        cell += line[i++];
      }
    }
    cells.push_back(cell);
    if (i >= n) break;
    ++i;  // skip the comma; a trailing comma yields a final empty cell
  }
  return cells;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  UAVCOV_CHECK_MSG(out_.good(), "failed to open CSV file: " + path);
}

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

}  // namespace uavcov
