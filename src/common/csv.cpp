#include "common/csv.hpp"

#include "common/check.hpp"

namespace uavcov {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  UAVCOV_CHECK_MSG(out_.good(), "failed to open CSV file: " + path);
}

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

}  // namespace uavcov
