// Compile-time-checked synchronization layer (docs/STATIC_ANALYSIS.md,
// "Thread-safety capability analysis").
//
// Every lock in the tree goes through these wrappers instead of the raw
// <mutex> primitives, because the wrappers carry Clang Thread Safety
// Analysis attributes: `sync::Mutex` is a capability, `sync::LockGuard` /
// `sync::UniqueLock` are scoped capabilities, and data members annotated
// with UAVCOV_GUARDED_BY(mu) cannot be touched on any path where the
// analysis cannot prove `mu` is held.  Unlike TSan — which observes only
// the interleavings a test happens to execute — the analysis proves lock
// discipline on *every* path at compile time, and `-Werror=thread-safety`
// (enabled for all Clang builds in the top-level CMakeLists) turns a
// violation into a build break.
//
// On GCC (which has no such analysis) every UAVCOV_* annotation macro
// expands to nothing and every wrapper inlines to the std primitive it
// holds, so the layer is zero-cost and the tree stays buildable on both
// toolchains.  The `concurrency-discipline` lint rule
// (scripts/lint_uavcov.py) forbids raw std primitives outside
// src/common/{sync,thread_pool}.*, so GCC-only contributors cannot
// accidentally bypass the annotated layer.
//
// Annotation cheat-sheet (full recipe in docs/STATIC_ANALYSIS.md):
//   int x UAVCOV_GUARDED_BY(mu_);        // reads/writes require mu_ held
//   void f() UAVCOV_REQUIRES(mu_);       // caller must hold mu_
//   void g() UAVCOV_EXCLUDES(mu_);       // caller must NOT hold mu_
//   void lock() UAVCOV_ACQUIRE();        // function takes the capability
//   void unlock() UAVCOV_RELEASE();      // function drops it
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros.  The spellings follow the
// "mutex.h" reference header in Clang's Thread Safety Analysis
// documentation; each expands to __attribute__((...)) under Clang and to
// nothing elsewhere.

#if defined(__clang__) && !defined(SWIG)
#define UAVCOV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define UAVCOV_THREAD_ANNOTATION(x)  // no-op on GCC and other compilers
#endif

/// Marks a class as a capability (a lock); the string names it in
/// diagnostics ("mutex 'mu_' is not held on every path ...").
#define UAVCOV_CAPABILITY(x) UAVCOV_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define UAVCOV_SCOPED_CAPABILITY UAVCOV_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be accessed while `x` is held.
#define UAVCOV_GUARDED_BY(x) UAVCOV_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded by `x`.
#define UAVCOV_PT_GUARDED_BY(x) UAVCOV_THREAD_ANNOTATION(pt_guarded_by(x))

/// The caller must hold every listed capability (exclusively).
#define UAVCOV_REQUIRES(...) \
  UAVCOV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define UAVCOV_ACQUIRE(...) \
  UAVCOV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define UAVCOV_RELEASE(...) \
  UAVCOV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Acquires the capability iff the return value equals the first argument.
#define UAVCOV_TRY_ACQUIRE(...) \
  UAVCOV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that take them internally).
#define UAVCOV_EXCLUDES(...) \
  UAVCOV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order between two capabilities.
#define UAVCOV_ACQUIRED_BEFORE(...) \
  UAVCOV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define UAVCOV_ACQUIRED_AFTER(...) \
  UAVCOV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the capability guarding its result.
#define UAVCOV_RETURN_CAPABILITY(x) UAVCOV_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the analysis skips this function entirely.  Every use
/// must carry a comment justifying why the invariant holds anyway.
#define UAVCOV_NO_THREAD_SAFETY_ANALYSIS \
  UAVCOV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace uavcov::sync {

class CondVar;

/// Annotated std::mutex.  Prefer LockGuard/UniqueLock over calling
/// lock()/unlock() directly — manual pairs are exactly the bugs the
/// analysis exists to catch, but they remain available for the rare
/// split-scope pattern (each such site must annotate its functions with
/// UAVCOV_ACQUIRE/UAVCOV_RELEASE so the discipline stays visible).
class UAVCOV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() UAVCOV_ACQUIRE() { mu_.lock(); }
  void unlock() UAVCOV_RELEASE() { mu_.unlock(); }
  bool try_lock() UAVCOV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the native handle
  std::mutex mu_;
};

/// RAII lock for the whole enclosing scope (std::lock_guard shape).
class UAVCOV_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) UAVCOV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() UAVCOV_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that can be dropped and retaken inside its scope — the shape
/// CondVar::wait needs.  Unlike std::unique_lock it always starts locked
/// and is not movable: every ownership state stays provable.
class UAVCOV_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) UAVCOV_ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~UniqueLock() UAVCOV_RELEASE() {
    if (owns_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() UAVCOV_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() UAVCOV_RELEASE() {
    mu_.unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }

 private:
  friend class CondVar;  // wait() relocks through the native handle
  Mutex& mu_;
  bool owns_;
};

/// Annotated condition variable.  Deliberately predicate-less: callers
/// write `while (!cond) cv.wait(lock);` in their own body, where the
/// analysis can see that the guarded reads in `cond` happen under the
/// lock.  (A predicate-lambda overload would move those reads into a
/// lambda the analysis treats as a separate, lock-free function.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, and reacquires before returning.
  /// `lock` must be held on entry (spurious wakeups possible, as with any
  /// condition variable — always wait in a predicate loop).
  void wait(UniqueLock& lock);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// True when this translation unit was compiled with Clang's Thread
/// Safety Analysis attributes active (i.e. the UAVCOV_* macros are real
/// attributes, not no-ops).  Lets tests and diagnostics report which
/// enforcement tier the binary was built under.
bool capability_analysis_active() noexcept;

}  // namespace uavcov::sync
