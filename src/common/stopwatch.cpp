#include "common/stopwatch.hpp"

// Header-only implementation; this TU anchors the target.
