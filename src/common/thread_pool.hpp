// Fixed-size worker pool for the parallel seed-subset search (DESIGN.md
// §7): threads are spawned once, tasks are plain std::function<void()>
// closures, and wait_idle() is the only synchronization point callers
// need — it blocks until every submitted task finished and rethrows the
// first exception any task raised (AuditError and ContractError must not
// die silently on a worker).
//
// Deliberately minimal: no futures, no task priorities, no work stealing.
// The solver's unit of work (one seed subset) is coarse enough that a
// single mutex-protected queue never becomes the bottleneck, and the
// deterministic reduction happens in caller code after wait_idle().
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace uavcov {

class ThreadPool {
 public:
  /// Spawns exactly `thread_count` workers (must be >= 1; use resolve()
  /// to map a user-facing "0 = all cores" knob to a concrete count).
  explicit ThreadPool(std::int32_t thread_count);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int32_t size() const {
    return static_cast<std::int32_t>(threads_.size());
  }

  /// Enqueue one task.  Never blocks (the queue is unbounded).
  void submit(std::function<void()> task) UAVCOV_EXCLUDES(mu_);

  /// Block until the queue is drained and every worker is idle.  If any
  /// task threw, rethrows the *first* such exception (later ones are
  /// dropped); the pool stays usable afterwards.
  void wait_idle() UAVCOV_EXCLUDES(mu_);

  /// Cancellation hook (docs/SERVICE.md): drop every queued-but-not-yet-
  /// started task and return how many were discarded.  Tasks already
  /// executing run to completion — cancellation is cooperative, callers
  /// that need mid-task aborts thread a latch through the closures (see
  /// service::CancelLatch).  The pool stays usable afterwards.
  std::size_t discard_pending() UAVCOV_EXCLUDES(mu_);

  /// Map the ApproAlgParams::threads convention to a worker count:
  /// 0 → hardware concurrency (at least 1), otherwise the request itself.
  /// Negative requests are the caller's validation problem, not ours.
  static std::int32_t resolve(std::int32_t requested);

 private:
  void worker_loop() UAVCOV_EXCLUDES(mu_);

  std::vector<std::thread> threads_;  // written only by ctor/dtor
  sync::Mutex mu_;
  sync::CondVar task_ready_;  // signals workers
  sync::CondVar all_idle_;    // signals wait_idle()
  std::deque<std::function<void()>> queue_ UAVCOV_GUARDED_BY(mu_);
  std::int32_t active_ UAVCOV_GUARDED_BY(mu_) = 0;  // tasks executing now
  bool stopping_ UAVCOV_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ UAVCOV_GUARDED_BY(mu_);
};

}  // namespace uavcov
