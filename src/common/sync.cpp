#include "common/sync.hpp"

namespace uavcov::sync {

// The adopt/release dance lets CondVar keep the cheap std::condition_variable
// (std::condition_variable_any would also work but carries an extra internal
// mutex): we hand our already-held native mutex to a std::unique_lock for the
// duration of the wait, then take ownership back without unlocking.  The
// analysis does not model the release/reacquire inside the wait — it does not
// need to: the capability is held on entry and on exit, which is exactly the
// contract the caller's scope sees.
void CondVar::wait(UniqueLock& lock) {
  std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
  cv_.wait(native);
  (void)native.release();  // still locked; ownership returns to `lock`
}

bool capability_analysis_active() noexcept {
#if defined(__clang__) && !defined(SWIG)
  return true;
#else
  return false;
#endif
}

}  // namespace uavcov::sync
