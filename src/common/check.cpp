#include "common/check.hpp"

#include <sstream>

namespace uavcov::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace uavcov::detail
