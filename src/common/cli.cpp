#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace uavcov {

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  UAVCOV_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{help, default_value, std::nullopt};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    UAVCOV_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << help(argv[0]);
      return false;
    }
    std::string name = arg, value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    UAVCOV_CHECK_MSG(it != flags_.end(), "unknown flag: --" + name);
    if (!have_value) {
      // `--name value` unless the next token is another flag or absent
      // (then it is a boolean `--name` == true).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  UAVCOV_CHECK_MSG(it != flags_.end(), "flag not registered: --" + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

long long CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  UAVCOV_CHECK_MSG(end && *end == '\0' && !s.empty(),
                   "flag --" + name + " is not an integer: " + s);
  return v;
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  UAVCOV_CHECK_MSG(end && *end == '\0' && !s.empty(),
                   "flag --" + name + " is not a number: " + s);
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  UAVCOV_CHECK_MSG(false, "flag --" + name + " is not a boolean: " + s);
  return false;
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << '\n';
  }
  return os.str();
}

}  // namespace uavcov
