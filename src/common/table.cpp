#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace uavcov {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  UAVCOV_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  const auto widen = [&width](const std::vector<std::string>& row) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  const auto emit = [&os, &width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace uavcov
