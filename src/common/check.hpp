// Contract-checking macros and the library's error type.
//
// Following the C++ Core Guidelines (I.5/I.6/E.*), preconditions and
// invariants are expressed explicitly.  `UAVCOV_CHECK` is always on (it
// guards API misuse and costs little on the paths where it appears);
// `UAVCOV_DCHECK` compiles away in release builds and is used on hot inner
// loops.
#pragma once

#include <stdexcept>
#include <string>

namespace uavcov {

/// Error thrown when a contract (precondition, postcondition, invariant) is
/// violated.  Carries the failing expression and source location.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace uavcov

/// Always-on contract check.  `msg` may use `operator<<`-free string
/// concatenation (it is only evaluated on failure).
#define UAVCOV_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::uavcov::detail::contract_failure("CHECK", #expr, __FILE__,          \
                                         __LINE__, "");                     \
    }                                                                       \
  } while (false)

#define UAVCOV_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::uavcov::detail::contract_failure("CHECK", #expr, __FILE__,          \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (false)

#ifndef NDEBUG
#define UAVCOV_DCHECK(expr) UAVCOV_CHECK(expr)
#else
// Release no-op that still parses and type-checks `expr` (unevaluated
// operand), so debug-only variables stay odr-used and bit-rot in the
// expression is caught by every build mode.
#define UAVCOV_DCHECK(expr)                                                 \
  do {                                                                      \
    static_cast<void>(sizeof(static_cast<bool>(expr) ? 1 : 0));             \
  } while (false)
#endif
