// CSV writer for experiment outputs (one file per figure; columns are the
// paper's plotted series), plus the matching RFC-4180 record parser used
// for reading results back and by the round-trip fuzzer.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace uavcov {

/// Parses one RFC-4180 CSV record into its cells — the exact inverse of
/// CsvWriter quoting (parse_csv_row(quoted row) == original cells).  The
/// record may contain quoted newlines.  Malformed input never truncates
/// silently: an unterminated quoted cell, a quote opening mid-cell, or
/// data trailing a closing quote all throw std::invalid_argument.
std::vector<std::string> parse_csv_row(const std::string& line);

class CsvWriter {
 public:
  /// Opens `path` for writing; throws ContractError on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a row; cells containing commas/quotes/newlines are quoted.
  void write_row(const std::vector<std::string>& cells);

  template <typename... Ts>
  void write_row_of(const Ts&... values) {
    write_row({cell(values)...});
  }

  /// Quote a single cell per RFC 4180 (exposed for tests).
  static std::string quote(const std::string& cell);

 private:
  template <typename T>
  static std::string cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::ofstream out_;
};

}  // namespace uavcov
