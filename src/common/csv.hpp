// CSV writer for experiment outputs (one file per figure; columns are the
// paper's plotted series).  RFC-4180-style quoting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace uavcov {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws ContractError on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a row; cells containing commas/quotes/newlines are quoted.
  void write_row(const std::vector<std::string>& cells);

  template <typename... Ts>
  void write_row_of(const Ts&... values) {
    write_row({cell(values)...});
  }

  /// Quote a single cell per RFC 4180 (exposed for tests).
  static std::string quote(const std::string& cell);

 private:
  template <typename T>
  static std::string cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::ofstream out_;
};

}  // namespace uavcov
