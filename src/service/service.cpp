#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/assignment.hpp"
#include "core/coverage.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"
#include "graph/dsu.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace uavcov::service {

namespace {

/// Mission-level metrics (docs/OBSERVABILITY.md).
struct ServiceMetrics {
  obs::Counter jobs = obs::counter("service.jobs");
  obs::Counter tiles = obs::counter("service.tiles");
  obs::Counter degraded_tiles = obs::counter("service.degraded_tiles");
  obs::Histogram job_seconds = obs::histogram("service.job_seconds");
  obs::Gauge queue_depth = obs::gauge("service.queue_depth");
};

const ServiceMetrics& service_metrics() {
  static const ServiceMetrics m;
  return m;
}

}  // namespace

void MissionConfig::validate() const {
  tiling.validate();
  supervision.validate();
  appro.validate();
  if (threads < 0) {
    throw std::invalid_argument("MissionConfig: threads must be >= 0 (got " +
                                std::to_string(threads) + ")");
  }
}

std::int32_t DegradationReport::degraded_tiles() const {
  std::int32_t degraded = 0;
  for (const TileReport& t : tiles) {
    if (t.status == TileStatus::kFallback || t.status == TileStatus::kEmpty) {
      ++degraded;
    }
  }
  return degraded;
}

std::string DegradationReport::to_string() const {
  std::string out;
  for (const TileReport& t : tiles) {
    if (t.status == TileStatus::kSolved || t.status == TileStatus::kNoUsers) {
      continue;
    }
    out += "tile " + std::to_string(t.tile.value()) + ": " +
           service::to_string(t.status) + " (" + std::to_string(t.attempts) +
           " attempts, " + std::to_string(t.served) + " served)\n";
  }
  if (out.empty()) out = "no degraded or recovered tiles\n";
  return out;
}

JobResult solve_mission(const Scenario& scenario, const MissionConfig& config,
                        const ShardFaultPlan* chaos, const CancelLatch* cancel,
                        double deadline_s) {
  config.validate();
  scenario.validate();
  const ServiceMetrics& metrics = service_metrics();
  metrics.jobs.inc();
  const obs::ScopedTimer job_timer(metrics.job_seconds);
  const Stopwatch watch;

  JobResult out;
  const JobControl control(cancel, deadline_s);
  const TilePlan plan = make_tiling(scenario, config.tiling);
  if (chaos != nullptr) chaos->validate(plan.tile_count());
  metrics.tiles.inc(plan.tile_count());

  // Phase 1 — supervised per-tile solves on the pool.  Each task writes
  // only its own pre-sized slot, so no synchronization is needed beyond
  // wait_idle(); merging below walks the slots in tile-id order, which is
  // why the result is bit-identical for every thread count.
  std::vector<TileSolve> solves(plan.tiles.size());
  {
    ThreadPool pool(ThreadPool::resolve(config.threads));
    for (const Tile& tile : plan.tiles) {
      const Tile* tp = &tile;
      TileSolve* slot = &solves[static_cast<std::size_t>(tile.id.value())];
      pool.submit([tp, slot, &config, chaos, &control] {
        if (tp->user_count() == 0) {
          slot->status = TileStatus::kNoUsers;
          slot->solution.algorithm = "service.empty";
          return;
        }
        const CoverageModel coverage(tp->restricted.scenario);
        *slot = solve_tile_supervised(*tp, coverage, config.appro,
                                      config.supervision, chaos, &control);
      });
    }
    // deadline: each tile task is bounded by the supervisor's attempt
    // ladder (max_attempts + 1 tries, each under attempt_budget_s /
    // time_budget_s) plus the job-deadline check before every attempt.
    pool.wait_idle();
  }

  // Phase 2 — merge in tile-id order: journals, reports, and deployments
  // translated back into parent ids.  Cross-tile halo overlaps can land
  // two UAVs on one parent cell; first tile wins, the loser's UAV joins
  // the spare pool (§II-C forbids cell sharing).
  std::vector<Deployment> deployments;
  std::vector<bool> cell_taken(static_cast<std::size_t>(scenario.grid.size()),
                               false);
  std::vector<bool> uav_used(static_cast<std::size_t>(scenario.uav_count()),
                             false);
  std::vector<std::int32_t> tile_of_user(
      static_cast<std::size_t>(scenario.user_count()), -1);
  std::vector<std::int32_t> tile_of_uav(
      static_cast<std::size_t>(scenario.uav_count()), -1);
  out.report.tiles.reserve(plan.tiles.size());
  for (const Tile& tile : plan.tiles) {
    const TileSolve& ts = solves[static_cast<std::size_t>(tile.id.value())];
    out.report.tiles.push_back(TileReport{tile.id, ts.status, ts.attempts,
                                          ts.solution.served,
                                          tile.uav_count()});
    out.stats.attempts += ts.attempts;
    for (const AttemptRecord& rec : ts.journal) {
      if (!rec.fallback && rec.outcome != AttemptOutcome::kOk &&
          rec.outcome != AttemptOutcome::kCancelled) {
        ++out.stats.retries;
      }
      if (rec.fallback && rec.outcome == AttemptOutcome::kOk) {
        ++out.stats.fallbacks;
      }
      out.attempts.push_back(rec);
    }
    for (const UserId u : tile.restricted.users) {
      tile_of_user[static_cast<std::size_t>(u.value())] = tile.id.value();
    }
    for (const UavId k : tile.restricted.fleet) {
      UAVCOV_CHECK_MSG(tile_of_uav[static_cast<std::size_t>(k.value())] == -1,
                       "solve_mission: UAV sliced into two tile fleets");
      tile_of_uav[static_cast<std::size_t>(k.value())] = tile.id.value();
    }
    for (const Deployment& local : ts.solution.deployments) {
      const UavId uav =
          tile.restricted.fleet[static_cast<std::size_t>(local.uav.value())];
      const LocationId loc = tile.restricted.parent_cell(local.loc);
      if (cell_taken[static_cast<std::size_t>(loc.value())]) {
        ++out.stats.collisions_dropped;
        continue;
      }
      cell_taken[static_cast<std::size_t>(loc.value())] = true;
      uav_used[static_cast<std::size_t>(uav.value())] = true;
      deployments.push_back(Deployment{uav, loc});
    }
  }

  // Phase 3 — boundary-gateway reconciliation: if the merged deployment
  // set is disconnected under R_uav, staff the MST relay plan's gateway
  // cells from spare UAVs (capacity-descending, deterministic); when the
  // plan is unrealizable or the spares run out, keep the component whose
  // Lemma-1 assignment serves the most users and drop the rest.
  if (deployments.size() > 1) {
    const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
    std::vector<NodeId> nodes;
    nodes.reserve(deployments.size());
    for (const Deployment& d : deployments) nodes.push_back(to_node(d.loc));
    if (!is_induced_subgraph_connected(g, nodes)) {
      std::vector<UavId> spares;
      for (const UavId k : scenario.uavs_by_capacity_desc()) {
        if (!uav_used[static_cast<std::size_t>(k.value())]) {
          spares.push_back(k);
        }
      }
      std::vector<CellId> chosen;
      chosen.reserve(deployments.size());
      for (const Deployment& d : deployments) chosen.push_back(d.loc);
      const std::optional<RelayPlan> relay_plan = stitch_connected(g, chosen);
      bool stitched = false;
      if (relay_plan.has_value() &&
          relay_plan->relay_count <=
              static_cast<std::int32_t>(spares.size())) {
        for (std::size_t i = chosen.size(); i < relay_plan->nodes.size();
             ++i) {
          const CellId cell = relay_plan->nodes[i];
          const UavId uav = spares[i - chosen.size()];
          uav_used[static_cast<std::size_t>(uav.value())] = true;
          deployments.push_back(Deployment{uav, cell});
        }
        out.stats.relays_staffed = relay_plan->relay_count;
        stitched = true;
      }
      if (!stitched) {
        const auto count = static_cast<std::int32_t>(deployments.size());
        Dsu dsu(count);
        for (std::int32_t i = 0; i < count; ++i) {
          for (std::int32_t j = i + 1; j < count; ++j) {
            if (g.has_edge(nodes[static_cast<std::size_t>(i)],
                           nodes[static_cast<std::size_t>(j)])) {
              dsu.unite(i, j);
            }
          }
        }
        std::vector<std::int32_t> roots;  // first-member order
        for (std::int32_t i = 0; i < count; ++i) {
          const std::int32_t r = dsu.find(i);
          if (std::find(roots.begin(), roots.end(), r) == roots.end()) {
            roots.push_back(r);
          }
        }
        const CoverageModel coverage(scenario);
        std::vector<Deployment> best;
        std::int64_t best_served = -1;
        for (const std::int32_t root : roots) {
          std::vector<Deployment> members;
          for (std::int32_t i = 0; i < count; ++i) {
            if (dsu.find(i) == root) {
              members.push_back(deployments[static_cast<std::size_t>(i)]);
            }
          }
          const std::int64_t served =
              solve_assignment(scenario, coverage, members).served;
          if (served > best_served) {  // ties keep the earlier component
            best_served = served;
            best = std::move(members);
          }
        }
        out.stats.components_dropped =
            static_cast<std::int32_t>(roots.size()) - 1;
        deployments = std::move(best);
      }
    }
  }

  // Phase 4 — one global Lemma-1 assignment over the stitched deployment
  // set, so halo-overlap users are served by whichever tile's UAV wins.
  const CoverageModel coverage(scenario);
  const AssignmentResult assign =
      solve_assignment(scenario, coverage, deployments);
  out.solution.algorithm = "service.sharded";
  out.solution.deployments = std::move(deployments);
  out.solution.user_to_deployment = assign.user_to_deployment;
  out.solution.served = assign.served;
  out.solution.solve_seconds = watch.elapsed_s();

  const std::int32_t degraded = out.report.degraded_tiles();
  metrics.degraded_tiles.inc(degraded);
  out.stats.cancelled = control.cancelled();
  out.stats.deadline_hit = control.deadline_expired();
  out.stats.seconds = watch.elapsed_s();

  if (config.audit || analysis::audit_env_enabled()) {
    analysis::require_clean(analysis::audit_shard_partition(
        scenario, tile_of_user, tile_of_uav, plan.tile_count()));
    analysis::require_clean(
        analysis::audit_solution(scenario, coverage, out.solution));
    validate_solution(scenario, coverage, out.solution);
  }
  return out;
}

JobQueue::JobQueue(std::int32_t workers)
    : pool_(ThreadPool::resolve(workers)) {}

JobQueue::~JobQueue() = default;

std::int64_t JobQueue::submit(JobSpec spec) {
  auto entry = std::make_shared<Entry>(std::move(spec));
  std::int64_t id = 0;
  {
    const sync::LockGuard lock(mu_);
    id = next_id_++;
    jobs_.emplace(id, entry);
    ++unfinished_;
  }
  service_metrics().queue_depth.add(1);
  pool_.submit([this, entry] {
    {
      const sync::LockGuard lock(mu_);
      if (entry->finished) return;  // shutdown_now() retired it first
      entry->started = true;
    }
    JobResult result;
    std::exception_ptr error;
    try {
      const JobSpec& job = entry->spec;
      result = solve_mission(job.scenario, job.config,
                             job.chaos.has_value() ? &*job.chaos : nullptr,
                             &entry->latch, job.deadline_s);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const sync::LockGuard lock(mu_);
      entry->result = std::move(result);
      entry->error = error;
      entry->finished = true;
      --unfinished_;
    }
    service_metrics().queue_depth.add(-1);
    done_.notify_all();
  });
  return id;
}

JobResult JobQueue::wait(std::int64_t job) {
  std::shared_ptr<Entry> entry;
  {
    sync::UniqueLock lock(mu_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      throw std::invalid_argument("JobQueue::wait: unknown job id " +
                                  std::to_string(job) +
                                  " (never submitted, or already waited on)");
    }
    entry = it->second;
    while (!entry->finished) {
      // deadline: every job finishes — bounded by its own deadline_s and
      // the supervisor's finite attempt ladder; shutdown_now() retires
      // even unstarted entries outright.
      done_.wait(lock);
    }
    jobs_.erase(job);  // wait() transfers ownership; a second wait throws
  }
  if (entry->error) std::rethrow_exception(entry->error);
  return std::move(entry->result);
}

bool JobQueue::cancel(std::int64_t job) {
  const sync::LockGuard lock(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end() || it->second->finished) return false;
  it->second->latch.cancel();
  return true;
}

void JobQueue::drain() {
  sync::UniqueLock lock(mu_);
  while (unfinished_ > 0) {
    // deadline: bounded by the slowest outstanding job's own deadline_s
    // and finite attempt ladder; shutdown_now() zeroes the count outright.
    done_.wait(lock);
  }
}

void JobQueue::shutdown_now() {
  std::int64_t retired = 0;
  {
    const sync::LockGuard lock(mu_);
    for (auto& [id, entry] : jobs_) {
      if (entry->finished) continue;
      entry->latch.cancel();
      if (!entry->started) {
        // Retire it here; the still-queued closure sees `finished` and
        // returns without running the mission.
        entry->finished = true;
        entry->result.stats.cancelled = true;
        --unfinished_;
        ++retired;
      }
    }
  }
  pool_.discard_pending();
  if (retired > 0) {
    service_metrics().queue_depth.add(-retired);
  }
  done_.notify_all();
}

}  // namespace uavcov::service
