// Deterministic shard-fault injection for the mission service
// (docs/SERVICE.md), mirroring the resilience/fault_plan idiom: a seeded,
// validated, fingerprintable plan that poisons specific tile-solve
// attempts so retry / fallback / degradation drills are replayable
// bit-for-bit on every platform.
//
// A fault poisons attempts 1..attempts of its tile.  With the default
// SupervisorPolicy (max_attempts appro tries + 1 greedy fallback try) that
// models the whole failure spectrum:
//   attempts <  max_attempts      — a flake the retry loop absorbs;
//   attempts == max_attempts      — appro exhausted, greedy fallback saves
//                                   the tile (TileStatus::kFallback);
//   attempts >  max_attempts      — fallback poisoned too, the tile
//                                   degrades to empty (TileStatus::kEmpty).
#pragma once

#include <cstdint>
#include <vector>

#include "common/typed.hpp"

namespace uavcov::service {

enum class ShardFaultKind : std::int32_t {
  kSolverException = 0,  ///< the attempt dies with a solver exception.
  kDeadlineOverrun = 1,  ///< the attempt blows its per-attempt deadline.
  kCorruptResult = 2,    ///< the attempt returns an infeasible solution.
  kFlake = 3,            ///< generic transient failure (crash-like).
};

const char* to_string(ShardFaultKind kind);

struct ShardFault {
  TileId tile{0};
  ShardFaultKind kind = ShardFaultKind::kFlake;
  /// Poisons supervised attempts 1..attempts of this tile (>= 1).
  std::int32_t attempts = 1;

  bool operator==(const ShardFault&) const = default;
};

struct ShardFaultPlan {
  /// At most one fault per tile, sorted by tile id ascending.
  std::vector<ShardFault> faults;

  /// Throws std::invalid_argument on the first malformed fault: tile out
  /// of [0, tile_count), attempts < 1, duplicate or unsorted tiles.
  void validate(std::int32_t tile_count) const;

  /// The fault poisoning `tile`, or nullptr.
  const ShardFault* fault_for(TileId tile) const;

  /// FNV-1a 64-bit digest of every fault — pins generator output in tests
  /// and the chaos acceptance drills.
  std::uint64_t fingerprint() const;
};

struct ShardFaultConfig {
  std::int32_t faults = 2;          ///< faulted tiles to draw (capped at
                                    ///< tile_count).
  std::int32_t max_poison_depth = 3;///< attempts drawn from [1, depth].
  /// When true, one drawn fault (the first) poisons attempts far beyond
  /// any retry + fallback budget, forcing an empty-tile degradation.
  bool include_unrecoverable = false;
  std::int32_t unrecoverable_depth = 64;
};

/// Deterministic generator: the same (tile_count, config, seed) triple
/// yields a bit-identical plan everywhere (Rng is xoshiro256**).  Faulted
/// tiles are distinct.
ShardFaultPlan make_shard_fault_plan(std::int32_t tile_count,
                                     const ShardFaultConfig& config,
                                     std::uint64_t seed);

}  // namespace uavcov::service
