#include "service/tiling.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace uavcov::service {

namespace {

/// Half-open boundaries splitting `n` cells into `parts` contiguous runs:
/// the first n % parts runs get one extra cell.  boundaries.size() ==
/// parts + 1, boundaries.front() == 0, boundaries.back() == n.
std::vector<std::int32_t> split_axis(std::int32_t n, std::int32_t parts) {
  std::vector<std::int32_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  const std::int32_t base = n / parts;
  const std::int32_t extra = n % parts;
  for (std::int32_t i = 0; i < parts; ++i) {
    bounds[static_cast<std::size_t>(i) + 1] =
        bounds[static_cast<std::size_t>(i)] + base + (i < extra ? 1 : 0);
  }
  return bounds;
}

/// Index of the run containing `v` under `bounds` (half-open runs).
std::int32_t run_of(const std::vector<std::int32_t>& bounds, std::int32_t v) {
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  return static_cast<std::int32_t>(it - bounds.begin()) - 1;
}

/// D'Hondt seat allocation: every populated tile starts with one seat;
/// each remaining seat goes to the populated tile maximizing
/// users / (seats + 1), ties to the lower tile id.  Integer cross
/// multiplication keeps the comparison exact and platform-independent.
std::vector<std::int32_t> fleet_quotas(
    const std::vector<std::int64_t>& tile_users, std::int32_t fleet_size) {
  std::vector<std::int32_t> quota(tile_users.size(), 0);
  std::int32_t populated = 0;
  for (std::size_t t = 0; t < tile_users.size(); ++t) {
    if (tile_users[t] > 0) {
      quota[t] = 1;
      ++populated;
    }
  }
  UAVCOV_CHECK_MSG(populated <= fleet_size,
                   "make_tiling: fleet smaller than the number of populated "
                   "tiles (" + std::to_string(populated) + " tiles, " +
                       std::to_string(fleet_size) +
                       " UAVs); use a coarser tiling");
  for (std::int32_t seat = populated; seat < fleet_size; ++seat) {
    std::size_t best = tile_users.size();
    for (std::size_t t = 0; t < tile_users.size(); ++t) {
      if (tile_users[t] == 0) continue;
      if (best == tile_users.size()) {
        best = t;
        continue;
      }
      // users[t] / (quota[t]+1) > users[best] / (quota[best]+1) ?
      const std::int64_t lhs = tile_users[t] * (quota[best] + 1);
      const std::int64_t rhs = tile_users[best] * (quota[t] + 1);
      if (lhs > rhs) best = t;
    }
    if (best == tile_users.size()) break;  // no populated tile at all
    ++quota[best];
  }
  return quota;
}

}  // namespace

void TilingParams::validate() const {
  if (tiles_x < 1 || tiles_y < 1) {
    throw std::invalid_argument(
        "TilingParams: tiles_x and tiles_y must be >= 1 (got " +
        std::to_string(tiles_x) + " x " + std::to_string(tiles_y) + ")");
  }
  if (halo_cells < 0) {
    throw std::invalid_argument("TilingParams: halo_cells must be >= 0 (got " +
                                std::to_string(halo_cells) + ")");
  }
}

TilePlan make_tiling(const Scenario& scenario, const TilingParams& params) {
  params.validate();
  scenario.validate();
  const Grid& grid = scenario.grid;
  UAVCOV_CHECK_MSG(params.tiles_x <= grid.cols() &&
                       params.tiles_y <= grid.rows(),
                   "make_tiling: more tiles than grid cells per axis");

  const std::vector<std::int32_t> col_bounds =
      split_axis(grid.cols(), params.tiles_x);
  const std::vector<std::int32_t> row_bounds =
      split_axis(grid.rows(), params.tiles_y);

  TilePlan plan;
  plan.tiles_x = params.tiles_x;
  plan.tiles_y = params.tiles_y;
  const std::int32_t count = params.tiles_x * params.tiles_y;

  // Owner tile of every user: the tile whose core rectangle contains the
  // user's grid cell (Grid::locate clamps far-edge points inward, so every
  // in-area user lands in exactly one core rectangle).
  std::vector<std::vector<UserId>> tile_users(
      static_cast<std::size_t>(count));
  std::vector<std::int64_t> user_counts(static_cast<std::size_t>(count), 0);
  for (const UserId u : scenario.user_ids()) {
    const LocationId cell = grid.locate(scenario.users[u].pos);
    UAVCOV_CHECK_MSG(cell.valid(), "make_tiling: user outside the area");
    const std::int32_t tx = run_of(col_bounds, grid.col_of(cell));
    const std::int32_t ty = run_of(row_bounds, grid.row_of(cell));
    const std::size_t t = static_cast<std::size_t>(ty) *
                              static_cast<std::size_t>(params.tiles_x) +
                          static_cast<std::size_t>(tx);
    tile_users[t].push_back(u);
    ++user_counts[t];
  }

  // Fleet slices: D'Hondt quotas by user count, then deal the fleet in
  // capacity-descending order, each UAV to the tile with the largest
  // remaining deficit (ties to the lower tile id) — so every tile gets a
  // capacity mix instead of one tile hoarding the big airframes.
  const std::vector<std::int32_t> quota =
      fleet_quotas(user_counts, scenario.uav_count());
  std::vector<std::vector<UavId>> tile_fleet(static_cast<std::size_t>(count));
  std::vector<std::int32_t> assigned(static_cast<std::size_t>(count), 0);
  for (const UavId k : scenario.uavs_by_capacity_desc()) {
    std::size_t best = static_cast<std::size_t>(count);
    std::int32_t best_deficit = 0;
    for (std::size_t t = 0; t < static_cast<std::size_t>(count); ++t) {
      const std::int32_t deficit = quota[t] - assigned[t];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = t;
      }
    }
    if (best == static_cast<std::size_t>(count)) break;  // quotas filled
    tile_fleet[best].push_back(k);
    ++assigned[best];
  }

  plan.tiles.reserve(static_cast<std::size_t>(count));
  for (std::int32_t ty = 0; ty < params.tiles_y; ++ty) {
    for (std::int32_t tx = 0; tx < params.tiles_x; ++tx) {
      const std::size_t t = static_cast<std::size_t>(ty) *
                                static_cast<std::size_t>(params.tiles_x) +
                            static_cast<std::size_t>(tx);
      const std::int32_t col0 = col_bounds[static_cast<std::size_t>(tx)];
      const std::int32_t col1 = col_bounds[static_cast<std::size_t>(tx) + 1];
      const std::int32_t row0 = row_bounds[static_cast<std::size_t>(ty)];
      const std::int32_t row1 = row_bounds[static_cast<std::size_t>(ty) + 1];
      const std::int32_t hcol0 = std::max(0, col0 - params.halo_cells);
      const std::int32_t hcol1 = std::min(grid.cols(), col1 + params.halo_cells);
      const std::int32_t hrow0 = std::max(0, row0 - params.halo_cells);
      const std::int32_t hrow1 = std::min(grid.rows(), row1 + params.halo_cells);
      plan.tiles.push_back(Tile{
          TileId{static_cast<std::int32_t>(t)}, col0, row0, col1, row1,
          hcol0, hrow0, hcol1, hrow1,
          restrict_to_window(scenario, hcol0, hrow0, hcol1, hrow1,
                             tile_users[t], tile_fleet[t])});
    }
  }
  return plan;
}

}  // namespace uavcov::service
