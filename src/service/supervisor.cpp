#include "service/supervisor.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "baselines/greedy_assign.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace uavcov::service {

namespace {

/// Supervisor metrics (docs/OBSERVABILITY.md): attempts counts every
/// supervised try (fallbacks included), retries counts failed tries that
/// scheduled another one, backoff_seconds is the *logical* backoff
/// schedule (deterministic values, never slept in-process).
struct SupervisorMetrics {
  obs::Counter attempts = obs::counter("service.attempts");
  obs::Counter retries = obs::counter("service.retries");
  obs::Counter fallbacks = obs::counter("service.fallbacks");
  obs::Histogram backoff_seconds =
      obs::histogram("service.backoff_seconds");
  obs::Histogram tile_seconds = obs::histogram("service.tile_seconds");
};

const SupervisorMetrics& supervisor_metrics() {
  static const SupervisorMetrics m;
  return m;
}

Solution make_empty_solution(const Tile& tile) {
  Solution s;
  s.algorithm = "service.empty";
  s.user_to_deployment.assign(tile.restricted.scenario.users.size(), -1);
  s.served = 0;
  return s;
}

/// Deterministically corrupt a solution so validate_solution rejects it
/// (served count inconsistent with the assignment vector).
void corrupt_solution(Solution& s) { s.served += 1; }

}  // namespace

double SupervisorPolicy::backoff_after(std::int32_t attempt) const {
  UAVCOV_DCHECK(attempt >= 1);
  double backoff = base_backoff_s;
  for (std::int32_t i = 1; i < attempt; ++i) backoff *= backoff_factor;
  return backoff;
}

void SupervisorPolicy::validate() const {
  if (max_attempts < 1) {
    throw std::invalid_argument(
        "SupervisorPolicy: max_attempts must be >= 1 (got " +
        std::to_string(max_attempts) + ")");
  }
  if (!(base_backoff_s >= 0.0) || !std::isfinite(base_backoff_s)) {
    throw std::invalid_argument(
        "SupervisorPolicy: base_backoff_s must be finite and >= 0");
  }
  if (!(backoff_factor >= 1.0) || !std::isfinite(backoff_factor)) {
    throw std::invalid_argument(
        "SupervisorPolicy: backoff_factor must be finite and >= 1");
  }
  if (!(attempt_budget_s >= 0.0) || !std::isfinite(attempt_budget_s)) {
    throw std::invalid_argument(
        "SupervisorPolicy: attempt_budget_s must be finite and >= 0");
  }
}

const char* to_string(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kOk: return "ok";
    case AttemptOutcome::kError: return "error";
    case AttemptOutcome::kDeadline: return "deadline";
    case AttemptOutcome::kCorrupt: return "corrupt";
    case AttemptOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* to_string(TileStatus status) {
  switch (status) {
    case TileStatus::kNoUsers: return "no_users";
    case TileStatus::kSolved: return "solved";
    case TileStatus::kRecovered: return "recovered";
    case TileStatus::kFallback: return "fallback";
    case TileStatus::kEmpty: return "empty";
  }
  return "unknown";
}

TileSolve solve_tile_supervised(const Tile& tile,
                                const CoverageModel& coverage,
                                const ApproAlgParams& appro,
                                const SupervisorPolicy& policy,
                                const ShardFaultPlan* chaos,
                                const JobControl* control) {
  policy.validate();
  appro.validate();
  TileSolve out;
  if (tile.user_count() == 0) {
    out.status = TileStatus::kNoUsers;
    out.solution = make_empty_solution(tile);
    return out;
  }
  UAVCOV_CHECK_MSG(tile.uav_count() >= 1,
                   "solve_tile_supervised: populated tile without a fleet "
                   "slice");

  const SupervisorMetrics& metrics = supervisor_metrics();
  const obs::ScopedTimer tile_timer(metrics.tile_seconds);
  const Scenario& sub = tile.restricted.scenario;
  const ShardFault* fault = chaos != nullptr ? chaos->fault_for(tile.id)
                                             : nullptr;

  // Runs one attempt; fills rec.outcome/message and returns the feasible
  // solution on kOk.  `fallback` switches approAlg for the greedy baseline.
  const auto run_attempt = [&](bool fallback, std::int32_t attempt,
                               AttemptRecord& rec) -> std::optional<Solution> {
    const bool poisoned = fault != nullptr && attempt <= fault->attempts;
    if (poisoned && fault->kind != ShardFaultKind::kCorruptResult) {
      rec.injected = true;
      rec.outcome = fault->kind == ShardFaultKind::kDeadlineOverrun
                        ? AttemptOutcome::kDeadline
                        : AttemptOutcome::kError;
      rec.message = std::string("chaos: injected ") + to_string(fault->kind);
      return std::nullopt;
    }
    Solution candidate;
    try {
      if (fallback) {
        candidate = baselines::solve(sub, coverage,
                                     baselines::GreedyAssignParams{});
        candidate.algorithm = "service.fallback";
      } else {
        ApproAlgParams params = appro;
        if (policy.attempt_budget_s > 0.0) {
          params.time_budget_s = policy.attempt_budget_s;
        }
        ApproAlgStats stats;
        candidate = appro_alg(sub, coverage, params, &stats);
        if (stats.deadline_hit) {
          rec.outcome = AttemptOutcome::kDeadline;
          rec.message = "attempt deadline hit";
          return std::nullopt;
        }
      }
    } catch (const std::exception& e) {
      rec.outcome = AttemptOutcome::kError;
      rec.message = e.what();
      return std::nullopt;
    }
    if (poisoned) {
      rec.injected = true;
      corrupt_solution(candidate);
    }
    try {
      validate_solution(sub, coverage, candidate);
    } catch (const std::exception& e) {
      rec.outcome = AttemptOutcome::kCorrupt;
      rec.message = e.what();
      return std::nullopt;
    }
    rec.outcome = AttemptOutcome::kOk;
    return candidate;
  };

  std::int32_t failures = 0;
  for (std::int32_t attempt = 1; attempt <= policy.max_attempts + 1;
       ++attempt) {
    const bool fallback = attempt == policy.max_attempts + 1;
    AttemptRecord rec;
    rec.tile = tile.id;
    rec.attempt = attempt;
    rec.fallback = fallback;
    const Stopwatch attempt_watch;

    if (control != nullptr && control->cancelled()) {
      rec.outcome = AttemptOutcome::kCancelled;
      rec.message = "job cancelled";
      rec.seconds = attempt_watch.elapsed_s();
      out.journal.push_back(std::move(rec));
      ++out.attempts;
      metrics.attempts.inc();
      break;  // degrade to empty below — a cancelled job wants no work
    }
    if (!fallback && control != nullptr && control->deadline_expired()) {
      // A blown job deadline skips the remaining approAlg tries but still
      // runs the cheap fallback, so the mission degrades instead of
      // vanishing.
      rec.outcome = AttemptOutcome::kDeadline;
      rec.message = "job deadline expired; skipping to fallback";
      rec.seconds = attempt_watch.elapsed_s();
      out.journal.push_back(std::move(rec));
      ++out.attempts;
      metrics.attempts.inc();
      ++failures;
      attempt = policy.max_attempts;  // next iteration is the fallback
      continue;
    }
    if (fallback) metrics.fallbacks.inc();

    const std::optional<Solution> solved = run_attempt(fallback, attempt, rec);
    rec.seconds = attempt_watch.elapsed_s();
    ++out.attempts;
    metrics.attempts.inc();
    if (solved.has_value()) {
      out.journal.push_back(std::move(rec));
      out.solution = *solved;
      out.status = fallback ? TileStatus::kFallback
                   : failures == 0 ? TileStatus::kSolved
                                   : TileStatus::kRecovered;
      return out;
    }
    ++failures;
    if (!fallback) {
      rec.backoff_s = policy.backoff_after(attempt);
      metrics.backoff_seconds.observe_seconds(rec.backoff_s);
      metrics.retries.inc();
    }
    out.journal.push_back(std::move(rec));
  }

  out.status = TileStatus::kEmpty;
  out.solution = make_empty_solution(tile);
  return out;
}

}  // namespace uavcov::service
