#include "service/chaos.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/fingerprint.hpp"
#include "common/rng.hpp"

namespace uavcov::service {

const char* to_string(ShardFaultKind kind) {
  switch (kind) {
    case ShardFaultKind::kSolverException: return "solver_exception";
    case ShardFaultKind::kDeadlineOverrun: return "deadline_overrun";
    case ShardFaultKind::kCorruptResult: return "corrupt_result";
    case ShardFaultKind::kFlake: return "flake";
  }
  return "unknown";
}

void ShardFaultPlan::validate(std::int32_t tile_count) const {
  TileId prev = TileId::invalid();
  for (const ShardFault& f : faults) {
    if (!f.tile.valid() || f.tile.value() >= tile_count) {
      throw std::invalid_argument("ShardFaultPlan: tile " +
                                  std::to_string(f.tile.value()) +
                                  " outside [0, " +
                                  std::to_string(tile_count) + ")");
    }
    if (f.attempts < 1) {
      throw std::invalid_argument(
          "ShardFaultPlan: attempts must be >= 1 (tile " +
          std::to_string(f.tile.value()) + ")");
    }
    if (prev.valid() && !(prev < f.tile)) {
      throw std::invalid_argument(
          "ShardFaultPlan: faults must be sorted by tile, one per tile "
          "(tile " + std::to_string(f.tile.value()) + ")");
    }
    prev = f.tile;
  }
}

const ShardFault* ShardFaultPlan::fault_for(TileId tile) const {
  const auto it = std::lower_bound(
      faults.begin(), faults.end(), tile,
      [](const ShardFault& f, TileId t) { return f.tile < t; });
  if (it == faults.end() || it->tile != tile) return nullptr;
  return &*it;
}

std::uint64_t ShardFaultPlan::fingerprint() const {
  Fnv1a h;
  h.mix(static_cast<std::int64_t>(faults.size()));
  for (const ShardFault& f : faults) {
    h.mix(f.tile.value())
        .mix(static_cast<std::int32_t>(f.kind))
        .mix(f.attempts);
  }
  return h.digest();
}

ShardFaultPlan make_shard_fault_plan(std::int32_t tile_count,
                                     const ShardFaultConfig& config,
                                     std::uint64_t seed) {
  if (tile_count < 1) {
    throw std::invalid_argument("make_shard_fault_plan: tile_count must be "
                                ">= 1");
  }
  if (config.faults < 0 || config.max_poison_depth < 1 ||
      config.unrecoverable_depth < 1) {
    throw std::invalid_argument("make_shard_fault_plan: bad config");
  }
  Rng rng(seed);
  std::vector<std::int32_t> pool(static_cast<std::size_t>(tile_count));
  std::iota(pool.begin(), pool.end(), 0);
  rng.shuffle(pool);
  const std::int32_t n = std::min(config.faults, tile_count);

  ShardFaultPlan plan;
  plan.faults.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    ShardFault f;
    f.tile = TileId{pool[static_cast<std::size_t>(i)]};
    f.kind = static_cast<ShardFaultKind>(rng.uniform_int(0, 3));
    f.attempts = static_cast<std::int32_t>(
        rng.uniform_int(1, config.max_poison_depth));
    if (i == 0 && config.include_unrecoverable) {
      f.attempts = config.unrecoverable_depth;
    }
    plan.faults.push_back(f);
  }
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const ShardFault& a, const ShardFault& b) {
              return a.tile < b.tile;
            });
  return plan;
}

}  // namespace uavcov::service
