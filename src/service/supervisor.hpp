// Supervised tile solves for the mission service (docs/SERVICE.md).
//
// One tile solve is a sequence of bounded *attempts*: up to
// SupervisorPolicy::max_attempts approAlg tries (each under a per-attempt
// deadline via ApproAlgParams::time_budget_s), then one greedy-baseline
// fallback try, then graceful degradation to an empty tile.  Every attempt
// — success, injected fault, real exception, deadline overrun, corrupt
// result — lands in the attempt journal with its deterministic exponential
// backoff, so a mission's failure history is fully reconstructible.
//
// Backoff is *logical*: it is computed, journaled, and exported through the
// service.backoff_seconds histogram, but the in-process supervisor does not
// sleep — sleeping would make drills slow and wall-clock-dependent.  A
// distributed front-end would honor the journaled schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/typed.hpp"
#include "core/appro_alg.hpp"
#include "core/coverage.hpp"
#include "core/solution.hpp"
#include "service/chaos.hpp"
#include "service/tiling.hpp"

namespace uavcov::service {

/// One-way cancellation flag shared between a job's owner and its tile
/// tasks.  Cancellation is cooperative: the supervisor consults the latch
/// before every attempt.
class CancelLatch {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  // atomic-invariant: one-way monotonic flag (false -> true, never back);
  // readers only ever skip work after observing true, so relaxed ordering
  // is safe — no other state is published through this flag.
  std::atomic<bool> cancelled_{false};
};

/// Cooperative job-scope abort signal: an optional external CancelLatch
/// plus an optional wall-clock deadline over the whole job.  Cancellation
/// empties remaining tiles immediately; a blown deadline still runs the
/// cheap greedy fallback so the mission degrades instead of vanishing.
class JobControl {
 public:
  JobControl(const CancelLatch* cancel, double deadline_s)
      : cancel_(cancel), deadline_s_(deadline_s) {}

  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }
  bool deadline_expired() const {
    return deadline_s_ > 0.0 && watch_.elapsed_s() > deadline_s_;
  }
  double elapsed_s() const { return watch_.elapsed_s(); }

 private:
  const CancelLatch* cancel_;
  double deadline_s_;
  Stopwatch watch_;
};

struct SupervisorPolicy {
  std::int32_t max_attempts = 3;  ///< approAlg tries before the fallback.
  double base_backoff_s = 0.25;   ///< backoff after attempt 1.
  double backoff_factor = 2.0;    ///< exponential growth per retry.
  /// Per-attempt solve deadline [s]; 0 keeps the appro params' own
  /// time_budget_s.  A real (non-injected) overrun counts as a failed
  /// attempt and retries.
  double attempt_budget_s = 0.0;

  /// Deterministic backoff scheduled after failed attempt `attempt` (>= 1):
  /// base_backoff_s * backoff_factor^(attempt-1).
  double backoff_after(std::int32_t attempt) const;

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

enum class AttemptOutcome : std::int32_t {
  kOk = 0,         ///< attempt produced a feasible tile solution.
  kError = 1,      ///< attempt died with a solver exception.
  kDeadline = 2,   ///< attempt blew its per-attempt deadline.
  kCorrupt = 3,    ///< attempt returned an infeasible solution.
  kCancelled = 4,  ///< job cancelled before the attempt started.
};

const char* to_string(AttemptOutcome outcome);

/// One journaled attempt of one tile.
struct AttemptRecord {
  TileId tile{0};
  std::int32_t attempt = 1;  ///< 1-based; max_attempts+1 == greedy fallback.
  AttemptOutcome outcome = AttemptOutcome::kOk;
  bool injected = false;     ///< failure came from the ShardFaultPlan.
  bool fallback = false;     ///< this was the greedy-baseline attempt.
  double backoff_s = 0.0;    ///< logical backoff scheduled after a failure.
  double seconds = 0.0;      ///< wall clock of the attempt.
  std::string message;       ///< failure detail, empty on kOk.
};

enum class TileStatus : std::int32_t {
  kNoUsers = 0,    ///< tile owns no users; nothing to solve.
  kSolved = 1,     ///< first approAlg attempt succeeded.
  kRecovered = 2,  ///< a retry succeeded after >= 1 failed attempt.
  kFallback = 3,   ///< approAlg exhausted; greedy baseline saved the tile.
  kEmpty = 4,      ///< everything failed; tile degraded to no coverage.
};

const char* to_string(TileStatus status);

/// Result of one supervised tile solve, in tile-local id terms.
struct TileSolve {
  TileStatus status = TileStatus::kNoUsers;
  Solution solution;  ///< empty (served 0) for kNoUsers / kEmpty.
  std::int32_t attempts = 0;  ///< attempts actually made.
  std::vector<AttemptRecord> journal;
};

/// Runs the retry / fallback / degradation ladder for one tile.
/// `coverage` must be built over tile.restricted.scenario.  `chaos` and
/// `control` may be null.  Deterministic for a fixed (tile, params, chaos)
/// triple as long as no real deadline or cancellation fires.
TileSolve solve_tile_supervised(const Tile& tile,
                                const CoverageModel& coverage,
                                const ApproAlgParams& appro,
                                const SupervisorPolicy& policy,
                                const ShardFaultPlan* chaos,
                                const JobControl* control);

}  // namespace uavcov::service
