// Long-running mission service front-end (docs/SERVICE.md).
//
// One *mission* = one scenario solved by spatial sharding: the area is
// tiled (service/tiling.hpp), each tile runs through the supervised
// retry / fallback / degradation ladder (service/supervisor.hpp) on a
// thread pool, and the surviving tile solutions are stitched back into a
// single §II-C-feasible Solution — cross-tile cell collisions resolved
// first-tile-wins, disconnected deployments reconciled with the MST relay
// planner (boundary gateways staffed from spare UAVs), and a final global
// Lemma-1 assignment so halo-overlap users land on whichever tile's UAV
// serves them best.  What could not be saved is named, not hidden: every
// degraded tile is listed in the DegradationReport and every attempt in
// the merged journal.
//
// JobQueue is the service loop: submit many missions, each with its own
// deadline and cancellation latch, and wait for JobResults as they finish.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "common/typed.hpp"
#include "core/appro_alg.hpp"
#include "core/scenario.hpp"
#include "core/solution.hpp"
#include "service/chaos.hpp"
#include "service/supervisor.hpp"
#include "service/tiling.hpp"

namespace uavcov::service {

struct MissionConfig {
  TilingParams tiling;
  SupervisorPolicy supervision;
  ApproAlgParams appro;
  /// Worker threads for the per-tile solves (ThreadPool::resolve
  /// convention: 0 = all cores).  The stitched result is bit-identical
  /// for every thread count — merging happens in tile-id order.
  std::int32_t threads = 1;
  /// Force the deep invariant audits on the stitched solution (also
  /// honored process-wide via UAVCOV_AUDIT=1).
  bool audit = false;

  /// Throws (std::invalid_argument / ContractError) on out-of-domain
  /// fields; delegates to the members' own validators.
  void validate() const;
};

/// Per-tile outcome summary, in tile-id order.
struct TileReport {
  TileId tile{0};
  TileStatus status = TileStatus::kNoUsers;
  std::int32_t attempts = 0;   ///< supervised attempts made.
  std::int64_t served = 0;     ///< users served by the tile-local solution.
  std::int32_t uavs = 0;       ///< fleet-slice size.
};

/// Names every tile that did not get a first-class approAlg solution.
/// "Degraded" = kFallback (greedy baseline saved it) or kEmpty (no
/// coverage at all); kRecovered tiles took retries but are not degraded.
struct DegradationReport {
  std::vector<TileReport> tiles;  ///< all tiles, index == TileId value.

  std::int32_t degraded_tiles() const;
  /// One line per non-kSolved tile, e.g. "tile 3: fallback (5 attempts)".
  std::string to_string() const;
};

/// Merged mission counters (journal-derived, deterministic under a fixed
/// fault plan with no real deadline or cancellation).
struct JobStats {
  std::int32_t attempts = 0;            ///< supervised attempts, all tiles.
  std::int32_t retries = 0;             ///< failed approAlg attempts.
  std::int32_t fallbacks = 0;           ///< tiles saved by the baseline.
  std::int32_t collisions_dropped = 0;  ///< cross-tile cell collisions.
  std::int32_t relays_staffed = 0;      ///< spare UAVs placed as relays.
  std::int32_t components_dropped = 0;  ///< components cut by the fallback.
  bool cancelled = false;               ///< latch fired during the job.
  bool deadline_hit = false;            ///< job blew `deadline_s`.
  double seconds = 0.0;                 ///< wall clock of the mission.
};

struct JobResult {
  Solution solution;                    ///< algorithm == "service.sharded".
  DegradationReport report;
  std::vector<AttemptRecord> attempts;  ///< merged journals, tile-id order.
  JobStats stats;
};

/// Solves one mission synchronously.  `chaos` (may be null) injects the
/// seeded fault plan into the tile supervisors; `cancel` (may be null) and
/// `deadline_s` (0 = none) bound the whole job.  Deterministic for fixed
/// (scenario, config, chaos) regardless of `config.threads` as long as no
/// real deadline or cancellation fires.
JobResult solve_mission(const Scenario& scenario, const MissionConfig& config,
                        const ShardFaultPlan* chaos = nullptr,
                        const CancelLatch* cancel = nullptr,
                        double deadline_s = 0.0);

/// One queued mission.
struct JobSpec {
  Scenario scenario;
  MissionConfig config;
  std::optional<ShardFaultPlan> chaos;  ///< fault-drill plan, if any.
  double deadline_s = 0.0;              ///< per-job wall-clock bound, 0 = none.
};

/// Concurrent mission front-end: a fixed worker pool draining a job
/// queue.  Jobs run one solve_mission each; results are retrieved (and
/// owned) through wait().  cancel() trips the job's latch — a running
/// job degrades its remaining tiles to empty, a queued one is marked
/// cancelled without starting.  shutdown_now() does that for every job
/// and discards the pool's pending queue.
class JobQueue {
 public:
  /// `workers` = concurrent missions (ThreadPool::resolve convention).
  explicit JobQueue(std::int32_t workers = 1);
  /// Drains remaining jobs (ThreadPool dtor semantics) — call
  /// shutdown_now() first for a fast exit.
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue a mission; returns its job id (dense, starting at 1).
  std::int64_t submit(JobSpec spec) UAVCOV_EXCLUDES(mu_);

  /// Blocks until job `job` finishes, then returns its result (moving it
  /// out — a second wait on the same id throws std::invalid_argument, as
  /// does an id never issued).  Rethrows the job's exception, if any.
  JobResult wait(std::int64_t job) UAVCOV_EXCLUDES(mu_);

  /// Trips the job's cancellation latch.  Returns false iff the job id is
  /// unknown or the job already finished.
  bool cancel(std::int64_t job) UAVCOV_EXCLUDES(mu_);

  /// Blocks until every submitted job has finished.
  void drain() UAVCOV_EXCLUDES(mu_);

  /// Cancels every unfinished job, discards queued-but-unstarted work
  /// (ThreadPool::discard_pending), and marks those entries finished as
  /// cancelled jobs with an empty result.  Running jobs still complete
  /// their current (cooperatively cancelled) mission.
  void shutdown_now() UAVCOV_EXCLUDES(mu_);

 private:
  struct Entry {
    explicit Entry(JobSpec s) : spec(std::move(s)) {}
    JobSpec spec;
    CancelLatch latch;
    bool started = false;
    bool finished = false;
    JobResult result;
    std::exception_ptr error;
  };

  ThreadPool pool_;
  sync::Mutex mu_;
  sync::CondVar done_;  // signaled on every job completion
  std::int64_t next_id_ UAVCOV_GUARDED_BY(mu_) = 1;
  std::int64_t unfinished_ UAVCOV_GUARDED_BY(mu_) = 0;
  std::map<std::int64_t, std::shared_ptr<Entry>> jobs_ UAVCOV_GUARDED_BY(mu_);
};

}  // namespace uavcov::service
