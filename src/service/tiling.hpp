// Spatial tiling for the sharded mission service (docs/SERVICE.md).
//
// The disaster area is split into a tiles_x × tiles_y grid of contiguous,
// grid-aligned *core* rectangles that partition the cells; every user
// belongs to exactly one tile (the one whose core rectangle contains the
// user's cell).  Each tile's solvable window is its core rectangle grown
// by `halo_cells` in every direction (clamped to the grid), so a tile's
// solver may hover UAVs just outside its core to reach border users and to
// give the stitcher overlap to reconcile.  The fleet is sliced
// deterministically across tiles in proportion to their user counts
// (D'Hondt seat allocation, then a capacity-descending deal), so the
// slices are disjoint and every populated tile gets at least one UAV.
#pragma once

#include <cstdint>
#include <vector>

#include "common/typed.hpp"
#include "core/scenario.hpp"

namespace uavcov::service {

struct TilingParams {
  std::int32_t tiles_x = 2;    ///< tile columns (>= 1, <= grid cols).
  std::int32_t tiles_y = 2;    ///< tile rows (>= 1, <= grid rows).
  std::int32_t halo_cells = 1; ///< window growth around the core (>= 0).

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

/// One spatial shard: core rectangle (the user-owning partition member),
/// halo window (the solvable sub-instance), and the dense local instance
/// with its id maps back to the mission scenario.
struct Tile {
  TileId id{0};
  // Core rectangle, half-open in parent grid coordinates.
  std::int32_t col0 = 0, row0 = 0, col1 = 0, row1 = 0;
  // Halo window (core grown by halo_cells, clamped), half-open.
  std::int32_t hcol0 = 0, hrow0 = 0, hcol1 = 0, hrow1 = 0;
  /// Sub-instance over the halo window; `restricted.users` / `.fleet` map
  /// local ids back to the parent.  Tiles with no users get no fleet and
  /// are never solved (TileStatus::kNoUsers).
  RestrictedScenario restricted;

  std::int32_t user_count() const {
    return static_cast<std::int32_t>(restricted.users.size());
  }
  std::int32_t uav_count() const {
    return static_cast<std::int32_t>(restricted.fleet.size());
  }
};

struct TilePlan {
  std::int32_t tiles_x = 0;
  std::int32_t tiles_y = 0;
  std::vector<Tile> tiles;  ///< row-major, index == TileId value.

  std::int32_t tile_count() const {
    return static_cast<std::int32_t>(tiles.size());
  }
  IdRange<TileId> tile_ids() const { return IdRange<TileId>{tile_count()}; }
};

/// Builds the tile plan.  Deterministic: the same (scenario, params) pair
/// yields an identical plan on every platform.  Requires the fleet to be
/// at least as large as the number of populated tiles (each needs a UAV to
/// be solvable); callers wanting coarser sharding lower tiles_x/tiles_y.
TilePlan make_tiling(const Scenario& scenario, const TilingParams& params);

}  // namespace uavcov::service
