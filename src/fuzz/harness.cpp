#include "fuzz/harness.hpp"

#include <array>
#include <sstream>
#include <string_view>
#include <type_traits>
#include <vector>

#include "analysis/audit.hpp"
#include "common/csv.hpp"
#include "core/appro_alg.hpp"
#include "core/assignment.hpp"
#include "core/exhaustive.hpp"
#include "core/segment_plan.hpp"
#include "core/solution.hpp"
#include "fuzz/oracle_matching.hpp"
#include "fuzz/scenario_decoder.hpp"
#include "fuzz/stream_decoder.hpp"
#include "io/serialize.hpp"
#include "resilience/impact.hpp"
#include "resilience/repair.hpp"
#include "service/service.hpp"
#include "stream/engine.hpp"

namespace uavcov::fuzz {

namespace {

void require(bool condition, const std::string& what) {
  if (!condition) throw FuzzFailure(what);
}

/// Decodes up to `max_deployments` deployments with pairwise-distinct UAVs
/// and locations.  Linear probing over the id spaces keeps the decode
/// total (never fails) and deterministic.
std::vector<Deployment> decode_deployments(ByteReader& r,
                                           const Scenario& scenario,
                                           std::int32_t max_deployments) {
  const std::int32_t m = scenario.grid.size();
  const std::int32_t K = scenario.uav_count();
  const auto want = static_cast<std::int32_t>(
      r.take_int(0, std::min({max_deployments, m, K})));
  std::vector<bool> uav_used(static_cast<std::size_t>(K), false);
  std::vector<bool> loc_used(static_cast<std::size_t>(m), false);
  std::vector<Deployment> deployments;
  for (std::int32_t i = 0; i < want; ++i) {
    auto k = static_cast<std::int32_t>(r.take_int(0, K - 1));
    while (uav_used[static_cast<std::size_t>(k)]) k = (k + 1) % K;
    auto loc = static_cast<std::int32_t>(r.take_int(0, m - 1));
    while (loc_used[static_cast<std::size_t>(loc)]) loc = (loc + 1) % m;
    uav_used[static_cast<std::size_t>(k)] = true;
    loc_used[static_cast<std::size_t>(loc)] = true;
    deployments.push_back({UavId{k}, LocationId{loc}});
  }
  return deployments;
}

/// Feasibility of an assignment vector against first-principles geometry:
/// every mapping in range, every served user eligible under its serving
/// UAV (range + rate via CoverageModel::is_eligible), every per-UAV load
/// within capacity, and the served count consistent.
void check_assignment_feasible(const Scenario& scenario,
                               const CoverageModel& coverage,
                               const std::vector<Deployment>& deployments,
                               const std::vector<std::int32_t>& assignment,
                               std::int64_t claimed_served,
                               const std::string& label) {
  require(assignment.size() == scenario.users.size(),
          label + ": assignment vector size mismatch");
  std::vector<std::int64_t> load(deployments.size(), 0);
  std::int64_t served = 0;
  for (std::size_t u = 0; u < assignment.size(); ++u) {
    const std::int32_t d = assignment[u];
    if (d == -1) continue;
    require(d >= 0 && static_cast<std::size_t>(d) < deployments.size(),
            label + ": assignment references unknown deployment");
    const Deployment& dep = deployments[static_cast<std::size_t>(d)];
    require(coverage.is_eligible(scenario, UserId{u}, dep.loc, dep.uav),
            label + ": served user " + std::to_string(u) +
                " ineligible under its UAV");
    ++load[static_cast<std::size_t>(d)];
    ++served;
  }
  for (std::size_t d = 0; d < deployments.size(); ++d) {
    const auto cap =
        scenario.fleet[deployments[d].uav].capacity;
    require(load[d] <= cap, label + ": deployment " + std::to_string(d) +
                                " over capacity");
  }
  require(served == claimed_served,
          label + ": served count inconsistent with assignment vector");
}

/// Everything except wall-clock must match bit-for-bit between the serial
/// and parallel seed-subset searches (DESIGN.md §7's determinism contract).
void check_solutions_identical(const Solution& a, const Solution& b) {
  require(a.algorithm == b.algorithm, "serial/parallel algorithm mismatch");
  require(a.served == b.served, "serial/parallel served mismatch");
  require(a.deployments == b.deployments,
          "serial/parallel deployments mismatch");
  require(a.user_to_deployment == b.user_to_deployment,
          "serial/parallel assignment mismatch");
}

template <typename T>
std::string serialized(const T& value, io::Format format) {
  std::ostringstream out;
  if constexpr (std::is_same_v<T, Scenario>) {
    io::save_scenario(out, value, format);
  } else {
    io::save_solution(out, value, format);
  }
  return out.str();
}

template <typename T>
std::string to_text(const T& value) {
  return serialized(value, io::Format::kText);
}

template <typename T>
std::string to_binary(const T& value) {
  return serialized(value, io::Format::kBinary);
}

}  // namespace

void run_assignment_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  ScenarioLimits limits;
  limits.max_cols = 4;
  limits.max_rows = 4;
  limits.max_users = 12;    // oracle tractability ceiling
  limits.max_uavs = 4;
  limits.max_capacity = 5;  // capacity state space stays tiny
  const Scenario scenario = decode_scenario(r, limits);
  const CoverageModel coverage(scenario);
  const std::vector<Deployment> deployments =
      decode_deployments(r, scenario, 4);

  const AssignmentResult flow_result =
      solve_assignment(scenario, coverage, deployments);
  const MatchingResult oracle =
      oracle_max_matching(make_matching_instance(scenario, coverage,
                                                 deployments));

  require(flow_result.served == oracle.served,
          "max-flow served " + std::to_string(flow_result.served) +
              " != oracle optimum " + std::to_string(oracle.served));
  check_assignment_feasible(scenario, coverage, deployments,
                            flow_result.user_to_deployment.raw(),
                            flow_result.served, "max-flow");
  check_assignment_feasible(scenario, coverage, deployments,
                            oracle.user_to_deployment, oracle.served,
                            "oracle witness");
}

void run_appro_alg_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  ScenarioLimits limits;
  limits.max_cols = 4;   // m <= 16 keeps the audited pipeline fast and the
  limits.max_rows = 4;   // exhaustive comparison reachable
  limits.max_users = 16;
  limits.max_uavs = 5;
  limits.max_capacity = 8;
  const Scenario scenario = decode_scenario(r, limits);
  const CoverageModel coverage(scenario);

  ApproAlgParams params;
  params.s = static_cast<std::int32_t>(
      r.take_int(1, std::min<std::int64_t>(3, scenario.uav_count())));
  params.candidate_cap = r.take_bool()
                             ? 0
                             : static_cast<std::int32_t>(r.take_int(1, 8));
  params.prune_seed_pairs = r.take_bool();
  params.lazy_greedy = r.take_bool();
  params.capacity_ascending = r.take_bool();
  params.fill_leftover_uavs = r.take_bool();
  params.max_seed_subsets = 200;  // bounded runtime on pathological inputs
  params.audit = true;            // every invariant auditor forced on

  params.threads = 1;
  ApproAlgStats serial_stats;
  const Solution serial = appro_alg(scenario, coverage, params, &serial_stats);

  params.threads = 4;
  ApproAlgStats parallel_stats;
  const Solution parallel =
      appro_alg(scenario, coverage, params, &parallel_stats);

  check_solutions_identical(serial, parallel);
  require(serial_stats.candidates == parallel_stats.candidates &&
              serial_stats.subsets_enumerated ==
                  parallel_stats.subsets_enumerated &&
              serial_stats.subsets_evaluated ==
                  parallel_stats.subsets_evaluated &&
              serial_stats.subsets_stitched ==
                  parallel_stats.subsets_stitched &&
              serial_stats.probes == parallel_stats.probes,
          "serial/parallel search counters diverge");

  validate_solution(scenario, coverage, serial);  // full §II-C feasibility
  // approAlg returns before Algorithm 1 when no location covers any user,
  // leaving stats.plan default-constructed; only audit a computed plan.
  if (serial_stats.plan.K > 0) {
    analysis::require_clean(analysis::audit_segment_plan(serial_stats.plan));
    require(serial_stats.plan.relay_bound <= scenario.uav_count(),
            "Lemma 2 relay bound exceeds K");
  } else {
    require(serial_stats.candidates == 0 && serial.served == 0,
            "plan missing despite candidate locations");
  }

  const std::int64_t ceiling =
      std::min<std::int64_t>(scenario.total_capacity(),
                             scenario.user_count());
  require(serial.served <= ceiling, "served exceeds capacity/user ceiling");

  // Tiny instances: the exhaustive optimum bounds approAlg from above.
  if (scenario.grid.size() <= 12 && scenario.uav_count() <= 3 &&
      scenario.user_count() <= 10) {
    const Solution optimum = exhaustive_optimal(scenario, coverage);
    validate_solution(scenario, coverage, optimum);
    require(serial.served <= optimum.served,
            "approAlg served " + std::to_string(serial.served) +
                " exceeds the exhaustive optimum " +
                std::to_string(optimum.served));
  }
}

void run_segment_plan_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const auto K = static_cast<std::int32_t>(r.take_int(1, 64));
  const auto s = static_cast<std::int32_t>(
      r.take_int(1, std::min<std::int64_t>(K, 8)));

  const SegmentPlan plan = compute_segment_plan(K, s);
  analysis::require_clean(analysis::audit_segment_plan(plan));
  require(plan.K == K && plan.s == s, "plan echoes wrong K/s");
  require(plan.L_max >= s, "L_max below the seed count");

  // The balanced-profile search must match the exhaustive composition
  // minimum (kept small: the brute force is exponential in L - s).
  if (plan.L_max - plan.s <= 14 && s <= 4) {
    require(plan.relay_bound == min_relay_bound_brute_force(s, plan.L_max),
            "balanced budget profile is not optimal");
  }

  // Theorem 1's ratio: defined for K >= 2 within its domain; a clean
  // ContractError outside the domain is correct, anything else is not.
  if (K >= 2) {
    try {
      const double ratio = theoretical_approximation_ratio(K, s);
      require(ratio > 0.0 && ratio <= 1.0 / 3.0,
              "approximation ratio outside (0, 1/3]");
    } catch (const ContractError&) {
      // Out-of-domain (K, s) — documented behavior.
    }
  }
}

void run_serialize_roundtrip_harness(const std::uint8_t* data,
                                     std::size_t size) {
  ByteReader r(data, size);
  if (r.take_bool()) {
    // Raw mode: arbitrary bytes through every parser.  Success or a
    // documented error type are both fine; UB, crashes, and unexpected
    // exception types are what the sanitizers + this catch list reject.
    const std::string text = r.take_rest_as_string();
    try {
      // load_scenario sniffs the magic, so raw bytes starting with
      // "UAVCBIN1" drive the binary parser (header/table/checksum
      // validation) and everything else drives the text parser.
      const Scenario scenario = io::load_scenario(std::string_view(text));
      // Anything that parsed must re-serialize to a fixed point, in both
      // formats.
      const std::string saved = to_text(scenario);
      require(to_text(io::load_scenario(std::string_view(saved))) == saved,
              "re-serialized scenario is not a fixed point");
      const std::string binary = to_binary(scenario);
      require(to_binary(io::load_scenario(std::string_view(binary))) ==
                  binary,
              "re-serialized binary scenario is not a fixed point");
    } catch (const ContractError&) {
    } catch (const std::invalid_argument&) {
    }
    try {
      std::istringstream in(text);
      (void)io::load_solution(in, /*user_count=*/16);
    } catch (const ContractError&) {
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)parse_csv_row(text);
    } catch (const std::invalid_argument&) {
    }
    return;
  }

  // Structured mode: a valid scenario/solution pair must round-trip to the
  // exact same bytes (the format writes max_digits10 floats).
  ScenarioLimits limits;
  const Scenario scenario = decode_scenario(r, limits);
  const std::string text = to_text(scenario);
  Scenario loaded = scenario;
  try {
    loaded = io::load_scenario(std::string_view(text));
  } catch (const ContractError& e) {
    throw FuzzFailure(std::string("saved scenario failed to load: ") +
                      e.what());
  }
  require(to_text(loaded) == text, "scenario round trip is not bit-exact");

  // Binary round trip: save→load→save must reproduce the exact bytes, and
  // a scenario that crossed text↔binary must keep its fingerprint (the
  // identity the regression suite pins).
  const std::string binary = to_binary(scenario);
  Scenario bin_loaded = scenario;
  try {
    bin_loaded = io::load_scenario(std::string_view(binary));
  } catch (const ContractError& e) {
    throw FuzzFailure(std::string("saved binary scenario failed to load: ") +
                      e.what());
  }
  require(to_binary(bin_loaded) == binary,
          "binary scenario round trip is not byte-exact");
  require(bin_loaded.fingerprint() == loaded.fingerprint(),
          "text/binary scenario fingerprints diverge");

  const CoverageModel coverage(scenario);
  const std::vector<Deployment> deployments =
      decode_deployments(r, scenario, 4);
  const AssignmentResult assignment =
      solve_assignment(scenario, coverage, deployments);
  Solution solution;
  solution.algorithm = "fuzz";
  solution.deployments = deployments;
  solution.user_to_deployment = assignment.user_to_deployment;
  solution.served = assignment.served;
  solution.solve_seconds = r.take_double(0.0, 100.0);
  const std::string sol_text = to_text(solution);
  const Solution sol_loaded =
      io::load_solution(std::string_view(sol_text), scenario.user_count());
  require(to_text(sol_loaded) == sol_text,
          "solution round trip is not bit-exact");
  require(sol_loaded.served == solution.served &&
              sol_loaded.deployments == solution.deployments &&
              sol_loaded.user_to_deployment == solution.user_to_deployment,
          "loaded solution differs from the saved one");
  const std::string sol_binary = to_binary(solution);
  const Solution sol_bin_loaded =
      io::load_solution(std::string_view(sol_binary), scenario.user_count());
  require(to_binary(sol_bin_loaded) == sol_binary,
          "binary solution round trip is not byte-exact");
  require(sol_bin_loaded.fingerprint() == sol_loaded.fingerprint(),
          "text/binary solution fingerprints diverge");

  // CSV quoting must invert through the parser for arbitrary cell bytes.
  const char palette[] = {'a', 'B', '7', ',', '"', '\n', '\r', ' '};
  std::vector<std::string> cells(
      static_cast<std::size_t>(r.take_int(1, 4)));
  for (std::string& cell : cells) {
    const std::int64_t len = r.take_int(0, 8);
    for (std::int64_t i = 0; i < len; ++i) cell.push_back(r.pick(palette));
  }
  std::string row;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) row += ',';
    row += CsvWriter::quote(cells[i]);
  }
  require(parse_csv_row(row) == cells, "CSV quote/parse not inverse");
}

void run_repair_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  ScenarioLimits limits;
  limits.max_cols = 4;   // small instances keep the audited repair loop
  limits.max_rows = 4;   // and the full re-solve escalations fast
  limits.max_users = 14;
  limits.max_uavs = 5;
  limits.max_capacity = 8;
  const Scenario scenario = decode_scenario(r, limits);
  const CoverageModel coverage(scenario);
  const std::int32_t K = scenario.uav_count();

  resilience::RepairPolicy policy;
  policy.local_repair_floor = r.take_double(0.05, 1.0);
  policy.escalate_on_gateway_loss = r.take_bool();
  policy.refine_rounds = static_cast<std::int32_t>(r.take_int(0, 2));
  policy.audit = true;  // deep-audit every emitted solution, mid-repair too
  policy.appro.s = static_cast<std::int32_t>(
      r.take_int(1, std::min<std::int64_t>(2, K)));
  policy.appro.max_seed_subsets = 50;
  policy.appro.audit = true;
  if (r.take_bool()) {
    // Sometimes bind the repair latency: the result may differ run to run
    // (wall clock), but must always stay feasible — that is the contract.
    policy.appro.time_budget_s = r.take_double(1e-4, 0.05);
  }

  resilience::RepairController controller(scenario, policy);
  const Solution initial = controller.deploy();
  const std::int64_t ceiling = std::min<std::int64_t>(
      scenario.total_capacity(), scenario.user_count());

  resilience::FaultPlan plan;  // accumulated for the impact analyzer
  const auto n_events = r.take_int(0, 4);
  double now_s = 0.0;
  for (std::int64_t i = 0; i < n_events; ++i) {
    now_s += r.take_double(0.0, 50.0);
    resilience::FaultEvent event;
    event.time_s = now_s;
    event.kind = static_cast<resilience::FaultKind>(r.take_int(0, 3));
    if (event.kind == resilience::FaultKind::kLinkDegrade) {
      event.range_scale = r.take_double(0.3, 1.0);
    } else {
      // May target an already-dead UAV — the no-op path must hold too.
      event.uav = static_cast<UavId>(r.take_int(0, K - 1));
    }
    plan.events.push_back(event);

    const resilience::RepairOutcome outcome = controller.on_fault(event);
    const Solution& current = controller.current();
    require(current.served == outcome.served_after,
            "outcome served_after disagrees with the standing solution");
    require(current.served >= 0 && current.served <= ceiling,
            "repaired served count outside [0, capacity ceiling]");
    if (!current.deployments.empty()) {
      // Feasible for the *original* instance: degradation only removed
      // UAVs and shrank ranges, so this must hold for every repair.
      validate_solution(scenario, coverage, current);
      for (const Deployment& d : current.deployments) {
        require(d.uav.valid() && d.uav.value() < K,
                "repaired deployment references an unknown UAV");
      }
    } else {
      require(current.served == 0, "empty network claims served users");
    }
  }

  // The impact analyzer reports the do-nothing baseline for the same plan;
  // it must run clean on anything the controller accepted.
  const resilience::ImpactReport impact =
      resilience::analyze_impact(scenario, initial, plan);
  require(impact.events.size() == plan.events.size(),
          "impact analyzer dropped events");
  for (const resilience::EventImpact& e : impact.events) {
    require(e.served_remaining >= 0 && e.served_remaining <= ceiling,
            "impact served_remaining outside [0, ceiling]");
    require(e.users_stranded >= 0, "negative stranded-user count");
  }
}

void run_stream_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  StreamCase c = decode_stream_case(r);
  try {
    c.scenario.validate();
    c.trace.validate(c.scenario.user_count());
  } catch (const ContractError&) {
    return;  // liveness-violating trace — clean rejection is correct.
  } catch (const std::invalid_argument&) {
    return;
  }

  stream::StreamPolicy policy;
  policy.served_floor = r.take_double(0.5, 1.0);
  policy.max_drift_fraction = r.take_double(0.1, 1.0);
  policy.appro.s = 2;
  policy.appro.max_seed_subsets = 50;
  policy.appro.threads = 1;
  policy.appro.audit = true;  // deep-audit every epoch, patched ones too.

  stream::StreamEngine engine(c.scenario, policy);
  stream::Ingest shadow(c.scenario);
  std::int64_t served_at_last_full = 0;
  for (const stream::Epoch& epoch : c.trace.epochs) {
    const stream::EpochResult res = engine.step(epoch);
    shadow.apply(epoch);
    const Scenario& materialized = shadow.scenario();
    require(res.scenario_fingerprint == materialized.fingerprint(),
            "stream: engine materialization diverged from the shadow "
            "ingest");
    require(engine.ingest().scenario().fingerprint() ==
                materialized.fingerprint(),
            "stream: engine ingest state diverged from the shadow ingest");

    const CoverageModel coverage(materialized);
    try {
      validate_solution(materialized, coverage, res.solution);
    } catch (const ContractError& err) {
      throw FuzzFailure(std::string("stream: standing solution infeasible "
                                    "for the materialized scenario: ") +
                        err.what());
    }
    if (materialized.user_count() == 0) {
      require(res.solution.served == 0,
              "stream: empty population claims served users");
      served_at_last_full = 0;
    } else if (res.full_solve) {
      const Solution fresh =
          stream::solve_snapshot(materialized, policy.appro);
      require(fresh.fingerprint() == res.solution.fingerprint() &&
                  fresh.served == res.solution.served,
              "stream: full-solve epoch differs from a from-scratch solve");
      served_at_last_full = res.solution.served;
    } else {
      require(res.served_at_last_full_solve == served_at_last_full,
              "stream: hysteresis reference served count drifted");
      require(!(static_cast<double>(res.solution.served) <
                policy.served_floor *
                    static_cast<double>(served_at_last_full)),
              "stream: kept patch below the hysteresis floor");
    }
  }
}

void run_service_harness(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  ScenarioLimits limits;
  limits.max_cols = 6;   // small instances keep the per-tile solves and
  limits.max_rows = 6;   // the deep stitched-solution audits fast
  limits.max_users = 16;
  limits.max_uavs = 6;
  limits.max_capacity = 8;
  const Scenario scenario = decode_scenario(r, limits);

  service::MissionConfig config;
  config.tiling.tiles_x = static_cast<std::int32_t>(
      r.take_int(1, std::min<std::int64_t>(3, scenario.grid.cols())));
  config.tiling.tiles_y = static_cast<std::int32_t>(
      r.take_int(1, std::min<std::int64_t>(3, scenario.grid.rows())));
  config.tiling.halo_cells = static_cast<std::int32_t>(r.take_int(0, 2));
  config.supervision.max_attempts =
      static_cast<std::int32_t>(r.take_int(1, 3));
  config.appro.s = static_cast<std::int32_t>(r.take_int(1, 2));
  config.appro.max_seed_subsets = 50;
  config.appro.threads = 1;
  config.threads = r.take_bool() ? 2 : 1;
  config.audit = true;  // deep §II-C + shard-partition audits every mission

  service::TilePlan plan;
  try {
    plan = service::make_tiling(scenario, config.tiling);
  } catch (const ContractError&) {
    return;  // untileable (e.g. fleet < populated tiles) — clean rejection.
  }

  service::ShardFaultConfig chaos_config;
  chaos_config.faults = static_cast<std::int32_t>(
      r.take_int(0, std::min<std::int64_t>(3, plan.tile_count())));
  chaos_config.max_poison_depth =
      static_cast<std::int32_t>(r.take_int(1, 5));
  chaos_config.include_unrecoverable = r.take_bool();
  const service::ShardFaultPlan chaos = service::make_shard_fault_plan(
      plan.tile_count(), chaos_config,
      static_cast<std::uint64_t>(r.take_int(0, 1 << 20)));

  const auto run = [&]() -> service::JobResult {
    try {
      return service::solve_mission(scenario, config, &chaos);
    } catch (const analysis::AuditError& e) {
      throw FuzzFailure(
          std::string("service: stitched mission failed the deep audits: ") +
          e.what());
    }
  };
  const service::JobResult result = run();

  const CoverageModel coverage(scenario);
  try {
    validate_solution(scenario, coverage, result.solution);
  } catch (const ContractError& e) {
    throw FuzzFailure(
        std::string("service: stitched solution infeasible for the parent "
                    "scenario: ") +
        e.what());
  }

  // Every injected shard failure recovered or named — never a clean
  // kSolved on a poisoned populated tile, never an unlisted loss.
  for (const service::ShardFault& fault : chaos.faults) {
    const service::TileStatus status =
        result.report.tiles[static_cast<std::size_t>(fault.tile.value())]
            .status;
    require(status != service::TileStatus::kSolved,
            "service: poisoned tile reported a clean first-try solve");
  }
  std::int64_t journaled = 0;
  for (const service::AttemptRecord& rec : result.attempts) {
    (void)rec;
    ++journaled;
  }
  require(journaled == result.stats.attempts,
          "service: attempt journal disagrees with the attempts counter");
  require(result.report.tiles.size() ==
              static_cast<std::size_t>(plan.tile_count()),
          "service: degradation report dropped tiles");

  // Bit-identical re-run: same scenario, config, and fault plan.
  const service::JobResult again = run();
  require(again.solution.fingerprint() == result.solution.fingerprint(),
          "service: mission re-run diverged");
  for (std::size_t t = 0; t < result.report.tiles.size(); ++t) {
    require(again.report.tiles[t].status == result.report.tiles[t].status,
            "service: tile status diverged across identical re-runs");
  }
}

std::span<const HarnessInfo> all_harnesses() {
  static constexpr std::array<HarnessInfo, 7> kHarnesses{{
      {"fuzz_assignment", &run_assignment_harness},
      {"fuzz_appro_alg", &run_appro_alg_harness},
      {"fuzz_segment_plan", &run_segment_plan_harness},
      {"fuzz_serialize_roundtrip", &run_serialize_roundtrip_harness},
      {"fuzz_repair", &run_repair_harness},
      {"fuzz_stream", &run_stream_harness},
      {"fuzz_service", &run_service_harness},
  }};
  return kHarnesses;
}

HarnessFn find_harness(const std::string& name) {
  for (const HarnessInfo& h : all_harnesses()) {
    if (name == h.name) return h.fn;
  }
  return nullptr;
}

}  // namespace uavcov::fuzz
