// The seven fuzzing harness bodies, shared verbatim by
//   * the libFuzzer entry points in src/fuzz/targets/ (-DUAVCOV_FUZZ=ON),
//   * the standalone replay driver (uavcov_fuzz_driver), and
//   * the deterministic ctest property tests (tests/fuzz_property_test.cpp,
//     tests/fuzz_corpus replay) that run on toolchains without libFuzzer.
//
// Each harness is *differential*, not just crash-hunting: it decodes a
// structured scenario from the byte stream and cross-checks an optimized
// component against an independent oracle.  A property violation throws
// FuzzFailure (which libFuzzer reports as a crash via std::terminate and
// gtest reports as a failed EXPECT); *expected* rejections of malformed
// input (ContractError / std::invalid_argument) are consumed internally —
// clean errors are correct behavior, UB and wrong answers are not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace uavcov::fuzz {

/// A differential property was violated (oracle disagreement, round-trip
/// mismatch, infeasible output).  Distinct from ContractError so harnesses
/// can tell "the library correctly rejected bad input" apart from "the
/// library is wrong".
class FuzzFailure : public std::runtime_error {
 public:
  explicit FuzzFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Dinic/incremental max-flow assignment vs the brute-force bipartite
/// matching oracle on instances with <= 12 users: equal cardinality, and
/// both witnesses feasible (eligibility re-derived from geometry, per-UAV
/// capacity respected).
void run_assignment_harness(const std::uint8_t* data, std::size_t size);

/// End-to-end approAlg with auditing forced on: serial (threads=1) vs
/// parallel (threads=4) Solution and stats equality, full §II-C
/// feasibility, Algorithm 1 plan audit, and — on tiny instances — the
/// exhaustive optimum as an upper bound.
void run_appro_alg_harness(const std::uint8_t* data, std::size_t size);

/// Algorithm 1: audit_segment_plan cleanliness, optimality of the balanced
/// budget search vs the exhaustive composition search on small L, and the
/// Theorem 1 ratio's domain behavior.
void run_segment_plan_harness(const std::uint8_t* data, std::size_t size);

/// Serialization: decode(encode(x)) == x bit-exactly for scenarios and
/// solutions, CSV quote/parse inversion, and — on raw byte inputs — parsers
/// must either succeed or throw a documented error type, never crash.
void run_serialize_roundtrip_harness(const std::uint8_t* data,
                                     std::size_t size);

/// Fault-tolerance (docs/RESILIENCE.md): decode a scenario plus a fault
/// plan, deploy, inject each event through the self-healing
/// RepairController with deep audits forced on, and require every emitted
/// solution to stay §II-C feasible for the original instance (connected,
/// capacities respected, no stranded assignment) — graceful degradation,
/// never an invalid network.  Also cross-checks the impact analyzer's
/// no-repair numbers against the repaired ones.
void run_repair_harness(const std::uint8_t* data, std::size_t size);

/// Streaming engine (docs/STREAMING.md): decode a scenario plus a churn
/// trace (audits forced on), run the StreamEngine epoch by epoch against a
/// shadow ingest, and require: identical materialized-scenario
/// fingerprints, §II-C feasibility of every standing solution, full-solve
/// epochs bit-identical to a from-scratch solve_snapshot of the
/// materialized scenario, and patched epochs at or above the hysteresis
/// floor.  Liveness-violating traces must be rejected cleanly by
/// ChurnTrace::validate before the engine ever runs.
void run_stream_harness(const std::uint8_t* data, std::size_t size);

/// Sharded mission service (docs/SERVICE.md): decode a scenario, a tiling,
/// and a seeded ShardFaultPlan; run the whole supervised mission with deep
/// audits forced on and require: the stitched solution §II-C feasible for
/// the parent scenario, every injected shard failure either recovered
/// (retry / fallback) or named in the DegradationReport — never silently
/// lost — journals consistent with the attempt counters, and the mission
/// bit-identical when re-run.  Untileable instances (fleet smaller than
/// the populated-tile count) must be rejected cleanly.
void run_service_harness(const std::uint8_t* data, std::size_t size);

using HarnessFn = void (*)(const std::uint8_t*, std::size_t);

struct HarnessInfo {
  const char* name;  ///< matches the libFuzzer target / corpus dir name.
  HarnessFn fn;
};

/// All seven harnesses, in a fixed order (drives the replay driver and the
/// corpus-replay ctest).
std::span<const HarnessInfo> all_harnesses();

/// Harness by libFuzzer-target name ("fuzz_assignment", ...); nullptr if
/// unknown.
HarnessFn find_harness(const std::string& name);

}  // namespace uavcov::fuzz
