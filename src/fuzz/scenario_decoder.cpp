#include "fuzz/scenario_decoder.hpp"

#include <algorithm>
#include <cmath>

namespace uavcov::fuzz {

namespace {

/// User placement patterns.  Uniform scatter finds little that the unit
/// tests don't; the named degenerate shapes are the point of the fuzzer.
enum class UserPattern : std::int32_t {
  kUniform = 0,
  kOnePoint,      // every user on one coordinate (max capacity contention)
  kCollinear,     // users on a line (Zhang & Duan's spiral worst cases)
  kClusters,      // a few tight clusters, possibly out of every UAV's reach
  kCellBorders,   // users snapped to cell boundaries (ties in locate())
  kCount,
};

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

Scenario decode_scenario(ByteReader& r, const ScenarioLimits& limits) {
  const std::int32_t cols = static_cast<std::int32_t>(
      r.take_int(1, limits.max_cols));
  const std::int32_t rows = static_cast<std::int32_t>(
      r.take_int(1, limits.max_rows));
  const double cell_options[] = {50.0, 100.0, 200.0, 300.0};
  const double cell = r.pick(cell_options);
  const double width = cols * cell;
  const double height = rows * cell;

  // R_uav relative to the cell side decides whether the candidate grid is
  // even connected: < 1.0 disconnects 4-neighbours, < sqrt(2) disconnects
  // diagonals — both regimes must be reachable.
  const double range_factors[] = {0.9, 1.0, 1.5, 2.1, 4.0};
  const double uav_range = r.pick(range_factors) * cell;

  Scenario scenario{
      .grid = Grid(width, height, cell),
      .altitude_m = r.take_double(50.0, 500.0),
      .uav_range_m = uav_range,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };

  // Fleet: capacities biased toward the extremes (capacity 1 is the
  // matching-theoretic hard case; the max exercises the Lemma 1 flow's
  // capacity edges) and up to two radio classes (heterogeneity).
  const std::int32_t uav_count =
      static_cast<std::int32_t>(r.take_int(1, limits.max_uavs));
  for (std::int32_t k = 0; k < uav_count; ++k) {
    UavSpec spec;
    switch (r.take_int(0, 3)) {
      case 0: spec.capacity = 1; break;
      case 1: spec.capacity = limits.max_capacity; break;
      default:
        spec.capacity = static_cast<std::int32_t>(
            r.take_int(1, limits.max_capacity));
        break;
    }
    const bool heavy = r.take_bool();
    spec.radio.tx_power_dbm = heavy ? 30.0 : 24.0;
    spec.radio.antenna_gain_dbi = heavy ? 5.0 : 3.0;
    // R_user <= R_uav is a model invariant (§II-B); tiny fractions give
    // UAVs that can hold the network together but cover almost nobody.
    const double user_fractions[] = {0.05, 0.5, 0.83, 1.0};
    spec.user_range_m = r.pick(user_fractions) * uav_range;
    scenario.fleet.push_back(spec);
  }

  const std::int32_t user_count =
      static_cast<std::int32_t>(r.take_int(0, limits.max_users));
  const auto pattern = static_cast<UserPattern>(
      r.take_int(0, static_cast<std::int64_t>(UserPattern::kCount) - 1));

  // Rate demands: the paper's 2 kbps, a trivially satisfiable floor, a
  // demanding-but-possible rate, and (when allowed) an unsatisfiable
  // extreme that makes users ineligible everywhere despite being in range.
  const double rate_options_feasible[] = {2e3, 1.0, 2e5};
  const double rate_options_extreme[] = {2e3, 1.0, 2e5, 1e15};

  const double anchor_x = r.take_unit() * width;
  const double anchor_y = r.take_unit() * height;
  const double dir_x = r.take_unit() * 2.0 - 1.0;
  const double dir_y = r.take_unit() * 2.0 - 1.0;

  for (std::int32_t i = 0; i < user_count; ++i) {
    User u;
    switch (pattern) {
      case UserPattern::kOnePoint:
        u.pos = {anchor_x, anchor_y};
        break;
      case UserPattern::kCollinear: {
        const double t = r.take_unit() * 2.0 - 0.5;  // may leave the area
        u.pos = {clamp(anchor_x + t * dir_x * width, 0.0, width),
                 clamp(anchor_y + t * dir_y * height, 0.0, height)};
        break;
      }
      case UserPattern::kClusters: {
        // Tight Gaussian-ish blobs around up to 3 anchors derived from the
        // stream; blob radius of a tenth of a cell keeps them degenerate.
        const double cx = (i % 3 == 0) ? anchor_x : r.take_unit() * width;
        const double cy = (i % 3 == 0) ? anchor_y : r.take_unit() * height;
        u.pos = {clamp(cx + (r.take_unit() - 0.5) * 0.2 * cell, 0.0, width),
                 clamp(cy + (r.take_unit() - 0.5) * 0.2 * cell, 0.0, height)};
        break;
      }
      case UserPattern::kCellBorders: {
        const double bx = std::round(r.take_unit() * cols) * cell;
        const double by = std::round(r.take_unit() * rows) * cell;
        u.pos = {clamp(bx, 0.0, width), clamp(by, 0.0, height)};
        break;
      }
      case UserPattern::kUniform:
      default:
        u.pos = {r.take_unit() * width, r.take_unit() * height};
        break;
    }
    u.min_rate_bps = limits.allow_infeasible_rates
                         ? r.pick(rate_options_extreme)
                         : r.pick(rate_options_feasible);
    scenario.users.push_back(u);
  }

  scenario.validate();  // decoder contract: every byte string decodes valid
  return scenario;
}

}  // namespace uavcov::fuzz
