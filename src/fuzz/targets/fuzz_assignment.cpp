// libFuzzer entry point: Dinic max-flow assignment vs the brute-force
// matching oracle.  Build with -DUAVCOV_FUZZ=ON (clang); see
// docs/STATIC_ANALYSIS.md.  A FuzzFailure escaping here reaches
// std::terminate, which libFuzzer reports as a crash with the input saved.
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_assignment_harness(data, size);
  return 0;
}
