// libFuzzer entry point: Algorithm 1 segment plans vs the exhaustive
// composition search and the plan auditor.  Build with -DUAVCOV_FUZZ=ON.
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_segment_plan_harness(data, size);
  return 0;
}
