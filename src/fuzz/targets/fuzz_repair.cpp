// libFuzzer entry point: fault injection → self-healing repair with deep
// audits forced on; every emitted solution must stay §II-C feasible.
// Build with -DUAVCOV_FUZZ=ON (clang).
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_repair_harness(data, size);
  return 0;
}
