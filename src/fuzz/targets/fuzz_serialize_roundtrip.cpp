// libFuzzer entry point: serialization round trips and raw-byte parser
// robustness (clean errors, never UB).  Build with -DUAVCOV_FUZZ=ON.
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_serialize_roundtrip_harness(data, size);
  return 0;
}
