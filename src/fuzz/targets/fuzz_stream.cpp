// libFuzzer entry point: churn trace → streaming engine with deep audits
// forced on; every standing solution must stay §II-C feasible and every
// full re-solve must match a from-scratch solve bit-for-bit.
// Build with -DUAVCOV_FUZZ=ON (clang).
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_stream_harness(data, size);
  return 0;
}
