// libFuzzer entry point: sharded mission service with seeded shard-fault
// injection and deep audits forced on; every injected failure must be
// recovered or named in the DegradationReport and the stitched solution
// must stay §II-C feasible.  Build with -DUAVCOV_FUZZ=ON (clang).
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_service_harness(data, size);
  return 0;
}
