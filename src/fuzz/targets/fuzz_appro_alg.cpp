// libFuzzer entry point: end-to-end approAlg under forced auditing —
// serial vs parallel equality plus the exhaustive optimum on tiny
// instances.  Build with -DUAVCOV_FUZZ=ON (clang).
#include "fuzz/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  uavcov::fuzz::run_appro_alg_harness(data, size);
  return 0;
}
