#include "fuzz/oracle_matching.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace uavcov::fuzz {

namespace {

/// Deduplicated, validated copy of a user's eligibility list.
std::vector<std::int32_t> clean_eligible(const std::vector<std::int32_t>& in,
                                         std::int32_t deployment_count) {
  std::vector<std::int32_t> out(in);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (const std::int32_t d : out) {
    UAVCOV_CHECK_MSG(d >= 0 && d < deployment_count,
                     "oracle: eligible deployment index out of range");
  }
  return out;
}

}  // namespace

MatchingResult oracle_max_matching(const MatchingInstance& instance) {
  const std::int32_t n = instance.user_count;
  const auto deployment_count =
      static_cast<std::int32_t>(instance.capacity.size());
  UAVCOV_CHECK_MSG(n >= 0 && n <= 16,
                   "oracle limited to 16 users (got " + std::to_string(n) +
                       ")");
  UAVCOV_CHECK_MSG(
      instance.eligible.size() == static_cast<std::size_t>(n),
      "oracle: eligibility list count must equal user_count");

  // Capacities above n can never bind; clipping them keeps the mixed-radix
  // state space tiny even for paper-scale capacities (C_k up to 300).
  std::vector<std::int32_t> cap(instance.capacity);
  for (std::int32_t& c : cap) {
    UAVCOV_CHECK_MSG(c >= 0, "oracle: negative capacity");
    c = std::min(c, n);
  }

  // Mixed-radix encoding: state = sum_d remaining_d * stride_d.
  std::vector<std::int64_t> stride(cap.size());
  std::int64_t states = 1;
  for (std::size_t d = 0; d < cap.size(); ++d) {
    stride[d] = states;
    states *= cap[d] + 1;
    UAVCOV_CHECK_MSG(states <= (std::int64_t{1} << 20),
                     "oracle: capacity state space too large");
  }
  UAVCOV_CHECK_MSG((n + 1) * states <= (std::int64_t{1} << 22),
                   "oracle: DP table too large");

  std::vector<std::vector<std::int32_t>> eligible;
  eligible.reserve(static_cast<std::size_t>(n));
  for (const auto& e : instance.eligible) {
    eligible.push_back(clean_eligible(e, deployment_count));
  }

  // dp[u][s] = max users servable among users u..n-1 with remaining
  // capacity state s.  Filled backwards; layer n is all zeros.
  std::vector<std::vector<std::int16_t>> dp(
      static_cast<std::size_t>(n) + 1,
      std::vector<std::int16_t>(static_cast<std::size_t>(states), 0));
  for (std::int32_t u = n - 1; u >= 0; --u) {
    const auto& next = dp[static_cast<std::size_t>(u) + 1];
    auto& cur = dp[static_cast<std::size_t>(u)];
    for (std::int64_t s = 0; s < states; ++s) {
      std::int16_t best = next[static_cast<std::size_t>(s)];  // u unserved
      for (const std::int32_t d : eligible[static_cast<std::size_t>(u)]) {
        const auto du = static_cast<std::size_t>(d);
        const std::int64_t rem = (s / stride[du]) % (cap[du] + 1);
        if (rem == 0) continue;
        const auto served_here = static_cast<std::int16_t>(
            1 + next[static_cast<std::size_t>(s - stride[du])]);
        best = std::max(best, served_here);
      }
      cur[static_cast<std::size_t>(s)] = best;
    }
  }

  // Witness walk from the full-capacity state, preferring "unassigned"
  // so the witness is deterministic.
  MatchingResult result;
  result.user_to_deployment.assign(static_cast<std::size_t>(n), -1);
  std::int64_t state = states - 1;  // all deployments at full (clipped) cap
  result.served = dp[0][static_cast<std::size_t>(state)];
  for (std::int32_t u = 0; u < n; ++u) {
    const auto& cur = dp[static_cast<std::size_t>(u)];
    const auto& next = dp[static_cast<std::size_t>(u) + 1];
    const std::int16_t want = cur[static_cast<std::size_t>(state)];
    if (next[static_cast<std::size_t>(state)] == want) continue;  // unserved
    bool placed = false;
    for (const std::int32_t d : eligible[static_cast<std::size_t>(u)]) {
      const auto du = static_cast<std::size_t>(d);
      const std::int64_t rem = (state / stride[du]) % (cap[du] + 1);
      if (rem == 0) continue;
      if (1 + next[static_cast<std::size_t>(state - stride[du])] == want) {
        result.user_to_deployment[static_cast<std::size_t>(u)] = d;
        state -= stride[du];
        placed = true;
        break;
      }
    }
    UAVCOV_CHECK_MSG(placed, "oracle: witness reconstruction failed");
  }
  return result;
}

MatchingInstance make_matching_instance(
    const Scenario& scenario, const CoverageModel& coverage,
    std::span<const Deployment> deployments) {
  MatchingInstance instance;
  instance.user_count = scenario.user_count();
  instance.eligible.assign(static_cast<std::size_t>(instance.user_count), {});
  for (std::size_t d = 0; d < deployments.size(); ++d) {
    const Deployment& dep = deployments[d];
    instance.capacity.push_back(scenario.fleet[dep.uav].capacity);
    const std::int32_t cls = coverage.radio_class_of(dep.uav);
    for (const UserId u : coverage.eligible_users(dep.loc, cls)) {
      instance.eligible[u.index()].push_back(static_cast<std::int32_t>(d));
    }
  }
  return instance;
}

}  // namespace uavcov::fuzz
