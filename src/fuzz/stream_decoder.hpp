// Byte-stream → (Scenario, ChurnTrace) decoder for the fuzz_stream harness.
//
// Structured like fuzz/scenario_decoder.hpp: bytes pick semantic features,
// so mutated inputs stay meaningful.  The trace shape is decoded FIRST
// with single-byte take_int draws (epoch count, per-event kind/uid/grid
// fractions), which makes corpus files hand-craftable; the scenario comes
// from decode_scenario on the remaining bytes (exhaustion yields the
// minimal default instance) and supplies only grid/fleet/channel — the
// population starts EMPTY and is built entirely by the trace's arrivals.
//
// The decoder intentionally produces a small share of liveness-violating
// traces (duplicate arrive, unknown depart/move) and out-of-area
// positions: the former must be rejected cleanly by ChurnTrace::validate,
// the latter clamped by stream::Ingest.
#pragma once

#include "core/scenario.hpp"
#include "fuzz/byte_reader.hpp"
#include "stream/churn.hpp"

namespace uavcov::fuzz {

struct StreamCase {
  Scenario scenario;  ///< users cleared; grid/fleet/channel only.
  stream::ChurnTrace trace;
};

/// Total function: every byte string decodes to a case whose scenario
/// passes Scenario::validate().  The trace may violate the liveness
/// discipline on purpose — callers route ChurnTrace::validate() failures
/// through the clean-rejection path.
StreamCase decode_stream_case(ByteReader& r);

}  // namespace uavcov::fuzz
