// Byte-stream → Scenario decoder for the fuzzing harnesses.
//
// The decoder is *structured*: rather than treating bytes as a serialized
// scenario (which mutation would almost always break at the parser), each
// byte range chooses a semantic feature — grid shape, user-cluster pattern,
// heterogeneous fleet specs, r_min / capacity extremes — so every input,
// however mangled, decodes to a Scenario that passes Scenario::validate()
// while still reaching the degenerate geometries that break naive coverage
// solvers: collinear users, all-users-on-one-point, capacity-1 fleets,
// users with unsatisfiable rate requirements, and candidate grids whose
// R_uav disconnects them from each other.
#pragma once

#include "core/scenario.hpp"
#include "fuzz/byte_reader.hpp"

namespace uavcov::fuzz {

/// Size ceilings for a decoded scenario.  Harnesses pick limits that keep
/// their oracle tractable (the brute-force matcher wants <= 12 users; the
/// exhaustive optimum wants <= 16 cells and <= 5 UAVs).
struct ScenarioLimits {
  std::int32_t max_cols = 6;
  std::int32_t max_rows = 6;
  std::int32_t max_users = 24;
  std::int32_t max_uavs = 6;
  std::int32_t max_capacity = 300;
  /// When true, user rate demands may be drawn from extremes that no link
  /// budget can satisfy (exercises the "eligible by range, rejected by
  /// rate" edge in the coverage model).
  bool allow_infeasible_rates = true;
};

/// Decodes a scenario from `r` under `limits`.  Total-function: every byte
/// string (including the empty one) yields a scenario that satisfies
/// Scenario::validate().
Scenario decode_scenario(ByteReader& r, const ScenarioLimits& limits);

}  // namespace uavcov::fuzz
