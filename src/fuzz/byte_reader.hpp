// Deterministic byte-stream consumer for the fuzzing harnesses
// (docs/STATIC_ANALYSIS.md, "Fuzzing & differential oracles").
//
// Every structured value a harness needs — grid dimensions, user cluster
// shapes, fleet specs, r_min/capacity extremes — is derived from the input
// bytes and nothing else: no wall clock, no global RNG, no address-dependent
// state.  Identical bytes therefore decode to identical scenarios on every
// platform, which is what makes corpus files replayable as plain ctest
// property tests and libFuzzer mutations meaningful.
//
// Exhaustion policy (the libFuzzer convention): once the stream runs out,
// every read returns the lower bound of its range instead of failing.  A
// truncated input is a *smaller* test case, never an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace uavcov::fuzz {

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(data == nullptr ? 0 : size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

  /// Next byte, or 0 once exhausted.
  std::uint8_t take_u8() { return exhausted() ? 0 : data_[pos_++]; }

  /// Little-endian accumulation of `n` bytes (n <= 8).
  std::uint64_t take_bytes(int n) {
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(take_u8()) << (8 * i);
    }
    return v;
  }

  bool take_bool() { return (take_u8() & 1) != 0; }

  /// Uniform-ish integer in [lo, hi] (inclusive).  Consumes only as many
  /// bytes as the range needs, so small ranges keep inputs short and
  /// mutation-friendly.  Returns `lo` when exhausted or lo >= hi.
  std::int64_t take_int(std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return lo;
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    int bytes = 1;
    // Bytes needed so 256^bytes >= range (range == 0 means the full 2^64
    // span, which needs all 8).
    if (range == 0) {
      bytes = 8;
    } else {
      std::uint64_t span = 256;
      while (bytes < 8 && span < range) {
        span *= 256;
        ++bytes;
      }
    }
    const std::uint64_t raw = take_bytes(bytes);
    const std::uint64_t folded = (range == 0) ? raw : raw % range;
    return lo + static_cast<std::int64_t>(folded);
  }

  /// Double in [0, 1] with 16 bits of resolution (plenty for geometry; a
  /// coarse lattice makes interesting collisions — collinear users, users
  /// exactly on cell borders — *likely* rather than measure-zero).
  double take_unit() {
    return static_cast<double>(take_bytes(2)) / 65535.0;
  }

  double take_double(double lo, double hi) {
    return lo + (hi - lo) * take_unit();
  }

  /// One element of a fixed list (by reference to avoid copies).
  template <typename T, std::size_t N>
  const T& pick(const T (&options)[N]) {
    return options[static_cast<std::size_t>(take_int(0, N - 1))];
  }

  /// Remaining bytes as text (for harnesses that parse raw input).
  std::string take_rest_as_string() {
    if (exhausted()) return {};
    std::string s(reinterpret_cast<const char*>(data_) + pos_, remaining());
    pos_ = size_;
    return s;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace uavcov::fuzz
