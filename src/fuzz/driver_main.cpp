// Standalone replay driver: runs corpus files (or libFuzzer crash
// artifacts) through a harness body without libFuzzer, so crashes can be
// reproduced and bisected on any toolchain — including the GCC-only
// containers where -fsanitize=fuzzer is unavailable.
//
//   uavcov_fuzz_driver <target> <file-or-dir>...   replay through <target>
//   uavcov_fuzz_driver --list                      print harness names
//
// Directories are expanded to their regular files (sorted, one level), so
// a whole corpus directory replays with one argument.  Exit status: 0 iff
// every file ran clean.  A FuzzFailure (oracle disagreement) or unexpected
// exception prints the offending file and the message — the same signal a
// libFuzzer crash gives, minus the fuzzing.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = in.good();
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::vector<std::string> expand_inputs(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::error_code ec;
    if (std::filesystem::is_directory(args[i], ec)) {
      std::vector<std::string> in_dir;
      for (const auto& entry : std::filesystem::directory_iterator(args[i])) {
        if (entry.is_regular_file()) in_dir.push_back(entry.path().string());
      }
      std::sort(in_dir.begin(), in_dir.end());
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else {
      files.push_back(args[i]);
    }
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "--list") {
    for (const auto& h : uavcov::fuzz::all_harnesses()) {
      std::cout << h.name << '\n';
    }
    return 0;
  }
  if (args.size() < 2) {
    std::cerr << "usage: uavcov_fuzz_driver <target> <file-or-dir>...\n"
                 "       uavcov_fuzz_driver --list\n";
    return 2;
  }
  const uavcov::fuzz::HarnessFn harness = uavcov::fuzz::find_harness(args[0]);
  if (harness == nullptr) {
    std::cerr << "unknown target '" << args[0] << "' (try --list)\n";
    return 2;
  }
  const std::vector<std::string> files = expand_inputs(args);
  if (files.empty()) {
    std::cerr << "no input files\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& file : files) {
    bool ok = false;
    const std::vector<std::uint8_t> bytes = read_file(file, ok);
    if (!ok) {
      std::cerr << file << ": cannot read\n";
      ++failures;
      continue;
    }
    try {
      harness(bytes.data(), bytes.size());
      std::cout << file << ": ok (" << bytes.size() << " bytes)\n";
    } catch (const std::exception& e) {
      std::cerr << file << ": FAILED: " << e.what() << '\n';
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
