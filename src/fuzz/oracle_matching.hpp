// Brute-force optimal bipartite b-matching oracle — the independent ground
// truth the assignment fuzzer cross-checks the Dinic/incremental max-flow
// pipeline against (§II-D, Lemma 1).
//
// The oracle shares *no* code with src/flow: it is an exact dynamic program
// over (user index, remaining-capacity state), where the capacity state is
// a mixed-radix encoding of every deployment's remaining slots.  That keeps
// it obviously-correct and exponential only in the capacity profile, which
// the fuzzer bounds to tiny instances (<= 12 users, state space <= 2^20).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov::fuzz {

/// A capacitated bipartite matching instance, decoupled from Scenario so
/// the oracle can also be unit-tested against hand-computed optima.
struct MatchingInstance {
  std::int32_t user_count = 0;
  /// Remaining service slots per deployment (>= 0).
  std::vector<std::int32_t> capacity;
  /// eligible[u] = deployment indices that may serve user u (any order,
  /// duplicates ignored).
  std::vector<std::vector<std::int32_t>> eligible;
};

struct MatchingResult {
  std::int64_t served = 0;
  /// Per user: serving deployment index or -1 — a witness assignment that
  /// attains `served` (feasible w.r.t. capacities and eligibility).
  std::vector<std::int32_t> user_to_deployment;
};

/// Exact maximum: the largest number of users simultaneously assignable to
/// eligible deployments without exceeding any capacity.  Preconditions
/// (checked): user_count <= 16 and the product of (capacity_d + 1), with
/// capacities clipped to user_count, is <= 2^20.
MatchingResult oracle_max_matching(const MatchingInstance& instance);

/// Builds the instance induced by `deployments` on a scenario: user u is
/// eligible for deployment d iff the coverage model lists u at d's location
/// under d's UAV radio class.  Capacities come from the fleet spec.
MatchingInstance make_matching_instance(
    const Scenario& scenario, const CoverageModel& coverage,
    std::span<const Deployment> deployments);

}  // namespace uavcov::fuzz
