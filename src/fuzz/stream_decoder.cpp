#include "fuzz/stream_decoder.hpp"

#include <vector>

#include "fuzz/scenario_decoder.hpp"

namespace uavcov::fuzz {

namespace {

using stream::ChurnEvent;
using stream::ChurnKind;
using stream::Epoch;

/// Event with grid-relative coordinates: the scenario (and thus the area)
/// is decoded after the trace shape, so positions are held as fractions
/// and mapped once the grid dimensions are known.
struct ProtoEvent {
  ChurnKind kind = ChurnKind::kArrive;
  std::int64_t uid = 0;
  double fx = 0.0;
  double fy = 0.0;
  double min_rate_bps = 2e3;
};

/// Stretch a [0, 1] fraction past the area on both sides: ~17% of decoded
/// positions land outside [0, dim] and must be clamped by the ingest.
double stretch(double fraction, double dim) {
  return (fraction * 1.2 - 0.1) * dim;
}

}  // namespace

StreamCase decode_stream_case(ByteReader& r) {
  // Rates an arrival may demand: the nominal 2 kbps, an easy 1 kbps, an
  // often-unsatisfiable 50 kbps, and a trivial 100 bps.
  static constexpr double kRates[] = {2e3, 1e3, 5e4, 1e2};

  const std::int64_t epoch_count = r.take_int(0, 4);
  std::vector<std::vector<ProtoEvent>> epochs(
      static_cast<std::size_t>(epoch_count));
  std::vector<std::int64_t> live;  // decoder's own liveness model.
  std::int64_t next_uid = 0;
  for (auto& epoch : epochs) {
    const std::int64_t events = r.take_int(0, 5);
    for (std::int64_t i = 0; i < events; ++i) {
      ProtoEvent ev;
      const std::int64_t kind = r.take_int(0, 2);
      const std::int64_t misuse = r.take_int(0, 7);
      if (kind == 0) {
        ev.kind = ChurnKind::kArrive;
        // misuse == 0 replays a live uid — an invalid trace the harness
        // must see ChurnTrace::validate reject cleanly.
        ev.uid = (misuse == 0 && !live.empty()) ? live.front() : next_uid;
        ev.fx = static_cast<double>(r.take_int(0, 255)) / 255.0;
        ev.fy = static_cast<double>(r.take_int(0, 255)) / 255.0;
        ev.min_rate_bps = kRates[static_cast<std::size_t>(r.take_int(0, 3))];
        if (ev.uid == next_uid) {
          live.push_back(next_uid++);
        }
      } else if (kind == 1) {
        ev.kind = ChurnKind::kDepart;
        if (misuse == 0 || live.empty()) {
          ev.uid = next_uid + 7;  // unknown uid → invalid trace.
        } else {
          const std::size_t idx = static_cast<std::size_t>(
              r.take_int(0, static_cast<std::int64_t>(live.size()) - 1));
          ev.uid = live[idx];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      } else {
        ev.kind = ChurnKind::kMove;
        if (misuse == 0 || live.empty()) {
          ev.uid = next_uid + 7;  // unknown uid → invalid trace.
        } else {
          const std::size_t idx = static_cast<std::size_t>(
              r.take_int(0, static_cast<std::int64_t>(live.size()) - 1));
          ev.uid = live[idx];
        }
        ev.fx = static_cast<double>(r.take_int(0, 255)) / 255.0;
        ev.fy = static_cast<double>(r.take_int(0, 255)) / 255.0;
      }
      epoch.push_back(ev);
    }
  }

  // Small instances keep the per-epoch cross-checks (fresh approAlg solves
  // under audit) tractable.
  ScenarioLimits limits;
  limits.max_users = 0;  // population comes from the trace alone.
  StreamCase out{decode_scenario(r, limits), {}};
  out.scenario.users.clear();

  const double width = out.scenario.grid.width();
  const double height = out.scenario.grid.height();
  out.trace.epochs.resize(epochs.size());
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    Epoch& epoch = out.trace.epochs[e];
    epoch.events.reserve(epochs[e].size());
    for (const ProtoEvent& p : epochs[e]) {
      ChurnEvent ev;
      ev.kind = p.kind;
      ev.uid = p.uid;
      ev.pos = {stretch(p.fx, width), stretch(p.fy, height)};
      ev.min_rate_bps = p.min_rate_bps;
      if (ev.kind == ChurnKind::kDepart) {
        ev.pos = {};
        ev.min_rate_bps = 0.0;
      }
      if (ev.kind == ChurnKind::kMove) ev.min_rate_bps = 0.0;
      epoch.events.push_back(ev);
    }
  }
  return out;
}

}  // namespace uavcov::fuzz
