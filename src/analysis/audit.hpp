// Runtime invariant-audit subsystem.
//
// The approAlg pipeline's O(sqrt(s/K)) guarantee rests on invariants that
// the solver maintains implicitly: the Dinic assignment is an integral
// maximum flow (§II-D), M1/M2 really are matroids so the 1/(ρ+1) greedy
// bound applies (§III-B/C), the deployed solution satisfies every §II-C
// constraint, and the Algorithm 1 plan keeps the relay bound g(L, p) ≤ K
// (Lemma 2 / Eq. 2) with Eq. 1-consistent hop quotas.  The auditors here
// re-derive each invariant from first principles — independent code paths
// from the ones being checked — and return a structured AuditReport
// instead of throwing on first failure, so a violation names *everything*
// that is wrong.
//
// Activation: auditing is off by default (the deep checks are O(V·E) per
// greedy round).  Turn it on per run with `ApproAlgParams::audit = true`
// or process-wide with the environment variable `UAVCOV_AUDIT=1`
// (read once, cached).  appro_alg, the baselines' finalize(), and the
// netsim entry point all consult the flag; on violation they throw
// AuditError carrying the full report.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/assignment.hpp"
#include "core/coverage.hpp"
#include "core/matroid.hpp"
#include "core/scenario.hpp"
#include "core/segment_plan.hpp"
#include "core/solution.hpp"
#include "flow/dinic.hpp"

namespace uavcov::analysis {

/// What kind of invariant broke.  Grouped by auditor; to_string gives the
/// stable textual name used in reports and tests.
enum class ViolationCode : std::int32_t {
  // audit_flow
  kFlowNegativeResidual,      ///< some residual capacity went below zero.
  kFlowCapacityExceeded,      ///< flow on an edge exceeds its capacity.
  kFlowPairInconsistent,      ///< forward/twin residuals don't sum to cap.
  kFlowNotConserved,          ///< node in-flow != out-flow (non-terminal).
  kFlowNotIntegral,           ///< unit edge carries flow outside {0, 1}.
  kFlowNotMaximum,            ///< an s→t augmenting path still exists.
  kFlowValueMismatch,         ///< source out-flow != reported served count.
  // audit_matroids
  kMatroidUavOutOfRange,      ///< deployment uses an unknown UAV id.
  kMatroidUavReused,          ///< M1: one UAV deployed twice.
  kMatroidHopOverflow,        ///< M2: chosen location beyond h_max hops.
  kMatroidQuotaExceeded,      ///< M2: |{chosen : d >= h}| > Q_h.
  kMatroidNotHereditary,      ///< sampled subset of chosen set dependent.
  kMatroidNoExchange,         ///< exchange axiom failed on sampled pair.
  // audit_solution
  kSolutionTooManyUavs,       ///< more deployments than fleet members.
  kSolutionUnknownUav,        ///< deployment references UAV outside fleet.
  kSolutionUnknownLocation,   ///< deployment references off-grid cell.
  kSolutionUavReused,         ///< same UAV at two locations.
  kSolutionCellShared,        ///< two UAVs on one grid cell.
  kSolutionDisconnected,      ///< UAV network not connected under R_uav.
  kSolutionBadAssignment,     ///< user maps to an out-of-range deployment.
  kSolutionIneligibleUser,    ///< served user outside R_user^k or < r_min.
  kSolutionOverCapacity,      ///< UAV load exceeds C_k.
  kSolutionServedMismatch,    ///< `served` != assigned-user count.
  // audit_segment_plan
  kPlanBadShape,              ///< p/quotas sizes inconsistent with s/h_max.
  kPlanBudgetSumMismatch,     ///< Σ p_i != L_max − s.
  kPlanRelayBoundMismatch,    ///< stored bound != recomputed g(L, p).
  kPlanRelayBoundExceedsK,    ///< g(L_max, p) > K (Lemma 2 violated).
  kPlanHopLimitMismatch,      ///< stored h_max != recomputed hop limit.
  kPlanQuotaMismatch,         ///< stored quotas != Eq. 1 recomputation.
  kPlanQuotaNotMonotone,      ///< Q_h increases with h (laminar order broken).
  // audit_shard_partition (docs/SERVICE.md)
  kShardUserUnassigned,       ///< user owned by no tile or an invalid one.
  kShardUavReused,            ///< one UAV sliced into two tile fleets.
  kShardShapeMismatch,        ///< map sizes disagree with the scenario.
};

const char* to_string(ViolationCode code);

/// One broken invariant: the code plus a human-readable description with
/// the offending ids/values.
struct Violation {
  ViolationCode code;
  std::string detail;
};

/// Result of one auditor (or several merged): every violation found, plus
/// how many individual invariant checks ran (so tests can assert the audit
/// actually exercised something).
struct AuditReport {
  std::string subject;                ///< e.g. "audit_flow".
  std::vector<Violation> violations;
  std::int64_t checks = 0;            ///< invariants evaluated.

  bool ok() const { return violations.empty(); }
  bool has(ViolationCode code) const;
  void add(ViolationCode code, std::string detail);
  /// Append `other`'s violations and check count onto this report.
  void merge(const AuditReport& other);
  /// Multi-line description: subject, check count, one line per violation.
  std::string to_string() const;
};

/// Raised by require_clean: a ContractError whose message is the full
/// report, with the structured report attached for programmatic handling.
class AuditError : public ContractError {
 public:
  explicit AuditError(AuditReport report);
  const AuditReport& report() const { return report_; }

 private:
  AuditReport report_;
};

/// Throws AuditError iff `report` holds at least one violation.
void require_clean(const AuditReport& report);

/// Process-wide audit switch: true iff the environment variable
/// `UAVCOV_AUDIT` is set to anything but "" or "0".  Read once and cached.
bool audit_env_enabled();

/// Deep max-flow audit of §II-D's assignment network:
///   * residuals nonnegative, forward/twin pairs sum to the capacity;
///   * per-edge flow within [0, capacity], unit edges integral in {0, 1};
///   * flow conservation at every node except `source`/`sink`;
///   * maximality — no augmenting path left in the residual graph
///     (certifies optimality of the Dinic result by max-flow/min-cut);
///   * if `expected_value >= 0`, source out-flow equals it.
[[nodiscard]] AuditReport audit_flow(const DinicFlow& flow, DinicFlow::FlowNode source,
                       DinicFlow::FlowNode sink,
                       std::int64_t expected_value = -1);

/// audit_flow on a live IncrementalAssignment, expecting its served count.
[[nodiscard]] AuditReport audit_assignment_flow(const IncrementalAssignment& ia);

/// Matroid audit for one greedy state:
///   * M1 (partition): `deployments` uses each UAV of [0, uav_count) at
///     most once;
///   * M2 (laminar): `chosen` is independent — every location within
///     h_max hops of the seed set and every level-set count within its
///     quota Q_h — via the stateless oracle, independently of the
///     matroid's maintained counters;
///   * hereditary + exchange axioms spot-checked on `sample_rounds`
///     deterministically sampled subset pairs of `chosen`.
[[nodiscard]] AuditReport audit_matroids(const HopBudgetMatroid& m2,
                           std::span<const LocationId> chosen,
                           std::span<const Deployment> deployments,
                           std::int32_t uav_count,
                           std::int32_t sample_rounds = 32,
                           std::uint64_t sample_seed = 0x5eedu);

/// Full §II-C feasibility audit of a finished solution: ids in range, each
/// UAV/cell used once, every served user eligible (inside R_user^k at rate
/// ≥ r_min) under its serving UAV, per-UAV load ≤ C_k, the UAV network
/// connected under R_uav, and the served count consistent.  The
/// report-collecting counterpart of validate_solution().
[[nodiscard]] AuditReport audit_solution(const Scenario& scenario,
                           const CoverageModel& coverage,
                           const Solution& solution);

/// Algorithm 1 output audit: budgets well-shaped and summing to L_max − s,
/// the stored relay bound equal to a recomputed g(L_max, p) (Eq. 2) and
/// ≤ K (Lemma 2), h_max equal to the recomputed hop limit, and the quota
/// vector equal to an Eq. 1 recomputation, monotone nonincreasing, with
/// Q_0 = L_max.
[[nodiscard]] AuditReport audit_segment_plan(const SegmentPlan& plan);

/// Sharded-mission partition audit (docs/SERVICE.md): the stitcher's
/// correctness rests on the tiling being a true partition — every user
/// owned by exactly one tile and every UAV sliced into at most one tile
/// fleet.  Expressed over plain ownership maps (`tile_of_user[u]` /
/// `tile_of_uav[k]`, -1 = unassigned; UAVs may be unassigned, users may
/// not) so the auditor stays independent of the service layer's types.
[[nodiscard]] AuditReport audit_shard_partition(
    const Scenario& scenario, std::span<const std::int32_t> tile_of_user,
    std::span<const std::int32_t> tile_of_uav, std::int32_t tile_count);

}  // namespace uavcov::analysis
