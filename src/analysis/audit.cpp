#include "analysis/audit.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <queue>
#include <sstream>
#include <string_view>

#include "common/rng.hpp"
#include "graph/bfs.hpp"

namespace uavcov::analysis {

const char* to_string(ViolationCode code) {
  switch (code) {
    case ViolationCode::kFlowNegativeResidual: return "flow.negative_residual";
    case ViolationCode::kFlowCapacityExceeded: return "flow.capacity_exceeded";
    case ViolationCode::kFlowPairInconsistent: return "flow.pair_inconsistent";
    case ViolationCode::kFlowNotConserved: return "flow.not_conserved";
    case ViolationCode::kFlowNotIntegral: return "flow.not_integral";
    case ViolationCode::kFlowNotMaximum: return "flow.not_maximum";
    case ViolationCode::kFlowValueMismatch: return "flow.value_mismatch";
    case ViolationCode::kMatroidUavOutOfRange:
      return "matroid.uav_out_of_range";
    case ViolationCode::kMatroidUavReused: return "matroid.uav_reused";
    case ViolationCode::kMatroidHopOverflow: return "matroid.hop_overflow";
    case ViolationCode::kMatroidQuotaExceeded:
      return "matroid.quota_exceeded";
    case ViolationCode::kMatroidNotHereditary:
      return "matroid.not_hereditary";
    case ViolationCode::kMatroidNoExchange: return "matroid.no_exchange";
    case ViolationCode::kSolutionTooManyUavs:
      return "solution.too_many_uavs";
    case ViolationCode::kSolutionUnknownUav: return "solution.unknown_uav";
    case ViolationCode::kSolutionUnknownLocation:
      return "solution.unknown_location";
    case ViolationCode::kSolutionUavReused: return "solution.uav_reused";
    case ViolationCode::kSolutionCellShared: return "solution.cell_shared";
    case ViolationCode::kSolutionDisconnected:
      return "solution.disconnected";
    case ViolationCode::kSolutionBadAssignment:
      return "solution.bad_assignment";
    case ViolationCode::kSolutionIneligibleUser:
      return "solution.ineligible_user";
    case ViolationCode::kSolutionOverCapacity:
      return "solution.over_capacity";
    case ViolationCode::kSolutionServedMismatch:
      return "solution.served_mismatch";
    case ViolationCode::kPlanBadShape: return "plan.bad_shape";
    case ViolationCode::kPlanBudgetSumMismatch:
      return "plan.budget_sum_mismatch";
    case ViolationCode::kPlanRelayBoundMismatch:
      return "plan.relay_bound_mismatch";
    case ViolationCode::kPlanRelayBoundExceedsK:
      return "plan.relay_bound_exceeds_k";
    case ViolationCode::kPlanHopLimitMismatch:
      return "plan.hop_limit_mismatch";
    case ViolationCode::kPlanQuotaMismatch: return "plan.quota_mismatch";
    case ViolationCode::kPlanQuotaNotMonotone:
      return "plan.quota_not_monotone";
    case ViolationCode::kShardUserUnassigned:
      return "shard.user_unassigned";
    case ViolationCode::kShardUavReused: return "shard.uav_reused";
    case ViolationCode::kShardShapeMismatch:
      return "shard.shape_mismatch";
  }
  return "unknown";
}

bool AuditReport::has(ViolationCode code) const {
  return std::any_of(violations.begin(), violations.end(),
                     [code](const Violation& v) { return v.code == code; });
}

void AuditReport::add(ViolationCode code, std::string detail) {
  violations.push_back({code, std::move(detail)});
}

void AuditReport::merge(const AuditReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  checks += other.checks;
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "[" << subject << "] " << checks << " checks, "
     << violations.size() << " violation(s)";
  for (const Violation& v : violations) {
    os << "\n  " << analysis::to_string(v.code) << ": " << v.detail;
  }
  return os.str();
}

AuditError::AuditError(AuditReport report)
    : ContractError("invariant audit failed: " + report.to_string()),
      report_(std::move(report)) {}

void require_clean(const AuditReport& report) {
  if (!report.ok()) throw AuditError(report);
}

bool audit_env_enabled() {
  static const bool enabled = [] {
    // getenv is mt-unsafe only against concurrent setenv; nothing in this
    // process mutates the environment, and the magic-static initializer
    // makes the read once-only anyway.
    const char* v = std::getenv("UAVCOV_AUDIT");  // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return enabled;
}

AuditReport audit_flow(const DinicFlow& flow, DinicFlow::FlowNode source,
                       DinicFlow::FlowNode sink,
                       std::int64_t expected_value) {
  AuditReport report;
  report.subject = "audit_flow";
  const std::int32_t nodes = flow.node_count();
  const std::int32_t edges = flow.edge_count();

  // Residual adjacency rebuilt from scratch — the auditor does not trust
  // (or touch) DinicFlow's internal linked lists.
  std::vector<std::vector<std::pair<DinicFlow::FlowNode, std::int64_t>>>
      residual(static_cast<std::size_t>(nodes));
  std::vector<std::int64_t> net(static_cast<std::size_t>(nodes), 0);

  for (DinicFlow::EdgeId e = 0; e < edges; e += 2) {
    const auto [u, v] = flow.edge_endpoints(e);
    const std::int64_t cap = flow.edge_capacity(e);
    const std::int64_t twin_cap = flow.edge_capacity(e ^ 1);
    const std::int64_t res = flow.edge_residual(e);
    const std::int64_t twin_res = flow.edge_residual(e ^ 1);
    ++report.checks;
    if (res < 0 || twin_res < 0) {
      report.add(ViolationCode::kFlowNegativeResidual,
                 "edge " + std::to_string(e) + " residuals " +
                     std::to_string(res) + "/" + std::to_string(twin_res));
    }
    ++report.checks;
    if (res + twin_res != cap + twin_cap) {
      report.add(ViolationCode::kFlowPairInconsistent,
                 "edge " + std::to_string(e) + ": residual sum " +
                     std::to_string(res + twin_res) + " != capacity sum " +
                     std::to_string(cap + twin_cap));
    }
    const std::int64_t f = cap - res;
    ++report.checks;
    if (f < 0 || f > cap) {
      report.add(ViolationCode::kFlowCapacityExceeded,
                 "edge " + std::to_string(e) + " (" + std::to_string(u) +
                     "->" + std::to_string(v) + "): flow " +
                     std::to_string(f) + " outside [0, " +
                     std::to_string(cap) + "]");
    }
    ++report.checks;
    if (cap == 1 && f != 0 && f != 1) {
      report.add(ViolationCode::kFlowNotIntegral,
                 "unit edge " + std::to_string(e) + " carries flow " +
                     std::to_string(f));
    }
    net[static_cast<std::size_t>(u)] -= f;
    net[static_cast<std::size_t>(v)] += f;
    residual[static_cast<std::size_t>(u)].emplace_back(v, res);
    residual[static_cast<std::size_t>(v)].emplace_back(u, twin_res);
  }

  for (DinicFlow::FlowNode w = 0; w < nodes; ++w) {
    if (w == source || w == sink) continue;
    ++report.checks;
    if (net[static_cast<std::size_t>(w)] != 0) {
      report.add(ViolationCode::kFlowNotConserved,
                 "node " + std::to_string(w) + ": net flow " +
                     std::to_string(net[static_cast<std::size_t>(w)]));
    }
  }

  // Maximality: the residual graph must not reach the sink (max-flow /
  // min-cut certificate).
  std::vector<bool> reachable(static_cast<std::size_t>(nodes), false);
  std::queue<DinicFlow::FlowNode> bfs;
  if (source >= 0 && source < nodes) {
    reachable[static_cast<std::size_t>(source)] = true;
    bfs.push(source);
  }
  while (!bfs.empty()) {
    const DinicFlow::FlowNode u = bfs.front();
    bfs.pop();
    for (const auto& [v, res] : residual[static_cast<std::size_t>(u)]) {
      if (res > 0 && !reachable[static_cast<std::size_t>(v)]) {
        reachable[static_cast<std::size_t>(v)] = true;
        bfs.push(v);
      }
    }
  }
  ++report.checks;
  if (sink >= 0 && sink < nodes && reachable[static_cast<std::size_t>(sink)]) {
    report.add(ViolationCode::kFlowNotMaximum,
               "augmenting path from source to sink still exists");
  }

  const std::int64_t value =
      sink >= 0 && sink < nodes ? net[static_cast<std::size_t>(sink)] : 0;
  ++report.checks;
  if (expected_value >= 0 && value != expected_value) {
    report.add(ViolationCode::kFlowValueMismatch,
               "flow value " + std::to_string(value) + " != expected " +
                   std::to_string(expected_value));
  }
  return report;
}

AuditReport audit_assignment_flow(const IncrementalAssignment& ia) {
  return audit_flow(ia.flow(), ia.source(), ia.sink(), ia.served());
}

namespace {

/// |{v in set : d(v) >= h}| recomputed directly from the hop distances.
std::int64_t count_at_least(const HopBudgetMatroid& m2,
                            std::span<const LocationId> set,
                            std::int32_t h) {
  std::int64_t count = 0;
  for (LocationId v : set) {
    const std::int32_t d = m2.hop_distance(v);
    if (d != kUnreachable && d >= h) ++count;
  }
  return count;
}

}  // namespace

AuditReport audit_matroids(const HopBudgetMatroid& m2,
                           std::span<const LocationId> chosen,
                           std::span<const Deployment> deployments,
                           std::int32_t uav_count,
                           std::int32_t sample_rounds,
                           std::uint64_t sample_seed) {
  AuditReport report;
  report.subject = "audit_matroids";

  // M1 — partition independence over the deployment's UAV components.
  std::vector<bool> uav_used(static_cast<std::size_t>(std::max(uav_count, 0)),
                             false);
  for (const Deployment& d : deployments) {
    ++report.checks;
    if (!d.uav.valid() || d.uav.value() >= uav_count) {
      report.add(ViolationCode::kMatroidUavOutOfRange,
                 "deployment uses UAV " + std::to_string(d.uav.value()) +
                     " outside fleet of " + std::to_string(uav_count));
      continue;
    }
    if (uav_used[d.uav.index()]) {
      report.add(ViolationCode::kMatroidUavReused,
                 "UAV " + std::to_string(d.uav.value()) + " deployed twice");
    }
    uav_used[d.uav.index()] = true;
  }

  // M2 — laminar independence of the chosen set, recomputed from the hop
  // distances and quotas rather than the matroid's incremental counters.
  const std::int32_t hmax = m2.hmax();
  for (LocationId v : chosen) {
    const std::int32_t d = m2.hop_distance(v);
    ++report.checks;
    if (d == kUnreachable || d > hmax) {
      report.add(ViolationCode::kMatroidHopOverflow,
                 "location " + std::to_string(v.value()) + " at hop distance " +
                     (d == kUnreachable ? std::string("inf")
                                        : std::to_string(d)) +
                     " > h_max " + std::to_string(hmax));
    }
  }
  for (std::int32_t h = 0; h <= hmax; ++h) {
    const std::int64_t count = count_at_least(m2, chosen, h);
    ++report.checks;
    if (count > m2.quota(h)) {
      report.add(ViolationCode::kMatroidQuotaExceeded,
                 "level " + std::to_string(h) + ": " + std::to_string(count) +
                     " chosen locations at hop >= " + std::to_string(h) +
                     " exceed quota " + std::to_string(m2.quota(h)));
    }
  }
  // The stateless oracle must agree with the per-level recomputation.
  const bool chosen_independent =
      m2.is_independent(std::vector<LocationId>(chosen.begin(), chosen.end()));

  // Hereditary + exchange axioms, spot-checked on deterministically sampled
  // subsets of the chosen set (exhaustive verification lives in
  // check_matroid_axioms; this is the cheap runtime version).
  Rng rng(sample_seed);
  std::vector<LocationId> a, b;
  for (std::int32_t round = 0; round < sample_rounds && !chosen.empty();
       ++round) {
    a.clear();
    b.clear();
    for (LocationId v : chosen) {
      if (rng.chance(0.5)) a.push_back(v);
      if (rng.chance(0.5)) b.push_back(v);
    }
    ++report.checks;
    if (chosen_independent && !m2.is_independent(a)) {
      report.add(ViolationCode::kMatroidNotHereditary,
                 "subset of an independent set reported dependent (round " +
                     std::to_string(round) + ")");
      continue;
    }
    if (a.size() >= b.size() || !m2.is_independent(a) ||
        !m2.is_independent(b)) {
      continue;
    }
    // Exchange: some x in B \ A must keep A + x independent.
    bool exchanged = false;
    std::vector<LocationId> extended = a;
    for (LocationId x : b) {
      if (std::find(a.begin(), a.end(), x) != a.end()) continue;
      extended.push_back(x);
      if (m2.is_independent(extended)) {
        exchanged = true;
        break;
      }
      extended.pop_back();
    }
    ++report.checks;
    if (!exchanged) {
      report.add(ViolationCode::kMatroidNoExchange,
                 "no element of the larger sampled independent set extends "
                 "the smaller (round " +
                     std::to_string(round) + ")");
    }
  }
  return report;
}

AuditReport audit_solution(const Scenario& scenario,
                           const CoverageModel& coverage,
                           const Solution& solution) {
  AuditReport report;
  report.subject = "audit_solution";
  const auto& deps = solution.deployments;

  ++report.checks;
  if (static_cast<std::int32_t>(deps.size()) > scenario.uav_count()) {
    report.add(ViolationCode::kSolutionTooManyUavs,
               std::to_string(deps.size()) + " deployments for a fleet of " +
                   std::to_string(scenario.uav_count()));
  }
  std::vector<bool> uav_seen(static_cast<std::size_t>(scenario.uav_count()),
                             false);
  std::vector<bool> loc_seen(static_cast<std::size_t>(scenario.grid.size()),
                             false);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const Deployment& d = deps[i];
    ++report.checks;
    if (!d.uav.valid() || d.uav.value() >= scenario.uav_count()) {
      report.add(ViolationCode::kSolutionUnknownUav,
                 "deployment " + std::to_string(i) + " references UAV " +
                     std::to_string(d.uav.value()));
      continue;
    }
    if (!d.loc.valid() || d.loc.value() >= scenario.grid.size()) {
      report.add(ViolationCode::kSolutionUnknownLocation,
                 "deployment " + std::to_string(i) + " references cell " +
                     std::to_string(d.loc.value()));
      continue;
    }
    if (uav_seen[d.uav.index()]) {
      report.add(ViolationCode::kSolutionUavReused,
                 "UAV " + std::to_string(d.uav.value()) + " deployed twice");
    }
    uav_seen[d.uav.index()] = true;
    if (loc_seen[d.loc.index()]) {
      report.add(ViolationCode::kSolutionCellShared,
                 "grid cell " + std::to_string(d.loc.value()) +
                     " holds two UAVs");
    }
    loc_seen[d.loc.index()] = true;
  }

  ++report.checks;
  if (!deployments_connected(scenario, deps)) {
    report.add(ViolationCode::kSolutionDisconnected,
               "UAV network not connected under R_uav = " +
                   std::to_string(scenario.uav_range_m));
  }

  // Per-user assignment: eligibility (range + rate) and load accounting.
  // The representation maps each user to at most one deployment, which is
  // exactly the "served by <= 1 UAV" constraint; what remains to check is
  // validity of that single assignment.
  std::vector<std::int64_t> load(deps.size(), 0);
  std::int64_t served = 0;
  const std::int32_t n = static_cast<std::int32_t>(
      std::min<std::size_t>(solution.user_to_deployment.size(),
                            scenario.users.size()));
  ++report.checks;
  if (solution.user_to_deployment.size() != scenario.users.size()) {
    report.add(ViolationCode::kSolutionBadAssignment,
               "assignment vector has " +
                   std::to_string(solution.user_to_deployment.size()) +
                   " entries for " + std::to_string(scenario.users.size()) +
                   " users");
  }
  for (const UserId u : IdRange<UserId>{n}) {
    const std::int32_t d = solution.user_to_deployment[u];
    if (d == -1) continue;
    ++report.checks;
    if (d < 0 || d >= static_cast<std::int32_t>(deps.size())) {
      report.add(ViolationCode::kSolutionBadAssignment,
                 "user " + std::to_string(u.value()) +
                     " assigned to unknown deployment " + std::to_string(d));
      continue;
    }
    const Deployment& dep = deps[static_cast<std::size_t>(d)];
    if (!dep.uav.valid() || dep.uav.value() >= scenario.uav_count() ||
        !dep.loc.valid() || dep.loc.value() >= scenario.grid.size()) {
      continue;  // already reported above; eligibility undefined.
    }
    if (!coverage.is_eligible(scenario, u, dep.loc, dep.uav)) {
      report.add(ViolationCode::kSolutionIneligibleUser,
                 "user " + std::to_string(u.value()) + " served by UAV " +
                     std::to_string(dep.uav.value()) + " at cell " +
                     std::to_string(dep.loc.value()) +
                     " but outside its range or below r_min");
    }
    ++load[static_cast<std::size_t>(d)];
    ++served;
  }
  for (std::size_t d = 0; d < deps.size(); ++d) {
    if (!deps[d].uav.valid() || deps[d].uav.value() >= scenario.uav_count()) {
      continue;
    }
    const auto cap = scenario.fleet[deps[d].uav].capacity;
    ++report.checks;
    if (load[d] > cap) {
      report.add(ViolationCode::kSolutionOverCapacity,
                 "UAV " + std::to_string(deps[d].uav.value()) + " carries " +
                     std::to_string(load[d]) + " users, capacity " +
                     std::to_string(cap));
    }
  }
  ++report.checks;
  if (served != solution.served) {
    report.add(ViolationCode::kSolutionServedMismatch,
               "assignment vector serves " + std::to_string(served) +
                   " users, solution claims " +
                   std::to_string(solution.served));
  }
  return report;
}

AuditReport audit_segment_plan(const SegmentPlan& plan) {
  AuditReport report;
  report.subject = "audit_segment_plan";

  ++report.checks;
  if (plan.s < 1 || plan.K < plan.s ||
      static_cast<std::int32_t>(plan.p.size()) != plan.s + 1 ||
      plan.L_max < plan.s || plan.quotas.empty()) {
    report.add(ViolationCode::kPlanBadShape,
               "s = " + std::to_string(plan.s) + ", K = " +
                   std::to_string(plan.K) + ", L_max = " +
                   std::to_string(plan.L_max) + ", |p| = " +
                   std::to_string(plan.p.size()) + ", |Q| = " +
                   std::to_string(plan.quotas.size()));
    return report;  // the Eq. 1/2 recomputations need a well-shaped plan.
  }

  std::int64_t budget_sum = 0;
  for (std::int64_t pi : plan.p) budget_sum += pi;
  ++report.checks;
  if (budget_sum != plan.L_max - plan.s) {
    report.add(ViolationCode::kPlanBudgetSumMismatch,
               "sum p = " + std::to_string(budget_sum) + " != L_max - s = " +
                   std::to_string(plan.L_max - plan.s));
    return report;
  }

  const std::int64_t bound = relay_upper_bound(plan.s, plan.p);
  ++report.checks;
  if (bound != plan.relay_bound) {
    report.add(ViolationCode::kPlanRelayBoundMismatch,
               "stored g = " + std::to_string(plan.relay_bound) +
                   ", recomputed g(L, p) = " + std::to_string(bound));
  }
  ++report.checks;
  if (bound > plan.K) {
    report.add(ViolationCode::kPlanRelayBoundExceedsK,
               "g(L_max, p) = " + std::to_string(bound) + " > K = " +
                   std::to_string(plan.K) + " (Lemma 2)");
  }

  const std::int32_t hmax = hop_limit(plan.s, plan.p);
  ++report.checks;
  if (hmax != plan.h_max) {
    report.add(ViolationCode::kPlanHopLimitMismatch,
               "stored h_max = " + std::to_string(plan.h_max) +
                   ", recomputed = " + std::to_string(hmax));
  }

  const std::vector<std::int64_t> quotas =
      hop_quotas(plan.s, plan.L_max, plan.p);
  ++report.checks;
  if (quotas != plan.quotas) {
    report.add(ViolationCode::kPlanQuotaMismatch,
               "stored quota vector differs from the Eq. 1 recomputation");
  }
  ++report.checks;
  if (plan.quotas.front() != plan.L_max) {
    report.add(ViolationCode::kPlanQuotaMismatch,
               "Q_0 = " + std::to_string(plan.quotas.front()) +
                   " != L_max = " + std::to_string(plan.L_max));
  }
  for (std::size_t h = 1; h < plan.quotas.size(); ++h) {
    ++report.checks;
    if (plan.quotas[h] > plan.quotas[h - 1]) {
      report.add(ViolationCode::kPlanQuotaNotMonotone,
                 "Q_" + std::to_string(h) + " = " +
                     std::to_string(plan.quotas[h]) + " > Q_" +
                     std::to_string(h - 1) + " = " +
                     std::to_string(plan.quotas[h - 1]));
    }
  }
  return report;
}

AuditReport audit_shard_partition(const Scenario& scenario,
                                  std::span<const std::int32_t> tile_of_user,
                                  std::span<const std::int32_t> tile_of_uav,
                                  std::int32_t tile_count) {
  AuditReport report;
  report.subject = "audit_shard_partition";

  ++report.checks;
  if (std::ssize(tile_of_user) != scenario.user_count() ||
      std::ssize(tile_of_uav) != scenario.uav_count() || tile_count < 1) {
    report.add(ViolationCode::kShardShapeMismatch,
               "|tile_of_user| = " + std::to_string(tile_of_user.size()) +
                   " (users = " + std::to_string(scenario.user_count()) +
                   "), |tile_of_uav| = " + std::to_string(tile_of_uav.size()) +
                   " (fleet = " + std::to_string(scenario.uav_count()) +
                   "), tiles = " + std::to_string(tile_count));
    return report;  // per-entity range checks need well-shaped maps.
  }

  // Users: owned by exactly one valid tile — the stitcher would silently
  // drop an unowned user, so -1 is a violation here (unlike UAVs).
  for (std::size_t u = 0; u < tile_of_user.size(); ++u) {
    ++report.checks;
    const std::int32_t t = tile_of_user[u];
    if (t < 0 || t >= tile_count) {
      report.add(ViolationCode::kShardUserUnassigned,
                 "user " + std::to_string(u) + " maps to tile " +
                     std::to_string(t) + " outside [0, " +
                     std::to_string(tile_count) + ")");
    }
  }

  // UAVs: each sliced into at most one tile fleet (-1 = held in reserve).
  // The per-entity map makes double-slicing unrepresentable for a single
  // UAV id, so the residual check is range validity; callers that build
  // the map from per-tile fleet slices report a duplicate insertion as
  // kShardUavReused before calling in.
  for (std::size_t k = 0; k < tile_of_uav.size(); ++k) {
    ++report.checks;
    const std::int32_t t = tile_of_uav[k];
    if (t < -1 || t >= tile_count) {
      report.add(ViolationCode::kShardUavReused,
                 "uav " + std::to_string(k) + " maps to tile " +
                     std::to_string(t) + " outside [-1, " +
                     std::to_string(tile_count) + ")");
    }
  }
  return report;
}

}  // namespace uavcov::analysis
