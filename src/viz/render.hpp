// Deployment rendering: scenario + solution → SVG.
//
// Visual vocabulary:
//   * grey grid lines — the λ-cell hovering grid;
//   * small dots — users (green if served, red if not);
//   * filled circles — UAVs, radius ∝ capacity; label = UAV id;
//   * translucent discs — each UAV's user-coverage area R_user;
//   * dark lines — UAV-to-UAV links (≤ R_uav);
//   * dashed line — the serving association user → UAV (optional).
#pragma once

#include <string>

#include "core/scenario.hpp"
#include "core/solution.hpp"
#include "viz/svg.hpp"

namespace uavcov::viz {

struct RenderOptions {
  double pixels_per_meter = 0.25;
  bool draw_grid = true;
  bool draw_coverage_discs = true;
  bool draw_links = true;
  bool draw_associations = false;  ///< user→UAV dashes (busy on big n).
  bool draw_labels = true;
};

/// Render a deployment; `solution` may be empty (scenario-only plot).
std::string render_deployment(const Scenario& scenario,
                              const Solution& solution,
                              const RenderOptions& options = {});

/// Convenience: render straight to a file.
void render_deployment_file(const std::string& path,
                            const Scenario& scenario,
                            const Solution& solution,
                            const RenderOptions& options = {});

}  // namespace uavcov::viz
