#include "viz/svg.hpp"

#include <fstream>
#include <iomanip>

#include "common/check.hpp"

namespace uavcov::viz {

SvgCanvas::SvgCanvas(double world_w, double world_h, double pixels_per_meter)
    : world_w_(world_w), world_h_(world_h), scale_(pixels_per_meter) {
  UAVCOV_CHECK_MSG(world_w > 0 && world_h > 0 && pixels_per_meter > 0,
                   "invalid canvas dimensions");
  body_ << std::fixed << std::setprecision(1);
}

void SvgCanvas::circle(double x, double y, double radius_m,
                       const std::string& fill, double opacity,
                       const std::string& stroke, double stroke_width_px) {
  body_ << "<circle cx=\"" << px(x) << "\" cy=\"" << py(y) << "\" r=\""
        << radius_m * scale_ << "\" fill=\"" << fill << "\" opacity=\""
        << opacity << "\"";
  if (!stroke.empty()) {
    body_ << " stroke=\"" << stroke << "\" stroke-width=\""
          << stroke_width_px << "\"";
  }
  body_ << "/>\n";
}

void SvgCanvas::line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double width_px,
                     double opacity, bool dashed) {
  body_ << "<line x1=\"" << px(x1) << "\" y1=\"" << py(y1) << "\" x2=\""
        << px(x2) << "\" y2=\"" << py(y2) << "\" stroke=\"" << stroke
        << "\" stroke-width=\"" << width_px << "\" opacity=\"" << opacity
        << "\"";
  if (dashed) body_ << " stroke-dasharray=\"6 4\"";
  body_ << "/>\n";
}

void SvgCanvas::rect(double x, double y, double w, double h,
                     const std::string& fill, double opacity) {
  body_ << "<rect x=\"" << px(x) << "\" y=\"" << py(y + h) << "\" width=\""
        << w * scale_ << "\" height=\"" << h * scale_ << "\" fill=\"" << fill
        << "\" opacity=\"" << opacity << "\"/>\n";
}

void SvgCanvas::text(double x, double y, const std::string& content,
                     double size_px, const std::string& fill) {
  body_ << "<text x=\"" << px(x) << "\" y=\"" << py(y)
        << "\" text-anchor=\"middle\" dominant-baseline=\"middle\" "
           "font-family=\"sans-serif\" font-size=\""
        << size_px << "\" fill=\"" << fill << "\">" << xml_escape(content)
        << "</text>\n";
}

std::string SvgCanvas::str() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px()
      << "\" height=\"" << height_px() << "\" viewBox=\"0 0 " << width_px()
      << ' ' << height_px() << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"#fbfbf8\"/>\n"
      << body_.str() << "</svg>\n";
  return out.str();
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream out(path);
  UAVCOV_CHECK_MSG(out.good(), "cannot open SVG output: " + path);
  out << str();
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace uavcov::viz
