// Minimal dependency-free SVG document builder — enough vocabulary for the
// deployment renderings (circles, lines, rectangles, text, polylines) with
// a y-up world-coordinate mapping (SVG is y-down).
#pragma once

#include <sstream>
#include <string>

namespace uavcov::viz {

/// Builder for one SVG document over a world rectangle [0,w]×[0,h] meters.
/// All coordinates passed to draw calls are world coordinates; the builder
/// flips the y axis and applies a uniform scale.
class SvgCanvas {
 public:
  /// `pixels_per_meter` controls the output resolution.
  SvgCanvas(double world_w, double world_h, double pixels_per_meter = 0.2);

  void circle(double x, double y, double radius_m, const std::string& fill,
              double opacity = 1.0, const std::string& stroke = "",
              double stroke_width_px = 1.0);
  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double width_px = 1.0,
            double opacity = 1.0, bool dashed = false);
  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0);
  /// Text anchored at its center; size in pixels (not world meters).
  void text(double x, double y, const std::string& content, double size_px,
            const std::string& fill = "#333333");

  double width_px() const { return world_w_ * scale_; }
  double height_px() const { return world_h_ * scale_; }

  /// Finished document.
  std::string str() const;

  /// Write to a file; throws ContractError on I/O failure.
  void save(const std::string& path) const;

 private:
  double px(double x) const { return x * scale_; }
  double py(double y) const { return (world_h_ - y) * scale_; }

  double world_w_;
  double world_h_;
  double scale_;
  std::ostringstream body_;
};

/// Escape XML-special characters in text content.
std::string xml_escape(const std::string& text);

}  // namespace uavcov::viz
