#include "viz/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/check.hpp"

namespace uavcov::viz {

std::string render_deployment(const Scenario& scenario,
                              const Solution& solution,
                              const RenderOptions& options) {
  UAVCOV_CHECK_MSG(
      solution.user_to_deployment.empty() ||
          solution.user_to_deployment.size() == scenario.users.size(),
      "solution does not match scenario");
  SvgCanvas canvas(scenario.grid.width(), scenario.grid.height(),
                   options.pixels_per_meter);

  if (options.draw_grid) {
    const double side = scenario.grid.cell_side();
    for (std::int32_t c = 0; c <= scenario.grid.cols(); ++c) {
      canvas.line(c * side, 0, c * side, scenario.grid.height(), "#dddddd",
                  0.6);
    }
    for (std::int32_t r = 0; r <= scenario.grid.rows(); ++r) {
      canvas.line(0, r * side, scenario.grid.width(), r * side, "#dddddd",
                  0.6);
    }
  }

  // Coverage discs below everything else.
  if (options.draw_coverage_discs) {
    for (const Deployment& d : solution.deployments) {
      const Vec2 c = scenario.grid.center(d.loc);
      const double radius =
          scenario.fleet[d.uav].user_range_m;
      canvas.circle(c.x, c.y, radius, "#7ca5d8", 0.12);
    }
  }

  // UAV-to-UAV links.
  if (options.draw_links) {
    for (std::size_t i = 0; i < solution.deployments.size(); ++i) {
      const Vec2 a = scenario.grid.center(solution.deployments[i].loc);
      for (std::size_t j = i + 1; j < solution.deployments.size(); ++j) {
        const Vec2 b = scenario.grid.center(solution.deployments[j].loc);
        if (distance(a, b) <= scenario.uav_range_m) {
          canvas.line(a.x, a.y, b.x, b.y, "#40508a", 1.6, 0.8);
        }
      }
    }
  }

  // Users.
  for (const UserId u : scenario.user_ids()) {
    const Vec2 p = scenario.users[u].pos;
    const std::int32_t dep = solution.user_to_deployment.empty()
                                 ? -1
                                 : solution.user_to_deployment[u];
    canvas.circle(p.x, p.y, 8.0, dep >= 0 ? "#3f9b57" : "#c2504a", 0.85);
    if (options.draw_associations && dep >= 0) {
      const Vec2 c = scenario.grid.center(
          solution.deployments[static_cast<std::size_t>(dep)].loc);
      canvas.line(p.x, p.y, c.x, c.y, "#3f9b57", 0.5, 0.35, true);
    }
  }

  // UAVs: radius scales with capacity (sqrt so area ∝ capacity).
  std::int32_t cap_max = 1;
  for (const UavSpec& u : scenario.fleet) {
    cap_max = std::max(cap_max, u.capacity);
  }
  for (const Deployment& d : solution.deployments) {
    const Vec2 c = scenario.grid.center(d.loc);
    const double cap = scenario.fleet[d.uav].capacity;
    const double radius =
        25.0 + 45.0 * std::sqrt(cap / static_cast<double>(cap_max));
    canvas.circle(c.x, c.y, radius, "#2b3a6b", 0.95, "#ffffff", 1.5);
    if (options.draw_labels) {
      canvas.text(c.x, c.y, std::to_string(d.uav.value()), 11.0,
                  "#ffffff");
    }
  }
  return canvas.str();
}

void render_deployment_file(const std::string& path,
                            const Scenario& scenario,
                            const Solution& solution,
                            const RenderOptions& options) {
  std::ofstream out(path);
  UAVCOV_CHECK_MSG(out.good(), "cannot open SVG output: " + path);
  out << render_deployment(scenario, solution, options);
}

}  // namespace uavcov::viz
