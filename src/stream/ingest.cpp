#include "stream/ingest.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace uavcov::stream {

Vec2 clamp_to_area(const Grid& grid, Vec2 p) {
  return {std::clamp(p.x, 0.0, grid.width()),
          std::clamp(p.y, 0.0, grid.height())};
}

Ingest::Ingest(const Scenario& base) : materialized_(base) {
  slots_.reserve(base.users.size());
  for (const User& u : base.users) {
    slots_.push_back({next_uid_++, u});
  }
  live_count_ = static_cast<std::int64_t>(slots_.size());
  rematerialize();
}

void Ingest::apply(const Epoch& epoch) {
  // Stage on copies so a mid-epoch ContractError leaves the previous
  // epoch's state fully intact (the engine and the fuzz harness both rely
  // on apply being all-or-nothing).
  std::vector<Slot> slots = slots_;
  std::int64_t live = live_count_;
  std::int64_t next_uid = next_uid_;

  const auto find_slot = [&slots](std::int64_t uid) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].uid == uid) return s;
    }
    return slots.size();
  };

  for (const ChurnEvent& ev : epoch.events) {
    UAVCOV_CHECK_MSG(ev.uid >= 0, "stream::Ingest: negative uid");
    switch (ev.kind) {
      case ChurnKind::kArrive: {
        UAVCOV_CHECK_MSG(find_slot(ev.uid) == slots.size(),
                         "stream::Ingest: arrive of a live uid");
        UAVCOV_CHECK_MSG(std::isfinite(ev.pos.x) && std::isfinite(ev.pos.y),
                         "stream::Ingest: non-finite arrival position");
        UAVCOV_CHECK_MSG(
            std::isfinite(ev.min_rate_bps) && ev.min_rate_bps > 0.0,
            "stream::Ingest: arrival rate must be positive and finite");
        const User user{clamp_to_area(materialized_.grid, ev.pos),
                        ev.min_rate_bps};
        // Lowest free slot wins; append only when the table is full.
        std::size_t slot = 0;
        while (slot < slots.size() && slots[slot].uid >= 0) ++slot;
        if (slot == slots.size()) {
          slots.push_back({ev.uid, user});
        } else {
          slots[slot] = {ev.uid, user};
        }
        ++live;
        next_uid = std::max(next_uid, ev.uid + 1);
        break;
      }
      case ChurnKind::kDepart: {
        const std::size_t slot = find_slot(ev.uid);
        UAVCOV_CHECK_MSG(slot != slots.size(),
                         "stream::Ingest: depart of an unknown uid");
        slots[slot] = {};
        slots[slot].uid = -1;
        --live;
        break;
      }
      case ChurnKind::kMove: {
        const std::size_t slot = find_slot(ev.uid);
        UAVCOV_CHECK_MSG(slot != slots.size(),
                         "stream::Ingest: move of an unknown uid");
        UAVCOV_CHECK_MSG(std::isfinite(ev.pos.x) && std::isfinite(ev.pos.y),
                         "stream::Ingest: non-finite move position");
        slots[slot].user.pos = clamp_to_area(materialized_.grid, ev.pos);
        break;
      }
      default:
        UAVCOV_CHECK_MSG(false, "stream::Ingest: unknown event kind");
    }
  }

  slots_ = std::move(slots);
  live_count_ = live;
  next_uid_ = next_uid;
  rematerialize();
}

void Ingest::rematerialize() {
  materialized_.users.clear();
  materialized_.users.reserve(static_cast<std::size_t>(live_count_));
  for (const Slot& s : slots_) {
    if (s.uid >= 0) materialized_.users.push_back(s.user);
  }
  flat_.emplace(materialized_);
}

bool Ingest::is_live(std::int64_t uid) const {
  for (const Slot& s : slots_) {
    if (s.uid == uid) return true;
  }
  return false;
}

UserId Ingest::slot_of(std::int64_t uid) const {
  std::int32_t dense = 0;
  for (const Slot& s : slots_) {
    if (s.uid == uid) return UserId{dense};
    if (s.uid >= 0) ++dense;
  }
  UAVCOV_CHECK_MSG(false, "stream::Ingest: slot_of on a uid that is not live");
  return UserId::invalid();
}

std::int64_t Ingest::uid_at(UserId u) const {
  std::int32_t dense = 0;
  for (const Slot& s : slots_) {
    if (s.uid >= 0) {
      if (dense == u.value()) return s.uid;
      ++dense;
    }
  }
  UAVCOV_CHECK_MSG(false, "stream::Ingest: uid_at out of range");
  return -1;
}

}  // namespace uavcov::stream
