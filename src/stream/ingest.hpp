// Applies churn epochs to a live Scenario / FlatScenario pair
// (docs/STREAMING.md).
//
// The ingest owns a slot table: each live trace-level uid occupies one
// slot, arrivals reuse the lowest free slot (stable, deterministic
// recycling — a recycled slot never aliases a live uid because uids are
// the identity, slots are just positions), and the dense materialized
// Scenario lists the live users in slot order.  The FlatScenario view is
// rebuilt after every epoch so downstream consumers always see a
// consistent (Scenario, FlatScenario) pair.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat.hpp"
#include "core/scenario.hpp"
#include "stream/churn.hpp"

namespace uavcov::stream {

/// Clamp a point into the closed area [0, width] x [0, height] of `grid` —
/// the same bounds workload::MobilityModel keeps its walkers inside.  Used
/// for arrive/move positions so out-of-area events (fuzzed traces, sensor
/// noise) degrade to the nearest border instead of invalidating the
/// scenario.
Vec2 clamp_to_area(const Grid& grid, Vec2 p);

class Ingest {
 public:
  /// Seeds the population from `base.users`: user i becomes uid i in slot
  /// i, and generated uids continue from base.user_count().
  explicit Ingest(const Scenario& base);

  // The materialized pair holds references into this object.
  Ingest(const Ingest&) = delete;
  Ingest& operator=(const Ingest&) = delete;

  /// Applies every event of `epoch` in order, then rematerializes the
  /// Scenario/FlatScenario pair.  Throws ContractError on a liveness
  /// violation (arrive of a live uid, depart/move of an unknown uid) or a
  /// malformed arrive; on throw the epoch is discarded wholesale — the
  /// materialized pair still reflects the last successful epoch.
  void apply(const Epoch& epoch);

  /// Dense scenario: live users in slot order (holes compacted away).
  const Scenario& scenario() const { return materialized_; }
  const FlatScenario& flat() const { return *flat_; }

  std::int64_t live_users() const { return live_count_; }
  /// Smallest uid no live or past user has used.
  std::int64_t next_uid() const { return next_uid_; }
  bool is_live(std::int64_t uid) const;
  /// UserId of `uid` in the materialized scenario; ContractError if not
  /// live.
  UserId slot_of(std::int64_t uid) const;
  /// Trace-level uid behind materialized user `u`.
  std::int64_t uid_at(UserId u) const;

 private:
  struct Slot {
    std::int64_t uid = -1;  ///< -1 = free.
    User user{};
  };

  void rematerialize();

  Scenario materialized_;
  std::optional<FlatScenario> flat_;
  std::vector<Slot> slots_;
  std::int64_t live_count_ = 0;
  std::int64_t next_uid_ = 0;
};

}  // namespace uavcov::stream
