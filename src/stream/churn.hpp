// Epoch-batched churn-event model for streaming coverage (docs/STREAMING.md).
//
// Production traffic is a stream, not a snapshot: between two solver
// invocations users arrive, leave, and move.  A ChurnTrace captures that as
// a sequence of epochs, each a batch of events applied atomically before
// the engine re-evaluates coverage.  Events reference users by a
// *trace-level* uid that is never reused within a trace (the materialized
// UserId slots are recycled by stream::Ingest; uids are the stable
// handles).
//
// Traces are deterministic data: seeded generation (flash-crowd surges,
// mobility-driven drift via workload/mobility), a replayable validity
// check, and an FNV-1a fingerprint so golden tests can pin a trace.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "workload/mobility.hpp"

namespace uavcov::stream {

enum class ChurnKind : std::int32_t {
  kArrive = 0,  ///< new user appears at `pos` with demand `min_rate_bps`.
  kDepart = 1,  ///< user `uid` leaves; `pos`/`min_rate_bps` are ignored.
  kMove = 2,    ///< user `uid` relocates to `pos`.
};

struct ChurnEvent {
  ChurnKind kind = ChurnKind::kArrive;
  std::int64_t uid = 0;  ///< trace-level user id (monotonic, never reused).
  Vec2 pos{};
  double min_rate_bps = 2e3;  ///< arrive only.
  bool operator==(const ChurnEvent&) const = default;
};

/// One batch of events; the engine sees the scenario only at epoch
/// boundaries, so an epoch is the unit of both ingestion and re-solving.
struct Epoch {
  std::vector<ChurnEvent> events;
  bool operator==(const Epoch&) const = default;
};

struct ChurnTrace {
  std::vector<Epoch> epochs;

  std::int64_t event_count() const;

  /// Replays the liveness discipline from an initial population of
  /// `initial_users` uids [0, initial_users) and throws ContractError on
  /// the first violation: arrive of a live or negative uid, depart/move of
  /// an unknown uid, or a non-finite position / non-positive rate on an
  /// arrive.  Moves may land outside the area on purpose (Ingest clamps).
  void validate(std::int64_t initial_users = 0) const;

  /// FNV-1a 64-bit digest of every epoch and event, in order.
  std::uint64_t fingerprint() const;

  bool operator==(const ChurnTrace&) const = default;
};

/// Knobs for the seeded trace generator.  Counts are drawn per epoch from
/// the portable Rng, so a (scenario, config, seed) triple pins the trace
/// bit-for-bit on every platform.
struct ChurnTraceConfig {
  std::int32_t epochs = 8;
  /// Arrivals per epoch are uniform in [0, max_arrivals_per_epoch].
  std::int32_t max_arrivals_per_epoch = 6;
  /// Departures per epoch are uniform in [0, max_departures_per_epoch],
  /// capped by the live population (drawn from the epoch-start population,
  /// so a user never departs in its arrival epoch).
  std::int32_t max_departures_per_epoch = 4;
  /// P(a regular arrival lands near an existing user) — preserves the
  /// fat-tailed density, mirroring workload's waypoint bias.
  double arrival_cluster_bias = 0.7;
  double arrival_sigma_m = 150.0;
  /// Epoch index of a flash-crowd surge (-1 = none): `flash_crowd_size`
  /// extra arrivals clustered around one uniformly drawn hotspot.
  std::int32_t flash_crowd_epoch = -1;
  std::int32_t flash_crowd_size = 30;
  double flash_crowd_sigma_m = 150.0;
  /// Mobility-driven drift: every epoch advances the live population by
  /// `drift_dt_s` seconds of workload::MobilityModel walk and emits the
  /// resulting moves (0 disables drift).
  double drift_dt_s = 30.0;
  workload::MobilityConfig mobility{};
  /// Rate demand of generated arrivals.
  double min_rate_bps = 2e3;

  /// Throws std::invalid_argument on out-of-domain fields, matching the
  /// ApproAlgParams::validate() style.
  void validate() const;
};

/// Generates a deterministic trace over `base`'s area.  The initial
/// population is base.users (uids [0, n)); generated uids continue from n.
/// The result always passes `validate(base.user_count())`.
ChurnTrace generate_trace(const Scenario& base, const ChurnTraceConfig& config,
                          std::uint64_t seed);

}  // namespace uavcov::stream
