#include "stream/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "common/fingerprint.hpp"
#include "common/rng.hpp"

namespace uavcov::stream {

namespace {

/// Clamp a point into the closed area [0, width] x [0, height] — the same
/// bounds MobilityModel::step keeps its walkers inside.
Vec2 clamp_into(const Grid& grid, Vec2 p) {
  return {std::clamp(p.x, 0.0, grid.width()),
          std::clamp(p.y, 0.0, grid.height())};
}

/// Sorted live-uid set (a plain vector keeps the replay deterministic and
/// satisfies the no-unordered-containers rule).
bool contains(const std::vector<std::int64_t>& live, std::int64_t uid) {
  return std::binary_search(live.begin(), live.end(), uid);
}

void insert(std::vector<std::int64_t>& live, std::int64_t uid) {
  live.insert(std::lower_bound(live.begin(), live.end(), uid), uid);
}

void erase(std::vector<std::int64_t>& live, std::int64_t uid) {
  live.erase(std::lower_bound(live.begin(), live.end(), uid));
}

/// The generator's live population, in arrival order (departures erase in
/// place, so the order stays a deterministic function of the trace).
struct LiveUser {
  std::int64_t uid = 0;
  User user{};
};

}  // namespace

std::int64_t ChurnTrace::event_count() const {
  std::int64_t n = 0;
  for (const Epoch& e : epochs) {
    n += static_cast<std::int64_t>(e.events.size());
  }
  return n;
}

void ChurnTrace::validate(std::int64_t initial_users) const {
  UAVCOV_CHECK_MSG(initial_users >= 0,
                   "ChurnTrace: negative initial population");
  std::vector<std::int64_t> live;
  live.reserve(static_cast<std::size_t>(initial_users));
  for (std::int64_t u = 0; u < initial_users; ++u) live.push_back(u);
  for (const Epoch& epoch : epochs) {
    for (const ChurnEvent& ev : epoch.events) {
      UAVCOV_CHECK_MSG(ev.uid >= 0, "ChurnTrace: negative uid");
      switch (ev.kind) {
        case ChurnKind::kArrive:
          UAVCOV_CHECK_MSG(!contains(live, ev.uid),
                           "ChurnTrace: arrive of a live uid");
          UAVCOV_CHECK_MSG(std::isfinite(ev.pos.x) && std::isfinite(ev.pos.y),
                           "ChurnTrace: non-finite arrival position");
          UAVCOV_CHECK_MSG(
              std::isfinite(ev.min_rate_bps) && ev.min_rate_bps > 0.0,
              "ChurnTrace: arrival rate must be positive and finite");
          insert(live, ev.uid);
          break;
        case ChurnKind::kDepart:
          UAVCOV_CHECK_MSG(contains(live, ev.uid),
                           "ChurnTrace: depart of an unknown uid");
          erase(live, ev.uid);
          break;
        case ChurnKind::kMove:
          UAVCOV_CHECK_MSG(contains(live, ev.uid),
                           "ChurnTrace: move of an unknown uid");
          UAVCOV_CHECK_MSG(std::isfinite(ev.pos.x) && std::isfinite(ev.pos.y),
                           "ChurnTrace: non-finite move position");
          break;
        default:
          UAVCOV_CHECK_MSG(false, "ChurnTrace: unknown event kind");
      }
    }
  }
}

std::uint64_t ChurnTrace::fingerprint() const {
  Fnv1a fp;
  fp.mix(static_cast<std::uint64_t>(epochs.size()));
  for (const Epoch& epoch : epochs) {
    fp.mix(static_cast<std::uint64_t>(epoch.events.size()));
    for (const ChurnEvent& ev : epoch.events) {
      fp.mix(static_cast<std::int32_t>(ev.kind));
      fp.mix(ev.uid);
      fp.mix(ev.pos.x);
      fp.mix(ev.pos.y);
      fp.mix(ev.min_rate_bps);
    }
  }
  return fp.digest();
}

void ChurnTraceConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ChurnTraceConfig: " + what);
  };
  if (epochs < 0) fail("epochs must be >= 0");
  if (max_arrivals_per_epoch < 0) fail("max_arrivals_per_epoch must be >= 0");
  if (max_departures_per_epoch < 0) {
    fail("max_departures_per_epoch must be >= 0");
  }
  if (!std::isfinite(arrival_cluster_bias) || arrival_cluster_bias < 0.0 ||
      arrival_cluster_bias > 1.0) {
    fail("arrival_cluster_bias must be in [0, 1]");
  }
  if (!std::isfinite(arrival_sigma_m) || arrival_sigma_m < 0.0) {
    fail("arrival_sigma_m must be >= 0 and finite");
  }
  if (flash_crowd_epoch < -1) fail("flash_crowd_epoch must be >= -1");
  if (flash_crowd_size < 0) fail("flash_crowd_size must be >= 0");
  if (!std::isfinite(flash_crowd_sigma_m) || flash_crowd_sigma_m < 0.0) {
    fail("flash_crowd_sigma_m must be >= 0 and finite");
  }
  if (!std::isfinite(drift_dt_s) || drift_dt_s < 0.0) {
    fail("drift_dt_s must be >= 0 and finite");
  }
  if (!std::isfinite(min_rate_bps) || min_rate_bps <= 0.0) {
    fail("min_rate_bps must be positive and finite");
  }
}

ChurnTrace generate_trace(const Scenario& base, const ChurnTraceConfig& config,
                          std::uint64_t seed) {
  config.validate();
  Rng rng(seed);

  std::vector<LiveUser> live;
  live.reserve(base.users.size());
  std::int64_t next_uid = 0;
  for (const User& u : base.users) {
    live.push_back({next_uid++, u});
  }

  const auto arrival_pos = [&](Rng& r) {
    if (!live.empty() && r.chance(config.arrival_cluster_bias)) {
      const std::size_t anchor =
          static_cast<std::size_t>(r.next_below(live.size()));
      return clamp_into(base.grid,
                        {live[anchor].user.pos.x +
                             r.normal(0.0, config.arrival_sigma_m),
                         live[anchor].user.pos.y +
                             r.normal(0.0, config.arrival_sigma_m)});
    }
    return Vec2{r.uniform(0.0, base.grid.width()),
                r.uniform(0.0, base.grid.height())};
  };

  ChurnTrace trace;
  trace.epochs.resize(static_cast<std::size_t>(config.epochs));
  for (std::int32_t e = 0; e < config.epochs; ++e) {
    Epoch& epoch = trace.epochs[static_cast<std::size_t>(e)];

    // Departures first, drawn from the epoch-start population.
    const std::int64_t max_dep =
        std::min<std::int64_t>(config.max_departures_per_epoch,
                               static_cast<std::int64_t>(live.size()));
    const std::int64_t departures = rng.uniform_int(0, max_dep);
    for (std::int64_t d = 0; d < departures; ++d) {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      epoch.events.push_back(
          {ChurnKind::kDepart, live[idx].uid, Vec2{}, 0.0});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Regular arrivals, plus the flash-crowd surge on its epoch.
    const std::int64_t arrivals =
        rng.uniform_int(0, config.max_arrivals_per_epoch);
    for (std::int64_t a = 0; a < arrivals; ++a) {
      const ChurnEvent ev{ChurnKind::kArrive, next_uid++, arrival_pos(rng),
                          config.min_rate_bps};
      epoch.events.push_back(ev);
      live.push_back({ev.uid, {ev.pos, ev.min_rate_bps}});
    }
    if (e == config.flash_crowd_epoch) {
      const Vec2 hotspot{rng.uniform(0.0, base.grid.width()),
                         rng.uniform(0.0, base.grid.height())};
      for (std::int32_t a = 0; a < config.flash_crowd_size; ++a) {
        const Vec2 pos = clamp_into(
            base.grid, {hotspot.x + rng.normal(0.0, config.flash_crowd_sigma_m),
                        hotspot.y + rng.normal(0.0, config.flash_crowd_sigma_m)});
        const ChurnEvent ev{ChurnKind::kArrive, next_uid++, pos,
                            config.min_rate_bps};
        epoch.events.push_back(ev);
        live.push_back({ev.uid, {ev.pos, ev.min_rate_bps}});
      }
    }

    // Mobility-driven drift: walk the post-churn population through the
    // random-waypoint model and emit the displacements as moves.  The model
    // is rebuilt per epoch with an epoch-derived seed, so the trace stays a
    // pure function of (base, config, seed) even as the population churns.
    if (config.drift_dt_s > 0.0 && !live.empty()) {
      Scenario walkers = base;
      walkers.users.clear();
      for (const LiveUser& u : live) walkers.users.push_back(u.user);
      SplitMix64 mix(seed ^ (0x53545245414dULL + static_cast<std::uint64_t>(e)));
      workload::MobilityModel model(walkers, config.mobility, mix.next());
      model.step(walkers, config.drift_dt_s);
      for (std::size_t i = 0; i < live.size(); ++i) {
        const Vec2 pos = walkers.users[UserId(i)].pos;
        epoch.events.push_back({ChurnKind::kMove, live[i].uid, pos, 0.0});
        live[i].user.pos = pos;
      }
    }
  }
  return trace;
}

}  // namespace uavcov::stream
