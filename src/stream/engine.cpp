#include "stream/engine.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/assignment.hpp"
#include "core/redeploy.hpp"
#include "obs/metrics.hpp"

namespace uavcov::stream {

namespace {

struct StreamMetrics {
  obs::Counter epochs = obs::counter("stream.epochs");
  obs::Counter arrive = obs::counter("stream.events.arrive");
  obs::Counter depart = obs::counter("stream.events.depart");
  obs::Counter move = obs::counter("stream.events.move");
  obs::Counter patches = obs::counter("stream.patches");
  obs::Counter full_solves = obs::counter("stream.full_solves");
  obs::Histogram epoch_seconds = obs::histogram("stream.epoch_seconds");
};

StreamMetrics& stream_metrics() {
  static StreamMetrics metrics;
  return metrics;
}

/// The standing solution while no user is live: nothing deployed, nothing
/// served.  Both the engine and solve_snapshot emit exactly this shape so
/// streamed and from-scratch results stay bit-comparable at n == 0.
Solution empty_solution(const Scenario& scenario) {
  Solution s;
  s.algorithm = "stream.empty";
  s.user_to_deployment.assign(scenario.users.size(), -1);
  return s;
}

}  // namespace

void StreamPolicy::validate() const {
  validate_unit_threshold("StreamPolicy.served_floor", served_floor);
  validate_unit_threshold("StreamPolicy.max_drift_fraction",
                          max_drift_fraction);
  appro.validate();
}

Solution solve_snapshot(const Scenario& scenario,
                        const ApproAlgParams& params) {
  if (scenario.user_count() == 0) return empty_solution(scenario);
  return appro_alg(scenario, params);
}

StreamEngine::StreamEngine(const Scenario& base, StreamPolicy policy)
    : policy_(std::move(policy)),
      ingest_(base),
      cell_graph_(build_location_graph(base.grid, base.uav_range_m)) {
  policy_.validate();
  base.validate();
  solution_ = empty_solution(ingest_.scenario());
}

EpochResult StreamEngine::step(const Epoch& epoch) {
  auto& metrics = stream_metrics();
  const obs::ScopedTimer timer(metrics.epoch_seconds);
  metrics.epochs.inc();

  EpochResult result;
  result.epoch = epoch_++;
  for (const ChurnEvent& ev : epoch.events) {
    switch (ev.kind) {
      case ChurnKind::kArrive:
        ++result.arrivals;
        break;
      case ChurnKind::kDepart:
        ++result.departures;
        break;
      case ChurnKind::kMove:
        ++result.moves;
        break;
    }
  }
  metrics.arrive.inc(result.arrivals);
  metrics.depart.inc(result.departures);
  metrics.move.inc(result.moves);

  ingest_.apply(epoch);
  const Scenario& scenario = ingest_.scenario();
  result.scenario_fingerprint = scenario.fingerprint();
  // Only structural churn (arrivals + departures) counts toward the drift
  // trigger: mobility emits a move for every live user each epoch, which
  // would make the threshold fire unconditionally.  Position drift is
  // instead caught by the served-floor check — moves that actually cost
  // coverage escalate, moves the patch absorbs do not.
  churn_since_full_ += result.arrivals + result.departures;

  if (scenario.user_count() == 0) {
    // Nothing to serve; the next populated epoch re-solves from scratch.
    solution_ = empty_solution(scenario);
    has_solution_ = false;
    served_at_last_full_ = 0;
    churn_since_full_ = 0;
    ++patches_;
    metrics.patches.inc();
    result.solution = solution_;
    return result;
  }

  const CoverageModel coverage(scenario);
  bool escalate = !has_solution_;
  Solution patched;
  if (!escalate) {
    patched = patch(coverage);
    const bool degraded =
        static_cast<double>(patched.served) <
        policy_.served_floor * static_cast<double>(served_at_last_full_);
    const bool drifted =
        static_cast<double>(churn_since_full_) >
        policy_.max_drift_fraction * static_cast<double>(scenario.user_count());
    escalate = degraded || drifted;
  }

  if (escalate) {
    solution_ = solve_snapshot(scenario, policy_.appro);
    has_solution_ = true;
    served_at_last_full_ = solution_.served;
    churn_since_full_ = 0;
    ++full_solves_;
    metrics.full_solves.inc();
    result.full_solve = true;
  } else {
    solution_ = std::move(patched);
    ++patches_;
    metrics.patches.inc();
    result.served_at_last_full_solve = served_at_last_full_;
  }
  result.solution = solution_;
  return result;
}

Solution StreamEngine::patch(const CoverageModel& coverage) {
  const Scenario& scenario = ingest_.scenario();
  const Stopwatch watch;

  IncrementalAssignment ia(scenario, coverage);
  std::vector<bool> occupied(static_cast<std::size_t>(scenario.grid.size()),
                             false);
  IdVector<UavTag, bool> uav_used(scenario.fleet.size(), false);
  // Re-deploy the standing placement in order: every deploy augments the
  // fresh flow network through the incremental add-node journal, so the
  // churned users are re-matched without a from-scratch solver run.
  for (const Deployment& d : solution_.deployments) {
    ia.deploy(d.uav, d.loc);
    occupied[d.loc.index()] = true;
    uav_used[d.uav] = true;
  }

  // Greedy frontier fill: idle UAVs (capacity-descending) hover on cells
  // adjacent to the standing network while a probe shows positive gain —
  // the same engineering extension approAlg uses for leftover UAVs, so
  // connectivity is preserved by construction.
  if (!solution_.deployments.empty()) {
    for (const UavId k : scenario.uavs_by_capacity_desc()) {
      if (uav_used[k]) continue;
      std::vector<bool> seen = occupied;
      std::int64_t best_gain = 0;
      LocationId best_loc = kInvalidLocation;
      for (const Deployment& d : ia.deployments()) {
        for (const NodeId v : cell_graph_.neighbors(to_node(d.loc))) {
          if (seen[static_cast<std::size_t>(v)]) continue;
          seen[static_cast<std::size_t>(v)] = true;
          const std::int64_t gain = ia.probe(k, to_cell(v));
          if (gain > best_gain) {
            best_gain = gain;
            best_loc = to_cell(v);
          }
        }
      }
      if (best_gain > 0) {
        ia.deploy(k, best_loc);
        occupied[best_loc.index()] = true;
        uav_used[k] = true;
      }
    }
  }

  // Finalize with the optimal Lemma-1 assignment over the patched
  // deployment set; its max flow must agree with the incremental count.
  const AssignmentResult assignment =
      solve_assignment(scenario, coverage, ia.deployments());
  UAVCOV_CHECK_MSG(assignment.served == ia.served(),
                   "stream: patched assignment disagrees with the "
                   "incremental served count");

  Solution out;
  out.algorithm = "stream.patch";
  out.deployments = ia.deployments();
  out.user_to_deployment = assignment.user_to_deployment;
  out.served = assignment.served;
  out.solve_seconds = watch.elapsed_s();

  if (policy_.appro.audit || analysis::audit_env_enabled()) {
    analysis::AuditReport report = analysis::audit_assignment_flow(ia);
    report.subject = "stream.patch";
    analysis::require_clean(report);
    validate_solution(scenario, coverage, out);
  }
  return out;
}

std::vector<EpochResult> StreamEngine::run(const ChurnTrace& trace) {
  std::vector<EpochResult> results;
  results.reserve(trace.epochs.size());
  for (const Epoch& epoch : trace.epochs) {
    results.push_back(step(epoch));
  }
  return results;
}

}  // namespace uavcov::stream
