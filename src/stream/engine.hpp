// StreamEngine: incremental coverage maintenance over a churn stream
// (docs/STREAMING.md).
//
// Per epoch the engine ingests the event batch and then chooses between
// two paths, RedeployController-style:
//
//   * delta patch — rebuild the live flow network (core/assignment's
//     incremental add-node/rollback journal), re-deploy the standing
//     placement against the churned user set, greedily fill idle UAVs on
//     frontier cells adjacent to the network while a probe shows positive
//     gain (connectivity preserved by construction), and finish with the
//     optimal Lemma-1 assignment;
//   * full re-solve — run approAlg from scratch on the materialized
//     scenario.
//
// Hysteresis decides the escalation: a patch is kept only while its served
// count stays at or above `served_floor` x (served at the last full solve)
// AND the cumulative structural churn (arrivals + departures) since that
// solve stays below `max_drift_fraction` of the live population.  Both thresholds share
// validate_unit_threshold with the redeploy/repair controllers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/appro_alg.hpp"
#include "graph/graph.hpp"
#include "stream/churn.hpp"
#include "stream/ingest.hpp"

namespace uavcov::stream {

struct StreamPolicy {
  /// Keep a delta patch only while it serves at least this fraction of the
  /// served count right after the last full solve.  Must be in (0, 1].
  double served_floor = 0.9;
  /// Escalate once the *structural* churn (arrivals + departures) since
  /// the last full solve exceeds this fraction of the live population.
  /// Moves are excluded — mobility touches every user every epoch, so
  /// counting them would fire the trigger unconditionally; a move that
  /// actually costs coverage escalates through `served_floor` instead.
  /// Must be in (0, 1].
  double max_drift_fraction = 0.5;
  ApproAlgParams appro{};

  /// Throws std::invalid_argument on out-of-domain fields; called at every
  /// StreamEngine construction and step.
  void validate() const;
};

struct EpochResult {
  std::int32_t epoch = 0;
  bool full_solve = false;  ///< true = approAlg ran, false = delta patch.
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t moves = 0;
  /// Served count the hysteresis floor demanded of a kept patch (0 at
  /// full-solve epochs and while the population is empty).
  std::int64_t served_at_last_full_solve = 0;
  std::uint64_t scenario_fingerprint = 0;  ///< post-ingest materialization.
  Solution solution;  ///< the engine's standing solution after this epoch.
};

/// The from-scratch solve used at escalation epochs: depends only on its
/// arguments, so tests can cross-check a streamed epoch against a cold
/// solve of the same materialized scenario.  An empty population yields
/// the canonical empty solution (approAlg's candidate machinery assumes
/// users exist).
Solution solve_snapshot(const Scenario& scenario,
                        const ApproAlgParams& params);

class StreamEngine {
 public:
  /// `base` supplies the immutable instance data (grid, fleet, channel)
  /// and the initial population (uids [0, n) — see Ingest).  The first
  /// non-empty epoch always escalates to a full solve.
  StreamEngine(const Scenario& base, StreamPolicy policy);

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Ingests one epoch and returns the refreshed standing solution.
  EpochResult step(const Epoch& epoch);

  /// Runs every epoch of `trace` in order.
  std::vector<EpochResult> run(const ChurnTrace& trace);

  const Ingest& ingest() const { return ingest_; }
  const Solution& current() const { return solution_; }
  std::int64_t full_solves() const { return full_solves_; }
  std::int64_t patches() const { return patches_; }
  std::int32_t epochs_processed() const { return epoch_; }

 private:
  Solution patch(const CoverageModel& coverage);

  StreamPolicy policy_;
  Ingest ingest_;
  Graph cell_graph_;  ///< hovering-location connectivity, static per run.
  Solution solution_;
  bool has_solution_ = false;
  std::int64_t served_at_last_full_ = 0;
  std::int64_t churn_since_full_ = 0;
  std::int64_t full_solves_ = 0;
  std::int64_t patches_ = 0;
  std::int32_t epoch_ = 0;
};

}  // namespace uavcov::stream
