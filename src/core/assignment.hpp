// The maximum assignment subproblem of §II-D (Lemma 1): given deployed
// UAVs, assign users so the served count is maximum, respecting per-UAV
// capacities.  Solved optimally as an integral max flow
//     s --1--> u_i --1--> (UAV k at v) --C_k--> t.
//
// Two interfaces:
//   * solve_assignment — one-shot optimal solve returning the user mapping;
//   * IncrementalAssignment — keeps a live flow network so Algorithm 2 can
//     probe "what if one more UAV were deployed?" in O(C_k · E') time and
//     commit the winner, instead of re-solving from scratch (the paper's
//     complexity analysis assumes exactly this kind of reuse is absent —
//     we keep a naive mode for benchmarking the difference).
#pragma once

#include <span>
#include <vector>

#include "core/coverage.hpp"
#include "core/solution.hpp"
#include "flow/dinic.hpp"

namespace uavcov {

struct AssignmentResult {
  std::int64_t served = 0;
  /// Per user: index into the input deployments span, or -1 if unserved.
  IdVector<UserTag, std::int32_t> user_to_deployment;
};

/// Optimal assignment (Lemma 1).  O(K n^2) worst case; in practice far
/// cheaper because augmenting paths have length 3.
AssignmentResult solve_assignment(const Scenario& scenario,
                                  const CoverageModel& coverage,
                                  std::span<const Deployment> deployments);

/// Live flow network for greedy placement.  Usage pattern per seed subset:
///
///   IncrementalAssignment ia(scenario, coverage);
///   auto scope = ia.begin_scope();          // checkpoint the empty state
///   for each greedy step:
///     gain = ia.probe(uav, loc);            // evaluate, state unchanged
///     ...
///     ia.deploy(best_uav, best_loc);        // keep the winner
///   served = ia.served();
///   ia.end_scope(scope);                    // wipe back to empty
class IncrementalAssignment {
 public:
  IncrementalAssignment(const Scenario& scenario,
                        const CoverageModel& coverage);

  /// Users currently served by the deployed set.
  std::int64_t served() const { return served_; }

  const std::vector<Deployment>& deployments() const { return deployments_; }

  // Read-only views for the invariant auditors (src/analysis/audit.hpp).
  const DinicFlow& flow() const { return flow_; }
  DinicFlow::FlowNode source() const { return source_; }
  DinicFlow::FlowNode sink() const { return sink_; }
  /// Flow node carrying user `u` (audit: per-user unit-flow integrality).
  DinicFlow::FlowNode user_node(UserId u) const { return user_node_[u]; }

  /// Marginal gain of deploying UAV `k` at `loc`; the network is restored
  /// before returning.
  std::int64_t probe(UavId k, LocationId loc);

  /// Deploy UAV `k` at `loc` permanently (within the current scope);
  /// returns the marginal gain.
  std::int64_t deploy(UavId k, LocationId loc);

  /// Scope = rollback point for trying many seed subsets on one network.
  struct Scope {
    DinicFlow::Checkpoint checkpoint;
    std::size_t deployment_count = 0;
    std::int64_t served = 0;
  };
  Scope begin_scope();
  void end_scope(const Scope& scope);

 private:
  std::int64_t add_uav_and_augment(UavId k, LocationId loc);

  const Scenario& scenario_;
  const CoverageModel& coverage_;
  DinicFlow flow_;
  DinicFlow::FlowNode source_ = 0;
  DinicFlow::FlowNode sink_ = 0;
  IdVector<UserTag, DinicFlow::FlowNode> user_node_;
  std::vector<Deployment> deployments_;
  std::int64_t served_ = 0;
};

}  // namespace uavcov
