#include "core/scenario.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace uavcov {

std::int64_t Scenario::total_capacity() const {
  std::int64_t total = 0;
  for (const UavSpec& u : fleet) total += u.capacity;
  return total;
}

void Scenario::validate() const {
  UAVCOV_CHECK_MSG(altitude_m > 0, "altitude must be positive");
  UAVCOV_CHECK_MSG(uav_range_m > 0, "R_uav must be positive");
  UAVCOV_CHECK_MSG(!fleet.empty(), "fleet must contain at least one UAV");
  for (const UavSpec& u : fleet) {
    UAVCOV_CHECK_MSG(u.capacity >= 1, "UAV capacity must be >= 1");
    UAVCOV_CHECK_MSG(u.user_range_m > 0, "R_user must be positive");
    UAVCOV_CHECK_MSG(u.user_range_m <= uav_range_m,
                     "paper model assumes R_user <= R_uav");
  }
  for (const User& u : users) {
    UAVCOV_CHECK_MSG(u.min_rate_bps > 0, "user min rate must be positive");
    UAVCOV_CHECK_MSG(u.pos.x >= 0 && u.pos.x <= grid.width() && u.pos.y >= 0 &&
                         u.pos.y <= grid.height(),
                     "user outside the disaster area");
  }
}

std::vector<UavId> Scenario::uavs_by_capacity_desc() const {
  std::vector<UavId> order(fleet.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](UavId a, UavId b) {
    return fleet[static_cast<std::size_t>(a)].capacity >
           fleet[static_cast<std::size_t>(b)].capacity;
  });
  return order;
}

}  // namespace uavcov
