#include "core/scenario.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/fingerprint.hpp"

namespace uavcov {

std::int64_t Scenario::total_capacity() const {
  std::int64_t total = 0;
  for (const UavSpec& u : fleet) total += u.capacity;
  return total;
}

void Scenario::validate() const {
  UAVCOV_CHECK_MSG(altitude_m > 0, "altitude must be positive");
  UAVCOV_CHECK_MSG(uav_range_m > 0, "R_uav must be positive");
  UAVCOV_CHECK_MSG(!fleet.empty(), "fleet must contain at least one UAV");
  for (const UavSpec& u : fleet) {
    UAVCOV_CHECK_MSG(u.capacity >= 1, "UAV capacity must be >= 1");
    UAVCOV_CHECK_MSG(u.user_range_m > 0, "R_user must be positive");
    UAVCOV_CHECK_MSG(u.user_range_m <= uav_range_m,
                     "paper model assumes R_user <= R_uav");
  }
  for (const User& u : users) {
    UAVCOV_CHECK_MSG(u.min_rate_bps > 0, "user min rate must be positive");
    UAVCOV_CHECK_MSG(u.pos.x >= 0 && u.pos.x <= grid.width() && u.pos.y >= 0 &&
                         u.pos.y <= grid.height(),
                     "user outside the disaster area");
  }
}

std::uint64_t Scenario::fingerprint() const {
  Fnv1a h;
  h.mix(grid.width()).mix(grid.height()).mix(grid.cell_side());
  h.mix(altitude_m).mix(uav_range_m);
  h.mix(channel.environment.a)
      .mix(channel.environment.b)
      .mix(channel.environment.eta_los_db)
      .mix(channel.environment.eta_nlos_db)
      .mix(channel.carrier_hz);
  h.mix(receiver.noise_dbm).mix(receiver.bandwidth_hz);
  h.mix(static_cast<std::int64_t>(users.size()));
  for (const User& u : users) {
    h.mix(u.pos.x).mix(u.pos.y).mix(u.min_rate_bps);
  }
  h.mix(static_cast<std::int64_t>(fleet.size()));
  for (const UavSpec& u : fleet) {
    h.mix(u.capacity)
        .mix(u.radio.tx_power_dbm)
        .mix(u.radio.antenna_gain_dbi)
        .mix(u.user_range_m);
  }
  return h.digest();
}

LocationId RestrictedScenario::parent_cell(LocationId local) const {
  UAVCOV_DCHECK(local.valid() && local.value() < scenario.grid.size());
  const std::int32_t row = row0 + scenario.grid.row_of(local);
  const std::int32_t col = col0 + scenario.grid.col_of(local);
  return LocationId{row * parent_cols + col};
}

RestrictedScenario restrict_to_window(const Scenario& parent,
                                      std::int32_t col0, std::int32_t row0,
                                      std::int32_t col1, std::int32_t row1,
                                      std::span<const UserId> users,
                                      std::span<const UavId> fleet) {
  UAVCOV_CHECK_MSG(0 <= col0 && col0 < col1 && col1 <= parent.grid.cols() &&
                       0 <= row0 && row0 < row1 && row1 <= parent.grid.rows(),
                   "restrict_to_window: window outside the parent grid");
  const double side = parent.grid.cell_side();
  const double width = (col1 - col0) * side;
  const double height = (row1 - row0) * side;
  const double ox = col0 * side;
  const double oy = row0 * side;
  RestrictedScenario out{
      .scenario = Scenario{.grid = Grid(width, height, side),
                           .altitude_m = parent.altitude_m,
                           .uav_range_m = parent.uav_range_m,
                           .channel = parent.channel,
                           .receiver = parent.receiver,
                           .users = {},
                           .fleet = {}},
      .users = {},
      .fleet = {},
      .col0 = col0,
      .row0 = row0,
      .parent_cols = parent.grid.cols()};
  out.users.reserve(users.size());
  out.scenario.users.reserve(users.size());
  for (const UserId u : users) {
    UAVCOV_CHECK_MSG(u.valid() && u.value() < parent.user_count(),
                     "restrict_to_window: user id outside the parent");
    User local = parent.users[u];
    // Translate into the window frame; the clamp absorbs the floating
    // rounding of the origin subtraction for users sitting exactly on the
    // window border (they are inside the window by precondition).
    local.pos.x = std::clamp(local.pos.x - ox, 0.0, width);
    local.pos.y = std::clamp(local.pos.y - oy, 0.0, height);
    out.users.push_back(u);
    out.scenario.users.push_back(local);
  }
  out.fleet.reserve(fleet.size());
  out.scenario.fleet.reserve(fleet.size());
  for (const UavId k : fleet) {
    UAVCOV_CHECK_MSG(k.valid() && k.value() < parent.uav_count(),
                     "restrict_to_window: UAV id outside the parent");
    out.fleet.push_back(k);
    out.scenario.fleet.push_back(parent.fleet[k]);
  }
  return out;
}

std::vector<UavId> Scenario::uavs_by_capacity_desc() const {
  std::vector<UavId> order(fleet.size());
  std::iota(order.begin(), order.end(), UavId{0});
  std::stable_sort(order.begin(), order.end(), [this](UavId a, UavId b) {
    return fleet[a].capacity > fleet[b].capacity;
  });
  return order;
}

}  // namespace uavcov
