#include "core/scenario.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/fingerprint.hpp"

namespace uavcov {

std::int64_t Scenario::total_capacity() const {
  std::int64_t total = 0;
  for (const UavSpec& u : fleet) total += u.capacity;
  return total;
}

void Scenario::validate() const {
  UAVCOV_CHECK_MSG(altitude_m > 0, "altitude must be positive");
  UAVCOV_CHECK_MSG(uav_range_m > 0, "R_uav must be positive");
  UAVCOV_CHECK_MSG(!fleet.empty(), "fleet must contain at least one UAV");
  for (const UavSpec& u : fleet) {
    UAVCOV_CHECK_MSG(u.capacity >= 1, "UAV capacity must be >= 1");
    UAVCOV_CHECK_MSG(u.user_range_m > 0, "R_user must be positive");
    UAVCOV_CHECK_MSG(u.user_range_m <= uav_range_m,
                     "paper model assumes R_user <= R_uav");
  }
  for (const User& u : users) {
    UAVCOV_CHECK_MSG(u.min_rate_bps > 0, "user min rate must be positive");
    UAVCOV_CHECK_MSG(u.pos.x >= 0 && u.pos.x <= grid.width() && u.pos.y >= 0 &&
                         u.pos.y <= grid.height(),
                     "user outside the disaster area");
  }
}

std::uint64_t Scenario::fingerprint() const {
  Fnv1a h;
  h.mix(grid.width()).mix(grid.height()).mix(grid.cell_side());
  h.mix(altitude_m).mix(uav_range_m);
  h.mix(channel.environment.a)
      .mix(channel.environment.b)
      .mix(channel.environment.eta_los_db)
      .mix(channel.environment.eta_nlos_db)
      .mix(channel.carrier_hz);
  h.mix(receiver.noise_dbm).mix(receiver.bandwidth_hz);
  h.mix(static_cast<std::int64_t>(users.size()));
  for (const User& u : users) {
    h.mix(u.pos.x).mix(u.pos.y).mix(u.min_rate_bps);
  }
  h.mix(static_cast<std::int64_t>(fleet.size()));
  for (const UavSpec& u : fleet) {
    h.mix(u.capacity)
        .mix(u.radio.tx_power_dbm)
        .mix(u.radio.antenna_gain_dbi)
        .mix(u.user_range_m);
  }
  return h.digest();
}

std::vector<UavId> Scenario::uavs_by_capacity_desc() const {
  std::vector<UavId> order(fleet.size());
  std::iota(order.begin(), order.end(), UavId{0});
  std::stable_sort(order.begin(), order.end(), [this](UavId a, UavId b) {
    return fleet[a].capacity > fleet[b].capacity;
  });
  return order;
}

}  // namespace uavcov
