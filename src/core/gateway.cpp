#include "core/gateway.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "core/assignment.hpp"
#include "graph/bfs.hpp"

namespace uavcov {

GatewayResult extend_to_gateway(const Scenario& scenario,
                                const CoverageModel& coverage,
                                Solution& solution, Vec2 vehicle_pos) {
  GatewayResult result;
  const auto within_vehicle_range = [&](LocationId cell) {
    return slant_range(vehicle_pos, scenario.grid.center(cell),
                       scenario.altitude_m) <= scenario.uav_range_m;
  };

  // Already connected?
  for (std::size_t d = 0; d < solution.deployments.size(); ++d) {
    if (within_vehicle_range(solution.deployments[d].loc)) {
      result.connected = true;
      result.gateway_deployment = static_cast<std::int32_t>(d);
      return result;
    }
  }
  if (solution.deployments.empty()) return result;

  // Unused UAVs available for the backhaul chain.
  IdVector<UavTag, bool> used(static_cast<std::size_t>(scenario.uav_count()),
                              false);
  for (const Deployment& d : solution.deployments) {
    used[d.uav] = true;
  }
  std::vector<UavId> spare;
  for (const UavId k : scenario.uav_ids()) {
    if (!used[k]) spare.push_back(k);
  }
  if (spare.empty()) return result;

  // Multi-source BFS from all cells within vehicle range toward the
  // network; the chain is the shortest path to any deployed cell.
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  std::vector<NodeId> sources;
  for (const LocationId v : scenario.grid.cells()) {
    if (within_vehicle_range(v)) sources.push_back(to_node(v));
  }
  if (sources.empty()) return result;  // vehicle out of reach entirely
  const BfsTree tree = bfs_tree(g, sources);

  std::int32_t best_dist = std::numeric_limits<std::int32_t>::max();
  LocationId attach = kInvalidLocation;
  std::vector<bool> occupied(static_cast<std::size_t>(scenario.grid.size()),
                             false);
  for (const Deployment& d : solution.deployments) {
    occupied[d.loc.index()] = true;
    const std::int32_t dist = tree.distance[d.loc.index()];
    if (dist < best_dist) {
      best_dist = dist;
      attach = d.loc;
    }
  }
  if (!attach.valid() || best_dist == kUnreachable) return result;

  // Walk from the attachment point back toward the vehicle-range source;
  // every unoccupied cell on the way needs one spare UAV.
  std::vector<LocationId> chain;
  for (NodeId cur = to_node(attach); cur != kNoParent;
       cur = tree.parent[static_cast<std::size_t>(cur)]) {
    if (!occupied[static_cast<std::size_t>(cur)]) chain.push_back(to_cell(cur));
  }
  if (chain.size() > spare.size()) return result;  // fleet exhausted

  for (std::size_t i = 0; i < chain.size(); ++i) {
    solution.deployments.push_back({spare[i], chain[i]});
  }
  result.relays_added = static_cast<std::int32_t>(chain.size());
  result.connected = true;
  // The gateway is the deployment hovering inside the vehicle's range:
  // the chain's last cell (a BFS source), or the attachment point when
  // the chain is empty but attach itself is in range (handled above).
  for (std::size_t d = 0; d < solution.deployments.size(); ++d) {
    if (within_vehicle_range(solution.deployments[d].loc)) {
      result.gateway_deployment = static_cast<std::int32_t>(d);
      break;
    }
  }
  UAVCOV_CHECK_MSG(result.gateway_deployment >= 0,
                   "backhaul chain must end inside vehicle range");

  // Relay UAVs can serve users too — refresh the optimal assignment.
  const AssignmentResult refreshed =
      solve_assignment(scenario, coverage, solution.deployments);
  solution.user_to_deployment = refreshed.user_to_deployment;
  solution.served = refreshed.served;
  return result;
}

}  // namespace uavcov
