#include "core/solution.hpp"

#include <set>
#include <string>

#include "common/check.hpp"
#include "common/fingerprint.hpp"
#include "graph/dsu.hpp"

namespace uavcov {

std::int64_t Solution::load_of(std::int32_t d) const {
  std::int64_t load = 0;
  for (std::int32_t assigned : user_to_deployment) {
    if (assigned == d) ++load;
  }
  return load;
}

std::uint64_t Solution::fingerprint() const {
  Fnv1a h;
  h.mix(static_cast<std::int64_t>(deployments.size()));
  for (const Deployment& d : deployments) h.mix(d.uav.value()).mix(d.loc.value());
  h.mix(static_cast<std::int64_t>(user_to_deployment.size()));
  for (const std::int32_t d : user_to_deployment) h.mix(d);
  h.mix(served);
  return h.digest();
}

bool deployments_connected(const Scenario& scenario,
                           const std::vector<Deployment>& deployments) {
  const auto k = static_cast<std::int32_t>(deployments.size());
  if (k <= 1) return true;
  Dsu dsu(k);
  for (std::int32_t i = 0; i < k; ++i) {
    const Vec2 pi =
        scenario.grid.center(deployments[static_cast<std::size_t>(i)].loc);
    for (std::int32_t j = i + 1; j < k; ++j) {
      const Vec2 pj =
          scenario.grid.center(deployments[static_cast<std::size_t>(j)].loc);
      if (distance(pi, pj) <= scenario.uav_range_m) dsu.unite(i, j);
    }
  }
  return dsu.component_count() == 1;
}

void validate_solution(const Scenario& scenario, const CoverageModel& coverage,
                       const Solution& solution) {
  const auto& deps = solution.deployments;
  UAVCOV_CHECK_MSG(
      static_cast<std::int32_t>(deps.size()) <= scenario.uav_count(),
      "more deployments than available UAVs");
  std::set<UavId> uavs;
  std::set<LocationId> locs;
  for (const Deployment& d : deps) {
    UAVCOV_CHECK_MSG(d.uav.valid() && d.uav.value() < scenario.uav_count(),
                     "deployment references unknown UAV");
    UAVCOV_CHECK_MSG(d.loc.valid() && d.loc.value() < scenario.grid.size(),
                     "deployment references unknown location");
    UAVCOV_CHECK_MSG(uavs.insert(d.uav).second,
                     "UAV deployed at two locations");
    UAVCOV_CHECK_MSG(locs.insert(d.loc).second,
                     "two UAVs share one grid cell");
  }
  UAVCOV_CHECK_MSG(deployments_connected(scenario, deps),
                   "UAV network is disconnected");

  UAVCOV_CHECK_MSG(solution.user_to_deployment.size() ==
                       scenario.users.size(),
                   "assignment vector size mismatch");
  std::vector<std::int64_t> load(deps.size(), 0);
  std::int64_t served = 0;
  for (const UserId u : scenario.user_ids()) {
    const std::int32_t d = solution.user_to_deployment[u];
    if (d == -1) continue;
    UAVCOV_CHECK_MSG(d >= 0 && d < static_cast<std::int32_t>(deps.size()),
                     "assignment references unknown deployment");
    const Deployment& dep = deps[static_cast<std::size_t>(d)];
    UAVCOV_CHECK_MSG(
        coverage.is_eligible(scenario, u, dep.loc, dep.uav),
        "user " + std::to_string(u.value()) + " not eligible under its UAV");
    ++load[static_cast<std::size_t>(d)];
    ++served;
  }
  for (std::size_t d = 0; d < deps.size(); ++d) {
    const auto cap = scenario.fleet[deps[d].uav].capacity;
    UAVCOV_CHECK_MSG(load[d] <= cap, "UAV load exceeds its capacity");
  }
  UAVCOV_CHECK_MSG(served == solution.served,
                   "served count inconsistent with assignment");
}

}  // namespace uavcov
