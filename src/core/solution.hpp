// Solution representation shared by approAlg, the baselines, and the
// exhaustive reference, plus a full feasibility audit.
#pragma once

#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/scenario.hpp"

namespace uavcov {

/// One deployed UAV: which UAV of the fleet hovers at which grid location.
struct Deployment {
  UavId uav{0};
  LocationId loc{0};
  bool operator==(const Deployment&) const = default;
};

struct Solution {
  std::string algorithm;               ///< producer name, e.g. "approAlg".
  std::vector<Deployment> deployments; ///< at most K entries.
  /// Per user: index into `deployments` of the serving UAV, or -1.
  IdVector<UserTag, std::int32_t> user_to_deployment;
  std::int64_t served = 0;             ///< number of served users.
  double solve_seconds = 0.0;          ///< wall-clock of the solver.

  /// Users served by deployment `d`.
  std::int64_t load_of(std::int32_t d) const;

  /// FNV-1a 64-bit digest of the *outcome*: deployments (uav, loc pairs in
  /// order), the full user→deployment vector, and `served`.  Deliberately
  /// excludes `algorithm` and `solve_seconds` so the fingerprint changes
  /// iff the solver's decisions change — the bench harness and golden
  /// regression tests pin it per (scenario, algorithm).
  std::uint64_t fingerprint() const;
};

/// Audits every problem constraint (§II-C); throws ContractError with a
/// description of the first violation:
///   * <= K deployments; UAV ids and locations all distinct & in range;
///   * served users eligible (range + rate) under their serving UAV;
///   * per-UAV load <= capacity;
///   * UAV network connected (edges = pairs within R_uav);
///   * `served` consistent with the assignment vector.
void validate_solution(const Scenario& scenario, const CoverageModel& coverage,
                       const Solution& solution);

/// True if the deployment's location set forms a connected UAV network.
bool deployments_connected(const Scenario& scenario,
                           const std::vector<Deployment>& deployments);

}  // namespace uavcov
