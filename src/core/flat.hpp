// Flat (SoA + CSR) view of one Scenario — the million-user hot path.
//
// Scenario stores users and UAVs as structs-in-vectors, which is the right
// shape for construction and serialization but the wrong one for the
// solver's inner loops at 10^6+ users: eligibility precomputation walks
// position/min-rate columns, and the per-user `centers_within` call in the
// old CoverageModel allocated a fresh vector per (user, radio class).
//
// FlatScenario is built once per scenario and owns:
//   * SoA columns: user x / y / min-rate, UAV capacity / range / radio;
//   * the fleet's radio classes and the effective service radius per
//     (class, distinct r_min) — min(R_user, radius where rate == r_min),
//     exactly the cache CoverageModel used to compute internally;
//   * a CSR candidate index in both directions: per-cell candidate user
//     lists (with their squared center distances) and per-user candidate
//     cell lists, as offset arrays + flat typed-id arrays.  "Candidate"
//     means within the user's largest per-class effective radius; the
//     per-class eligibility filter (dist² ≤ r_c²) is a cheap compare over
//     the stored distances, so CoverageModel, assignment, and the
//     baselines all reuse one geometric pass.
//
// The cell scan replicates Grid::centers_within bit for bit (same bbox
// index formulas, same inclusive `distance2(center, p) <= r²` compare), so
// rebuilding CoverageModel on top of this index leaves every golden
// fingerprint unchanged — coverage_test cross-checks the two paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "channel/batch.hpp"
#include "core/scenario.hpp"

namespace uavcov {

class FlatScenario {
 public:
  /// Validates the scenario, then builds the SoA columns, radio classes,
  /// effective radii, and both CSR directions in two counting passes (no
  /// per-user allocation).
  explicit FlatScenario(const Scenario& scenario);

  const Scenario& scenario() const { return scenario_; }

  std::int32_t user_count() const {
    return static_cast<std::int32_t>(user_x_.size());
  }
  std::int32_t uav_count() const {
    return static_cast<std::int32_t>(uav_capacity_.size());
  }
  std::int32_t cell_count() const { return scenario_.grid.size(); }

  // --- SoA columns -------------------------------------------------------
  std::span<const double> user_x() const { return user_x_; }
  std::span<const double> user_y() const { return user_y_; }
  std::span<const double> user_min_rate_bps() const { return user_min_rate_; }
  std::span<const std::int32_t> uav_capacity() const { return uav_capacity_; }
  std::span<const double> uav_user_range_m() const { return uav_range_; }

  // --- radio classes -----------------------------------------------------
  std::int32_t radio_class_count() const {
    return static_cast<std::int32_t>(classes_.size());
  }
  std::int32_t radio_class_of(UavId k) const { return uav_class_[k]; }
  const Radio& class_radio(std::int32_t c) const {
    return classes_[static_cast<std::size_t>(c)].radio;
  }
  double class_user_range_m(std::int32_t c) const {
    return classes_[static_cast<std::size_t>(c)].user_range_m;
  }

  /// Effective service radius of a class-`c` UAV for requirement
  /// `min_rate_bps`: min(R_user^c, radius where rate == r_min), ≤ 0 when
  /// the class cannot serve that requirement at any distance.
  double effective_radius_m(std::int32_t c, double min_rate_bps) const;

  /// Squared effective radius for (user, class) — the precomputed form the
  /// eligibility filter compares stored squared distances against.
  /// Negative when the class cannot serve the user at all.
  double effective_radius2(UserId u, std::int32_t c) const {
    UAVCOV_DCHECK(c >= 0 && c < radio_class_count());
    return user_class_radius2_[u.index() *
                                   static_cast<std::size_t>(
                                       radio_class_count()) +
                               static_cast<std::size_t>(c)];
  }

  /// Batched channel evaluator for one radio class (bit-identical to the
  /// scalar a2g_rate_bps chain; see channel/batch.hpp).
  BatchLinkEvaluator class_evaluator(std::int32_t c) const {
    return BatchLinkEvaluator(scenario_.channel, class_radio(c),
                              scenario_.receiver, scenario_.altitude_m);
  }

  // --- CSR candidate index ----------------------------------------------
  /// Candidate users of cell `v` (ascending UserId): every user whose
  /// largest per-class effective radius reaches v's center.
  std::span<const UserId> users_near(LocationId v) const {
    UAVCOV_DCHECK(v.valid() && v.value() < cell_count());
    return {cell_users_.data() + cell_offsets_[v.index()],
            static_cast<std::size_t>(cell_offsets_[v.index() + 1] -
                                     cell_offsets_[v.index()])};
  }
  /// Squared center distances aligned with users_near(v).
  std::span<const double> dist2_near(LocationId v) const {
    UAVCOV_DCHECK(v.valid() && v.value() < cell_count());
    return {cell_dist2_.data() + cell_offsets_[v.index()],
            static_cast<std::size_t>(cell_offsets_[v.index() + 1] -
                                     cell_offsets_[v.index()])};
  }
  /// Candidate cells of user `u` (ascending LocationId) — the transpose.
  std::span<const LocationId> cells_near(UserId u) const {
    UAVCOV_DCHECK(u.valid() && u.value() < user_count());
    return {user_cells_.data() + user_offsets_[u.index()],
            static_cast<std::size_t>(user_offsets_[u.index() + 1] -
                                     user_offsets_[u.index()])};
  }
  /// Total (user, candidate cell) pairs in the index.
  std::int64_t candidate_pair_count() const {
    return static_cast<std::int64_t>(cell_users_.size());
  }

  /// Batched achievable rates for every candidate user of `v` under class
  /// `c`, aligned with users_near(v).  Resizes `out`.
  void rates_near(LocationId v, std::int32_t c,
                  std::vector<double>& out) const;

 private:
  struct RadioClass {
    Radio radio;
    double user_range_m = 0.0;
  };

  const Scenario& scenario_;

  std::vector<double> user_x_;
  std::vector<double> user_y_;
  std::vector<double> user_min_rate_;
  std::vector<std::int32_t> uav_capacity_;
  std::vector<double> uav_range_;

  std::vector<RadioClass> classes_;
  IdVector<UavTag, std::int32_t> uav_class_;
  /// Distinct (class, r_min) → effective radius, ordered for lookup.
  std::vector<std::pair<std::pair<std::int32_t, double>, double>> radii_;
  /// user*classes + c → effective radius² (negative: cannot serve).
  std::vector<double> user_class_radius2_;
  /// Per-user candidate radius: max over classes of the effective radius.
  std::vector<double> user_max_radius_;

  std::vector<std::int64_t> cell_offsets_;  ///< size m+1.
  std::vector<UserId> cell_users_;
  std::vector<double> cell_dist2_;
  std::vector<std::int64_t> user_offsets_;  ///< size n+1.
  std::vector<LocationId> user_cells_;
};

}  // namespace uavcov
