// Search counters reported by Algorithm 2 (separate header so callers that
// only want the stats type need not pull in the full solver).
#pragma once

#include <cstdint>

#include "core/segment_plan.hpp"

namespace uavcov {

/// Per-phase wall-clock breakdown of one appro_alg() call.  Every value is
/// a delta of the *same* Stopwatch that produces ApproAlgStats::seconds
/// (docs/OBSERVABILITY.md), so sum_s() <= seconds holds by construction —
/// tests/obs_test.cpp asserts it.  The identical values are also observed
/// into the "appro.phase.*_seconds" metrics histograms.
struct ApproAlgPhases {
  double plan_s = 0.0;      ///< Algorithm 1 segment planning (+ audit).
  double prepare_s = 0.0;   ///< candidates, location graph, BFS tables.
  double search_s = 0.0;    ///< subset enumeration + greedy + stitching.
  double finalize_s = 0.0;  ///< leftover fill + final optimal assignment.

  double sum_s() const { return plan_s + prepare_s + search_s + finalize_s; }
};

struct ApproAlgStats {
  SegmentPlan plan;                   ///< Algorithm 1 output used.
  ApproAlgPhases phases;              ///< wall-clock per solver phase.
  std::int64_t candidates = 0;        ///< candidate locations after pruning.
  std::int64_t subsets_enumerated = 0;///< seed subsets generated.
  std::int64_t subsets_evaluated = 0; ///< subsets surviving all filters.
  std::int64_t subsets_stitched = 0;  ///< subsets with a <= K stitching.
  std::int64_t probes = 0;            ///< marginal-gain flow probes.
  double seconds = 0.0;               ///< end-to-end wall clock.
  /// True iff ApproAlgParams::time_budget_s bound the search: the subset
  /// enumeration (or a greedy round) was cut short and the returned
  /// solution is the best evaluated so far rather than the full search's
  /// winner.  The solution is still fully §II-C feasible.
  bool deadline_hit = false;
};

}  // namespace uavcov
