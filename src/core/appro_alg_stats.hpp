// Search counters reported by Algorithm 2 (separate header so callers that
// only want the stats type need not pull in the full solver).
#pragma once

#include <cstdint>

#include "core/segment_plan.hpp"

namespace uavcov {

struct ApproAlgStats {
  SegmentPlan plan;                   ///< Algorithm 1 output used.
  std::int64_t candidates = 0;        ///< candidate locations after pruning.
  std::int64_t subsets_enumerated = 0;///< seed subsets generated.
  std::int64_t subsets_evaluated = 0; ///< subsets surviving all filters.
  std::int64_t subsets_stitched = 0;  ///< subsets with a <= K stitching.
  std::int64_t probes = 0;            ///< marginal-gain flow probes.
  double seconds = 0.0;               ///< end-to-end wall clock.
};

}  // namespace uavcov
