// Local-search post-optimizer for feasible solutions.
//
// The approximation algorithm (and every baseline) leaves easy wins on the
// table: a UAV one cell away from a richer spot, or two UAVs whose
// locations should be exchanged because their capacities are mismatched
// to the local user density.  `refine_solution` hill-climbs with two
// connectivity-preserving move types until a local optimum:
//
//   * relocate — move one UAV to a free neighboring cell (≤ R_uav from
//     its old spot's neighbors), keep if the network stays connected and
//     the optimal served count strictly improves;
//   * swap — exchange the locations of two deployed UAVs (connectivity is
//     unaffected), keep on strict improvement; only useful for
//     heterogeneous fleets (it is a no-op under equal capacities/radios).
//
// Any algorithm's output can be refined; the ablation bench reports how
// much headroom each one leaves.
#pragma once

#include "core/coverage.hpp"
#include "core/solution.hpp"

namespace uavcov {

struct RefineParams {
  std::int32_t max_rounds = 20;  ///< full passes over the deployment.
  bool enable_relocate = true;
  bool enable_swap = true;
};

struct RefineStats {
  std::int32_t relocations = 0;
  std::int32_t swaps = 0;
  std::int64_t served_before = 0;
  std::int64_t served_after = 0;
};

/// Refines `solution` in place (deployments + assignment).  The input must
/// be feasible; the output is feasible and serves >= as many users.
RefineStats refine_solution(const Scenario& scenario,
                            const CoverageModel& coverage, Solution& solution,
                            const RefineParams& params = {});

}  // namespace uavcov
