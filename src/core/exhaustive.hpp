// Exhaustive optimal solver for tiny instances — the ground truth the
// integration tests compare approAlg and the baselines against.
//
// Enumerates every connected location subset of size 1..K and every
// injective mapping of UAVs onto it (heterogeneous radios/capacities make
// the mapping matter), then solves the optimal assignment.  Exponential —
// guarded to toy sizes.
#pragma once

#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov {

/// Preconditions: grid size <= 16 and K <= 5 (enforced).
Solution exhaustive_optimal(const Scenario& scenario,
                            const CoverageModel& coverage);

}  // namespace uavcov
