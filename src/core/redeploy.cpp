#include "core/redeploy.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "core/assignment.hpp"
#include "obs/metrics.hpp"

namespace uavcov {

namespace {

struct RedeployMetrics {
  obs::Counter full_solves = obs::counter("redeploy.full_solves");
  obs::Gauge travel_m = obs::gauge("redeploy.travel_m");
  obs::Histogram update_seconds = obs::histogram("redeploy.update_seconds");
};

const RedeployMetrics& redeploy_metrics() {
  static const RedeployMetrics m;
  return m;
}

}  // namespace

void validate_unit_threshold(const char* context, double value) {
  if (!std::isfinite(value) || value <= 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string(context) +
                                " must be in (0, 1] (got " +
                                std::to_string(value) + ")");
  }
}

void RedeployPolicy::validate() const {
  validate_unit_threshold("RedeployPolicy::degradation_threshold",
                          degradation_threshold);
  appro.validate();
}

const Solution& RedeployController::update(const Scenario& scenario) {
  policy_.validate();
  const obs::ScopedTimer timer(redeploy_metrics().update_seconds);
  // Cheap path: keep the standing placement, refresh the assignment (user
  // positions changed, so eligibility did too).
  if (!solution_.deployments.empty()) {
    const CoverageModel coverage(scenario);
    const AssignmentResult refreshed =
        solve_assignment(scenario, coverage, solution_.deployments);
    solution_.user_to_deployment = refreshed.user_to_deployment;
    solution_.served = refreshed.served;
    const double floor = policy_.degradation_threshold *
                         static_cast<double>(served_at_last_solve_);
    if (static_cast<double>(solution_.served) >= floor) {
      return solution_;  // still good enough
    }
  }
  // Full path: re-run Algorithm 2 from scratch.
  const std::vector<Deployment> before = solution_.deployments;
  solution_ = appro_alg(scenario, policy_.appro);
  served_at_last_solve_ = solution_.served;
  ++full_solves_;
  redeploy_metrics().full_solves.inc();
  account_travel(scenario, before, solution_.deployments);
  return solution_;
}

void RedeployController::account_travel(
    const Scenario& scenario, const std::vector<Deployment>& before,
    const std::vector<Deployment>& after) {
  // Greedy nearest matching of each relocated UAV to its new cell; UAVs
  // absent from either plan contribute nothing (they launch from/return
  // to the staging area, which is out of scope).
  std::map<UavId, LocationId> old_loc, new_loc;
  for (const Deployment& d : before) old_loc[d.uav] = d.loc;
  for (const Deployment& d : after) new_loc[d.uav] = d.loc;
  for (const auto& [uav, to] : new_loc) {
    const auto it = old_loc.find(uav);
    if (it == old_loc.end()) continue;
    uav_travel_m_ +=
        distance(scenario.grid.center(it->second), scenario.grid.center(to));
  }
  redeploy_metrics().travel_m.set(static_cast<std::int64_t>(uav_travel_m_));
}

}  // namespace uavcov
