#include "core/assignment.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace uavcov {

namespace {

/// Flow-substrate metrics (docs/OBSERVABILITY.md).  `probes` is the
/// counter tests/obs_test.cpp cross-checks against ApproAlgStats::probes:
/// IncrementalAssignment::probe() is its only increment site, so the two
/// counts must agree exactly.
struct AssignmentMetrics {
  obs::Counter builds = obs::counter("core.assignment.builds");
  obs::Counter probes = obs::counter("core.assignment.probes");
  obs::Counter deploys = obs::counter("core.assignment.deploys");
  obs::Counter solves = obs::counter("core.assignment.solves");
  obs::Histogram probe_seconds =
      obs::histogram("core.assignment.probe_seconds");
  obs::Histogram solve_seconds =
      obs::histogram("core.assignment.solve_seconds");
};

const AssignmentMetrics& assignment_metrics() {
  static const AssignmentMetrics metrics;
  return metrics;
}

}  // namespace

AssignmentResult solve_assignment(const Scenario& scenario,
                                  const CoverageModel& coverage,
                                  std::span<const Deployment> deployments) {
  assignment_metrics().solves.inc();
  const obs::ScopedTimer timer(assignment_metrics().solve_seconds);
  DinicFlow flow;
  const std::int32_t n = scenario.user_count();
  flow.reserve(n + static_cast<std::int32_t>(deployments.size()) + 2,
               /*edges=*/n * 4);
  const auto source = flow.add_node();
  const auto sink = flow.add_node();
  IdVector<UserTag, DinicFlow::FlowNode> user_node(
      static_cast<std::size_t>(n));
  for (const UserId i : scenario.user_ids()) {
    user_node[i] = flow.add_node();
    flow.add_edge(source, user_node[i], 1);
  }
  // Remember (edge id → deployment index) for each user→UAV edge so the
  // integral flow can be read back as an assignment.
  IdVector<UserTag, std::vector<std::pair<DinicFlow::EdgeId, std::int32_t>>>
      edges_by_user(static_cast<std::size_t>(n));
  for (std::size_t d = 0; d < deployments.size(); ++d) {
    const Deployment& dep = deployments[d];
    const auto uav_node = flow.add_node();
    const std::int32_t cls = coverage.radio_class_of(dep.uav);
    for (const UserId u : coverage.eligible_users(dep.loc, cls)) {
      const auto e = flow.add_edge(user_node[u], uav_node, 1);
      edges_by_user[u].emplace_back(e, static_cast<std::int32_t>(d));
    }
    flow.add_edge(uav_node, sink,
                  coverage.flat().uav_capacity()[dep.uav.index()]);
  }

  AssignmentResult result;
  result.served = flow.augment(source, sink);
  result.user_to_deployment.assign(static_cast<std::size_t>(n), -1);
  for (const UserId u : scenario.user_ids()) {
    for (const auto& [e, d] : edges_by_user[u]) {
      if (flow.edge_flow(e) == 1) {
        result.user_to_deployment[u] = d;
        break;
      }
    }
  }
  return result;
}

IncrementalAssignment::IncrementalAssignment(const Scenario& scenario,
                                             const CoverageModel& coverage)
    : scenario_(scenario), coverage_(coverage) {
  assignment_metrics().builds.inc();
  const std::int32_t n = scenario.user_count();
  flow_.reserve(n + scenario.uav_count() + 2, n * 4);
  source_ = flow_.add_node();
  sink_ = flow_.add_node();
  user_node_.resize(static_cast<std::size_t>(n));
  for (const UserId i : scenario.user_ids()) {
    user_node_[i] = flow_.add_node();
    flow_.add_edge(source_, user_node_[i], 1);
  }
}

std::int64_t IncrementalAssignment::add_uav_and_augment(UavId k,
                                                        LocationId loc) {
  const auto uav_node = flow_.add_node();
  const std::int32_t cls = coverage_.radio_class_of(k);
  for (const UserId u : coverage_.eligible_users(loc, cls)) {
    flow_.add_edge(user_node_[u], uav_node, 1);
  }
  flow_.add_edge(uav_node, sink_, coverage_.flat().uav_capacity()[k.index()]);
  return flow_.augment(source_, sink_);
}

std::int64_t IncrementalAssignment::probe(UavId k, LocationId loc) {
  assignment_metrics().probes.inc();
  const obs::ScopedTimer timer(assignment_metrics().probe_seconds);
  const auto cp = flow_.checkpoint();
  const std::int64_t gain = add_uav_and_augment(k, loc);
  flow_.rollback(cp);
  return gain;
}

std::int64_t IncrementalAssignment::deploy(UavId k, LocationId loc) {
  assignment_metrics().deploys.inc();
  const std::int64_t gain = add_uav_and_augment(k, loc);
  deployments_.push_back({k, loc});
  served_ += gain;
  return gain;
}

IncrementalAssignment::Scope IncrementalAssignment::begin_scope() {
  return Scope{flow_.checkpoint(), deployments_.size(), served_};
}

void IncrementalAssignment::end_scope(const Scope& scope) {
  flow_.rollback(scope.checkpoint);
  UAVCOV_CHECK_MSG(deployments_.size() >= scope.deployment_count,
                   "scope misuse: deployments shrank");
  deployments_.resize(scope.deployment_count);
  served_ = scope.served;
}

}  // namespace uavcov
