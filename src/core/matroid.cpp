#include "core/matroid.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "graph/bfs.hpp"

namespace uavcov {

PartitionMatroid::PartitionMatroid(std::int32_t uav_count)
    : used_(static_cast<std::size_t>(uav_count), false) {
  UAVCOV_CHECK_MSG(uav_count >= 0, "uav count must be nonnegative");
}

bool PartitionMatroid::can_add(UavId uav) const {
  UAVCOV_DCHECK(uav.valid() && uav.index() < used_.size());
  return !used_[uav.index()];
}

void PartitionMatroid::add(UavId uav) {
  UAVCOV_CHECK_MSG(can_add(uav), "UAV already used");
  used_[uav.index()] = true;
  ++size_;
}

void PartitionMatroid::remove(UavId uav) {
  UAVCOV_CHECK_MSG(!can_add(uav), "UAV not in the set");
  used_[uav.index()] = false;
  --size_;
}

void PartitionMatroid::clear() {
  std::fill(used_.begin(), used_.end(), false);
  size_ = 0;
}

HopBudgetMatroid::HopBudgetMatroid(std::vector<std::int32_t> hop_distance,
                                   std::vector<std::int64_t> quotas)
    : hop_distance_(std::move(hop_distance)), quotas_(std::move(quotas)) {
  UAVCOV_CHECK_MSG(!quotas_.empty(), "quota vector must contain Q_0");
  for (std::size_t h = 1; h < quotas_.size(); ++h) {
    UAVCOV_CHECK_MSG(quotas_[h] <= quotas_[h - 1],
                     "quotas must be nonincreasing in h");
  }
  count_at_least_.assign(quotas_.size(), 0);
}

bool HopBudgetMatroid::can_add(LocationId v) const {
  UAVCOV_DCHECK(v.valid() && v.index() < hop_distance_.size());
  const std::int32_t d = hop_distance_[v.index()];
  if (d == kUnreachable || d > hmax()) return false;
  for (std::int32_t h = 0; h <= d; ++h) {
    if (count_at_least_[static_cast<std::size_t>(h)] + 1 >
        quotas_[static_cast<std::size_t>(h)]) {
      return false;
    }
  }
  return true;
}

void HopBudgetMatroid::add(LocationId v) {
  UAVCOV_CHECK_MSG(can_add(v), "adding would violate a hop quota");
  const std::int32_t d = hop_distance_[v.index()];
  for (std::int32_t h = 0; h <= d; ++h) {
    ++count_at_least_[static_cast<std::size_t>(h)];
  }
  ++size_;
}

void HopBudgetMatroid::remove(LocationId v) {
  const std::int32_t d = hop_distance_[v.index()];
  UAVCOV_CHECK_MSG(d != kUnreachable && d <= hmax() && size_ > 0,
                   "removing element that cannot be in the set");
  for (std::int32_t h = 0; h <= d; ++h) {
    auto& c = count_at_least_[static_cast<std::size_t>(h)];
    UAVCOV_CHECK_MSG(c > 0, "count underflow");
    --c;
  }
  --size_;
}

void HopBudgetMatroid::clear() {
  std::fill(count_at_least_.begin(), count_at_least_.end(), 0);
  size_ = 0;
}

bool HopBudgetMatroid::is_independent(std::span<const LocationId> set) const {
  std::vector<std::int64_t> count(quotas_.size(), 0);
  for (LocationId v : set) {
    const std::int32_t d = hop_distance_[v.index()];
    if (d == kUnreachable || d > hmax()) return false;
    for (std::int32_t h = 0; h <= d; ++h) {
      if (++count[static_cast<std::size_t>(h)] >
          quotas_[static_cast<std::size_t>(h)]) {
        return false;
      }
    }
  }
  return true;
}

std::string check_matroid_axioms(
    std::int32_t ground_size,
    const std::function<bool(std::span<const std::int32_t>)>& independent) {
  UAVCOV_CHECK_MSG(ground_size >= 0 && ground_size <= 16,
                   "axiom check limited to 16 elements");
  const std::uint32_t subsets = 1u << ground_size;
  const auto members = [](std::uint32_t mask) {
    std::vector<std::int32_t> out;
    for (std::int32_t e = 0; mask; ++e, mask >>= 1) {
      if (mask & 1u) out.push_back(e);
    }
    return out;
  };
  std::vector<bool> indep(subsets);
  for (std::uint32_t mask = 0; mask < subsets; ++mask) {
    indep[mask] = independent(members(mask));
  }
  const auto describe = [&members](const char* axiom, std::uint32_t a,
                             std::uint32_t b) {
    std::ostringstream os;
    os << axiom << " violated; sets:";
    for (std::int32_t e : members(a)) os << ' ' << e;
    os << " |";
    for (std::int32_t e : members(b)) os << ' ' << e;
    return os.str();
  };

  // (i) the empty set is independent.
  if (!indep[0]) return "empty set is not independent";

  // (ii) hereditary: every subset of an independent set is independent.
  for (std::uint32_t mask = 0; mask < subsets; ++mask) {
    if (!indep[mask]) continue;
    for (std::int32_t e = 0; e < ground_size; ++e) {
      const std::uint32_t bit = 1u << e;
      if ((mask & bit) && !indep[mask ^ bit]) {
        return describe("hereditary", mask, mask ^ bit);
      }
    }
  }

  // (iii) augmentation: |A| > |B|, both independent ⇒ some e ∈ A\B with
  // B ∪ {e} independent.
  for (std::uint32_t a = 0; a < subsets; ++a) {
    if (!indep[a]) continue;
    for (std::uint32_t b = 0; b < subsets; ++b) {
      if (!indep[b]) continue;
      if (__builtin_popcount(a) <= __builtin_popcount(b)) continue;
      bool augmented = false;
      std::uint32_t diff = a & ~b;
      while (diff) {
        const std::uint32_t bit = diff & (~diff + 1);
        if (indep[b | bit]) {
          augmented = true;
          break;
        }
        diff ^= bit;
      }
      if (!augmented) return describe("augmentation", a, b);
    }
  }
  return "";
}

}  // namespace uavcov
