#include "core/refine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/assignment.hpp"
#include "graph/bfs.hpp"

namespace uavcov {

RefineStats refine_solution(const Scenario& scenario,
                            const CoverageModel& coverage, Solution& solution,
                            const RefineParams& params) {
  UAVCOV_CHECK_MSG(params.max_rounds >= 1, "need at least one round");
  validate_solution(scenario, coverage, solution);

  RefineStats stats;
  stats.served_before = solution.served;
  if (solution.deployments.empty()) {
    stats.served_after = solution.served;
    return stats;
  }

  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  std::vector<Deployment> deps = solution.deployments;
  std::int64_t best_served = solution.served;
  std::vector<bool> occupied(static_cast<std::size_t>(scenario.grid.size()),
                             false);
  for (const Deployment& d : deps) {
    occupied[d.loc.index()] = true;
  }
  const auto evaluate = [&](const std::vector<Deployment>& candidate) {
    return solve_assignment(scenario, coverage, candidate).served;
  };
  const auto connected = [&](const std::vector<Deployment>& candidate) {
    return deployments_connected(scenario, candidate);
  };

  for (std::int32_t round = 0; round < params.max_rounds; ++round) {
    bool improved = false;

    if (params.enable_relocate) {
      for (std::size_t i = 0; i < deps.size(); ++i) {
        const LocationId from = deps[i].loc;
        LocationId best_to = kInvalidLocation;
        std::int64_t best_gain_served = best_served;
        for (const NodeId nb : g.neighbors(to_node(from))) {
          const LocationId to = to_cell(nb);
          if (occupied[to.index()]) continue;
          // Cheap precheck: only consider cells that can cover someone,
          // unless the UAV currently serves nobody (pure relay moves are
          // allowed but cannot improve served count alone).
          if (coverage.max_coverage(to) == 0) continue;
          deps[i].loc = to;
          if (connected(deps)) {
            const std::int64_t served = evaluate(deps);
            if (served > best_gain_served) {
              best_gain_served = served;
              best_to = to;
            }
          }
          deps[i].loc = from;
        }
        if (best_to.valid()) {
          occupied[from.index()] = false;
          occupied[best_to.index()] = true;
          deps[i].loc = best_to;
          best_served = best_gain_served;
          ++stats.relocations;
          improved = true;
        }
      }
    }

    if (params.enable_swap) {
      for (std::size_t i = 0; i < deps.size(); ++i) {
        for (std::size_t j = i + 1; j < deps.size(); ++j) {
          // Swapping identical UAVs cannot change the assignment value.
          const UavSpec& a =
              scenario.fleet[deps[i].uav];
          const UavSpec& b =
              scenario.fleet[deps[j].uav];
          if (a.capacity == b.capacity &&
              a.user_range_m == b.user_range_m &&
              a.radio.tx_power_dbm == b.radio.tx_power_dbm) {
            continue;
          }
          std::swap(deps[i].loc, deps[j].loc);
          const std::int64_t served = evaluate(deps);
          if (served > best_served) {
            best_served = served;
            ++stats.swaps;
            improved = true;
          } else {
            std::swap(deps[i].loc, deps[j].loc);  // revert
          }
        }
      }
    }

    if (!improved) break;
  }

  const AssignmentResult assignment =
      solve_assignment(scenario, coverage, deps);
  UAVCOV_CHECK_MSG(assignment.served == best_served,
                   "refine bookkeeping diverged from the assignment value");
  solution.deployments = std::move(deps);
  solution.user_to_deployment = assignment.user_to_deployment;
  solution.served = assignment.served;
  stats.served_after = solution.served;
  UAVCOV_CHECK_MSG(stats.served_after >= stats.served_before,
                   "refinement must never lose served users");
  return stats;
}

}  // namespace uavcov
