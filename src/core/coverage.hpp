// Coverage precomputation: which users can each (hovering location, UAV
// radio class) pair serve?
//
// Eligibility of user u_i at location v_j under UAV k (paper edge rule):
//   distance(u_i, center(v_j)) <= R_user^k   AND   r_ij >= r_i^min.
// Both depend on the UAV only through its radio parameters and R_user, so
// UAVs are grouped into *radio classes*; eligibility lists are computed
// once per (location, class) and shared by all same-class UAVs.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/flat.hpp"
#include "core/scenario.hpp"

namespace uavcov {

class CoverageModel {
 public:
  explicit CoverageModel(const Scenario& scenario);

  /// The flat SoA/CSR view the eligibility lists are derived from —
  /// shared with assignment and the baselines so the geometric pass runs
  /// once per scenario.
  const FlatScenario& flat() const { return flat_; }

  /// Number of distinct radio classes in the fleet (often 1 or 2).
  std::int32_t radio_class_count() const {
    return flat_.radio_class_count();
  }

  /// Radio class of UAV k.
  std::int32_t radio_class_of(UavId k) const {
    return flat_.radio_class_of(k);
  }

  /// Users eligible to be served by a class-`c` UAV at location `v`
  /// (sorted by UserId ascending).
  std::span<const UserId> eligible_users(LocationId v, std::int32_t c) const;

  /// max over classes of |eligible_users(v, c)| — used as the lazy-greedy
  /// initial upper bound and for candidate pruning.
  std::int32_t max_coverage(LocationId v) const { return max_coverage_[v]; }

  /// Locations with max_coverage > 0, sorted by coverage descending (ties
  /// by id).  If `cap > 0`, only the best `cap` are returned.
  std::vector<LocationId> candidate_locations(std::int32_t cap = 0) const;

  /// True if user `u` is eligible under class `c` at location `v` —
  /// recomputed from geometry (used by validation, not the hot path).
  bool is_eligible(const Scenario& scenario, UserId u, LocationId v,
                   UavId k) const;

 private:
  const Scenario& scenario_;
  FlatScenario flat_;

  // eligible_[v * classes + c] → flat slice [begin, end) into users_flat_.
  std::vector<std::pair<std::int64_t, std::int64_t>> eligible_;
  std::vector<UserId> users_flat_;
  IdVector<CellTag, std::int32_t> max_coverage_;
};

}  // namespace uavcov
