#include "core/segment_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace uavcov {

std::int64_t relay_upper_bound(std::int32_t s, const SegmentBudgets& p) {
  UAVCOV_CHECK_MSG(s >= 1, "s must be >= 1");
  UAVCOV_CHECK_MSG(static_cast<std::int32_t>(p.size()) == s + 1,
                   "expected s + 1 segment budgets");
  for (std::int64_t pi : p) UAVCOV_CHECK_MSG(pi >= 0, "budgets must be >= 0");
  std::int64_t g = s;
  for (std::int32_t i = 2; i <= s; ++i) {
    const std::int64_t pi = p[SegmentId{i - 1}];
    g += pi;                                     // seed-to-seed connectors
    g += (pi * pi + 2 * pi + (pi % 2)) / 4;      // relay chains, middle segs
  }
  const std::int64_t p1 = p.front();
  const std::int64_t ps1 = p.back();
  g += p1 * (p1 + 1) / 2;                        // relay chains, end segment
  g += ps1 * (ps1 + 1) / 2;
  return g;
}

std::int32_t hop_limit(std::int32_t s, const SegmentBudgets& p) {
  UAVCOV_CHECK_MSG(static_cast<std::int32_t>(p.size()) == s + 1,
                   "expected s + 1 segment budgets");
  std::int64_t h = std::max(p.front(), p.back());
  for (std::int32_t i = 2; i <= s; ++i) {
    h = std::max(h, (p[SegmentId{i - 1}] + 1) / 2);  // ⌈p/2⌉
  }
  return static_cast<std::int32_t>(h);
}

std::vector<std::int64_t> hop_quotas(std::int32_t s, std::int64_t L,
                                     const SegmentBudgets& p) {
  UAVCOV_CHECK_MSG(static_cast<std::int32_t>(p.size()) == s + 1,
                   "expected s + 1 segment budgets");
  std::int64_t budget_total = 0;
  for (std::int64_t pi : p) budget_total += pi;
  UAVCOV_CHECK_MSG(budget_total == L - s,
                   "budgets must sum to L - s (Eq. 1 precondition)");
  const std::int32_t hmax = hop_limit(s, p);
  std::vector<std::int64_t> q(static_cast<std::size_t>(hmax) + 1);
  q[0] = L;
  for (std::int32_t h = 1; h <= hmax; ++h) {
    std::int64_t qh = std::max<std::int64_t>(p.front() - (h - 1), 0) +
                      std::max<std::int64_t>(p.back() - (h - 1), 0);
    for (std::int32_t i = 2; i <= s; ++i) {
      qh += std::max<std::int64_t>(p[SegmentId{i - 1}] - 2 * (h - 1), 0);
    }
    q[static_cast<std::size_t>(h)] = qh;
  }
  return q;
}

namespace {
/// Minimum of g(L, ·) over the paper's balanced budget profiles, returning
/// the minimizing budgets.  O(s · L) profiles, O(s) evaluation each.
std::pair<std::int64_t, std::vector<std::int64_t>> min_relay_bound(
    std::int32_t s, std::int64_t L) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best_p;
  const auto consider = [&](std::vector<std::int64_t> p) {
    const std::int64_t g = relay_upper_bound(s, p);
    if (g < best) {
      best = g;
      best_p = std::move(p);
    }
  };
  const std::int64_t D = L - s;  // nodes to distribute over s + 1 segments
  if (s == 1) {
    // No middle segments: split D between the two end segments as evenly
    // as possible (g is convex in each end budget).
    consider({(D + 1) / 2, D / 2});
  } else {
    // Middle budgets take values p or p+1 (j of them get the +1); the ends
    // split the remainder evenly (§III-D's balancedness argument).
    for (std::int64_t p_val = 0; p_val <= D; ++p_val) {
      for (std::int32_t j = 0; j <= s - 2; ++j) {
        const std::int64_t middle_sum = (s - 1) * p_val + j;
        if (middle_sum > D) continue;
        std::vector<std::int64_t> budgets(static_cast<std::size_t>(s) + 1, 0);
        for (std::int32_t i = 2; i <= s; ++i) {
          budgets[static_cast<std::size_t>(i - 1)] =
              (i - 2 < j) ? p_val + 1 : p_val;
        }
        const std::int64_t rest = D - middle_sum;
        budgets.front() = (rest + 1) / 2;
        budgets.back() = rest / 2;
        consider(std::move(budgets));
      }
    }
  }
  return {best, std::move(best_p)};
}
}  // namespace

SegmentPlan compute_segment_plan(std::int32_t K, std::int32_t s) {
  UAVCOV_CHECK_MSG(s >= 1, "s must be >= 1");
  UAVCOV_CHECK_MSG(K >= s, "need at least s UAVs (K >= s)");

  SegmentPlan plan;
  plan.s = s;
  plan.K = K;

  // Binary search for the largest feasible L.  Invariant: `lo` feasible
  // (g(lo) <= K; lo = s gives g = s <= K), `hi` infeasible (g >= L > K at
  // L = K + 1).  Note: the paper's Algorithm 1 uses [s, K] and can miss
  // L = K when K is small; the half-open bracket fixes that corner while
  // keeping the same O(s^2 K log K) cost.
  std::int64_t lo = s, hi = static_cast<std::int64_t>(K) + 1;
  auto [g_lo, p_lo] = min_relay_bound(s, lo);
  UAVCOV_CHECK_MSG(g_lo <= K, "L = s must be feasible");
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    auto [g_mid, p_mid] = min_relay_bound(s, mid);
    if (g_mid <= K) {
      lo = mid;
      g_lo = g_mid;
      p_lo = std::move(p_mid);
    } else {
      hi = mid;
    }
  }

  plan.L_max = static_cast<std::int32_t>(lo);
  plan.p = std::move(p_lo);
  plan.relay_bound = g_lo;
  plan.h_max = hop_limit(s, plan.p);
  plan.quotas = hop_quotas(s, lo, plan.p);
  return plan;
}

std::int64_t min_relay_bound_brute_force(std::int32_t s, std::int64_t L) {
  UAVCOV_CHECK_MSG(s >= 1 && L >= s, "need L >= s >= 1");
  UAVCOV_CHECK_MSG(L - s <= 24 && s <= 6, "brute force limited to tiny inputs");
  std::vector<std::int64_t> p(static_cast<std::size_t>(s) + 1, 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // Enumerate every composition of L - s into s + 1 nonnegative parts.
  const auto recurse = [&](auto&& self, std::size_t idx,
                     std::int64_t remaining) -> void {
    if (idx + 1 == p.size()) {
      p[idx] = remaining;
      best = std::min(best, relay_upper_bound(s, p));
      return;
    }
    for (std::int64_t v = 0; v <= remaining; ++v) {
      p[idx] = v;
      self(self, idx + 1, remaining - v);
    }
  };
  recurse(recurse, 0, L - s);
  return best;
}

double theoretical_approximation_ratio(std::int32_t K, std::int32_t s) {
  UAVCOV_CHECK_MSG(K >= 2 && s >= 1, "need K >= 2, s >= 1");
  const double under_sqrt = 4.0 * s * K + 4.0 * s * s - 8.5 * s;
  UAVCOV_CHECK_MSG(under_sqrt >= 0, "ratio undefined for these K, s");
  const auto l1 = static_cast<std::int64_t>(std::floor(std::sqrt(under_sqrt))) -
                  2 * static_cast<std::int64_t>(s) + 2;
  UAVCOV_CHECK_MSG(l1 >= 1, "L_1 must be positive");
  const auto delta = (2 * static_cast<std::int64_t>(K) - 2 + l1 - 1) / l1;
  return 1.0 / (3.0 * static_cast<double>(std::max<std::int64_t>(delta, 1)));
}

}  // namespace uavcov
