// The two matroids of §III-B / §III-C.
//
// M1 (partition matroid on N = X × V): a set of (uav, location) pairs is
// independent iff no UAV appears twice.  (Location uniqueness is enforced
// separately by the greedy, which never revisits a chosen cell.)
//
// M2 (hop-budget / laminar matroid on V): fix the s seed nodes V*_j and the
// per-hop quotas Q_0..Q_hmax of Eq. (1).  With d(v) = min hops from v to
// the seed set, a subset V' ⊆ V is independent iff
//     every v ∈ V' has d(v) <= hmax, and
//     for each h: |{v ∈ V' : d(v) >= h}| <= Q_h.
// The sets {v : d(v) >= h} are nested (S_0 ⊇ S_1 ⊇ …), so the constraints
// form a laminar family — a laminar matroid.  Independence tests are O(hmax)
// using maintained counters.
//
// `check_matroid_axioms` verifies hereditary + augmentation exhaustively on
// small ground sets; tests run it against both M1 and M2.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "core/scenario.hpp"

namespace uavcov {

/// M1: each UAV may be used at most once.  Elements are (uav, location)
/// pairs, but only the uav component matters for independence.
class PartitionMatroid {
 public:
  explicit PartitionMatroid(std::int32_t uav_count);

  /// Could (uav, ·) be added to the current independent set?
  bool can_add(UavId uav) const;

  void add(UavId uav);
  void remove(UavId uav);
  void clear();

  std::int32_t size() const { return size_; }

 private:
  std::vector<bool> used_;
  std::int32_t size_ = 0;
};

/// M2 over location hop distances.  Construct with the hop-distance vector
/// d (multi-source BFS from the seeds) and the quota vector Q (index h,
/// size hmax + 1, Q[0] = L).
class HopBudgetMatroid {
 public:
  HopBudgetMatroid(std::vector<std::int32_t> hop_distance,
                   std::vector<std::int64_t> quotas);

  std::int32_t hmax() const {
    return static_cast<std::int32_t>(quotas_.size()) - 1;
  }

  /// Hop distance of location v to the seed set (kUnreachable if none).
  std::int32_t hop_distance(LocationId v) const {
    return hop_distance_[v.index()];
  }

  /// Quota Q_h of Eq. (1), 0 <= h <= hmax (read by the invariant auditors).
  std::int64_t quota(std::int32_t h) const {
    UAVCOV_DCHECK(h >= 0 && h <= hmax());
    return quotas_[static_cast<std::size_t>(h)];
  }

  /// Independence oracle for the *current set plus v*; O(hmax).
  bool can_add(LocationId v) const;

  void add(LocationId v);
  void remove(LocationId v);
  void clear();

  std::int32_t size() const { return size_; }

  /// Stateless oracle: is the whole set independent?  (Used by tests.)
  bool is_independent(std::span<const LocationId> set) const;

 private:
  std::vector<std::int32_t> hop_distance_;
  std::vector<std::int64_t> quotas_;
  std::vector<std::int64_t> count_at_least_;  // per h: |{chosen : d >= h}|
  std::int32_t size_ = 0;
};

/// Exhaustively verifies the three matroid axioms over ground set
/// {0..ground_size-1} with the given independence oracle (subsets up to
/// 2^ground_size — test sizes only).  Returns an empty string if all hold,
/// otherwise a description of the first violated axiom.
std::string check_matroid_axioms(
    std::int32_t ground_size,
    const std::function<bool(std::span<const std::int32_t>)>& independent);

}  // namespace uavcov
