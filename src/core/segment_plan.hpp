// Algorithm 1 (§III-D): choose L_max and the optimal segment budgets
// p*_1..p*_{s+1}.
//
// Background: the analysis walks an Euler subpath P_j with L nodes, of
// which s become enumerated "seeds" and the remaining L − s fall into the
// s + 1 inter-seed segments with p_1..p_{s+1} nodes (Fig. 2(d)).  Stitching
// a greedy solution that respects those budgets back into one connected
// network costs at most (Lemma 2 / Eq. 2)
//
//   g(L, p) = s + Σ_{i=2..s} p_i + p_1(p_1+1)/2
//             + Σ_{i=2..s} (p_i² + 2p_i + (p_i mod 2)) / 4
//             + p_{s+1}(p_{s+1}+1)/2
//
// UAVs, which must stay ≤ K.  Algorithm 1 binary-searches the largest
// feasible L and, per L, minimizes g over the (balanced) budget profiles.
// The per-hop quotas Q_h of Eq. (1) then parameterize matroid M2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/typed.hpp"

namespace uavcov {

/// The s + 1 inter-seed segment budgets, indexed by SegmentId: segment i
/// (0-based) holds the paper's p_{i+1}.
using SegmentBudgets = IdVector<SegmentTag, std::int64_t>;

/// Output of Algorithm 1 plus derived quantities used by Algorithm 2.
struct SegmentPlan {
  std::int32_t s = 0;                 ///< number of enumerated seeds.
  std::int32_t K = 0;                 ///< fleet size.
  std::int32_t L_max = 0;             ///< nodes the greedy may select.
  SegmentBudgets p;                   ///< s + 1 budgets p*_1..p*_{s+1}.
  std::int32_t h_max = 0;             ///< max allowed hop distance to seeds.
  std::vector<std::int64_t> quotas;   ///< Q_0..Q_hmax (Eq. 1), Q_0 = L_max.
  std::int64_t relay_bound = 0;       ///< g(L_max, p*) ≤ K.
};

/// Eq. (2): upper bound on deployed UAVs after relay stitching.
std::int64_t relay_upper_bound(std::int32_t s, const SegmentBudgets& p);

/// Eq. (1): quota vector Q_0..Q_hmax for budgets `p` and total L.
std::vector<std::int64_t> hop_quotas(std::int32_t s, std::int64_t L,
                                     const SegmentBudgets& p);

/// h_max = max{p_1, p_{s+1}, max_{i=2..s} ⌈p_i/2⌉}.
std::int32_t hop_limit(std::int32_t s, const SegmentBudgets& p);

/// Algorithm 1.  Preconditions: 1 <= s <= K.
SegmentPlan compute_segment_plan(std::int32_t K, std::int32_t s);

/// Reference implementation for tests: exhaustively minimizes g(L, p) over
/// *all* compositions p_1+..+p_{s+1} = L − s (exponential; small inputs).
std::int64_t min_relay_bound_brute_force(std::int32_t s, std::int64_t L);

/// Theorem 1's closed form L_1 = ⌊sqrt(4sK + 4s² − 8.5s)⌋ − 2s + 2 and the
/// resulting approximation ratio 1 / (3·⌈(2K−2)/L_1⌉).
double theoretical_approximation_ratio(std::int32_t K, std::int32_t s);

}  // namespace uavcov
