// Algorithm 2 (§III-E): the O(sqrt(s/K))-approximation for the maximum
// connected coverage problem.
//
// Pipeline per seed subset V*_j ⊆ V, |V*_j| = s:
//   1. hop distances d(v) to the seeds (multi-source BFS over G);
//   2. greedy submodular maximization under M1 (each UAV once, capacities
//      descending) ∩ M2 (hop quotas Q_h) — the 1/(ρ+1) = 1/3 greedy of
//      Fisher–Nemhauser–Wolsey, with lazy evaluation and incremental
//      max-flow marginal gains;
//   3. relay stitching (MST over pairwise hop distances, union of shortest
//      paths); reject if the stitched network needs more than K UAVs;
//   4. deploy the leftover (small-capacity) UAVs on the relay cells and
//      evaluate the served-user count.
// The best subset wins; its deployment gets a final optimal assignment.
//
// Scaling knobs (all default to the paper-faithful behavior except the
// lossless seed-pair pruning — see DESIGN.md §3):
//   * candidate_cap    — keep only the top-M locations by coverable users
//                        (0 = every location that covers at least 1 user);
//   * prune_seed_pairs — skip subsets with pairwise hop distance > L_max−1
//                        (lossless for the approximation guarantee: the
//                        seeds used by the analysis lie on one Euler
//                        subpath with at most L_max nodes);
//   * lazy_greedy      — lazy vs plain greedy evaluation (same output).
#pragma once

#include "core/appro_alg_stats.hpp"
#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/segment_plan.hpp"
#include "core/solution.hpp"

namespace uavcov {

struct ApproAlgParams {
  std::int32_t s = 3;
  std::int32_t candidate_cap = 0;
  bool prune_seed_pairs = true;
  bool lazy_greedy = true;
  /// Ablation knob: deploy smallest-capacity UAVs first instead of the
  /// paper's largest-first rule.  Quantifies how much of approAlg's win
  /// comes from steering big UAVs onto coverage spots (§I's argument).
  bool capacity_ascending = false;
  /// Engineering extension beyond the paper (which grounds the K − q_j
  /// UAVs left after relay stitching): greedily deploy them on cells
  /// adjacent to the winning network while the marginal gain is positive.
  /// Connectivity is preserved by construction.  Set false for the
  /// paper-faithful behavior; the ablation bench measures the difference.
  bool fill_leftover_uavs = true;
  /// Safety valve for pathological inputs: stop after this many evaluated
  /// subsets (0 = unlimited).  Deterministic: enumeration order is fixed.
  std::int64_t max_seed_subsets = 0;
  /// Run the deep invariant auditors (src/analysis/audit.hpp) on every
  /// greedy round and on the final solution, throwing AuditError on any
  /// violation.  Expensive; also enabled process-wide by the UAVCOV_AUDIT
  /// environment variable regardless of this field.
  bool audit = false;
};

/// Runs Algorithm 2.  `stats`, when non-null, receives search counters and
/// the Algorithm 1 plan (used by the benches and tests).
Solution appro_alg(const Scenario& scenario, const ApproAlgParams& params,
                   ApproAlgStats* stats = nullptr);

/// Overload reusing a precomputed coverage model (the model only depends on
/// the scenario, so sweeps over s reuse it).
Solution appro_alg(const Scenario& scenario, const CoverageModel& coverage,
                   const ApproAlgParams& params,
                   ApproAlgStats* stats = nullptr);

}  // namespace uavcov
