// Algorithm 2 (§III-E): the O(sqrt(s/K))-approximation for the maximum
// connected coverage problem.
//
// Pipeline per seed subset V*_j ⊆ V, |V*_j| = s:
//   1. hop distances d(v) to the seeds (multi-source BFS over G);
//   2. greedy submodular maximization under M1 (each UAV once, capacities
//      descending) ∩ M2 (hop quotas Q_h) — the 1/(ρ+1) = 1/3 greedy of
//      Fisher–Nemhauser–Wolsey, with lazy evaluation and incremental
//      max-flow marginal gains;
//   3. relay stitching (MST over pairwise hop distances, union of shortest
//      paths); reject if the stitched network needs more than K UAVs;
//   4. deploy the leftover (small-capacity) UAVs on the relay cells and
//      evaluate the served-user count.
// The best subset wins; its deployment gets a final optimal assignment.
//
// Scaling knobs (all default to the paper-faithful behavior except the
// lossless seed-pair pruning — see DESIGN.md §3):
//   * candidate_cap    — keep only the top-M locations by coverable users
//                        (0 = every location that covers at least 1 user);
//   * prune_seed_pairs — skip subsets with pairwise hop distance > L_max−1
//                        (lossless for the approximation guarantee: the
//                        seeds used by the analysis lie on one Euler
//                        subpath with at most L_max nodes);
//   * lazy_greedy      — lazy vs plain greedy evaluation (same output).
#pragma once

#include "core/appro_alg_stats.hpp"
#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/segment_plan.hpp"
#include "core/solution.hpp"

namespace uavcov {

struct ApproAlgParams {
  std::int32_t s = 3;
  std::int32_t candidate_cap = 0;
  bool prune_seed_pairs = true;
  bool lazy_greedy = true;
  /// Ablation knob: deploy smallest-capacity UAVs first instead of the
  /// paper's largest-first rule.  Quantifies how much of approAlg's win
  /// comes from steering big UAVs onto coverage spots (§I's argument).
  bool capacity_ascending = false;
  /// Engineering extension beyond the paper (which grounds the K − q_j
  /// UAVs left after relay stitching): greedily deploy them on cells
  /// adjacent to the winning network while the marginal gain is positive.
  /// Connectivity is preserved by construction.  Set false for the
  /// paper-faithful behavior; the ablation bench measures the difference.
  bool fill_leftover_uavs = true;
  /// Safety valve for pathological inputs: stop after this many evaluated
  /// subsets (0 = unlimited).  Deterministic: enumeration order is fixed.
  std::int64_t max_seed_subsets = 0;
  /// Worker threads for the seed-subset search: 0 = hardware concurrency,
  /// 1 = the serial path, N > 1 = a fixed pool of N workers.  The parallel
  /// search is bit-identical to the serial one (each worker owns its flow
  /// network; the reduction is deterministic — best served count wins,
  /// ties broken by enumeration index), so this is purely a wall-clock
  /// knob.  See DESIGN.md §7.
  std::int32_t threads = 1;
  /// Run the deep invariant auditors (src/analysis/audit.hpp) on every
  /// greedy round and on the final solution, throwing AuditError on any
  /// violation.  Expensive; also enabled process-wide by the UAVCOV_AUDIT
  /// environment variable regardless of this field.
  bool audit = false;
  /// Wall-clock budget for the whole solve [s]; 0 = unlimited (the
  /// default, bit-identical to the pre-deadline behavior).  The search
  /// checks the budget cooperatively between seed subsets and between
  /// greedy rounds and, once expired, returns the best *valid* solution
  /// found so far with stats.deadline_hit = true.  At least one subset is
  /// always evaluated, so the result is never gratuitously empty; a run
  /// whose budget never binds is bit-identical to an unbudgeted run.
  /// Used by the resilience repair controller (docs/RESILIENCE.md) to
  /// bound repair latency in emergency operation.
  double time_budget_s = 0.0;

  /// Throws std::invalid_argument on any out-of-domain field (s < 1,
  /// candidate_cap < 0, threads < 0, max_seed_subsets < 0,
  /// time_budget_s < 0 or non-finite).  Called at every appro_alg / solve
  /// entry, so bad parameters fail loudly instead of being silently
  /// clamped.
  void validate() const;
};

/// Runs Algorithm 2.  `stats`, when non-null, receives search counters and
/// the Algorithm 1 plan (used by the benches and tests).
Solution appro_alg(const Scenario& scenario, const ApproAlgParams& params,
                   ApproAlgStats* stats = nullptr);

/// Overload reusing a precomputed coverage model (the model only depends on
/// the scenario, so sweeps over s reuse it).
Solution appro_alg(const Scenario& scenario, const CoverageModel& coverage,
                   const ApproAlgParams& params,
                   ApproAlgStats* stats = nullptr);

/// Unified solver entry point: every solver in the system — approAlg here
/// and each baseline in src/baselines/ — exposes the same
/// solve(scenario, coverage, params, stats) shape, dispatched on the
/// params type, so sweeps can share one precomputed CoverageModel across
/// all of them and call them generically.
inline Solution solve(const Scenario& scenario, const CoverageModel& coverage,
                      const ApproAlgParams& params,
                      ApproAlgStats* stats = nullptr) {
  return appro_alg(scenario, coverage, params, stats);
}

}  // namespace uavcov
