#include "core/relay.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/bfs.hpp"
#include "graph/mst.hpp"

namespace uavcov {

std::optional<RelayPlan> stitch_connected(const Graph& g,
                                          std::span<const CellId> chosen) {
  const auto k = static_cast<NodeId>(chosen.size());
  RelayPlan plan;
  plan.nodes.assign(chosen.begin(), chosen.end());
  if (k <= 1) return plan;

  // Pairwise hop distances via one BFS per chosen node, and BFS trees for
  // path reconstruction.
  std::vector<BfsTree> trees;
  trees.reserve(static_cast<std::size_t>(k));
  for (NodeId i = 0; i < k; ++i) {
    const NodeId src[] = {to_node(chosen[static_cast<std::size_t>(i)])};
    trees.push_back(bfs_tree(g, src));
  }
  std::vector<double> w(static_cast<std::size_t>(k) *
                        static_cast<std::size_t>(k));
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId j = 0; j < k; ++j) {
      const std::int32_t hops =
          trees[static_cast<std::size_t>(i)]
              .distance[chosen[static_cast<std::size_t>(j)].index()];
      w[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
        static_cast<std::size_t>(j)] =
          (i == j) ? 0.0
                   : (hops == kUnreachable ? kInfiniteWeight
                                           : static_cast<double>(hops));
    }
  }

  const auto parent = prim_mst_dense(w, k);
  if (!parent.has_value()) return std::nullopt;
  // An MST edge with infinite weight means a pair was unreachable.
  for (NodeId v = 1; v < k; ++v) {
    const NodeId p = (*parent)[static_cast<std::size_t>(v)];
    if (w[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
          static_cast<std::size_t>(p)] >= kInfiniteWeight) {
      return std::nullopt;
    }
  }

  // Union of the shortest paths realizing the MST edges.
  std::vector<bool> in_plan(static_cast<std::size_t>(g.node_count()), false);
  for (const CellId v : chosen) in_plan[v.index()] = true;
  for (NodeId v = 1; v < k; ++v) {
    const NodeId p = (*parent)[static_cast<std::size_t>(v)];
    // Walk the BFS-tree parents from chosen[v] back to chosen[p] (the BFS
    // rooted at chosen[p] reaches chosen[v]; follow its parent pointers).
    const BfsTree& tree = trees[static_cast<std::size_t>(p)];
    for (NodeId cur = to_node(chosen[static_cast<std::size_t>(v)]);
         cur != kNoParent; cur = tree.parent[static_cast<std::size_t>(cur)]) {
      if (!in_plan[static_cast<std::size_t>(cur)]) {
        in_plan[static_cast<std::size_t>(cur)] = true;
        plan.nodes.push_back(to_cell(cur));
        ++plan.relay_count;
      }
    }
  }
  return plan;
}

}  // namespace uavcov
