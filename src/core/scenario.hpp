// Problem instance model (§II-A): disaster area, ground users, candidate
// hovering grid, and the heterogeneous UAV fleet.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "channel/link_budget.hpp"
#include "common/typed.hpp"
#include "geometry/grid.hpp"
#include "geometry/vec.hpp"

namespace uavcov {

// UserId / UavId are the strongly-typed ids of common/typed.hpp; this
// header owns the containers they index.

/// A ground user: position on the z = 0 plane and minimum data-rate
/// requirement r_min (paper example: 2 kbps).
struct User {
  Vec2 pos;
  double min_rate_bps = 2e3;
};

/// One heterogeneous UAV: service capacity C_k (max simultaneous users),
/// its base station's radio, and its user communication radius R_user^k.
/// Heterogeneity = different capacities and possibly different radios
/// (paper: DJI Matrice 600 RTK vs 300 RTK payload classes).
struct UavSpec {
  std::int32_t capacity = 100;
  Radio radio{};
  double user_range_m = 500.0;
};

/// Full problem instance.  Aggregate — construct with designated
/// initializers; `grid` has no default (its dimensions are scenario data).
struct Scenario {
  Grid grid;                     ///< hovering plane partition (side λ cells).
  double altitude_m = 300.0;     ///< common hovering altitude H_uav.
  double uav_range_m = 600.0;    ///< UAV-to-UAV communication range R_uav.
  ChannelParams channel{};       ///< A2G channel model parameters.
  Receiver receiver{};           ///< user-side receiver constants.
  IdVector<UserTag, User> users;    ///< the n users U.
  IdVector<UavTag, UavSpec> fleet;  ///< the K UAVs, any order.

  std::int32_t user_count() const { return users.ssize(); }
  std::int32_t uav_count() const { return fleet.ssize(); }

  /// All user ids [0, n), for typed iteration.
  IdRange<UserId> user_ids() const { return users.ids(); }
  /// All UAV ids [0, K), for typed iteration.
  IdRange<UavId> uav_ids() const { return fleet.ids(); }

  /// Total fleet capacity (an upper bound on served users).
  std::int64_t total_capacity() const;

  /// Sanity-check the instance (throws ContractError on bad data):
  /// users inside the area, positive capacities/ranges, K >= 1, and
  /// R_user^k <= R_uav (paper §II-B).
  void validate() const;

  /// UAV indices sorted by capacity descending (ties by index).  Algorithm 2
  /// deploys in this order so large-capacity UAVs take the coverage spots.
  std::vector<UavId> uavs_by_capacity_desc() const;

  /// FNV-1a 64-bit digest of every field that defines the instance (grid
  /// dimensions, channel/receiver constants, all users and UAV specs, in
  /// declaration order).  Stable across platforms; used by the bench
  /// harness and golden regression tests to prove the generator still
  /// emits bit-identical instances for a pinned seed.
  std::uint64_t fingerprint() const;
};

/// A window-restricted sub-instance (the tile-restricted solve entry used
/// by the sharded mission service, docs/SERVICE.md): the parent scenario
/// cropped to a rectangle of whole grid cells, with a subset of the users
/// and fleet renumbered densely.  The two id maps are the only sanctioned
/// crossing between the parent's and the restriction's index spaces.
struct RestrictedScenario {
  Scenario scenario;           ///< the sub-instance (own grid origin).
  std::vector<UserId> users;   ///< local UserId value -> parent UserId.
  std::vector<UavId> fleet;    ///< local UavId value -> parent UavId.
  std::int32_t col0 = 0;       ///< window origin, parent grid columns.
  std::int32_t row0 = 0;       ///< window origin, parent grid rows.
  std::int32_t parent_cols = 0;

  /// Translate a sub-grid cell back into the parent grid.
  LocationId parent_cell(LocationId local) const;
};

/// Crops `parent` to the half-open cell window [col0, col1) x [row0, row1)
/// and keeps exactly `users` / `fleet` (parent ids; every user must lie
/// inside the window).  Channel, receiver, altitude, and R_uav carry over
/// unchanged, so eligibility and connectivity inside the window are
/// identical to the parent's.  `fleet` may be empty (the restriction is
/// then unsolvable and Scenario::validate on it will throw — callers gate
/// on that, e.g. user-free tiles are never solved).
RestrictedScenario restrict_to_window(const Scenario& parent,
                                      std::int32_t col0, std::int32_t row0,
                                      std::int32_t col1, std::int32_t row1,
                                      std::span<const UserId> users,
                                      std::span<const UavId> fleet);

}  // namespace uavcov
