#include "core/flat.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "channel/radius.hpp"
#include "common/check.hpp"

namespace uavcov {

namespace {
/// Key for grouping UAVs with identical radios (exact bit comparison is
/// fine — specs come from configuration, not arithmetic).
struct RadioKey {
  double tx, gain, range;
  bool operator<(const RadioKey& o) const {
    return std::tie(tx, gain, range) < std::tie(o.tx, o.gain, o.range);
  }
};
}  // namespace

FlatScenario::FlatScenario(const Scenario& scenario) : scenario_(scenario) {
  scenario.validate();
  const Grid& grid = scenario.grid;
  const std::size_t n = scenario.users.size();
  const std::size_t m = static_cast<std::size_t>(grid.size());

  // 1. SoA columns.
  user_x_.reserve(n);
  user_y_.reserve(n);
  user_min_rate_.reserve(n);
  for (const User& u : scenario.users) {
    user_x_.push_back(u.pos.x);
    user_y_.push_back(u.pos.y);
    user_min_rate_.push_back(u.min_rate_bps);
  }
  uav_capacity_.reserve(scenario.fleet.size());
  uav_range_.reserve(scenario.fleet.size());

  // 2. Group the fleet into radio classes.
  std::map<RadioKey, std::int32_t> class_of;
  uav_class_.reserve(scenario.fleet.size());
  for (const UavSpec& u : scenario.fleet) {
    uav_capacity_.push_back(u.capacity);
    uav_range_.push_back(u.user_range_m);
    const RadioKey key{u.radio.tx_power_dbm, u.radio.antenna_gain_dbi,
                       u.user_range_m};
    auto [it, inserted] =
        class_of.try_emplace(key, static_cast<std::int32_t>(classes_.size()));
    if (inserted) classes_.push_back({u.radio, u.user_range_m});
    uav_class_.push_back(it->second);
  }

  // 3. Effective service radius per (class, distinct r_min): the rate is
  //    monotone decreasing in horizontal distance, so eligibility is a
  //    disc of radius min(R_user, radius where rate == r_min).
  const std::int32_t classes = radio_class_count();
  std::map<std::pair<std::int32_t, double>, double> radius_cache;
  const auto effective_radius = [&](std::int32_t c, double min_rate) {
    auto [it, inserted] = radius_cache.try_emplace({c, min_rate}, 0.0);
    if (inserted) {
      const RadioClass& spec = classes_[static_cast<std::size_t>(c)];
      const double rate_radius = max_service_radius(
          scenario_.channel, spec.radio, scenario_.receiver,
          scenario_.altitude_m, min_rate, /*max_radius_m=*/
          std::max(spec.user_range_m * 4.0, 1000.0));
      it->second = std::min(spec.user_range_m, rate_radius);
    }
    return it->second;
  };

  // Per-user precomputation: squared per-class radii for the eligibility
  // filter (negative sentinel: class cannot serve) and the per-user
  // candidate radius (max over classes) that sizes the CSR cell scan.
  user_class_radius2_.resize(n * static_cast<std::size_t>(classes));
  user_max_radius_.resize(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    double max_radius = 0.0;
    for (std::int32_t c = 0; c < classes; ++c) {
      const double radius = effective_radius(c, user_min_rate_[u]);
      user_class_radius2_[u * static_cast<std::size_t>(classes) +
                          static_cast<std::size_t>(c)] =
          radius > 0 ? radius * radius : -1.0;
      max_radius = std::max(max_radius, radius);
    }
    user_max_radius_[u] = max_radius;
  }
  radii_.assign(radius_cache.begin(), radius_cache.end());

  // 4. CSR candidate index, both directions, by counting passes.  The cell
  //    scan replicates Grid::centers_within exactly: same bbox index
  //    formulas, same inclusive `distance2(center, p) <= r²` compare — so
  //    downstream per-class filters reproduce the old per-(user, class)
  //    centers_within memberships bit for bit.
  const double side = grid.cell_side();
  const std::int32_t cols = grid.cols();
  const std::int32_t rows = grid.rows();
  const auto lo_index = [side](double v) {
    return std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::ceil(v / side - 0.5)));
  };
  const auto hi_index = [side](double v, std::int32_t count) {
    return std::min<std::int32_t>(
        count - 1, static_cast<std::int32_t>(std::floor(v / side - 0.5)));
  };

  std::vector<std::int64_t> cell_counts(m, 0);
  user_offsets_.assign(n + 1, 0);
  const auto scan_user = [&](std::size_t u, auto&& visit) {
    const double radius = user_max_radius_[u];
    if (radius <= 0) return;
    const Vec2 p{user_x_[u], user_y_[u]};
    const std::int32_t col_lo = lo_index(p.x - radius);
    const std::int32_t col_hi = hi_index(p.x + radius, cols);
    const std::int32_t row_lo = lo_index(p.y - radius);
    const std::int32_t row_hi = hi_index(p.y + radius, rows);
    const double r2 = radius * radius;
    for (std::int32_t row = row_lo; row <= row_hi; ++row) {
      for (std::int32_t col = col_lo; col <= col_hi; ++col) {
        const LocationId id = grid.id_of(row, col);
        const double d2 = distance2(grid.center(id), p);
        if (d2 <= r2) visit(id, d2);
      }
    }
  };
  for (std::size_t u = 0; u < n; ++u) {
    scan_user(u, [&](LocationId id, double) {
      ++cell_counts[id.index()];
      ++user_offsets_[u + 1];
    });
  }

  cell_offsets_.assign(m + 1, 0);
  for (std::size_t v = 0; v < m; ++v) {
    cell_offsets_[v + 1] = cell_offsets_[v] + cell_counts[v];
  }
  for (std::size_t u = 0; u < n; ++u) {
    user_offsets_[u + 1] += user_offsets_[u];
  }
  const auto total = static_cast<std::size_t>(cell_offsets_[m]);
  cell_users_.resize(total, UserId::invalid());
  cell_dist2_.resize(total, 0.0);
  user_cells_.resize(total, kInvalidLocation);

  // Fill pass: users ascending, cells row-major per user — so each cell's
  // user list is ascending by UserId and each user's cell list ascending
  // by LocationId, matching the old bucket ordering.
  std::vector<std::int64_t> cell_cursor(cell_offsets_.begin(),
                                        cell_offsets_.end() - 1);
  std::int64_t user_cursor = 0;
  for (std::size_t u = 0; u < n; ++u) {
    scan_user(u, [&](LocationId id, double d2) {
      const std::int64_t at = cell_cursor[id.index()]++;
      cell_users_[static_cast<std::size_t>(at)] = UserId{u};
      cell_dist2_[static_cast<std::size_t>(at)] = d2;
      user_cells_[static_cast<std::size_t>(user_cursor++)] = id;
    });
  }
  UAVCOV_CHECK(user_cursor == static_cast<std::int64_t>(total));
}

double FlatScenario::effective_radius_m(std::int32_t c,
                                        double min_rate_bps) const {
  UAVCOV_CHECK_MSG(c >= 0 && c < radio_class_count(),
                   "radio class out of range");
  const std::pair<std::int32_t, double> key{c, min_rate_bps};
  const auto it = std::lower_bound(
      radii_.begin(), radii_.end(), key,
      [](const auto& entry, const auto& k) { return entry.first < k; });
  UAVCOV_CHECK_MSG(it != radii_.end() && it->first == key,
                   "effective radius queried for an unseen (class, r_min)");
  return it->second;
}

void FlatScenario::rates_near(LocationId v, std::int32_t c,
                              std::vector<double>& out) const {
  const std::span<const double> d2 = dist2_near(v);
  out.resize(d2.size());
  class_evaluator(c).rates_from_dist2(d2, out);
}

}  // namespace uavcov
