#include "core/coverage.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "channel/radius.hpp"
#include "common/check.hpp"

namespace uavcov {

namespace {
/// Key for grouping UAVs with identical radios (exact bit comparison is
/// fine — specs come from configuration, not arithmetic).
struct RadioKey {
  double tx, gain, range;
  bool operator<(const RadioKey& o) const {
    return std::tie(tx, gain, range) < std::tie(o.tx, o.gain, o.range);
  }
};
}  // namespace

CoverageModel::CoverageModel(const Scenario& scenario) : scenario_(scenario) {
  scenario.validate();

  // 1. Group the fleet into radio classes.
  std::map<RadioKey, std::int32_t> class_of;
  uav_class_.reserve(scenario.fleet.size());
  for (const UavSpec& u : scenario.fleet) {
    const RadioKey key{u.radio.tx_power_dbm, u.radio.antenna_gain_dbi,
                       u.user_range_m};
    auto [it, inserted] = class_of.try_emplace(
        key, static_cast<std::int32_t>(class_specs_.size()));
    if (inserted) class_specs_.push_back({u.radio, u.user_range_m});
    uav_class_.push_back(it->second);
  }

  // 2. Effective service radius per (class, distinct r_min): the rate is
  //    monotone decreasing in horizontal distance, so eligibility is a
  //    disc of radius min(R_user, radius where rate == r_min).
  const std::int32_t classes = radio_class_count();
  std::map<std::pair<std::int32_t, double>, double> radius_cache;
  const auto effective_radius = [&](std::int32_t c, double min_rate) {
    auto [it, inserted] = radius_cache.try_emplace({c, min_rate}, 0.0);
    if (inserted) {
      const ClassSpec& spec = class_specs_[static_cast<std::size_t>(c)];
      const double rate_radius = max_service_radius(
          scenario_.channel, spec.radio, scenario_.receiver,
          scenario_.altitude_m, min_rate, /*max_radius_m=*/
          std::max(spec.user_range_m * 4.0, 1000.0));
      it->second = std::min(spec.user_range_m, rate_radius);
    }
    return it->second;
  };

  // 3. Scatter users into per-(location, class) buckets.
  const std::size_t slots =
      static_cast<std::size_t>(scenario.grid.size()) *
      static_cast<std::size_t>(classes);
  std::vector<std::vector<UserId>> buckets(slots);
  for (const UserId i : scenario.user_ids()) {
    const User& user = scenario.users[i];
    for (std::int32_t c = 0; c < classes; ++c) {
      const double radius = effective_radius(c, user.min_rate_bps);
      if (radius <= 0) continue;
      for (const LocationId v :
           scenario.grid.centers_within(user.pos, radius)) {
        buckets[v.index() * static_cast<std::size_t>(classes) +
                static_cast<std::size_t>(c)]
            .push_back(i);
      }
    }
  }

  // 4. Flatten into CSR slices (user ids are appended in ascending order
  //    already because the outer loop runs over i ascending).
  eligible_.resize(slots);
  std::int64_t total = 0;
  for (const auto& b : buckets) total += static_cast<std::int64_t>(b.size());
  users_flat_.reserve(static_cast<std::size_t>(total));
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const std::int64_t begin = static_cast<std::int64_t>(users_flat_.size());
    users_flat_.insert(users_flat_.end(), buckets[slot].begin(),
                       buckets[slot].end());
    eligible_[slot] = {begin, static_cast<std::int64_t>(users_flat_.size())};
  }

  max_coverage_.assign(static_cast<std::size_t>(scenario.grid.size()), 0);
  for (const LocationId v : scenario.grid.cells()) {
    for (std::int32_t c = 0; c < classes; ++c) {
      max_coverage_[v] = std::max(
          max_coverage_[v], static_cast<std::int32_t>(eligible_users(v, c).size()));
    }
  }
}

std::span<const UserId> CoverageModel::eligible_users(LocationId v,
                                                      std::int32_t c) const {
  UAVCOV_DCHECK(v.valid() && v.value() < scenario_.grid.size());
  UAVCOV_DCHECK(c >= 0 && c < radio_class_count());
  const auto [begin, end] =
      eligible_[v.index() * static_cast<std::size_t>(radio_class_count()) +
                static_cast<std::size_t>(c)];
  return {users_flat_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::vector<LocationId> CoverageModel::candidate_locations(
    std::int32_t cap) const {
  std::vector<LocationId> out;
  for (const LocationId v : scenario_.grid.cells()) {
    if (max_coverage(v) > 0) out.push_back(v);
  }
  std::stable_sort(out.begin(), out.end(), [this](LocationId a, LocationId b) {
    return max_coverage(a) > max_coverage(b);
  });
  if (cap > 0 && static_cast<std::int32_t>(out.size()) > cap) {
    out.resize(static_cast<std::size_t>(cap));
  }
  std::sort(out.begin(), out.end());  // deterministic id order for callers
  return out;
}

bool CoverageModel::is_eligible(const Scenario& scenario, UserId u,
                                LocationId v, UavId k) const {
  const User& user = scenario.users[u];
  const UavSpec& uav = scenario.fleet[k];
  const double horizontal = distance(user.pos, scenario.grid.center(v));
  if (horizontal > uav.user_range_m) return false;
  const double rate =
      a2g_rate_bps(scenario.channel, uav.radio, scenario.receiver, horizontal,
                   scenario.altitude_m);
  return rate >= user.min_rate_bps;
}

}  // namespace uavcov
