#include "core/coverage.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace uavcov {

CoverageModel::CoverageModel(const Scenario& scenario)
    : scenario_(scenario), flat_(scenario) {
  // The FlatScenario constructor validated the instance and built the CSR
  // candidate index: per-cell user lists restricted to each user's
  // *largest* per-class effective radius, with squared center distances
  // stored alongside.  Per-(location, class) eligibility is the subset
  // with dist² ≤ r_c(u)² — a filter over the flat spans, no geometry and
  // no per-bucket allocation.  Candidate users are ascending by UserId
  // within each cell and the per-class radius is never larger than the
  // candidate radius, so the filtered lists reproduce the old
  // per-(user, class) centers_within memberships and ordering bit for bit.
  const std::int32_t classes = flat_.radio_class_count();
  const std::size_t slots =
      static_cast<std::size_t>(scenario.grid.size()) *
      static_cast<std::size_t>(classes);

  eligible_.resize(slots);
  std::int64_t total = 0;
  for (const LocationId v : scenario.grid.cells()) {
    const std::span<const UserId> users = flat_.users_near(v);
    const std::span<const double> dist2 = flat_.dist2_near(v);
    for (std::int32_t c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < users.size(); ++i) {
        if (dist2[i] <= flat_.effective_radius2(users[i], c)) ++total;
      }
    }
  }
  users_flat_.reserve(static_cast<std::size_t>(total));
  for (const LocationId v : scenario.grid.cells()) {
    const std::span<const UserId> users = flat_.users_near(v);
    const std::span<const double> dist2 = flat_.dist2_near(v);
    for (std::int32_t c = 0; c < classes; ++c) {
      const std::int64_t begin =
          static_cast<std::int64_t>(users_flat_.size());
      for (std::size_t i = 0; i < users.size(); ++i) {
        if (dist2[i] <= flat_.effective_radius2(users[i], c)) {
          users_flat_.push_back(users[i]);
        }
      }
      eligible_[v.index() * static_cast<std::size_t>(classes) +
                static_cast<std::size_t>(c)] = {
          begin, static_cast<std::int64_t>(users_flat_.size())};
    }
  }

  max_coverage_.assign(static_cast<std::size_t>(scenario.grid.size()), 0);
  for (const LocationId v : scenario.grid.cells()) {
    for (std::int32_t c = 0; c < classes; ++c) {
      max_coverage_[v] = std::max(
          max_coverage_[v], static_cast<std::int32_t>(eligible_users(v, c).size()));
    }
  }
}

std::span<const UserId> CoverageModel::eligible_users(LocationId v,
                                                      std::int32_t c) const {
  UAVCOV_DCHECK(v.valid() && v.value() < scenario_.grid.size());
  UAVCOV_DCHECK(c >= 0 && c < radio_class_count());
  const auto [begin, end] =
      eligible_[v.index() * static_cast<std::size_t>(radio_class_count()) +
                static_cast<std::size_t>(c)];
  return {users_flat_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::vector<LocationId> CoverageModel::candidate_locations(
    std::int32_t cap) const {
  std::vector<LocationId> out;
  for (const LocationId v : scenario_.grid.cells()) {
    if (max_coverage(v) > 0) out.push_back(v);
  }
  std::stable_sort(out.begin(), out.end(), [this](LocationId a, LocationId b) {
    return max_coverage(a) > max_coverage(b);
  });
  if (cap > 0 && static_cast<std::int32_t>(out.size()) > cap) {
    out.resize(static_cast<std::size_t>(cap));
  }
  std::sort(out.begin(), out.end());  // deterministic id order for callers
  return out;
}

bool CoverageModel::is_eligible(const Scenario& scenario, UserId u,
                                LocationId v, UavId k) const {
  const User& user = scenario.users[u];
  const UavSpec& uav = scenario.fleet[k];
  const double horizontal = distance(user.pos, scenario.grid.center(v));
  if (horizontal > uav.user_range_m) return false;
  const double rate =
      a2g_rate_bps(scenario.channel, uav.radio, scenario.receiver, horizontal,
                   scenario.altitude_m);
  return rate >= user.min_rate_bps;
}

}  // namespace uavcov
