#include "core/appro_alg.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/assignment.hpp"
#include "core/matroid.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"
#include "obs/metrics.hpp"

namespace uavcov {

namespace {

/// Solver metrics (docs/OBSERVABILITY.md).  The phase histograms receive
/// the exact ApproAlgPhases values (one Stopwatch, see appro_alg() below);
/// the per-subset histograms run on whichever thread evaluates the subset
/// and land in that thread's shard.
struct ApproMetrics {
  obs::Counter runs = obs::counter("solve.approAlg.runs");
  obs::Histogram solve_seconds = obs::histogram("solve.approAlg.seconds");
  obs::Histogram plan_seconds = obs::histogram("appro.phase.plan_seconds");
  obs::Histogram prepare_seconds =
      obs::histogram("appro.phase.prepare_seconds");
  obs::Histogram search_seconds =
      obs::histogram("appro.phase.search_seconds");
  obs::Histogram finalize_seconds =
      obs::histogram("appro.phase.finalize_seconds");
  obs::Histogram greedy_seconds =
      obs::histogram("appro.subset.greedy_seconds");
  obs::Histogram stitch_seconds =
      obs::histogram("appro.subset.stitch_seconds");
};

const ApproMetrics& appro_metrics() {
  static const ApproMetrics metrics;
  return metrics;
}

/// Cooperative deadline for ApproAlgParams::time_budget_s.  Workers poll
/// between seed subsets and between greedy rounds; once the shared flag
/// flips it stays set, so every thread winds down promptly.  A null
/// monitor (budget 0) keeps the search on the exact pre-deadline path.
struct DeadlineMonitor {
  DeadlineMonitor(const Stopwatch& watch, double budget_s)
      : watch_(watch), budget_s_(budget_s) {}

  bool expired() {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (watch_.elapsed_s() > budget_s_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool hit() const { return expired_.load(std::memory_order_relaxed); }

 private:
  const Stopwatch& watch_;
  double budget_s_;
  // atomic-invariant: monotonic false→true latch; relaxed order is enough
  // because a late-observed flip only delays a worker's wind-down by one
  // subset, never changes which subsets count as evaluated (the claim
  // order itself is serialized through the `next` ticket below).
  std::atomic<bool> expired_{false};
};

/// Deep per-round audit (UAVCOV_AUDIT / ApproAlgParams::audit): the live
/// flow network must stay an integral maximum flow and the current greedy
/// state must stay independent in M1 ∩ M2.  Throws AuditError otherwise.
void audit_greedy_round(const IncrementalAssignment& ia,
                        const HopBudgetMatroid& m2,
                        std::span<const LocationId> chosen,
                        std::int32_t uav_count) {
  analysis::AuditReport report = analysis::audit_assignment_flow(ia);
  report.subject = "appro_alg.greedy_round";
  report.merge(analysis::audit_matroids(m2, chosen, ia.deployments(),
                                        uav_count, /*sample_rounds=*/8));
  analysis::require_clean(report);
}

/// Greedy submodular maximization under M1 ∩ M2 for one seed subset.
/// Returns the chosen locations in deployment order (UAVs are taken from
/// `uav_order` front to back, i.e. capacity descending).
std::vector<LocationId> greedy_place(
    IncrementalAssignment& ia, const CoverageModel& coverage,
    const std::vector<LocationId>& pool, HopBudgetMatroid& m2,
    const std::vector<UavId>& uav_order, std::int32_t l_max, bool lazy,
    bool audit, std::int64_t* probes, DeadlineMonitor* deadline) {
  std::vector<LocationId> chosen;
  chosen.reserve(static_cast<std::size_t>(l_max));
  std::vector<bool> taken;  // indexed by position in `pool`

  if (lazy) {
    // Max-heap of (stale upper bound, pool index).  Stale bounds remain
    // valid across iterations: gains shrink as the set grows (submodular)
    // and as capacities shrink (UAVs are deployed largest-first).
    std::priority_queue<std::pair<std::int64_t, std::int32_t>> heap;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      heap.emplace(coverage.max_coverage(pool[i]),
                   static_cast<std::int32_t>(i));
    }
    taken.assign(pool.size(), false);
    for (std::int32_t k = 0; k < l_max && !heap.empty(); ++k) {
      // Cooperative deadline: a truncated greedy prefix is still a valid
      // (independent, feasible) placement, so stopping here is safe.
      if (deadline != nullptr && deadline->expired()) break;
      const UavId uav = uav_order[static_cast<std::size_t>(k)];
      LocationId pick = kInvalidLocation;
      std::int32_t pick_idx = -1;
      std::int64_t pick_gain = -1;
      while (!heap.empty()) {
        const auto [bound, idx] = heap.top();
        heap.pop();
        const LocationId loc = pool[static_cast<std::size_t>(idx)];
        if (taken[static_cast<std::size_t>(idx)]) continue;
        // Once the hop quotas reject a location they reject it forever
        // (counters only grow), so drop it permanently.
        if (!m2.can_add(loc)) continue;
        const std::int64_t gain = ia.probe(uav, loc);
        ++*probes;
        UAVCOV_DCHECK(gain <= bound);
        // Accept when no remaining entry can beat (gain, idx) in
        // (value, index) lexicographic order — this reproduces exactly the
        // plain greedy's largest-index-among-argmax winner.
        const bool accept =
            heap.empty() || gain > heap.top().first ||
            (gain == heap.top().first && idx > heap.top().second);
        if (accept) {
          pick = loc;
          pick_idx = idx;
          pick_gain = gain;
          break;
        }
        // Stale bound refreshed; retry against the rest of the heap.
        heap.emplace(gain, idx);
      }
      if (pick == kInvalidLocation) break;  // no feasible location remains
      ia.deploy(uav, pick);
      m2.add(pick);
      taken[static_cast<std::size_t>(pick_idx)] = true;
      chosen.push_back(pick);
      (void)pick_gain;
      if (audit) {
        audit_greedy_round(ia, m2, chosen,
                           static_cast<std::int32_t>(uav_order.size()));
      }
    }
  } else {
    // Plain greedy: probe every feasible pool entry each iteration.
    taken.assign(pool.size(), false);
    for (std::int32_t k = 0; k < l_max; ++k) {
      if (deadline != nullptr && deadline->expired()) break;
      const UavId uav = uav_order[static_cast<std::size_t>(k)];
      std::int64_t best_gain = -1;
      std::int32_t best_idx = -1;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (taken[i]) continue;
        const LocationId loc = pool[i];
        if (!m2.can_add(loc)) continue;
        const std::int64_t gain = ia.probe(uav, loc);
        ++*probes;
        // `>=` keeps the largest pool index among ties — the same winner
        // the lazy heap (max by bound, then by index) accepts, so both
        // greedy modes produce identical deployments.
        if (gain >= best_gain) {
          best_gain = gain;
          best_idx = static_cast<std::int32_t>(i);
        }
      }
      if (best_idx < 0) break;
      const LocationId loc = pool[static_cast<std::size_t>(best_idx)];
      ia.deploy(uav, loc);
      m2.add(loc);
      taken[static_cast<std::size_t>(best_idx)] = true;
      chosen.push_back(loc);
      if (audit) {
        audit_greedy_round(ia, m2, chosen,
                           static_cast<std::int32_t>(uav_order.size()));
      }
    }
  }
  return chosen;
}

/// Read-only inputs shared by every subset evaluation — and, on the
/// parallel path, by every worker thread concurrently.  Nothing reachable
/// from here is mutated during the search.
struct SearchContext {
  const Scenario& scenario;
  const CoverageModel& coverage;
  const ApproAlgParams& params;
  const std::vector<LocationId>& candidates;
  const std::vector<std::vector<std::int32_t>>& cand_dist;
  const Graph& g;
  const SegmentPlan& plan;
  const std::vector<UavId>& uav_order;
  std::int32_t K;
  bool audit;
  DeadlineMonitor* deadline = nullptr;  ///< null when time_budget_s == 0.
};

/// Mutable solver state owned by exactly one worker: the live flow network
/// (whose FlowProbe journals must never cross threads), the hop-distance
/// scratch, local counters, and the worker's running best.  The parallel
/// engine gives each thread its own instance; the serial path uses one.
struct WorkerState {
  explicit WorkerState(const SearchContext& ctx)
      : ia(ctx.scenario, ctx.coverage),
        hop(static_cast<std::size_t>(ctx.g.node_count())) {}

  IncrementalAssignment ia;
  std::vector<std::int32_t> hop;
  std::int64_t probes = 0;
  std::int64_t subsets_stitched = 0;
  std::int64_t best_served = -1;
  std::int64_t best_rank = -1;  // global enumeration index of the best
  std::vector<Deployment> best_deployments;
};

/// Evaluate one seed subset (positions into ctx.candidates).  `rank` is
/// the subset's global enumeration index; recording it with the worker's
/// best lets the reduction break served-count ties by enumeration order,
/// which makes the parallel search bit-identical to the serial one.
void evaluate_subset(const SearchContext& ctx, WorkerState& w,
                     std::span<const std::int32_t> subset,
                     std::int64_t rank) {
  // Multi-source hop distances d(v) = min over seeds.
  std::fill(w.hop.begin(), w.hop.end(), kUnreachable);
  for (std::int32_t idx : subset) {
    const auto& row = ctx.cand_dist[static_cast<std::size_t>(idx)];
    for (std::size_t v = 0; v < w.hop.size(); ++v) {
      w.hop[v] = std::min(w.hop[v], row[v]);
    }
  }
  HopBudgetMatroid m2(w.hop, ctx.plan.quotas);

  const auto scope = w.ia.begin_scope();
  std::vector<LocationId> chosen;
  {
    const obs::ScopedTimer timer(appro_metrics().greedy_seconds);
    chosen =
        greedy_place(w.ia, ctx.coverage, ctx.candidates, m2, ctx.uav_order,
                     ctx.plan.L_max, ctx.params.lazy_greedy, ctx.audit,
                     &w.probes, ctx.deadline);
  }
  const auto relay = [&] {
    const obs::ScopedTimer timer(appro_metrics().stitch_seconds);
    return stitch_connected(ctx.g, chosen);
  }();
  if (relay.has_value() &&
      static_cast<std::int32_t>(relay->nodes.size()) <= ctx.K) {
    ++w.subsets_stitched;
    // Leftover UAVs (next in capacity order) hover on the relay cells —
    // the paper deploys them "in an arbitrary way"; index order here.
    for (std::size_t r = chosen.size(); r < relay->nodes.size(); ++r) {
      w.ia.deploy(ctx.uav_order[r], relay->nodes[r]);
    }
    if (ctx.audit) {
      // The stitched network must still carry a clean maximum flow, and
      // Lemma 2 promises it fits the fleet.  The auditor only reads this
      // worker's own flow network, so it is safe under concurrency.
      analysis::AuditReport report = analysis::audit_assignment_flow(w.ia);
      report.subject = "appro_alg.relay_stitch";
      analysis::require_clean(report);
    }
    if (w.ia.served() > w.best_served) {
      w.best_served = w.ia.served();
      w.best_rank = rank;
      w.best_deployments = w.ia.deployments();
    }
  }
  w.ia.end_scope(scope);
}

/// DFS enumeration of s-subsets of ctx.candidates with the optional
/// pairwise-hop pruning (prefix property: every pair in a kept subset is
/// within L_max − 1 hops, so pruning applies as soon as a prefix violates
/// it).  Calls `sink` with each surviving subset in the fixed global
/// order; stops early when sink returns false.  Both the serial search
/// and the parallel work-list builder run this same enumerator, so ranks
/// agree by construction.
template <typename Sink>
void enumerate_subsets(const SearchContext& ctx, std::int32_t s,
                       Sink&& sink) {
  std::vector<std::int32_t> subset;
  subset.reserve(static_cast<std::size_t>(s));
  bool stop = false;
  const auto dfs = [&](auto&& self, std::int32_t start) -> void {
    if (stop) return;
    if (static_cast<std::int32_t>(subset.size()) == s) {
      if (!sink(subset)) stop = true;
      return;
    }
    for (std::int32_t i = start;
         i < static_cast<std::int32_t>(ctx.candidates.size()); ++i) {
      if (ctx.params.prune_seed_pairs) {
        bool compatible = true;
        for (std::int32_t j : subset) {
          const std::int32_t hops =
              ctx.cand_dist[static_cast<std::size_t>(j)]
                           [ctx.candidates[static_cast<std::size_t>(i)]
                                .index()];
          if (hops == kUnreachable || hops > ctx.plan.L_max - 1) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
      }
      subset.push_back(i);
      self(self, i + 1);
      subset.pop_back();
      if (stop) return;
    }
  };
  dfs(dfs, 0);
}

}  // namespace

void ApproAlgParams::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ApproAlgParams: " + what);
  };
  if (s < 1) fail("s must be >= 1 (got " + std::to_string(s) + ")");
  if (candidate_cap < 0) {
    fail("candidate_cap must be >= 0 (got " + std::to_string(candidate_cap) +
         ")");
  }
  if (threads < 0) {
    fail("threads must be >= 0 (got " + std::to_string(threads) + ")");
  }
  if (max_seed_subsets < 0) {
    fail("max_seed_subsets must be >= 0 (got " +
         std::to_string(max_seed_subsets) + ")");
  }
  if (!(time_budget_s >= 0.0) || !std::isfinite(time_budget_s)) {
    fail("time_budget_s must be finite and >= 0 (got " +
         std::to_string(time_budget_s) + ")");
  }
}

Solution appro_alg(const Scenario& scenario, const ApproAlgParams& params,
                   ApproAlgStats* stats) {
  params.validate();
  const CoverageModel coverage(scenario);
  return appro_alg(scenario, coverage, params, stats);
}

Solution appro_alg(const Scenario& scenario, const CoverageModel& coverage,
                   const ApproAlgParams& params, ApproAlgStats* stats) {
  // One Stopwatch is the single timing source: ApproAlgStats::seconds and
  // every ApproAlgPhases slot are laps of `watch`, so the phase breakdown
  // can never exceed the end-to-end wall clock (tests/obs_test.cpp).
  Stopwatch watch;
  appro_metrics().runs.inc();
  double last_mark = 0.0;
  const auto lap = [&watch, &last_mark](double& slot) {
    const double now = watch.elapsed_s();
    slot += now - last_mark;
    last_mark = now;
  };
  params.validate();
  scenario.validate();
  const std::int32_t K = scenario.uav_count();
  const bool audit = params.audit || analysis::audit_env_enabled();

  Solution solution;
  solution.algorithm = "approAlg";
  solution.user_to_deployment.assign(scenario.users.size(), -1);

  // Candidate hovering locations: cover >= 1 user, optionally top-M.
  const std::vector<LocationId> candidates =
      coverage.candidate_locations(params.candidate_cap);
  ApproAlgStats local_stats;
  ApproAlgStats& st = stats ? *stats : local_stats;
  st = ApproAlgStats{};
  st.candidates = static_cast<std::int64_t>(candidates.size());
  lap(st.phases.prepare_s);
  if (candidates.empty()) {
    // Nobody can be covered anywhere; the empty deployment is optimal.
    st.seconds = watch.elapsed_s();
    solution.solve_seconds = st.seconds;
    return solution;
  }

  // Effective s: cannot exceed K (Algorithm 1 needs s <= K) nor the number
  // of candidate locations.
  const std::int32_t s = std::max<std::int32_t>(
      1, std::min({params.s, K,
                   static_cast<std::int32_t>(candidates.size())}));
  const SegmentPlan plan = compute_segment_plan(K, s);
  st.plan = plan;
  if (audit) analysis::require_clean(analysis::audit_segment_plan(plan));
  lap(st.phases.plan_s);

  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  std::vector<UavId> uav_order = scenario.uavs_by_capacity_desc();
  if (params.capacity_ascending) {
    std::reverse(uav_order.begin(), uav_order.end());
  }

  // Hop distances from every candidate (seeds are candidates): reused both
  // for the pairwise pruning filter and for per-subset multi-source
  // distances (min over the subset's rows).
  std::vector<std::vector<std::int32_t>> cand_dist;
  cand_dist.reserve(candidates.size());
  for (const LocationId c : candidates) {
    cand_dist.push_back(bfs_distances(g, to_node(c)));
  }
  lap(st.phases.prepare_s);

  // The deadline shares `watch` with the phase laps, so the budget covers
  // the whole solve (plan + prepare included), not just the search.
  std::unique_ptr<DeadlineMonitor> deadline;
  if (params.time_budget_s > 0.0) {
    deadline = std::make_unique<DeadlineMonitor>(watch, params.time_budget_s);
  }
  const SearchContext ctx{scenario, coverage, params,    candidates,
                          cand_dist, g,        plan,      uav_order,
                          K,         audit,    deadline.get()};

  const std::int32_t requested = ThreadPool::resolve(params.threads);

  std::int64_t best_served = -1;
  std::int64_t best_rank = -1;
  std::vector<Deployment> best_deployments;
  // Any worker's state can host the leftover-fill phase afterwards (each
  // evaluation ends with end_scope, so the flow network is back to empty).
  std::unique_ptr<WorkerState> fill_state;

  if (requested <= 1) {
    // Serial path: stream subsets straight out of the enumerator, exactly
    // as before the parallel engine existed.
    auto state = std::make_unique<WorkerState>(ctx);
    std::int64_t rank = 0;
    enumerate_subsets(ctx, s, [&](const std::vector<std::int32_t>& subset) {
      // Deadline check between subsets; the first subset always runs so a
      // binding budget still yields a non-trivial solution.
      if (rank > 0 && ctx.deadline != nullptr && ctx.deadline->expired()) {
        return false;
      }
      ++st.subsets_enumerated;
      ++st.subsets_evaluated;
      evaluate_subset(ctx, *state, subset, rank);
      ++rank;
      return !(params.max_seed_subsets > 0 &&
               st.subsets_evaluated >= params.max_seed_subsets);
    });
    best_served = state->best_served;
    best_rank = state->best_rank;
    best_deployments = std::move(state->best_deployments);
    st.probes += state->probes;
    st.subsets_stitched += state->subsets_stitched;
    fill_state = std::move(state);
  } else {
    // Parallel path.  Materialize the work list first — enumeration is
    // cheap next to evaluation (each evaluation runs a full greedy with
    // flow probes) and a fixed list gives every subset its global rank up
    // front.  The budget truncates the list to exactly the subsets the
    // serial path would have evaluated.
    std::vector<std::int32_t> flat;
    enumerate_subsets(ctx, s, [&](const std::vector<std::int32_t>& subset) {
      flat.insert(flat.end(), subset.begin(), subset.end());
      ++st.subsets_enumerated;
      return !(params.max_seed_subsets > 0 &&
               st.subsets_enumerated >= params.max_seed_subsets);
    });
    const std::int64_t total = st.subsets_enumerated;
    st.subsets_evaluated = total;

    if (total > 0) {
      const std::int32_t workers = static_cast<std::int32_t>(
          std::min<std::int64_t>(requested, total));
      // Lock-free reduction state: slot `wi` is written by exactly one
      // worker (publication to this thread happens-before wait_idle()
      // returns, through the pool's internal mutex); the reduction below
      // reads the slots single-threaded afterwards, so no lock is needed.
      std::vector<std::unique_ptr<WorkerState>> states(
          static_cast<std::size_t>(workers));
      // atomic-invariant: fetch_add ticket dispenser — every rank in
      // [0, total) is claimed by exactly one worker, so no subset is
      // evaluated twice or skipped; relaxed order suffices because each
      // worker only consumes the value it drew itself.
      std::atomic<std::int64_t> next{0};
      // atomic-invariant: count of claims that proceeded to evaluation;
      // monotone increments only, read once after wait_idle() (which
      // synchronizes-with every worker's increments via the pool's mutex).
      std::atomic<std::int64_t> evaluated{0};
      ThreadPool pool(workers);
      for (std::int32_t wi = 0; wi < workers; ++wi) {
        pool.submit([&ctx, &states, &next, &evaluated, &flat, s, total, wi] {
          // Per-worker state lives on the worker thread: its DinicFlow,
          // probe journals, and scratch never touch another thread.
          auto state = std::make_unique<WorkerState>(ctx);
          for (;;) {
            const std::int64_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total) break;
            // Cooperative deadline: stop claiming work once the budget is
            // spent, except for subset 0 — someone always evaluates it so
            // a binding budget still yields a non-trivial solution.
            if (i > 0 && ctx.deadline != nullptr && ctx.deadline->expired())
              break;
            evaluated.fetch_add(1, std::memory_order_relaxed);
            evaluate_subset(
                ctx, *state,
                std::span<const std::int32_t>(
                    flat.data() + i * s, static_cast<std::size_t>(s)),
                i);
          }
          states[static_cast<std::size_t>(wi)] = std::move(state);
        });
      }
      pool.wait_idle();  // rethrows the first worker AuditError, if any
      st.subsets_evaluated = evaluated.load(std::memory_order_relaxed);

      // Deterministic reduction: highest served count wins; ties go to
      // the smallest enumeration rank — the subset the serial loop would
      // have kept (it only replaces on a strict improvement).
      for (auto& state : states) {
        if (!state) continue;
        st.probes += state->probes;
        st.subsets_stitched += state->subsets_stitched;
        if (state->best_served > best_served ||
            (state->best_served == best_served && state->best_served >= 0 &&
             state->best_rank < best_rank)) {
          best_served = state->best_served;
          best_rank = state->best_rank;
          best_deployments = state->best_deployments;
        }
        if (!fill_state) fill_state = std::move(state);
      }
    }
  }
  lap(st.phases.search_s);

  if (best_served >= 0 && params.fill_leftover_uavs &&
      static_cast<std::int32_t>(best_deployments.size()) < K) {
    // Engineering extension (see ApproAlgParams::fill_leftover_uavs): the
    // paper grounds the K − q_j UAVs that neither serve nor relay; we
    // spend them greedily on cells adjacent to the winning network while
    // they still add served users.
    if (!fill_state) fill_state = std::make_unique<WorkerState>(ctx);
    IncrementalAssignment& ia = fill_state->ia;
    const auto scope = ia.begin_scope();
    std::vector<bool> used_uav(static_cast<std::size_t>(K), false);
    std::vector<bool> occupied(static_cast<std::size_t>(g.node_count()),
                               false);
    for (const Deployment& d : best_deployments) {
      ia.deploy(d.uav, d.loc);
      used_uav[d.uav.index()] = true;
      occupied[d.loc.index()] = true;
    }
    std::vector<UavId> leftovers;
    for (UavId k : uav_order) {
      if (!used_uav[k.index()]) leftovers.push_back(k);
    }
    for (UavId k : leftovers) {
      // Frontier = unoccupied cells adjacent (<= R_uav) to the network
      // that can cover at least one user.
      std::vector<LocationId> frontier;
      std::vector<bool> seen(static_cast<std::size_t>(g.node_count()),
                             false);
      for (const Deployment& d : ia.deployments()) {
        for (const NodeId nb : g.neighbors(to_node(d.loc))) {
          const LocationId cell = to_cell(nb);
          if (occupied[cell.index()] || seen[cell.index()] ||
              coverage.max_coverage(cell) == 0) {
            continue;
          }
          seen[cell.index()] = true;
          frontier.push_back(cell);
        }
      }
      std::int64_t best_gain = 0;
      LocationId best_cell = kInvalidLocation;
      for (LocationId cell : frontier) {
        const std::int64_t gain = ia.probe(k, cell);
        ++st.probes;
        if (gain > best_gain) {
          best_gain = gain;
          best_cell = cell;
        }
      }
      if (!best_cell.valid()) break;  // no positive gain left
      ia.deploy(k, best_cell);
      occupied[best_cell.index()] = true;
    }
    if (audit) {
      analysis::AuditReport report = analysis::audit_assignment_flow(ia);
      report.subject = "appro_alg.leftover_fill";
      analysis::require_clean(report);
    }
    if (ia.served() > best_served) {
      best_served = ia.served();
      best_deployments = ia.deployments();
    }
    ia.end_scope(scope);
  }

  if (best_served >= 0) {
    // Final optimal assignment for the winning deployment (Lemma 1).
    const AssignmentResult assignment =
        solve_assignment(scenario, coverage, best_deployments);
    solution.deployments = std::move(best_deployments);
    solution.user_to_deployment = std::move(assignment.user_to_deployment);
    solution.served = assignment.served;
    UAVCOV_CHECK_MSG(solution.served == best_served,
                     "final assignment disagrees with incremental count");
  }
  if (audit) {
    analysis::AuditReport report =
        analysis::audit_solution(scenario, coverage, solution);
    report.subject = "appro_alg.final_solution";
    analysis::require_clean(report);
  }
  lap(st.phases.finalize_s);
  st.deadline_hit = deadline != nullptr && deadline->hit();
  st.seconds = watch.elapsed_s();
  solution.solve_seconds = st.seconds;
  const ApproMetrics& m = appro_metrics();
  m.solve_seconds.observe_seconds(st.seconds);
  m.plan_seconds.observe_seconds(st.phases.plan_s);
  m.prepare_seconds.observe_seconds(st.phases.prepare_s);
  m.search_seconds.observe_seconds(st.phases.search_s);
  m.finalize_seconds.observe_seconds(st.phases.finalize_s);
  return solution;
}

}  // namespace uavcov
