#include "core/appro_alg.hpp"

#include <algorithm>
#include <queue>
#include <span>

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/assignment.hpp"
#include "core/matroid.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"

namespace uavcov {

namespace {

/// Deep per-round audit (UAVCOV_AUDIT / ApproAlgParams::audit): the live
/// flow network must stay an integral maximum flow and the current greedy
/// state must stay independent in M1 ∩ M2.  Throws AuditError otherwise.
void audit_greedy_round(const IncrementalAssignment& ia,
                        const HopBudgetMatroid& m2,
                        std::span<const LocationId> chosen,
                        std::int32_t uav_count) {
  analysis::AuditReport report = analysis::audit_assignment_flow(ia);
  report.subject = "appro_alg.greedy_round";
  report.merge(analysis::audit_matroids(m2, chosen, ia.deployments(),
                                        uav_count, /*sample_rounds=*/8));
  analysis::require_clean(report);
}

/// Greedy submodular maximization under M1 ∩ M2 for one seed subset.
/// Returns the chosen locations in deployment order (UAVs are taken from
/// `uav_order` front to back, i.e. capacity descending).
std::vector<LocationId> greedy_place(
    IncrementalAssignment& ia, const CoverageModel& coverage,
    const std::vector<LocationId>& pool, HopBudgetMatroid& m2,
    const std::vector<UavId>& uav_order, std::int32_t l_max, bool lazy,
    bool audit, std::int64_t* probes) {
  std::vector<LocationId> chosen;
  chosen.reserve(static_cast<std::size_t>(l_max));
  std::vector<bool> taken;  // indexed by position in `pool`

  if (lazy) {
    // Max-heap of (stale upper bound, pool index).  Stale bounds remain
    // valid across iterations: gains shrink as the set grows (submodular)
    // and as capacities shrink (UAVs are deployed largest-first).
    std::priority_queue<std::pair<std::int64_t, std::int32_t>> heap;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      heap.emplace(coverage.max_coverage(pool[i]),
                   static_cast<std::int32_t>(i));
    }
    taken.assign(pool.size(), false);
    for (std::int32_t k = 0; k < l_max && !heap.empty(); ++k) {
      const UavId uav = uav_order[static_cast<std::size_t>(k)];
      LocationId pick = kInvalidLocation;
      std::int32_t pick_idx = -1;
      std::int64_t pick_gain = -1;
      while (!heap.empty()) {
        const auto [bound, idx] = heap.top();
        heap.pop();
        const LocationId loc = pool[static_cast<std::size_t>(idx)];
        if (taken[static_cast<std::size_t>(idx)]) continue;
        // Once the hop quotas reject a location they reject it forever
        // (counters only grow), so drop it permanently.
        if (!m2.can_add(loc)) continue;
        const std::int64_t gain = ia.probe(uav, loc);
        ++*probes;
        UAVCOV_DCHECK(gain <= bound);
        // Accept when no remaining entry can beat (gain, idx) in
        // (value, index) lexicographic order — this reproduces exactly the
        // plain greedy's largest-index-among-argmax winner.
        const bool accept =
            heap.empty() || gain > heap.top().first ||
            (gain == heap.top().first && idx > heap.top().second);
        if (accept) {
          pick = loc;
          pick_idx = idx;
          pick_gain = gain;
          break;
        }
        // Stale bound refreshed; retry against the rest of the heap.
        heap.emplace(gain, idx);
      }
      if (pick == kInvalidLocation) break;  // no feasible location remains
      ia.deploy(uav, pick);
      m2.add(pick);
      taken[static_cast<std::size_t>(pick_idx)] = true;
      chosen.push_back(pick);
      (void)pick_gain;
      if (audit) {
        audit_greedy_round(ia, m2, chosen,
                           static_cast<std::int32_t>(uav_order.size()));
      }
    }
  } else {
    // Plain greedy: probe every feasible pool entry each iteration.
    taken.assign(pool.size(), false);
    for (std::int32_t k = 0; k < l_max; ++k) {
      const UavId uav = uav_order[static_cast<std::size_t>(k)];
      std::int64_t best_gain = -1;
      std::int32_t best_idx = -1;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (taken[i]) continue;
        const LocationId loc = pool[i];
        if (!m2.can_add(loc)) continue;
        const std::int64_t gain = ia.probe(uav, loc);
        ++*probes;
        // `>=` keeps the largest pool index among ties — the same winner
        // the lazy heap (max by bound, then by index) accepts, so both
        // greedy modes produce identical deployments.
        if (gain >= best_gain) {
          best_gain = gain;
          best_idx = static_cast<std::int32_t>(i);
        }
      }
      if (best_idx < 0) break;
      const LocationId loc = pool[static_cast<std::size_t>(best_idx)];
      ia.deploy(uav, loc);
      m2.add(loc);
      taken[static_cast<std::size_t>(best_idx)] = true;
      chosen.push_back(loc);
      if (audit) {
        audit_greedy_round(ia, m2, chosen,
                           static_cast<std::int32_t>(uav_order.size()));
      }
    }
  }
  return chosen;
}

}  // namespace

Solution appro_alg(const Scenario& scenario, const ApproAlgParams& params,
                   ApproAlgStats* stats) {
  const CoverageModel coverage(scenario);
  return appro_alg(scenario, coverage, params, stats);
}

Solution appro_alg(const Scenario& scenario, const CoverageModel& coverage,
                   const ApproAlgParams& params, ApproAlgStats* stats) {
  Stopwatch watch;
  scenario.validate();
  UAVCOV_CHECK_MSG(params.s >= 1, "s must be >= 1");
  const std::int32_t K = scenario.uav_count();
  const bool audit = params.audit || analysis::audit_env_enabled();

  Solution solution;
  solution.algorithm = "approAlg";
  solution.user_to_deployment.assign(scenario.users.size(), -1);

  // Candidate hovering locations: cover >= 1 user, optionally top-M.
  const std::vector<LocationId> candidates =
      coverage.candidate_locations(params.candidate_cap);
  ApproAlgStats local_stats;
  ApproAlgStats& st = stats ? *stats : local_stats;
  st = ApproAlgStats{};
  st.candidates = static_cast<std::int64_t>(candidates.size());
  if (candidates.empty()) {
    // Nobody can be covered anywhere; the empty deployment is optimal.
    st.seconds = watch.elapsed_s();
    solution.solve_seconds = st.seconds;
    return solution;
  }

  // Effective s: cannot exceed K (Algorithm 1 needs s <= K) nor the number
  // of candidate locations.
  const std::int32_t s = std::max<std::int32_t>(
      1, std::min({params.s, K,
                   static_cast<std::int32_t>(candidates.size())}));
  const SegmentPlan plan = compute_segment_plan(K, s);
  st.plan = plan;
  if (audit) analysis::require_clean(analysis::audit_segment_plan(plan));

  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  std::vector<UavId> uav_order = scenario.uavs_by_capacity_desc();
  if (params.capacity_ascending) {
    std::reverse(uav_order.begin(), uav_order.end());
  }

  // Hop distances from every candidate (seeds are candidates): reused both
  // for the pairwise pruning filter and for per-subset multi-source
  // distances (min over the subset's rows).
  std::vector<std::vector<std::int32_t>> cand_dist;
  cand_dist.reserve(candidates.size());
  for (LocationId c : candidates) cand_dist.push_back(bfs_distances(g, c));

  IncrementalAssignment ia(scenario, coverage);

  std::int64_t best_served = -1;
  std::vector<Deployment> best_deployments;

  // Per-subset evaluation.
  std::vector<std::int32_t> subset;  // indices into `candidates`
  subset.reserve(static_cast<std::size_t>(s));
  std::vector<std::int32_t> hop(static_cast<std::size_t>(g.node_count()));
  bool budget_exhausted = false;

  auto evaluate_subset = [&]() {
    ++st.subsets_evaluated;
    // Multi-source hop distances d(v) = min over seeds.
    std::fill(hop.begin(), hop.end(), kUnreachable);
    for (std::int32_t idx : subset) {
      const auto& row = cand_dist[static_cast<std::size_t>(idx)];
      for (std::size_t v = 0; v < hop.size(); ++v) {
        hop[v] = std::min(hop[v], row[v]);
      }
    }
    HopBudgetMatroid m2(hop, plan.quotas);

    const auto scope = ia.begin_scope();
    const std::vector<LocationId> chosen =
        greedy_place(ia, coverage, candidates, m2, uav_order, plan.L_max,
                     params.lazy_greedy, audit, &st.probes);
    const auto relay = stitch_connected(g, chosen);
    if (relay.has_value() &&
        static_cast<std::int32_t>(relay->nodes.size()) <= K) {
      ++st.subsets_stitched;
      // Leftover UAVs (next in capacity order) hover on the relay cells —
      // the paper deploys them "in an arbitrary way"; index order here.
      for (std::size_t r = chosen.size(); r < relay->nodes.size(); ++r) {
        ia.deploy(uav_order[r], relay->nodes[r]);
      }
      if (audit) {
        // The stitched network must still carry a clean maximum flow, and
        // Lemma 2 promises it fits the fleet.
        analysis::AuditReport report = analysis::audit_assignment_flow(ia);
        report.subject = "appro_alg.relay_stitch";
        analysis::require_clean(report);
      }
      if (ia.served() > best_served) {
        best_served = ia.served();
        best_deployments = ia.deployments();
      }
    }
    ia.end_scope(scope);
    if (params.max_seed_subsets > 0 &&
        st.subsets_evaluated >= params.max_seed_subsets) {
      budget_exhausted = true;
    }
  };

  // DFS enumeration of s-subsets of `candidates` with optional pairwise-
  // hop pruning (prefix property: every pair in a kept subset is within
  // L_max − 1 hops, so pruning applies as soon as a prefix violates it).
  auto enumerate = [&](auto&& self, std::int32_t start) -> void {
    if (budget_exhausted) return;
    if (static_cast<std::int32_t>(subset.size()) == s) {
      ++st.subsets_enumerated;
      evaluate_subset();
      return;
    }
    for (std::int32_t i = start;
         i < static_cast<std::int32_t>(candidates.size()); ++i) {
      if (params.prune_seed_pairs) {
        bool compatible = true;
        for (std::int32_t j : subset) {
          const std::int32_t hops =
              cand_dist[static_cast<std::size_t>(j)][static_cast<std::size_t>(
                  candidates[static_cast<std::size_t>(i)])];
          if (hops == kUnreachable || hops > plan.L_max - 1) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
      }
      subset.push_back(i);
      self(self, i + 1);
      subset.pop_back();
      if (budget_exhausted) return;
    }
  };
  enumerate(enumerate, 0);

  if (best_served >= 0 && params.fill_leftover_uavs &&
      static_cast<std::int32_t>(best_deployments.size()) < K) {
    // Engineering extension (see ApproAlgParams::fill_leftover_uavs): the
    // paper grounds the K − q_j UAVs that neither serve nor relay; we
    // spend them greedily on cells adjacent to the winning network while
    // they still add served users.
    const auto scope = ia.begin_scope();
    std::vector<bool> used_uav(static_cast<std::size_t>(K), false);
    std::vector<bool> occupied(static_cast<std::size_t>(g.node_count()),
                               false);
    for (const Deployment& d : best_deployments) {
      ia.deploy(d.uav, d.loc);
      used_uav[static_cast<std::size_t>(d.uav)] = true;
      occupied[static_cast<std::size_t>(d.loc)] = true;
    }
    std::vector<UavId> leftovers;
    for (UavId k : uav_order) {
      if (!used_uav[static_cast<std::size_t>(k)]) leftovers.push_back(k);
    }
    for (UavId k : leftovers) {
      // Frontier = unoccupied cells adjacent (<= R_uav) to the network
      // that can cover at least one user.
      std::vector<LocationId> frontier;
      std::vector<bool> seen(static_cast<std::size_t>(g.node_count()),
                             false);
      for (const Deployment& d : ia.deployments()) {
        for (NodeId nb : g.neighbors(d.loc)) {
          if (occupied[static_cast<std::size_t>(nb)] ||
              seen[static_cast<std::size_t>(nb)] ||
              coverage.max_coverage(nb) == 0) {
            continue;
          }
          seen[static_cast<std::size_t>(nb)] = true;
          frontier.push_back(nb);
        }
      }
      std::int64_t best_gain = 0;
      LocationId best_cell = kInvalidLocation;
      for (LocationId cell : frontier) {
        const std::int64_t gain = ia.probe(k, cell);
        ++st.probes;
        if (gain > best_gain) {
          best_gain = gain;
          best_cell = cell;
        }
      }
      if (best_cell == kInvalidLocation) break;  // no positive gain left
      ia.deploy(k, best_cell);
      occupied[static_cast<std::size_t>(best_cell)] = true;
    }
    if (audit) {
      analysis::AuditReport report = analysis::audit_assignment_flow(ia);
      report.subject = "appro_alg.leftover_fill";
      analysis::require_clean(report);
    }
    if (ia.served() > best_served) {
      best_served = ia.served();
      best_deployments = ia.deployments();
    }
    ia.end_scope(scope);
  }

  if (best_served >= 0) {
    // Final optimal assignment for the winning deployment (Lemma 1).
    const AssignmentResult assignment =
        solve_assignment(scenario, coverage, best_deployments);
    solution.deployments = std::move(best_deployments);
    solution.user_to_deployment = std::move(assignment.user_to_deployment);
    solution.served = assignment.served;
    UAVCOV_CHECK_MSG(solution.served == best_served,
                     "final assignment disagrees with incremental count");
  }
  if (audit) {
    analysis::AuditReport report =
        analysis::audit_solution(scenario, coverage, solution);
    report.subject = "appro_alg.final_solution";
    analysis::require_clean(report);
  }
  st.seconds = watch.elapsed_s();
  solution.solve_seconds = st.seconds;
  return solution;
}

}  // namespace uavcov
