#include "core/exhaustive.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "core/assignment.hpp"
#include "graph/bfs.hpp"

namespace uavcov {

Solution exhaustive_optimal(const Scenario& scenario,
                            const CoverageModel& coverage) {
  scenario.validate();
  const std::int32_t m = scenario.grid.size();
  const std::int32_t K = scenario.uav_count();
  UAVCOV_CHECK_MSG(m <= 16, "exhaustive solver limited to 16 locations");
  UAVCOV_CHECK_MSG(K <= 5, "exhaustive solver limited to 5 UAVs");

  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);

  Solution best;
  best.algorithm = "exhaustive";
  best.user_to_deployment.assign(scenario.users.size(), -1);
  best.served = 0;

  std::vector<NodeId> locs;
  for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
    const std::int32_t t = __builtin_popcount(mask);
    if (t > K) continue;
    locs.clear();
    for (NodeId v = 0; v < m; ++v) {
      if (mask & (1u << v)) locs.push_back(v);
    }
    if (!is_induced_subgraph_connected(g, locs)) continue;

    // Try every injective UAV → location mapping: choose t UAVs out of K
    // and permute them over the t locations.
    std::vector<UavId> uav_subset(static_cast<std::size_t>(t));
    const auto choose = [&](auto&& self, std::int32_t start,
                      std::int32_t depth) -> void {
      if (depth == t) {
        std::vector<UavId> perm = uav_subset;
        std::sort(perm.begin(), perm.end());
        do {
          std::vector<Deployment> deps(static_cast<std::size_t>(t));
          for (std::int32_t i = 0; i < t; ++i) {
            deps[static_cast<std::size_t>(i)] = {
                perm[static_cast<std::size_t>(i)],
                to_cell(locs[static_cast<std::size_t>(i)])};
          }
          const AssignmentResult result =
              solve_assignment(scenario, coverage, deps);
          if (result.served > best.served) {
            best.served = result.served;
            best.deployments = deps;
            best.user_to_deployment = result.user_to_deployment;
          }
        } while (std::next_permutation(perm.begin(), perm.end()));
        return;
      }
      for (std::int32_t u = start; u < K; ++u) {
        uav_subset[static_cast<std::size_t>(depth)] = UavId{u};
        self(self, u + 1, depth + 1);
      }
    };
    choose(choose, 0, 0);
  }
  return best;
}

}  // namespace uavcov
