// Re-deployment controller for moving users (§II-C): keep the current
// placement while it still serves well (only re-solving the cheap optimal
// assignment), and re-run Algorithm 2 when coverage decays past a
// threshold — the strategy the paper adopts from Xu et al. [37].
#pragma once

#include "core/appro_alg.hpp"

namespace uavcov {

/// Shared by RedeployPolicy and resilience::RepairPolicy: throws
/// std::invalid_argument unless `value` is a finite fraction in (0, 1].
/// `context` names the offending field in the message, matching the
/// ApproAlgParams::validate() style.
void validate_unit_threshold(const char* context, double value);

struct RedeployPolicy {
  /// Re-run approAlg when served users fall below this fraction of the
  /// served count right after the last full solve.  Must be in (0, 1].
  double degradation_threshold = 0.9;
  ApproAlgParams appro{};

  /// Throws std::invalid_argument on out-of-domain fields; called at
  /// every RedeployController::update entry.
  void validate() const;
};

class RedeployController {
 public:
  RedeployController(RedeployPolicy policy) : policy_(policy) {}

  /// Called with the current (possibly moved) users.  Re-assigns users to
  /// the standing deployment; if served count degraded past the policy
  /// threshold (or there is no deployment yet), re-runs approAlg.
  /// Returns the up-to-date solution.
  const Solution& update(const Scenario& scenario);

  /// Number of full approAlg re-solves performed so far.
  std::int32_t full_solves() const { return full_solves_; }

  /// Sum of UAV flight distances caused by re-deployments [m]: each UAV is
  /// matched to the nearest location of the new plan, greedily.
  double uav_travel_m() const { return uav_travel_m_; }

  const Solution& current() const { return solution_; }

 private:
  void account_travel(const Scenario& scenario,
                      const std::vector<Deployment>& before,
                      const std::vector<Deployment>& after);

  RedeployPolicy policy_;
  Solution solution_;
  std::int64_t served_at_last_solve_ = -1;
  std::int32_t full_solves_ = 0;
  double uav_travel_m_ = 0.0;
};

}  // namespace uavcov
