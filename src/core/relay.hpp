// Relay stitching (Algorithm 2, lines 13–15 / Fig. 3): connect the greedily
// chosen locations V'_j into one UAV network.
//
//   1. complete graph G'_j over V'_j, edge weight = pairwise hop distance
//      in the full location graph G;
//   2. minimum spanning tree T'_j of G'_j;
//   3. G_j = union of the shortest hop paths realizing T'_j's edges.
//
// Returns the node set V_j of G_j (chosen nodes first, then relays) or
// nullopt if some pair is unreachable in G.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace uavcov {

struct RelayPlan {
  /// All cells of the connected subgraph G_j: the input `chosen` cells (in
  /// their original order) followed by the added relay cells.
  std::vector<CellId> nodes;
  std::int32_t relay_count = 0;
};

/// `g` must be a hovering-location graph (node i == cell i).
std::optional<RelayPlan> stitch_connected(const Graph& g,
                                          std::span<const CellId> chosen);

}  // namespace uavcov
