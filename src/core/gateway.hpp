// Gateway/backhaul extension (paper Fig. 1): "at least one of the UAVs
// serves as a gateway UAV … connected to the Internet with the help of
// satellites or emergency communication vehicles."
//
// `extend_to_gateway` takes a solved deployment and, if no deployed UAV is
// within UAV range of the emergency vehicle, spends unused fleet UAVs as a
// relay chain from the network to the vehicle (shortest hop path over the
// grid), then re-runs the optimal assignment (relay UAVs may pick up
// users).  The result keeps every §II-C constraint.
#pragma once

#include "core/coverage.hpp"
#include "core/solution.hpp"

namespace uavcov {

struct GatewayResult {
  bool connected = false;        ///< network now reaches the vehicle.
  std::int32_t relays_added = 0; ///< UAVs spent on the backhaul chain.
  /// Deployment index of the gateway UAV (the one within range of the
  /// vehicle), or -1 if not connected.
  std::int32_t gateway_deployment = -1;
};

/// `vehicle_pos` is the emergency communication vehicle's ground position;
/// a UAV within `scenario.uav_range_m` (3-D, accounting for altitude) of
/// it can act as the gateway.  Returns the outcome and mutates `solution`
/// (deployments + refreshed assignment) when relays were added.
GatewayResult extend_to_gateway(const Scenario& scenario,
                                const CoverageModel& coverage,
                                Solution& solution, Vec2 vehicle_pos);

}  // namespace uavcov
