#include "graph/dsu.hpp"

// Header-only implementation; this TU anchors the target.
