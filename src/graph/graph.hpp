// Undirected graph over hovering locations (unit-weight edges = one UAV-to-
// UAV wireless hop).  Compact adjacency-list representation with builders.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "geometry/grid.hpp"

namespace uavcov {

/// Node index type shared across graph algorithms.  Deliberately an
/// untyped int32: graph/ is generic infrastructure reused over several
/// node universes (grid cells, deployment indices, test graphs), so the
/// strong typing lives at the boundary — `to_node`/`to_cell` below convert
/// explicitly for the hovering-location graph, where node i *is* cell i.
using NodeId = std::int32_t;

/// Location-graph boundary: CellId <-> NodeId (identity mapping).
inline NodeId to_node(CellId cell) { return cell.value(); }
inline CellId to_cell(NodeId node) { return CellId{node}; }

/// Immutable undirected graph in CSR (compressed sparse row) layout.
class Graph {
 public:
  Graph() = default;

  /// Build from an edge list over nodes [0, node_count).  Parallel edges and
  /// self-loops are rejected (the hovering-location graph has neither).
  static Graph from_edges(NodeId node_count,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId node_count() const { return static_cast<NodeId>(offsets_.size()) - 1; }
  std::int64_t edge_count() const {
    return static_cast<std::int64_t>(targets_.size()) / 2;
  }

  /// Neighbors of `u` as a contiguous span (sorted ascending).
  std::span<const NodeId> neighbors(NodeId u) const {
    UAVCOV_DCHECK(u >= 0 && u < node_count());
    const auto lo =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
    const auto hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
    return {targets_.data() + lo, hi - lo};
  }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(neighbors(u).size());
  }

  /// True if edge (u, v) exists.  O(log degree(u)).
  bool has_edge(NodeId u, NodeId v) const;

 private:
  std::vector<std::int64_t> offsets_{0};
  std::vector<NodeId> targets_;
};

/// Builds the hovering-location connectivity graph: nodes are grid centers,
/// edge (i, j) iff Euclidean distance <= range (paper: R_uav).
Graph build_location_graph(const Grid& grid, double range);

/// Same, over a subset of active locations; inactive cells get no incident
/// edges (used after candidate pruning).
Graph build_location_graph(const Grid& grid, double range,
                           const std::vector<bool>& active);

}  // namespace uavcov
