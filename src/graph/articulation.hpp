// Articulation points (cut vertices) via Tarjan's low-link DFS.
//
// Used by the robustness report: an articulation point in the deployed
// UAV network is a single UAV whose failure (battery, crash) disconnects
// survivors from the rescue team — §II-A's connectivity requirement makes
// these the network's critical nodes.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace uavcov {

/// Articulation points of `g` (all components considered), ascending ids.
std::vector<NodeId> articulation_points(const Graph& g);

/// Test-support oracle: node v is an articulation point iff removing it
/// increases the number of connected components among the remaining nodes.
bool is_articulation_point_brute_force(const Graph& g, NodeId v);

}  // namespace uavcov
