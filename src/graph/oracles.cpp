#include "graph/oracles.hpp"

#include <algorithm>
#include <limits>

#include "graph/bfs.hpp"
#include "graph/dsu.hpp"

namespace uavcov::oracle {

std::vector<std::vector<std::int32_t>> all_pairs_hops(const Graph& g) {
  const NodeId n = g.node_count();
  std::vector<std::vector<std::int32_t>> d(
      static_cast<std::size_t>(n),
      std::vector<std::int32_t>(static_cast<std::size_t>(n), kUnreachable));
  for (NodeId i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
    for (NodeId j : g.neighbors(i)) {
      d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      const std::int32_t dik =
          d[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      if (dik == kUnreachable) continue;
      for (NodeId j = 0; j < n; ++j) {
        const std::int32_t dkj =
            d[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        if (dkj == kUnreachable) continue;
        auto& dij = d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        dij = std::min(dij, dik + dkj);
      }
    }
  }
  return d;
}

double brute_force_mst_weight(NodeId node_count,
                              const std::vector<WeightedEdge>& edges) {
  UAVCOV_CHECK_MSG(edges.size() <= 20, "brute-force MST limited to 20 edges");
  double best = std::numeric_limits<double>::infinity();
  const std::size_t subsets = std::size_t{1} << edges.size();
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    if (static_cast<NodeId>(__builtin_popcountll(mask)) != node_count - 1) {
      continue;
    }
    Dsu dsu(node_count);
    double weight = 0.0;
    bool acyclic = true;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!(mask & (std::size_t{1} << e))) continue;
      if (!dsu.unite(edges[e].u, edges[e].v)) {
        acyclic = false;
        break;
      }
      weight += edges[e].weight;
    }
    if (acyclic && dsu.component_count() == 1) best = std::min(best, weight);
  }
  return best;
}

bool brute_force_connected(
    NodeId node_count, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  if (node_count <= 1) return true;
  Dsu dsu(node_count);
  for (const auto& [u, v] : edges) dsu.unite(u, v);
  return dsu.component_count() == 1;
}

}  // namespace uavcov::oracle
