#include "graph/euler.hpp"

#include <algorithm>

namespace uavcov {

std::optional<std::vector<NodeId>> euler_path(
    NodeId node_count, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  UAVCOV_CHECK_MSG(node_count >= 0, "node count must be nonnegative");
  if (edges.empty()) {
    return std::vector<NodeId>{};  // trivially empty walk
  }
  // Adjacency as (neighbor, edge id); each edge consumed once.
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adj(
      static_cast<std::size_t>(node_count));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    UAVCOV_CHECK_MSG(u >= 0 && u < node_count && v >= 0 && v < node_count,
                     "edge endpoint out of range");
    adj[static_cast<std::size_t>(u)].emplace_back(v, e);
    adj[static_cast<std::size_t>(v)].emplace_back(u, e);
  }
  // Eulerian path conditions: 0 or 2 odd-degree vertices, edges connected.
  NodeId start = edges[0].first;
  std::int32_t odd = 0;
  for (NodeId v = 0; v < node_count; ++v) {
    if (adj[static_cast<std::size_t>(v)].size() % 2 == 1) {
      ++odd;
      start = v;
    }
  }
  if (odd != 0 && odd != 2) return std::nullopt;

  // Hierholzer with explicit stack.
  std::vector<std::size_t> next(static_cast<std::size_t>(node_count), 0);
  std::vector<bool> used(edges.size(), false);
  std::vector<NodeId> stack{start};
  std::vector<NodeId> path;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    auto& cursor = next[static_cast<std::size_t>(u)];
    auto& edges_u = adj[static_cast<std::size_t>(u)];
    while (cursor < edges_u.size() && used[edges_u[cursor].second]) ++cursor;
    if (cursor == edges_u.size()) {
      path.push_back(u);
      stack.pop_back();
    } else {
      used[edges_u[cursor].second] = true;
      stack.push_back(edges_u[cursor].first);
    }
  }
  if (path.size() != edges.size() + 1) return std::nullopt;  // disconnected
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> tree_double_euler_path(
    NodeId node_count,
    const std::vector<std::pair<NodeId, NodeId>>& tree_edges) {
  UAVCOV_CHECK_MSG(node_count >= 1, "tree must have at least one node");
  UAVCOV_CHECK_MSG(
      static_cast<NodeId>(tree_edges.size()) == node_count - 1,
      "a spanning tree on K nodes must have exactly K-1 edges");
  if (node_count == 1) return {0};
  // Duplicate every edge except the first: (K-1) + (K-2) = 2K-3 edges.
  std::vector<std::pair<NodeId, NodeId>> multi = tree_edges;
  multi.insert(multi.end(), tree_edges.begin() + 1, tree_edges.end());
  const auto path = euler_path(node_count, multi);
  UAVCOV_CHECK_MSG(path.has_value(),
                   "doubled tree must admit an Eulerian path");
  UAVCOV_CHECK_MSG(
      path->size() == 2 * static_cast<std::size_t>(node_count) - 2,
      "Eulerian path over the doubled tree must visit 2K-2 nodes");
  return *path;
}

std::vector<std::vector<NodeId>> split_path(const std::vector<NodeId>& path,
                                            std::int32_t L) {
  UAVCOV_CHECK_MSG(L >= 1, "chunk length must be positive");
  std::vector<std::vector<NodeId>> chunks;
  for (std::size_t i = 0; i < path.size(); i += static_cast<std::size_t>(L)) {
    const std::size_t end =
        std::min(path.size(), i + static_cast<std::size_t>(L));
    chunks.emplace_back(path.begin() + static_cast<std::ptrdiff_t>(i),
                        path.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return chunks;
}

}  // namespace uavcov
