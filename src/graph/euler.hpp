// Eulerian paths on multigraphs (Hierholzer), plus the tree-doubling
// construction from the paper's analysis (§III-A, Fig. 2(a)–(c)): duplicate
// K−2 of a spanning tree's K−1 edges to obtain a multigraph with an
// Eulerian path of 2K−3 edges, then split it into subpaths of L nodes.
//
// Algorithm 2 itself never walks an Euler path (it only needs L_max from
// Algorithm 1), but the integration tests verify the analysis pipeline on
// concrete trees using these routines.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace uavcov {

/// Eulerian path over a connected multigraph given as an edge list on nodes
/// [0, node_count).  Returns the node visit sequence (edges.size() + 1
/// nodes), or std::nullopt if no Eulerian path exists (more than two odd-
/// degree vertices, or disconnected edge set).
std::optional<std::vector<NodeId>> euler_path(
    NodeId node_count, const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Paper construction: given a spanning tree with K nodes and K−1 edges,
/// duplicate all but one edge (K−2 duplicates) and return an Eulerian path
/// with 2K−3 edges / 2K−2 node visits.  For K == 1 returns the single node.
std::vector<NodeId> tree_double_euler_path(
    NodeId node_count, const std::vector<std::pair<NodeId, NodeId>>& tree_edges);

/// Split a node-visit sequence into ⌈len/L⌉ chunks of exactly L nodes (last
/// chunk may be shorter) — the subpaths P_1..P_Δ of Fig. 2(c).
std::vector<std::vector<NodeId>> split_path(const std::vector<NodeId>& path,
                                            std::int32_t L);

}  // namespace uavcov
