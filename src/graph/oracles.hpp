// Naive reference implementations ("oracles") used only by tests to
// cross-check the production graph algorithms on small random instances.
// Deliberately simple and obviously correct; never used on hot paths.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/mst.hpp"

namespace uavcov::oracle {

/// Floyd–Warshall all-pairs hop distances (kUnreachable for disconnected).
std::vector<std::vector<std::int32_t>> all_pairs_hops(const Graph& g);

/// MST weight by trying every spanning tree on tiny graphs (n <= 8) via
/// edge-subset enumeration.  Returns +inf if disconnected.
double brute_force_mst_weight(NodeId node_count,
                              const std::vector<WeightedEdge>& edges);

/// Connectivity by DFS over an adjacency matrix.
bool brute_force_connected(NodeId node_count,
                           const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace uavcov::oracle
