// Breadth-first search utilities: single- and multi-source hop distances,
// shortest-hop path reconstruction, connectivity tests.
//
// Hop distance in the location graph is the metric of matroid M2 (nodes at
// most h_max hops from the seed set) and of the relay-stitching step
// (MST edge weights are pairwise hop distances).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace uavcov {

/// Sentinel for "unreachable" in hop-distance vectors.
inline constexpr std::int32_t kUnreachable =
    std::numeric_limits<std::int32_t>::max();

/// Sentinel for "no parent" in BFS parent vectors (sources and
/// unreachable nodes).
inline constexpr NodeId kNoParent = -1;

/// Hop distances from `source` to every node (kUnreachable if disconnected).
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source);

/// Hop distances from the nearest node of `sources` (multi-source BFS).
/// This computes d_l of §III-C: min hops from node v_l to the seed set.
std::vector<std::int32_t> bfs_distances(const Graph& g,
                                        std::span<const NodeId> sources);

/// Like multi-source bfs_distances, but also returns for each node its
/// parent on a shortest path toward the nearest source (kNoParent for
/// sources/unreachable nodes).
struct BfsTree {
  std::vector<std::int32_t> distance;
  std::vector<NodeId> parent;
};
BfsTree bfs_tree(const Graph& g, std::span<const NodeId> sources);

/// One shortest-hop path from `from` to `to` (inclusive of endpoints).
/// Returns empty vector if unreachable.
std::vector<NodeId> shortest_hop_path(const Graph& g, NodeId from, NodeId to);

/// True if the subgraph induced by `nodes` is connected (single node and
/// empty sets count as connected).  Induced edges only.
bool is_induced_subgraph_connected(const Graph& g,
                                   std::span<const NodeId> nodes);

/// Connected component label per node (labels are 0-based, assigned in
/// order of lowest-index member).
std::vector<std::int32_t> connected_components(const Graph& g);

}  // namespace uavcov
