#include "graph/bfs.hpp"

#include <algorithm>
#include <deque>

namespace uavcov {

namespace {
BfsTree bfs_impl(const Graph& g, std::span<const NodeId> sources) {
  const auto n = static_cast<std::size_t>(g.node_count());
  BfsTree tree;
  tree.distance.assign(n, kUnreachable);
  tree.parent.assign(n, kNoParent);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    UAVCOV_CHECK_MSG(s >= 0 && s < g.node_count(), "BFS source out of range");
    if (tree.distance[static_cast<std::size_t>(s)] != kUnreachable) continue;
    tree.distance[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const std::int32_t du = tree.distance[static_cast<std::size_t>(u)];
    for (NodeId v : g.neighbors(u)) {
      auto& dv = tree.distance[static_cast<std::size_t>(v)];
      if (dv == kUnreachable) {
        dv = du + 1;
        tree.parent[static_cast<std::size_t>(v)] = u;
        queue.push_back(v);
      }
    }
  }
  return tree;
}
}  // namespace

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId source) {
  const NodeId sources[] = {source};
  return bfs_impl(g, sources).distance;
}

std::vector<std::int32_t> bfs_distances(const Graph& g,
                                        std::span<const NodeId> sources) {
  return bfs_impl(g, sources).distance;
}

BfsTree bfs_tree(const Graph& g, std::span<const NodeId> sources) {
  return bfs_impl(g, sources);
}

std::vector<NodeId> shortest_hop_path(const Graph& g, NodeId from, NodeId to) {
  const NodeId sources[] = {from};
  const BfsTree tree = bfs_impl(g, sources);
  if (tree.distance[static_cast<std::size_t>(to)] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != kNoParent;
       v = tree.parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  UAVCOV_DCHECK(path.front() == from && path.back() == to);
  return path;
}

bool is_induced_subgraph_connected(const Graph& g,
                                   std::span<const NodeId> nodes) {
  if (nodes.size() <= 1) return true;
  std::vector<bool> in_set(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId v : nodes) {
    UAVCOV_CHECK_MSG(v >= 0 && v < g.node_count(), "node out of range");
    in_set[static_cast<std::size_t>(v)] = true;
  }
  std::vector<bool> visited(static_cast<std::size_t>(g.node_count()), false);
  std::deque<NodeId> queue{nodes[0]};
  visited[static_cast<std::size_t>(nodes[0])] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.neighbors(u)) {
      const auto vi = static_cast<std::size_t>(v);
      if (in_set[vi] && !visited[vi]) {
        visited[vi] = true;
        ++reached;
        queue.push_back(v);
      }
    }
  }
  // Count distinct nodes in `nodes` (tolerate duplicates in the input).
  std::size_t distinct = 0;
  std::vector<bool> seen(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId v : nodes) {
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = true;
      ++distinct;
    }
  }
  return reached == distinct;
}

std::vector<std::int32_t> connected_components(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::int32_t> label(n, -1);
  std::int32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (label[static_cast<std::size_t>(s)] != -1) continue;
    label[static_cast<std::size_t>(s)] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (label[static_cast<std::size_t>(v)] == -1) {
          label[static_cast<std::size_t>(v)] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

}  // namespace uavcov
