// Minimum spanning tree over a weighted edge list (Kruskal) and over a
// dense pairwise-weight matrix (Prim).
//
// Algorithm 2 builds a complete graph G'_j on the greedily chosen locations
// with edge weight = pairwise hop distance in G, then takes an MST (paper
// Fig. 3(b)); the dense Prim variant serves exactly that shape.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace uavcov {

struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 0.0;
};

/// Kruskal over an explicit edge list.  Returns the MST edges, or
/// std::nullopt if the graph (restricted to nodes [0, node_count)) is
/// disconnected.  Ties are broken by input order (stable sort), so results
/// are deterministic.
std::optional<std::vector<WeightedEdge>> kruskal_mst(
    NodeId node_count, std::vector<WeightedEdge> edges);

/// Prim over a dense symmetric weight matrix `w` (size k×k, row-major).
/// Entries >= kInfiniteWeight are treated as "no edge".  Returns MST as a
/// parent array (parent[0] == -1) or std::nullopt if disconnected.
inline constexpr double kInfiniteWeight = 1e18;
std::optional<std::vector<NodeId>> prim_mst_dense(
    const std::vector<double>& w, NodeId k);

/// Total weight of an MST parent array against the same matrix.
double mst_weight_dense(const std::vector<double>& w, NodeId k,
                        const std::vector<NodeId>& parent);

}  // namespace uavcov
