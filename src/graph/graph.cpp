#include "graph/graph.hpp"

#include <algorithm>

namespace uavcov {

Graph Graph::from_edges(NodeId node_count,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  UAVCOV_CHECK_MSG(node_count >= 0, "node count must be nonnegative");
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  for (const auto& [u, v] : edges) {
    UAVCOV_CHECK_MSG(u >= 0 && u < node_count && v >= 0 && v < node_count,
                     "edge endpoint out of range");
    UAVCOV_CHECK_MSG(u != v, "self-loops are not allowed");
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.targets_.resize(static_cast<std::size_t>(g.offsets_.back()));
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    g.targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  for (NodeId u = 0; u < node_count; ++u) {
    auto nb = g.neighbors(u);
    std::sort(const_cast<NodeId*>(nb.data()),
              const_cast<NodeId*>(nb.data() + nb.size()));
    for (std::size_t i = 1; i < nb.size(); ++i) {
      UAVCOV_CHECK_MSG(nb[i] != nb[i - 1], "parallel edges are not allowed");
    }
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

namespace {
Graph build_location_graph_impl(const Grid& grid, double range,
                                const std::vector<bool>* active) {
  UAVCOV_CHECK_MSG(range > 0, "UAV communication range must be positive");
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId m = grid.size();
  for (NodeId u = 0; u < m; ++u) {
    if (active && !(*active)[static_cast<std::size_t>(u)]) continue;
    for (const LocationId v :
         grid.centers_within(grid.center(to_cell(u)), range)) {
      if (to_node(v) <= u) continue;  // emit each undirected edge once
      if (active && !(*active)[v.index()]) continue;
      edges.emplace_back(u, to_node(v));
    }
  }
  return Graph::from_edges(m, edges);
}
}  // namespace

Graph build_location_graph(const Grid& grid, double range) {
  return build_location_graph_impl(grid, range, nullptr);
}

Graph build_location_graph(const Grid& grid, double range,
                           const std::vector<bool>& active) {
  UAVCOV_CHECK_MSG(static_cast<NodeId>(active.size()) == grid.size(),
                   "active mask size must equal grid size");
  return build_location_graph_impl(grid, range, &active);
}

}  // namespace uavcov
