// Disjoint-set union (union by size + path halving) — used by Kruskal's MST
// and by solution validation to check UAV-network connectivity.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace uavcov {

class Dsu {
 public:
  explicit Dsu(std::int32_t n) : parent_(static_cast<std::size_t>(n)),
                                 size_(static_cast<std::size_t>(n), 1),
                                 components_(n) {
    UAVCOV_CHECK_MSG(n >= 0, "DSU size must be nonnegative");
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::int32_t find(std::int32_t x) {
    UAVCOV_DCHECK(x >= 0 && x < static_cast<std::int32_t>(parent_.size()));
    while (parent_[static_cast<std::size_t>(x)] != x) {
      auto& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];  // path halving
      x = p;
    }
    return x;
  }

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    --components_;
    return true;
  }

  bool same(std::int32_t a, std::int32_t b) { return find(a) == find(b); }

  std::int32_t component_count() const { return components_; }

  std::int64_t component_size(std::int32_t x) {
    return size_[static_cast<std::size_t>(find(x))];
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int64_t> size_;
  std::int32_t components_;
};

}  // namespace uavcov
