#include "graph/articulation.hpp"

#include <algorithm>

#include "graph/dsu.hpp"

namespace uavcov {

std::vector<NodeId> articulation_points(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::int32_t> disc(n, -1), low(n, 0);
  std::vector<NodeId> parent(n, -1);
  std::vector<bool> is_cut(n, false);
  std::int32_t timer = 0;

  // Iterative DFS (explicit stack) to stay safe on long relay chains.
  struct Frame {
    NodeId node;
    std::size_t next_edge;
    std::int32_t children;
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < g.node_count(); ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    stack.push_back({root, 0, 0});
    disc[static_cast<std::size_t>(root)] =
        low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto neighbors = g.neighbors(frame.node);
      if (frame.next_edge < neighbors.size()) {
        const NodeId next = neighbors[frame.next_edge++];
        if (disc[static_cast<std::size_t>(next)] == -1) {
          parent[static_cast<std::size_t>(next)] = frame.node;
          ++frame.children;
          disc[static_cast<std::size_t>(next)] =
              low[static_cast<std::size_t>(next)] = timer++;
          stack.push_back({next, 0, 0});
        } else if (next != parent[static_cast<std::size_t>(frame.node)]) {
          low[static_cast<std::size_t>(frame.node)] =
              std::min(low[static_cast<std::size_t>(frame.node)],
                       disc[static_cast<std::size_t>(next)]);
        }
      } else {
        stack.pop_back();
        const NodeId u = frame.node;
        const NodeId p = parent[static_cast<std::size_t>(u)];
        if (p != -1) {
          low[static_cast<std::size_t>(p)] = std::min(
              low[static_cast<std::size_t>(p)],
              low[static_cast<std::size_t>(u)]);
          // Non-root p is a cut vertex if child u cannot reach above p.
          if (parent[static_cast<std::size_t>(p)] != -1 &&
              low[static_cast<std::size_t>(u)] >=
                  disc[static_cast<std::size_t>(p)]) {
            is_cut[static_cast<std::size_t>(p)] = true;
          }
        } else if (frame.children >= 2) {
          is_cut[static_cast<std::size_t>(u)] = true;  // root with 2+ trees
        }
      }
    }
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (is_cut[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

bool is_articulation_point_brute_force(const Graph& g, NodeId v) {
  const NodeId n = g.node_count();
  // Components among the surviving nodes after deleting `removed`
  // (pass -1 to delete nothing).
  const auto components_without = [&g, n](NodeId removed) {
    Dsu dsu(n);
    for (NodeId u = 0; u < n; ++u) {
      if (u == removed) continue;
      for (NodeId w : g.neighbors(u)) {
        if (w != removed && w > u) dsu.unite(u, w);
      }
    }
    // The removed node still sits in the DSU as a singleton; discount it.
    return dsu.component_count() - (removed >= 0 ? 1 : 0);
  };
  return components_without(v) > components_without(-1);
}

}  // namespace uavcov
