#include "graph/mst.hpp"

#include <algorithm>

#include "graph/dsu.hpp"

namespace uavcov {

std::optional<std::vector<WeightedEdge>> kruskal_mst(
    NodeId node_count, std::vector<WeightedEdge> edges) {
  UAVCOV_CHECK_MSG(node_count >= 0, "node count must be nonnegative");
  std::stable_sort(edges.begin(), edges.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.weight < b.weight;
                   });
  Dsu dsu(node_count);
  std::vector<WeightedEdge> tree;
  tree.reserve(static_cast<std::size_t>(std::max<NodeId>(node_count - 1, 0)));
  for (const WeightedEdge& e : edges) {
    UAVCOV_CHECK_MSG(e.u >= 0 && e.u < node_count && e.v >= 0 &&
                         e.v < node_count,
                     "edge endpoint out of range");
    if (dsu.unite(e.u, e.v)) tree.push_back(e);
  }
  if (node_count > 0 && dsu.component_count() != 1) return std::nullopt;
  return tree;
}

std::optional<std::vector<NodeId>> prim_mst_dense(const std::vector<double>& w,
                                                  NodeId k) {
  UAVCOV_CHECK_MSG(k >= 0, "node count must be nonnegative");
  UAVCOV_CHECK_MSG(static_cast<std::size_t>(k) * static_cast<std::size_t>(k) ==
                       w.size(),
                   "weight matrix must be k×k");
  if (k == 0) return std::vector<NodeId>{};
  const auto at = [&w, k](NodeId i, NodeId j) {
    return w[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
             static_cast<std::size_t>(j)];
  };
  std::vector<NodeId> parent(static_cast<std::size_t>(k), -1);
  std::vector<double> best(static_cast<std::size_t>(k), kInfiniteWeight);
  std::vector<bool> in_tree(static_cast<std::size_t>(k), false);
  best[0] = 0.0;
  for (NodeId iter = 0; iter < k; ++iter) {
    NodeId u = -1;
    double bu = kInfiniteWeight;
    for (NodeId v = 0; v < k; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] &&
          best[static_cast<std::size_t>(v)] < bu) {
        bu = best[static_cast<std::size_t>(v)];
        u = v;
      }
    }
    if (u == -1) return std::nullopt;  // disconnected
    in_tree[static_cast<std::size_t>(u)] = true;
    for (NodeId v = 0; v < k; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] &&
          at(u, v) < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = at(u, v);
        parent[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return parent;
}

double mst_weight_dense(const std::vector<double>& w, NodeId k,
                        const std::vector<NodeId>& parent) {
  UAVCOV_CHECK_MSG(static_cast<NodeId>(parent.size()) == k,
                   "parent array size mismatch");
  double total = 0.0;
  for (NodeId v = 1; v < k; ++v) {
    const NodeId p = parent[static_cast<std::size_t>(v)];
    UAVCOV_CHECK_MSG(p >= 0 && p < k, "invalid MST parent");
    total += w[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(p)];
  }
  return total;
}

}  // namespace uavcov
