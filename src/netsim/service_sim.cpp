#include "netsim/service_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "analysis/audit.hpp"
#include "channel/link_budget.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace uavcov::netsim {

namespace {

/// Service-loop metrics (docs/OBSERVABILITY.md): one tick = one scheduler
/// slot across every UAV.  tests/netsim_test.cpp asserts ticks == the
/// simulated slot count and that tick latencies land in the histogram.
struct NetsimMetrics {
  obs::Counter runs = obs::counter("netsim.runs");
  obs::Counter ticks = obs::counter("netsim.ticks");
  obs::Histogram tick_seconds = obs::histogram("netsim.tick_seconds");
};

const NetsimMetrics& netsim_metrics() {
  static const NetsimMetrics metrics;
  return metrics;
}

struct Packet {
  std::int32_t flow = -1;   ///< index into the attached-user flow table.
  double arrival_s = 0.0;
  double remaining_bits = 0.0;
};

struct Flow {
  UserId user = UserId::invalid();
  std::int32_t deployment = -1;
  double link_rate_bps = 0.0;
  double arrival_credit = 0.0;   ///< fractional packets accumulated.
  double delivered_bits = 0.0;
  double delay_sum_s = 0.0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
};

/// Per-UAV scheduler state: a shared server FIFO feeding per-flow air
/// queues drained round-robin.
struct UavState {
  std::vector<std::int32_t> flows;       // flow indices attached here
  std::deque<Packet> server_queue;
  double server_credit = 0.0;            // fractional packets processable
  std::vector<std::deque<Packet>> air;   // parallel to `flows`
  std::size_t rr_cursor = 0;
  std::int64_t busy_slots = 0;
  std::int64_t processed_pkts = 0;
};

constexpr std::size_t kServerQueueCap = 4096;

/// num / den with a zero-duration / zero-slot guard: an empty observation
/// window has zero throughput and utilization, not NaN.  The fault-drill
/// timeline (src/resilience/timeline.hpp) legitimately produces
/// zero-length phases when two faults coincide.
double safe_div(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

std::int32_t sustainable_users(const ServiceSimConfig& config) {
  UAVCOV_CHECK_MSG(config.offered_load_bps > 0 && config.packet_bits > 0 &&
                       config.server_pkts_per_s > 0,
                   "invalid service-sim config");
  const double per_user_pkts_s = config.offered_load_bps / config.packet_bits;
  return static_cast<std::int32_t>(
      std::floor(config.server_pkts_per_s / per_user_pkts_s));
}

ServiceSimResult simulate_service(const Scenario& scenario,
                                  const Solution& solution,
                                  const ServiceSimConfig& config) {
  UAVCOV_CHECK_MSG(config.duration_s >= 0 && config.slot_s > 0,
                   "invalid simulation horizon");
  if (analysis::audit_env_enabled()) {
    // Simulating an infeasible assignment silently produces garbage
    // throughput numbers; under UAVCOV_AUDIT refuse loudly instead.
    const CoverageModel audit_coverage(scenario);
    analysis::AuditReport report =
        analysis::audit_solution(scenario, audit_coverage, solution);
    report.subject = "netsim.simulate_service";
    analysis::require_clean(report);
  }
  UAVCOV_CHECK_MSG(config.packet_bits > 0 && config.offered_load_bps > 0 &&
                       config.server_pkts_per_s > 0,
                   "invalid traffic model");
  UAVCOV_CHECK_MSG(
      solution.user_to_deployment.size() == scenario.users.size(),
      "solution does not match scenario");

  // Build flows (one per served user) and per-UAV state.
  std::vector<Flow> flows;
  std::vector<UavState> uavs(solution.deployments.size());
  for (const UserId u : scenario.user_ids()) {
    const std::int32_t d = solution.user_to_deployment[u];
    if (d < 0) continue;
    const Deployment& dep = solution.deployments[static_cast<std::size_t>(d)];
    const UavSpec& spec = scenario.fleet[dep.uav];
    Flow flow;
    flow.user = u;
    flow.deployment = d;
    flow.link_rate_bps = a2g_rate_bps(
        scenario.channel, spec.radio, scenario.receiver,
        distance(scenario.users[u].pos, scenario.grid.center(dep.loc)),
        scenario.altitude_m);
    UAVCOV_CHECK_MSG(flow.link_rate_bps > 0, "served user with zero rate");
    uavs[static_cast<std::size_t>(d)].flows.push_back(
        static_cast<std::int32_t>(flows.size()));
    flows.push_back(flow);
  }
  for (UavState& s : uavs) {
    s.air.resize(s.flows.size());
    // Stagger flow phases (golden-ratio sequence) so packet arrivals are
    // spread over time instead of bursting in lockstep — constant-bit-rate
    // sources in the field are never phase-aligned.
    for (std::size_t fi = 0; fi < s.flows.size(); ++fi) {
      const double phase = std::fmod(0.6180339887498949 *
                                         static_cast<double>(fi + 1),
                                     1.0);
      flows[static_cast<std::size_t>(s.flows[fi])].arrival_credit = phase;
    }
  }

  const auto slots =
      static_cast<std::int64_t>(std::ceil(config.duration_s / config.slot_s));
  const double pkts_per_slot_per_user =
      config.offered_load_bps * config.slot_s / config.packet_bits;
  const double server_pkts_per_slot =
      config.server_pkts_per_s * config.slot_s;

  netsim_metrics().runs.inc();
  std::vector<double> delays;
  for (std::int64_t t = 0; t < slots; ++t) {
    netsim_metrics().ticks.inc();
    const obs::ScopedTimer tick_timer(netsim_metrics().tick_seconds);
    const double now = static_cast<double>(t) * config.slot_s;
    for (std::size_t d = 0; d < uavs.size(); ++d) {
      UavState& uav = uavs[d];
      if (uav.flows.empty()) continue;

      // 1. Arrivals: each flow accrues fractional packets.
      for (std::size_t fi = 0; fi < uav.flows.size(); ++fi) {
        Flow& flow = flows[static_cast<std::size_t>(uav.flows[fi])];
        flow.arrival_credit += pkts_per_slot_per_user;
        while (flow.arrival_credit >= 1.0) {
          flow.arrival_credit -= 1.0;
          if (uav.server_queue.size() >= kServerQueueCap) {
            ++flow.dropped;  // on-board server overloaded
            continue;
          }
          uav.server_queue.push_back(
              {static_cast<std::int32_t>(fi), now, config.packet_bits});
        }
      }

      // 2. On-board server: control/data-plane processing at a fixed
      //    packet rate (the SkyCore bottleneck).
      uav.server_credit += server_pkts_per_slot;
      while (uav.server_credit >= 1.0 && !uav.server_queue.empty()) {
        uav.server_credit -= 1.0;
        ++uav.processed_pkts;
        Packet pkt = uav.server_queue.front();
        uav.server_queue.pop_front();
        uav.air[static_cast<std::size_t>(pkt.flow)].push_back(pkt);
      }
      if (uav.server_queue.empty() && uav.server_credit > 1.0) {
        uav.server_credit = 1.0;  // idle server does not bank work
      }

      // 3. Air interface: round-robin one flow per slot (OFDMA TTI).
      bool transmitted = false;
      for (std::size_t step = 0; step < uav.flows.size(); ++step) {
        const std::size_t fi =
            (uav.rr_cursor + step) % uav.flows.size();
        auto& queue = uav.air[fi];
        if (queue.empty()) continue;
        Flow& flow = flows[static_cast<std::size_t>(uav.flows[fi])];
        Packet& pkt = queue.front();
        const double bits = flow.link_rate_bps * config.slot_s;
        pkt.remaining_bits -= bits;
        flow.delivered_bits += std::min(bits, pkt.remaining_bits + bits);
        if (pkt.remaining_bits <= 0) {
          const double delay = now + config.slot_s - pkt.arrival_s;
          flow.delay_sum_s += delay;
          ++flow.delivered;
          delays.push_back(delay);
          queue.pop_front();
        }
        uav.rr_cursor = (fi + 1) % uav.flows.size();
        transmitted = true;
        break;
      }
      if (transmitted) ++uav.busy_slots;
    }
  }

  // Collect statistics.
  ServiceSimResult result;
  double total_bits = 0.0, total_delay = 0.0;
  std::int64_t total_delivered = 0;
  for (const Flow& flow : flows) {
    UserServiceStats stats;
    stats.user = flow.user;
    stats.mean_throughput_bps = safe_div(flow.delivered_bits,
                                         config.duration_s);
    stats.mean_delay_s =
        flow.delivered > 0
            ? flow.delay_sum_s / static_cast<double>(flow.delivered)
            : config.duration_s;  // nothing arrived: saturated
    stats.packets_delivered = flow.delivered;
    stats.packets_dropped = flow.dropped;
    result.users.push_back(stats);
    total_bits += flow.delivered_bits;
    total_delay += stats.mean_delay_s;
    total_delivered += flow.delivered;
  }
  (void)total_delivered;
  for (std::size_t d = 0; d < uavs.size(); ++d) {
    const UavState& uav = uavs[d];
    UavServiceStats stats;
    stats.deployment = static_cast<std::int32_t>(d);
    stats.attached_users = static_cast<std::int32_t>(uav.flows.size());
    stats.airtime_utilization = safe_div(
        static_cast<double>(uav.busy_slots), static_cast<double>(slots));
    stats.server_utilization =
        safe_div(static_cast<double>(uav.processed_pkts),
                 config.server_pkts_per_s * config.duration_s);
    double delay_sum = 0.0;
    for (std::int32_t fi : uav.flows) {
      const Flow& flow = flows[static_cast<std::size_t>(fi)];
      delay_sum += flow.delivered > 0 ? flow.delay_sum_s /
                                            static_cast<double>(flow.delivered)
                                      : config.duration_s;
    }
    stats.mean_delay_s =
        uav.flows.empty() ? 0.0
                          : delay_sum / static_cast<double>(uav.flows.size());
    result.uavs.push_back(stats);
  }
  result.network_throughput_bps = safe_div(total_bits, config.duration_s);
  result.mean_delay_s =
      result.users.empty()
          ? 0.0
          : total_delay / static_cast<double>(result.users.size());
  if (!delays.empty()) {
    std::sort(delays.begin(), delays.end());
    result.p95_delay_s =
        delays[static_cast<std::size_t>(0.95 * (delays.size() - 1))];
  }
  return result;
}

}  // namespace uavcov::netsim
