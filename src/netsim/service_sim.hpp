// Time-slotted downlink service simulator for a deployed UAV network.
//
// The paper's §I motivation: the SkyCore base-station module runs on a
// light on-board server, so "if too many users access the UAV, each user
// will experience a very long service delay, e.g., a few seconds, and the
// network throughput also significantly decreases" — which is exactly why
// the service capacity C_k exists.  This simulator reproduces that
// behavior so the capacity model can be validated end-to-end:
//
//   * each UAV schedules its attached users round-robin over OFDMA
//     resource-block slots; the per-slot user rate comes from the channel
//     model (distance-dependent);
//   * the on-board server adds a per-packet control-plane processing cost;
//     its single queue saturates once attached users exceed the server's
//     packet budget — delay then grows without bound (M/D/1-style);
//   * users generate fixed-rate traffic (e.g., 2 kb/s voice keepalives).
//
// Outputs per-user mean throughput and delay, plus per-UAV utilization.
#pragma once

#include <span>
#include <vector>

#include "core/coverage.hpp"
#include "core/solution.hpp"

namespace uavcov::netsim {

struct ServiceSimConfig {
  double duration_s = 10.0;       ///< simulated time; 0 is allowed (empty
                                  ///< window: all stats come back zero).
  double slot_s = 1e-3;           ///< scheduler slot length (1 ms TTI).
  double packet_bits = 4096.0;    ///< fixed packet size.
  double offered_load_bps = 2e3;  ///< per-user offered traffic.
  /// On-board server packet-processing budget: the light-weight server
  /// handles `server_pkts_per_s` packets per second in total (control +
  /// data plane).  The paper's capacity C_k maps to the number of
  /// offered-load users one server sustains — with these defaults,
  /// sustainable_users() ≈ 204, matching the paper's "e.g., 200 users".
  double server_pkts_per_s = 100.0;
};

struct UserServiceStats {
  UserId user = UserId::invalid();
  double mean_throughput_bps = 0.0;
  double mean_delay_s = 0.0;       ///< queueing + service delay per packet.
  std::int64_t packets_delivered = 0;
  std::int64_t packets_dropped = 0;
};

struct UavServiceStats {
  std::int32_t deployment = -1;
  std::int32_t attached_users = 0;
  double airtime_utilization = 0.0;  ///< busy slots / total slots.
  double server_utilization = 0.0;   ///< processed pkts / budget.
  double mean_delay_s = 0.0;         ///< across its users.
};

struct ServiceSimResult {
  std::vector<UserServiceStats> users;  ///< served users only.
  std::vector<UavServiceStats> uavs;    ///< one per deployment.
  double network_throughput_bps = 0.0;
  double mean_delay_s = 0.0;            ///< across all served users.
  double p95_delay_s = 0.0;
};

/// Simulates the assignment carried by `solution` over `config.duration_s`.
/// Deterministic (no randomness: fixed packet arrivals per user).
ServiceSimResult simulate_service(const Scenario& scenario,
                                  const Solution& solution,
                                  const ServiceSimConfig& config = {});

/// Convenience: how many offered-load users can one server sustain before
/// its packet queue saturates?  (The model behind choosing C_k.)
std::int32_t sustainable_users(const ServiceSimConfig& config);

}  // namespace uavcov::netsim
