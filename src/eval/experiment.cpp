#include "eval/experiment.hpp"

#include "baselines/greedy_assign.hpp"
#include "baselines/max_throughput.hpp"
#include "baselines/mcs.hpp"
#include "baselines/motion_ctrl.hpp"
#include "baselines/random_connected.hpp"
#include "common/check.hpp"

namespace uavcov::eval {

std::vector<AlgoResult> run_all(const RunConfig& config,
                                ApproAlgStats* appro_stats) {
  Rng rng(config.seed);
  const Scenario scenario =
      workload::make_disaster_scenario(config.scenario, rng);
  const CoverageModel coverage(scenario);
  return run_all_on(scenario, coverage, config, appro_stats);
}

std::vector<AlgoResult> run_all_on(const Scenario& scenario,
                                   const CoverageModel& coverage,
                                   const RunConfig& config,
                                   ApproAlgStats* appro_stats) {
  std::vector<AlgoResult> results;
  const auto record = [&](const Solution& solution) {
    if (config.validate) validate_solution(scenario, coverage, solution);
    results.push_back({solution.algorithm, solution.served,
                       solution.solve_seconds, solution.fingerprint()});
  };

  if (config.run_appro) {
    record(solve(scenario, coverage, config.appro, appro_stats));
  }
  if (config.run_max_throughput) {
    baselines::MaxThroughputParams params;
    params.candidate_cap = config.appro.candidate_cap;
    record(baselines::solve(scenario, coverage, params));
  }
  if (config.run_motion_ctrl) {
    record(baselines::solve(scenario, coverage, baselines::MotionCtrlParams{}));
  }
  if (config.run_mcs) {
    record(baselines::solve(scenario, coverage, baselines::McsParams{}));
  }
  if (config.run_greedy_assign) {
    record(
        baselines::solve(scenario, coverage, baselines::GreedyAssignParams{}));
  }
  if (config.run_random) {
    record(baselines::solve(scenario, coverage,
                            baselines::RandomConnectedParams{}));
  }
  return results;
}

std::vector<AlgoResult> run_averaged(const RunConfig& config,
                                     std::int32_t repetitions) {
  UAVCOV_CHECK_MSG(repetitions >= 1, "need at least one repetition");
  std::vector<AlgoResult> mean;
  for (std::int32_t rep = 0; rep < repetitions; ++rep) {
    RunConfig run = config;
    run.seed = config.seed + static_cast<std::uint64_t>(rep);
    const std::vector<AlgoResult> results = run_all(run);
    if (mean.empty()) {
      mean = results;
    } else {
      UAVCOV_CHECK_MSG(mean.size() == results.size(),
                       "algorithm set changed between repetitions");
      for (std::size_t i = 0; i < mean.size(); ++i) {
        mean[i].served += results[i].served;
        mean[i].seconds += results[i].seconds;
      }
    }
  }
  for (AlgoResult& r : mean) {
    r.served = (r.served + repetitions / 2) / repetitions;  // rounded mean
    r.seconds /= repetitions;
    r.fingerprint = 0;  // identity of a mean is meaningless
  }
  return mean;
}

}  // namespace uavcov::eval
