// Figure reproduction sweeps.  Each function regenerates one plot of the
// paper's evaluation (§IV-B) as a printed table (x value + one column per
// algorithm) and, optionally, a CSV next to it.
//
//   Fig. 4    served users vs K (number of UAVs)
//   Fig. 5    served users vs n (number of users)
//   Fig. 6(a) served users vs s   }  one sweep produces
//   Fig. 6(b) running time vs s   }  both tables
#pragma once

#include <string>

#include "common/table.hpp"
#include "eval/experiment.hpp"

namespace uavcov::eval {

/// Common scale knobs for the figure sweeps.  Defaults reproduce the
/// paper's *shape* at laptop scale; EXPERIMENTS.md documents the mapping
/// to the paper's exact parameters (reachable via the bench flags).
struct FigureScale {
  std::int32_t users = 1500;       ///< paper: 3000.
  std::int32_t uavs = 20;          ///< paper: 20 (fig 5/6 fixed K).
  std::int32_t s = 2;              ///< paper: 3 (fig 4/5 fixed s).
  double cell_side_m = 300.0;      ///< paper: 50 (see DESIGN.md §3).
  std::int32_t candidate_cap = 40; ///< 0 = no cap.
  std::int32_t repetitions = 1;
  std::uint64_t seed = 7;
  std::int32_t threads = 1;        ///< approAlg workers (0 = hardware).
  std::string csv_path;            ///< empty = no CSV output.
};

/// Fig. 4: K sweeps k_min..k_max (step k_step), fixed n and s.
Table fig4_served_vs_k(const FigureScale& scale, std::int32_t k_min = 2,
                       std::int32_t k_max = 20, std::int32_t k_step = 2);

/// Fig. 5: n sweeps n_min..n_max (step n_step), fixed K and s.
Table fig5_served_vs_n(const FigureScale& scale, std::int32_t n_min = 500,
                       std::int32_t n_max = 1500, std::int32_t n_step = 250);

/// Fig. 6: s sweeps s_min..s_max; returns served-users table and fills
/// `runtime_table` (Fig. 6(b)).
Table fig6_s_tradeoff(const FigureScale& scale, Table& runtime_table,
                      std::int32_t s_min = 1, std::int32_t s_max = 3);

}  // namespace uavcov::eval
