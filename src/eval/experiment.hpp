// Experiment harness: run approAlg and the four paper baselines (plus the
// random sanity baseline) on one generated scenario, validate every
// solution, and collect (served, seconds) per algorithm.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/appro_alg.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov::eval {

struct AlgoResult {
  std::string name;
  std::int64_t served = 0;
  double seconds = 0.0;
  /// Solution::fingerprint() of the produced solution — lets the bench
  /// harness pin solver identity without keeping the Solution alive.
  /// run_averaged() zeroes it (fingerprints do not average).
  std::uint64_t fingerprint = 0;
};

struct RunConfig {
  workload::ScenarioConfig scenario{};
  ApproAlgParams appro{};
  std::uint64_t seed = 1;
  bool run_appro = true;
  bool run_max_throughput = true;
  bool run_motion_ctrl = true;
  bool run_mcs = true;
  bool run_greedy_assign = true;
  bool run_random = false;
  bool validate = true;  ///< audit every solution against §II-C.
};

/// Generates the scenario from `config.seed` and runs the selected
/// algorithms.  Order of results: approAlg, maxThroughput, MotionCtrl,
/// MCS, GreedyAssign, RandomConnected (selected ones only).
std::vector<AlgoResult> run_all(const RunConfig& config,
                                ApproAlgStats* appro_stats = nullptr);

/// Same as run_all() but on a caller-supplied scenario + coverage model,
/// so sweeps that vary only algorithm parameters (e.g. the fig. 6 s-sweep)
/// can reuse the eligibility precomputation instead of rebuilding it per
/// sweep point.  `config.scenario`/`config.seed` are ignored here.
std::vector<AlgoResult> run_all_on(const Scenario& scenario,
                                   const CoverageModel& coverage,
                                   const RunConfig& config,
                                   ApproAlgStats* appro_stats = nullptr);

/// Average `repetitions` runs with seeds seed, seed+1, ... (served counts
/// and seconds are arithmetic means).
std::vector<AlgoResult> run_averaged(const RunConfig& config,
                                     std::int32_t repetitions);

}  // namespace uavcov::eval
