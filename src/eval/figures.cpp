#include "eval/figures.hpp"

#include <memory>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace uavcov::eval {

namespace {
RunConfig base_config(const FigureScale& scale) {
  RunConfig config;
  config.scenario.user_count = scale.users;
  config.scenario.cell_side_m = scale.cell_side_m;
  config.scenario.fleet.uav_count = scale.uavs;
  config.appro.s = scale.s;
  config.appro.candidate_cap = scale.candidate_cap;
  config.seed = scale.seed;
  return config;
}

void append_sweep_row(Table& table, CsvWriter* csv, const std::string& x,
                      const std::vector<AlgoResult>& results, bool seconds) {
  std::vector<std::string> row{x};
  for (const AlgoResult& r : results) {
    row.push_back(seconds ? format_double(r.seconds, 3)
                          : std::to_string(r.served));
  }
  table.add_row(row);
  if (csv) csv->write_row(row);
}

std::vector<std::string> header_for(const std::vector<AlgoResult>& results,
                                    const std::string& x_name) {
  std::vector<std::string> header{x_name};
  for (const AlgoResult& r : results) header.push_back(r.name);
  return header;
}
}  // namespace

Table fig4_served_vs_k(const FigureScale& scale, std::int32_t k_min,
                       std::int32_t k_max, std::int32_t k_step) {
  Table table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t k = k_min; k <= k_max; k += k_step) {
    RunConfig config = base_config(scale);
    config.scenario.fleet.uav_count = k;
    const auto results = run_averaged(config, scale.repetitions);
    if (table.row_count() == 0) {
      table.set_header(header_for(results, "K"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "K"));
      }
    }
    append_sweep_row(table, csv.get(), std::to_string(k), results, false);
    UAVCOV_LOG(Info) << "fig4: K=" << k << " done";
  }
  return table;
}

Table fig5_served_vs_n(const FigureScale& scale, std::int32_t n_min,
                       std::int32_t n_max, std::int32_t n_step) {
  Table table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t n = n_min; n <= n_max; n += n_step) {
    RunConfig config = base_config(scale);
    config.scenario.user_count = n;
    const auto results = run_averaged(config, scale.repetitions);
    if (table.row_count() == 0) {
      table.set_header(header_for(results, "n"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "n"));
      }
    }
    append_sweep_row(table, csv.get(), std::to_string(n), results, false);
    UAVCOV_LOG(Info) << "fig5: n=" << n << " done";
  }
  return table;
}

Table fig6_s_tradeoff(const FigureScale& scale, Table& runtime_table,
                      std::int32_t s_min, std::int32_t s_max) {
  Table served_table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t s = s_min; s <= s_max; ++s) {
    RunConfig config = base_config(scale);
    config.appro.s = s;
    const auto results = run_averaged(config, scale.repetitions);
    if (served_table.row_count() == 0) {
      served_table.set_header(header_for(results, "s"));
      runtime_table.set_header(header_for(results, "s"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "s"));
      }
    }
    append_sweep_row(served_table, csv.get(), std::to_string(s), results,
                     false);
    append_sweep_row(runtime_table, nullptr, std::to_string(s), results,
                     true);
    UAVCOV_LOG(Info) << "fig6: s=" << s << " done";
  }
  return served_table;
}

}  // namespace uavcov::eval
