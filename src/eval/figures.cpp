#include "eval/figures.hpp"

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"

namespace uavcov::eval {

namespace {
RunConfig base_config(const FigureScale& scale) {
  RunConfig config;
  config.scenario.user_count = scale.users;
  config.scenario.cell_side_m = scale.cell_side_m;
  config.scenario.fleet.uav_count = scale.uavs;
  config.appro.s = scale.s;
  config.appro.candidate_cap = scale.candidate_cap;
  config.appro.threads = scale.threads;
  config.seed = scale.seed;
  return config;
}

void append_sweep_row(Table& table, CsvWriter* csv, const std::string& x,
                      const std::vector<AlgoResult>& results, bool seconds) {
  std::vector<std::string> row{x};
  for (const AlgoResult& r : results) {
    row.push_back(seconds ? format_double(r.seconds, 3)
                          : std::to_string(r.served));
  }
  table.add_row(row);
  if (csv) csv->write_row(row);
}

std::vector<std::string> header_for(const std::vector<AlgoResult>& results,
                                    const std::string& x_name) {
  std::vector<std::string> header{x_name};
  for (const AlgoResult& r : results) header.push_back(r.name);
  return header;
}
}  // namespace

Table fig4_served_vs_k(const FigureScale& scale, std::int32_t k_min,
                       std::int32_t k_max, std::int32_t k_step) {
  Table table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t k = k_min; k <= k_max; k += k_step) {
    RunConfig config = base_config(scale);
    config.scenario.fleet.uav_count = k;
    const auto results = run_averaged(config, scale.repetitions);
    if (table.row_count() == 0) {
      table.set_header(header_for(results, "K"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "K"));
      }
    }
    append_sweep_row(table, csv.get(), std::to_string(k), results, false);
    UAVCOV_LOG(Info) << "fig4: K=" << k << " done";
  }
  return table;
}

Table fig5_served_vs_n(const FigureScale& scale, std::int32_t n_min,
                       std::int32_t n_max, std::int32_t n_step) {
  Table table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t n = n_min; n <= n_max; n += n_step) {
    RunConfig config = base_config(scale);
    config.scenario.user_count = n;
    const auto results = run_averaged(config, scale.repetitions);
    if (table.row_count() == 0) {
      table.set_header(header_for(results, "n"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "n"));
      }
    }
    append_sweep_row(table, csv.get(), std::to_string(n), results, false);
    UAVCOV_LOG(Info) << "fig5: n=" << n << " done";
  }
  return table;
}

Table fig6_s_tradeoff(const FigureScale& scale, Table& runtime_table,
                      std::int32_t s_min, std::int32_t s_max) {
  // Only `s` varies across this sweep, so each repetition generates its
  // scenario + coverage model once and reuses them for every s via
  // run_all_on() (the eligibility precomputation dominates small runs).
  std::vector<std::vector<AlgoResult>> sums(
      static_cast<std::size_t>(s_max - s_min + 1));
  for (std::int32_t rep = 0; rep < scale.repetitions; ++rep) {
    RunConfig config = base_config(scale);
    config.seed = scale.seed + static_cast<std::uint64_t>(rep);
    Rng rng(config.seed);
    const Scenario scenario =
        workload::make_disaster_scenario(config.scenario, rng);
    const CoverageModel coverage(scenario);
    for (std::int32_t s = s_min; s <= s_max; ++s) {
      config.appro.s = s;
      const auto results = run_all_on(scenario, coverage, config);
      auto& sum = sums[static_cast<std::size_t>(s - s_min)];
      if (sum.empty()) {
        sum = results;
      } else {
        UAVCOV_CHECK_MSG(sum.size() == results.size(),
                         "algorithm set changed between repetitions");
        for (std::size_t i = 0; i < sum.size(); ++i) {
          sum[i].served += results[i].served;
          sum[i].seconds += results[i].seconds;
        }
      }
      UAVCOV_LOG(Info) << "fig6: rep=" << rep << " s=" << s << " done";
    }
  }

  Table served_table;
  std::unique_ptr<CsvWriter> csv;
  for (std::int32_t s = s_min; s <= s_max; ++s) {
    std::vector<AlgoResult>& results =
        sums[static_cast<std::size_t>(s - s_min)];
    for (AlgoResult& r : results) {
      r.served = (r.served + scale.repetitions / 2) / scale.repetitions;
      r.seconds /= scale.repetitions;
    }
    if (served_table.row_count() == 0) {
      served_table.set_header(header_for(results, "s"));
      runtime_table.set_header(header_for(results, "s"));
      if (!scale.csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(scale.csv_path);
        csv->write_row(header_for(results, "s"));
      }
    }
    append_sweep_row(served_table, csv.get(), std::to_string(s), results,
                     false);
    append_sweep_row(runtime_table, nullptr, std::to_string(s), results,
                     true);
  }
  return served_table;
}

}  // namespace uavcov::eval
