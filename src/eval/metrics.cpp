#include "eval/metrics.hpp"

#include <algorithm>
#include <limits>

#include "channel/link_budget.hpp"
#include "common/check.hpp"
#include "graph/articulation.hpp"

namespace uavcov::eval {

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero loads are "fair"
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

SolutionMetrics compute_metrics(const Scenario& scenario,
                                const CoverageModel& coverage,
                                const Solution& solution) {
  validate_solution(scenario, coverage, solution);
  SolutionMetrics metrics;
  metrics.served = solution.served;
  metrics.deployed_uavs =
      static_cast<std::int32_t>(solution.deployments.size());
  metrics.coverage_fraction =
      scenario.user_count() > 0
          ? static_cast<double>(solution.served) / scenario.user_count()
          : 0.0;

  // Per-deployment loads and capacity utilization.
  std::vector<std::int64_t> load(solution.deployments.size(), 0);
  for (std::int32_t d : solution.user_to_deployment) {
    if (d >= 0) ++load[static_cast<std::size_t>(d)];
  }
  std::int64_t deployed_capacity = 0;
  std::vector<double> load_ratio;
  for (std::size_t d = 0; d < solution.deployments.size(); ++d) {
    const auto cap = scenario.fleet[solution.deployments[d].uav].capacity;
    deployed_capacity += cap;
    load_ratio.push_back(static_cast<double>(load[d]) /
                         static_cast<double>(cap));
    if (load[d] == 0) ++metrics.relay_only_uavs;
  }
  metrics.capacity_utilization =
      deployed_capacity > 0
          ? static_cast<double>(solution.served) /
                static_cast<double>(deployed_capacity)
          : 0.0;
  metrics.load_fairness = jain_fairness(load_ratio);

  // Achievable rates of served users.
  double rate_sum = 0.0;
  double rate_min = std::numeric_limits<double>::infinity();
  std::int64_t served_count = 0;
  for (const UserId u : scenario.user_ids()) {
    const std::int32_t d = solution.user_to_deployment[u];
    if (d < 0) continue;
    const Deployment& dep =
        solution.deployments[static_cast<std::size_t>(d)];
    const UavSpec& spec = scenario.fleet[dep.uav];
    const double rate = a2g_rate_bps(
        scenario.channel, spec.radio, scenario.receiver,
        distance(scenario.users[u].pos, scenario.grid.center(dep.loc)),
        scenario.altitude_m);
    rate_sum += rate;
    rate_min = std::min(rate_min, rate);
    ++served_count;
  }
  metrics.mean_user_rate_bps =
      served_count > 0 ? rate_sum / static_cast<double>(served_count) : 0.0;
  metrics.min_user_rate_bps = served_count > 0 ? rate_min : 0.0;

  // Critical UAVs: articulation points of the deployment-range graph.
  const auto q = static_cast<NodeId>(solution.deployments.size());
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < q; ++i) {
    const Vec2 a = scenario.grid.center(
        solution.deployments[static_cast<std::size_t>(i)].loc);
    for (NodeId j = i + 1; j < q; ++j) {
      const Vec2 b = scenario.grid.center(
          solution.deployments[static_cast<std::size_t>(j)].loc);
      if (distance(a, b) <= scenario.uav_range_m) edges.emplace_back(i, j);
    }
  }
  const Graph network = Graph::from_edges(q, edges);
  for (NodeId cut : articulation_points(network)) {
    metrics.critical_uavs.push_back(
        solution.deployments[static_cast<std::size_t>(cut)].uav);
  }
  return metrics;
}

}  // namespace uavcov::eval
