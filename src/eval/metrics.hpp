// Solution quality metrics beyond the served-user count: what a network
// operator would inspect before flying the mission.
#pragma once

#include <vector>

#include "core/coverage.hpp"
#include "core/solution.hpp"

namespace uavcov::eval {

struct SolutionMetrics {
  std::int64_t served = 0;
  double coverage_fraction = 0.0;    ///< served / n.
  double capacity_utilization = 0.0; ///< served / deployed capacity.
  /// Jain's fairness index over per-UAV load/capacity ratios (1 = all
  /// UAVs equally loaded relative to their size; → 1/q = one UAV does
  /// all the work).
  double load_fairness = 0.0;
  double mean_user_rate_bps = 0.0;   ///< mean achievable rate, served users.
  double min_user_rate_bps = 0.0;
  std::int32_t deployed_uavs = 0;
  std::int32_t relay_only_uavs = 0;  ///< deployed UAVs serving zero users.
  /// UAVs whose failure disconnects the network (articulation points of
  /// the deployment graph) — the mission's single points of failure.
  std::vector<UavId> critical_uavs;
};

SolutionMetrics compute_metrics(const Scenario& scenario,
                                const CoverageModel& coverage,
                                const Solution& solution);

/// Jain's fairness index of a sample (empty → 0).
double jain_fairness(const std::vector<double>& values);

}  // namespace uavcov::eval
