// 2-D / 3-D vector types for ground-user and UAV positions.
//
// Coordinates are meters.  Users live on the ground plane (z = 0); UAVs
// hover at a common altitude H_uav (paper §II-A), so most geometry is 2-D
// with the altitude folded in where 3-D distance is needed.
#pragma once

#include <cmath>

namespace uavcov {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
};

/// Euclidean distance between two ground-plane points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared distance (cheaper; used in range tests).
inline constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  constexpr Vec3(Vec2 xy, double z_) : x(xy.x), y(xy.y), z(z_) {}

  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr double norm2() const { return x * x + y * y + z * z; }
  double norm() const { return std::sqrt(norm2()); }

  constexpr Vec2 xy() const { return {x, y}; }
};

inline double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

/// 3-D distance between a ground point and a point at altitude h above
/// another ground point — the UAV-to-user slant range of the paper.
inline double slant_range(Vec2 ground, Vec2 uav_xy, double altitude) {
  const double horizontal2 = distance2(ground, uav_xy);
  return std::sqrt(horizontal2 + altitude * altitude);
}

}  // namespace uavcov
