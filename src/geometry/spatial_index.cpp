#include "geometry/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace uavcov {

SpatialIndex::SpatialIndex(std::vector<Vec2> points, double bucket_side)
    : points_(std::move(points)), bucket_side_(bucket_side) {
  UAVCOV_CHECK_MSG(bucket_side_ > 0, "bucket side must be positive");
  cells_.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Vec2 p = points_[i];
    cells_.emplace_back(bucket_key(bucket_x(p.x), bucket_y(p.y)),
                        static_cast<std::int32_t>(i));
  }
  std::sort(cells_.begin(), cells_.end());
}

std::int64_t SpatialIndex::bucket_x(double x) const {
  return static_cast<std::int64_t>(std::floor(x / bucket_side_));
}

std::int64_t SpatialIndex::bucket_y(double y) const {
  return static_cast<std::int64_t>(std::floor(y / bucket_side_));
}

std::int64_t SpatialIndex::bucket_key(std::int64_t bx, std::int64_t by) const {
  // Interleave-free key: pack into 64 bits with a large odd multiplier.
  // Collisions across distinct buckets would only cost extra distance
  // checks, but with 2^32 stride they cannot occur for |bx|,|by| < 2^31.
  return bx * (std::int64_t{1} << 32) + by;
}

std::vector<std::int32_t> SpatialIndex::query_radius(Vec2 q,
                                                     double radius) const {
  UAVCOV_CHECK_MSG(radius >= 0, "radius must be nonnegative");
  std::vector<std::int32_t> out;
  for_each_within(q, radius, [&out](std::int32_t idx) { out.push_back(idx); });
  return out;
}

}  // namespace uavcov
