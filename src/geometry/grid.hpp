// The hovering-plane grid of §II-A: the plane at altitude H_uav over an
// α × β rectangle is partitioned into square cells of side λ; cell centers
// are the m = (α/λ)·(β/λ) candidate hovering locations v_1..v_m, and at most
// one UAV may occupy a cell.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/typed.hpp"
#include "geometry/vec.hpp"

namespace uavcov {

/// Index of a candidate hovering location (grid cell).  CellId is the
/// strongly-typed id (common/typed.hpp); LocationId remains as the
/// paper-facing name used throughout the solver.
using LocationId = CellId;
inline constexpr LocationId kInvalidLocation = LocationId::invalid();

class Grid {
 public:
  /// Builds a grid over the rectangle [0, width] × [0, height] with square
  /// cells of side `cell_side`.  Width/height must be positive multiples of
  /// `cell_side` (the paper assumes divisibility; we enforce it up to a
  /// 1e-9 relative tolerance).
  Grid(double width, double height, double cell_side);

  double width() const { return width_; }
  double height() const { return height_; }
  double cell_side() const { return cell_side_; }

  std::int32_t cols() const { return cols_; }
  std::int32_t rows() const { return rows_; }

  /// Number of candidate hovering locations m.
  std::int32_t size() const { return cols_ * rows_; }

  /// All cell ids [0, size()), for typed iteration.
  IdRange<CellId> cells() const { return IdRange<CellId>{size()}; }

  /// Center of cell `id` (column-major-free: id = row * cols + col).
  Vec2 center(LocationId id) const {
    UAVCOV_DCHECK(id.valid() && id.value() < size());
    const std::int32_t row = id.value() / cols_;
    const std::int32_t col = id.value() % cols_;
    return {(col + 0.5) * cell_side_, (row + 0.5) * cell_side_};
  }

  std::int32_t row_of(LocationId id) const { return id.value() / cols_; }
  std::int32_t col_of(LocationId id) const { return id.value() % cols_; }

  LocationId id_of(std::int32_t row, std::int32_t col) const {
    UAVCOV_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return LocationId{row * cols_ + col};
  }

  /// Cell containing point `p`, or kInvalidLocation if outside the area.
  LocationId locate(Vec2 p) const;

  /// All cell ids whose centers are within `radius` of `p` (inclusive).
  /// Scans only the bounding box of the disc.
  std::vector<LocationId> centers_within(Vec2 p, double radius) const;

  /// All centers as a flat vector, index == LocationId.
  std::vector<Vec2> all_centers() const;

 private:
  double width_;
  double height_;
  double cell_side_;
  std::int32_t cols_;
  std::int32_t rows_;
};

}  // namespace uavcov
