#include "geometry/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uavcov {

namespace {
std::int32_t checked_cell_count(double extent, double cell_side,
                                const char* axis) {
  // std::isfinite also rejects NaN, which would sail through the > 0
  // comparisons below (fuzzer finding: "area nan 100 100" must not produce
  // a NaN-dimensioned grid).
  UAVCOV_CHECK_MSG(std::isfinite(extent) && std::isfinite(cell_side),
                   std::string("grid extent and cell side must be finite (") +
                       axis + ")");
  UAVCOV_CHECK_MSG(extent > 0 && cell_side > 0,
                   std::string("grid extent and cell side must be positive (") +
                       axis + ")");
  const double cells = extent / cell_side;
  const double rounded = std::round(cells);
  UAVCOV_CHECK_MSG(std::abs(cells - rounded) <= 1e-9 * cells && rounded >= 1,
                   std::string("grid extent must be a multiple of the cell "
                               "side (") +
                       axis + ")");
  // Guard the cast: a double can hold counts far beyond LocationId's range,
  // and casting such a value to int32 is undefined behavior, not an error.
  UAVCOV_CHECK_MSG(
      rounded <= static_cast<double>(std::numeric_limits<std::int32_t>::max()),
      std::string("grid cell count overflows LocationId (") + axis + ")");
  return static_cast<std::int32_t>(rounded);
}
}  // namespace

Grid::Grid(double width, double height, double cell_side)
    : width_(width),
      height_(height),
      cell_side_(cell_side),
      cols_(checked_cell_count(width, cell_side, "width")),
      rows_(checked_cell_count(height, cell_side, "height")) {
  // size() multiplies the axes in int32; reject grids where that product
  // overflows (cols_ >= 1 always holds after checked_cell_count).
  UAVCOV_CHECK_MSG(
      rows_ <= std::numeric_limits<std::int32_t>::max() / cols_,
      "grid location count overflows LocationId");
}

LocationId Grid::locate(Vec2 p) const {
  if (p.x < 0 || p.y < 0 || p.x > width_ || p.y > height_) {
    return kInvalidLocation;
  }
  const auto clamp_index = [](double v, double side, std::int32_t count) {
    const auto idx = static_cast<std::int32_t>(v / side);
    return std::min(idx, count - 1);  // points exactly on the far edge
  };
  const std::int32_t col = clamp_index(p.x, cell_side_, cols_);
  const std::int32_t row = clamp_index(p.y, cell_side_, rows_);
  return id_of(row, col);
}

std::vector<LocationId> Grid::centers_within(Vec2 p, double radius) const {
  UAVCOV_CHECK_MSG(radius >= 0, "radius must be nonnegative");
  std::vector<LocationId> out;
  // Centers are at (col + 0.5) * side: solve for the column index range.
  const auto lo_index = [this](double v) {
    return std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::ceil(v / cell_side_ - 0.5)));
  };
  const auto hi_index = [this](double v, std::int32_t count) {
    return std::min<std::int32_t>(
        count - 1, static_cast<std::int32_t>(std::floor(v / cell_side_ - 0.5)));
  };
  const std::int32_t col_lo = lo_index(p.x - radius);
  const std::int32_t col_hi = hi_index(p.x + radius, cols_);
  const std::int32_t row_lo = lo_index(p.y - radius);
  const std::int32_t row_hi = hi_index(p.y + radius, rows_);
  const double r2 = radius * radius;
  for (std::int32_t row = row_lo; row <= row_hi; ++row) {
    for (std::int32_t col = col_lo; col <= col_hi; ++col) {
      const LocationId id = id_of(row, col);
      if (distance2(center(id), p) <= r2) out.push_back(id);
    }
  }
  return out;
}

std::vector<Vec2> Grid::all_centers() const {
  std::vector<Vec2> centers;
  centers.reserve(static_cast<std::size_t>(size()));
  for (const LocationId id : cells()) centers.push_back(center(id));
  return centers;
}

}  // namespace uavcov
