#include "geometry/vec.hpp"

// Header-only implementation; this TU anchors the target.
