// Uniform-bucket spatial hash over a set of 2-D points.
//
// Used to answer "which users are within R_user of this hovering location?"
// without an O(n·m) scan when building coverage sets for large scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec.hpp"

namespace uavcov {

class SpatialIndex {
 public:
  /// Builds an index over `points` with square buckets of side `bucket_side`.
  /// Points may lie anywhere (negative coordinates included).
  SpatialIndex(std::vector<Vec2> points, double bucket_side);

  std::size_t size() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Indices (into the original `points` vector) of all points with
  /// distance(p, q) <= radius.  Order is unspecified but deterministic.
  std::vector<std::int32_t> query_radius(Vec2 q, double radius) const;

  /// Visit each in-range point without allocating.
  template <typename Fn>
  void for_each_within(Vec2 q, double radius, Fn&& fn) const;

 private:
  std::int64_t bucket_key(std::int64_t bx, std::int64_t by) const;
  std::int64_t bucket_x(double x) const;
  std::int64_t bucket_y(double y) const;

  std::vector<Vec2> points_;
  double bucket_side_;
  // Sorted (key, point-index) pairs; lookups binary-search key ranges.
  std::vector<std::pair<std::int64_t, std::int32_t>> cells_;
};

template <typename Fn>
void SpatialIndex::for_each_within(Vec2 q, double radius, Fn&& fn) const {
  const double r2 = radius * radius;
  const std::int64_t bx_lo = bucket_x(q.x - radius);
  const std::int64_t bx_hi = bucket_x(q.x + radius);
  const std::int64_t by_lo = bucket_y(q.y - radius);
  const std::int64_t by_hi = bucket_y(q.y + radius);
  for (std::int64_t by = by_lo; by <= by_hi; ++by) {
    for (std::int64_t bx = bx_lo; bx <= bx_hi; ++bx) {
      const std::int64_t key = bucket_key(bx, by);
      auto lo = std::lower_bound(
          cells_.begin(), cells_.end(), std::make_pair(key, std::int32_t{-1}));
      for (auto it = lo; it != cells_.end() && it->first == key; ++it) {
        const std::int32_t idx = it->second;
        if (distance2(points_[static_cast<std::size_t>(idx)], q) <= r2) {
          fn(idx);
        }
      }
    }
  }
}

}  // namespace uavcov
