// RandomConnected — sanity-check baseline (not from the paper): grow a
// random connected set of K cells seeded at a random candidate, repeated
// `trials` times, keep the best.  Any serious algorithm must beat it.
#pragma once

#include "baselines/common.hpp"
#include "common/rng.hpp"

namespace uavcov::baselines {

struct RandomConnectedParams {
  std::int32_t trials = 8;
  std::uint64_t seed = 42;
};

/// Unified solver entry point (same shape as every other solver:
/// solve(scenario, coverage, params, stats)).  `stats->iterations` counts
/// the random trials run.
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const RandomConnectedParams& params,
               BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
