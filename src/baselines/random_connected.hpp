// RandomConnected — sanity-check baseline (not from the paper): grow a
// random connected set of K cells seeded at a random candidate, repeated
// `trials` times, keep the best.  Any serious algorithm must beat it.
#pragma once

#include "baselines/common.hpp"
#include "common/rng.hpp"

namespace uavcov::baselines {

struct RandomConnectedParams {
  std::int32_t trials = 8;
  std::uint64_t seed = 42;
};

Solution random_connected(const Scenario& scenario,
                          const CoverageModel& coverage,
                          const RandomConnectedParams& params = {});

}  // namespace uavcov::baselines
