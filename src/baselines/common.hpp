// Shared machinery for the reimplemented comparison algorithms.
//
// Every baseline is *capacity-order-unaware by design*: it selects a set of
// hovering locations (its published logic) and then places the fleet's
// UAVs on them in input (arbitrary) order — exactly the deficiency the
// paper argues makes homogeneous-UAV algorithms lose on heterogeneous
// fleets (§I).  The final served-user count is always computed with the
// same optimal max-flow assignment as approAlg, so the comparison isolates
// the placement decision.
#pragma once

#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/solution.hpp"
#include "graph/graph.hpp"

namespace uavcov::baselines {

/// Search counters shared by every baseline's unified solve() entry point
/// (the baseline-side counterpart of ApproAlgStats).  `iterations` is the
/// algorithm's natural outer-loop count: growth trials for MCS, hill-climb
/// rounds for MotionCtrl, Lloyd iterations for KMeansPlace, random trials
/// for RandomConnected, profit rounds for GreedyAssign, stitched seeds for
/// maxThroughput.
struct BaselineStats {
  std::int64_t locations_selected = 0;  ///< cells handed to finalize().
  std::int64_t iterations = 0;          ///< algorithm-specific loop count.
  double seconds = 0.0;                 ///< end-to-end wall clock.
};

/// Place fleet UAVs 0..q-1 on `locations` in input order, solve the optimal
/// assignment, and package a Solution.  When `stats` is non-null its
/// locations_selected / seconds fields are filled here (iterations is the
/// caller's).
Solution finalize(const Scenario& scenario, const CoverageModel& coverage,
                  std::span<const LocationId> locations,
                  std::string algorithm_name, double solve_seconds,
                  BaselineStats* stats = nullptr);

/// Incremental uncapacitated coverage counter: tracks which users are
/// already covered and reports how many *new* users a location would add
/// under radio class `cls`.  The capacity-agnostic objective used by MCS
/// and GreedyAssign's profit labeling.
class CoverageCounter {
 public:
  CoverageCounter(const Scenario& scenario, const CoverageModel& coverage);

  std::int64_t marginal(LocationId v, std::int32_t cls) const;
  void add(LocationId v, std::int32_t cls);
  void reset();

 private:
  const CoverageModel& coverage_;
  std::vector<bool> covered_;
};

/// Cheap capacity-aware served-count proxy (greedy, not optimal): scan
/// deployments in order, each grabs up to its capacity of still-free
/// eligible users.  Used inside MotionCtrl's local search where thousands
/// of candidate moves are scored.
std::int64_t greedy_served_estimate(const Scenario& scenario,
                                    const CoverageModel& coverage,
                                    std::span<const Deployment> deployments);

}  // namespace uavcov::baselines
