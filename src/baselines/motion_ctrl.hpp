// MotionCtrl — reimplementation of Zhao, Wang, Wu, Wei, "Deployment
// algorithms for UAV airborne networks toward on-demand coverage",
// IEEE JSAC 2018 (paper baseline (ii)).
//
// Their approach steers an initially compact connected swarm with local
// motion rules toward user demand while never breaking connectivity.  We
// implement that as connectivity-preserving hill climbing on the grid:
//   * initialize the K UAVs as a compact connected block around the user
//     centroid;
//   * rounds: each UAV in turn tries relocating to a nearby free cell
//     (within its R_uav neighborhood); a move is kept if the network stays
//     connected and the (greedy capacity-aware) served estimate strictly
//     improves;
//   * stop after a no-improvement round or `max_rounds`.
// Capacity-order-unaware: UAV k keeps its identity while moving, but the
// initial block ignores capacities entirely (as published).
#pragma once

#include "baselines/common.hpp"

namespace uavcov::baselines {

struct MotionCtrlParams {
  std::int32_t max_rounds = 60;
};

/// Unified solver entry point (same shape as every other solver:
/// solve(scenario, coverage, params, stats)).  `stats->iterations` counts
/// the hill-climbing rounds actually run.
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const MotionCtrlParams& params, BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
