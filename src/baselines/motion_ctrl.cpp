#include "baselines/motion_ctrl.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

namespace {
/// Compact connected initial block: BFS order over the location graph from
/// the cell nearest the user centroid.
std::vector<LocationId> initial_block(const Scenario& scenario,
                                      const Graph& g, std::int32_t k) {
  Vec2 centroid{scenario.grid.width() / 2, scenario.grid.height() / 2};
  if (!scenario.users.empty()) {
    Vec2 sum{0, 0};
    for (const User& u : scenario.users) sum = sum + u.pos;
    centroid = sum / static_cast<double>(scenario.users.size());
  }
  LocationId start = scenario.grid.locate(centroid);
  if (!start.valid()) start = LocationId{0};
  // BFS from start; take the first k cells reached.
  const NodeId src[] = {to_node(start)};
  const auto dist = bfs_distances(g, src);
  std::vector<LocationId> order;
  for (const LocationId v : scenario.grid.cells()) {
    if (dist[v.index()] != kUnreachable) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&dist](LocationId a, LocationId b) {
                     return dist[a.index()] < dist[b.index()];
                   });
  if (static_cast<std::int32_t>(order.size()) > k) {
    order.resize(static_cast<std::size_t>(k));
  }
  return order;
}

bool network_connected(const Scenario& scenario,
                       const std::vector<LocationId>& locs) {
  std::vector<Deployment> deps;
  deps.reserve(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    deps.push_back({UavId{i}, locs[i]});
  }
  return deployments_connected(scenario, deps);
}
}  // namespace

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const MotionCtrlParams& params, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  UAVCOV_CHECK_MSG(params.max_rounds >= 1, "need at least one round");
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);

  std::vector<LocationId> locs =
      initial_block(scenario, g, scenario.uav_count());

  // Move-scoring objective: *uncapacitated* covered-user count.  Zhao et
  // al.'s motion control is capacity-blind (homogeneous swarm), so the
  // faithful reimplementation steers toward raw coverage; capacities only
  // enter through the final optimal assignment in finalize().
  std::vector<bool> covered(static_cast<std::size_t>(scenario.user_count()),
                            false);
  const auto estimate = [&](const std::vector<LocationId>& current) {
    std::fill(covered.begin(), covered.end(), false);
    std::int64_t count = 0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      const std::int32_t cls =
          coverage.radio_class_of(UavId{i});
      for (const UserId u : coverage.eligible_users(current[i], cls)) {
        if (!covered[u.index()]) {
          covered[u.index()] = true;
          ++count;
        }
      }
    }
    return count;
  };

  std::int64_t current_score = estimate(locs);
  std::vector<bool> occupied(static_cast<std::size_t>(scenario.grid.size()),
                             false);
  for (const LocationId v : locs) occupied[v.index()] = true;

  for (std::int32_t round = 0; round < params.max_rounds; ++round) {
    if (stats != nullptr) ++stats->iterations;
    bool improved = false;
    for (std::size_t i = 0; i < locs.size(); ++i) {
      const LocationId from = locs[i];
      LocationId best_to = kInvalidLocation;
      std::int64_t best_score = current_score;
      for (const NodeId nb : g.neighbors(to_node(from))) {
        const LocationId to = to_cell(nb);
        if (occupied[to.index()]) continue;
        locs[i] = to;
        if (network_connected(scenario, locs)) {
          const std::int64_t score = estimate(locs);
          if (score > best_score) {
            best_score = score;
            best_to = to;
          }
        }
        locs[i] = from;
      }
      if (best_to.valid()) {
        occupied[from.index()] = false;
        occupied[best_to.index()] = true;
        locs[i] = best_to;
        current_score = best_score;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return finalize(scenario, coverage, locs, "MotionCtrl", watch.elapsed_s(),
                  stats);
}

}  // namespace uavcov::baselines
