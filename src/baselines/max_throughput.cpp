#include "baselines/max_throughput.hpp"

#include <algorithm>
#include <queue>

#include "channel/batch.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/matroid.hpp"
#include "core/relay.hpp"
#include "core/segment_plan.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

namespace {
/// Homogenized copy of the scenario: every UAV gets the fleet-mean
/// capacity and the first UAV's radio (the published algorithm assumes a
/// homogeneous fleet).
Scenario homogenize(const Scenario& scenario) {
  Scenario homo = scenario;
  std::int64_t total = 0;
  for (const UavSpec& u : scenario.fleet) total += u.capacity;
  const auto mean = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, total / scenario.uav_count()));
  for (UavSpec& u : homo.fleet) {
    u.capacity = mean;
    u.radio = scenario.fleet.front().radio;
    u.user_range_m = scenario.fleet.front().user_range_m;
  }
  return homo;
}
}  // namespace

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const MaxThroughputParams& params, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  const std::int32_t K = scenario.uav_count();

  const Scenario homo = homogenize(scenario);
  const CoverageModel homo_cov(homo);
  const Graph g = build_location_graph(homo.grid, homo.uav_range_m);
  const std::vector<LocationId> candidates =
      homo_cov.candidate_locations(params.candidate_cap);
  if (candidates.empty()) {
    const std::vector<LocationId> fallback{LocationId{0}};
    return finalize(scenario, coverage, fallback, "maxThroughput",
                    watch.elapsed_s(), stats);
  }
  if (stats != nullptr) {
    stats->iterations = static_cast<std::int64_t>(candidates.size());
  }
  const SegmentPlan plan = compute_segment_plan(K, /*s=*/1);

  // Mean achievable rate per candidate cell (throughput weight), batched
  // over each cell's eligible span.  The evaluator reproduces the scalar
  // a2g_rate_bps chain bit for bit and the sum runs in the same ascending
  // user order, so the weights — and the pinned solution fingerprints —
  // are unchanged.
  const BatchLinkEvaluator evaluator(homo.channel, homo.fleet.front().radio,
                                     homo.receiver, homo.altitude_m);
  std::vector<double> mean_rate(candidates.size(), 0.0);
  std::vector<double> span_dist;
  std::vector<double> span_rate;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto eligible = homo_cov.eligible_users(candidates[i], 0);
    if (eligible.empty()) continue;
    const Vec2 center = homo.grid.center(candidates[i]);
    span_dist.resize(eligible.size());
    for (std::size_t j = 0; j < eligible.size(); ++j) {
      span_dist[j] = distance(homo.users[eligible[j]].pos, center);
    }
    span_rate.resize(eligible.size());
    evaluator.rates_bps(span_dist, span_rate);
    double sum = 0.0;
    for (const double rate : span_rate) sum += rate;
    sum /= static_cast<double>(eligible.size());
    mean_rate[i] = sum;
  }

  IncrementalAssignment ia(homo, homo_cov);
  double best_throughput = -1.0;
  std::vector<LocationId> best_nodes;

  std::vector<std::int32_t> hop;
  for (std::size_t seed_idx = 0; seed_idx < candidates.size(); ++seed_idx) {
    const NodeId seed = to_node(candidates[seed_idx]);
    hop = bfs_distances(g, seed);
    HopBudgetMatroid m2(hop, plan.quotas);

    const auto scope = ia.begin_scope();
    std::vector<LocationId> chosen;
    std::vector<bool> taken(candidates.size(), false);
    double throughput = 0.0;
    for (std::int32_t k = 0; k < plan.L_max; ++k) {
      double best_gain = -1.0;
      std::int32_t best_i = -1;
      std::int64_t best_users = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (taken[i] || !m2.can_add(candidates[i])) continue;
        const std::int64_t users = ia.probe(UavId{k}, candidates[i]);
        const double gain = static_cast<double>(users) * mean_rate[i];
        if (gain > best_gain) {
          best_gain = gain;
          best_i = static_cast<std::int32_t>(i);
          best_users = users;
        }
      }
      if (best_i < 0) break;
      (void)best_users;
      const LocationId loc = candidates[static_cast<std::size_t>(best_i)];
      ia.deploy(UavId{k}, loc);
      m2.add(loc);
      taken[static_cast<std::size_t>(best_i)] = true;
      chosen.push_back(loc);
      throughput += best_gain;
    }
    const auto relay = stitch_connected(g, chosen);
    if (relay.has_value() &&
        static_cast<std::int32_t>(relay->nodes.size()) <= K &&
        throughput > best_throughput) {
      best_throughput = throughput;
      best_nodes = relay->nodes;
    }
    ia.end_scope(scope);
  }

  if (best_nodes.empty()) best_nodes.push_back(candidates.front());

  // Xu et al. place all K UAVs; spend any leftover budget on the adjacent
  // cells adding the most *not yet covered* users (marginal throughput).
  std::vector<bool> in_net(static_cast<std::size_t>(g.node_count()), false);
  CoverageCounter counter(homo, homo_cov);
  for (const LocationId v : best_nodes) {
    in_net[v.index()] = true;
    counter.add(v, 0);
  }
  while (static_cast<std::int32_t>(best_nodes.size()) < K) {
    LocationId best = kInvalidLocation;
    std::int64_t best_cov = -1;
    for (const LocationId v : best_nodes) {
      for (const NodeId nb : g.neighbors(to_node(v))) {
        if (in_net[static_cast<std::size_t>(nb)]) continue;
        const std::int64_t c = counter.marginal(to_cell(nb), 0);
        if (c > best_cov) {
          best_cov = c;
          best = to_cell(nb);
        }
      }
    }
    if (!best.valid()) break;
    in_net[best.index()] = true;
    counter.add(best, 0);
    best_nodes.push_back(best);
  }
  return finalize(scenario, coverage, best_nodes, "maxThroughput",
                  watch.elapsed_s(), stats);
}

}  // namespace uavcov::baselines
