#include "baselines/greedy_assign.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const GreedyAssignParams& /*params*/, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  const std::int32_t K = scenario.uav_count();
  constexpr std::int32_t kCls = 0;  // homogeneous scoring (as published)

  // --- Phase 1: greedy profit labeling over residual users. -------------
  const std::vector<LocationId> candidates = coverage.candidate_locations();
  std::map<LocationId, std::int64_t> profit;
  {
    CoverageCounter counter(scenario, coverage);
    std::vector<LocationId> pool = candidates;
    while (!pool.empty()) {
      std::int64_t best_gain = 0;
      std::size_t best_idx = pool.size();
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const std::int64_t gain = counter.marginal(pool[i], kCls);
        if (gain > best_gain) {
          best_gain = gain;
          best_idx = i;
        }
      }
      if (best_idx == pool.size()) break;  // all residual profits are zero
      const LocationId pick = pool[best_idx];
      profit[pick] = best_gain;
      counter.add(pick, kCls);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_idx));
    }
  }
  if (stats != nullptr) {
    stats->iterations = static_cast<std::int64_t>(profit.size());
  }
  if (profit.empty()) {
    const std::vector<LocationId> fallback{LocationId{0}};
    return finalize(scenario, coverage, fallback, "GreedyAssign",
                    watch.elapsed_s(), stats);
  }

  // --- Phase 2: budgeted connected growth by profit / path-length. ------
  const LocationId root =
      std::max_element(profit.begin(), profit.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->first;
  std::vector<LocationId> network{root};
  std::vector<bool> in_net(static_cast<std::size_t>(g.node_count()), false);
  in_net[root.index()] = true;

  while (static_cast<std::int32_t>(network.size()) < K) {
    // Multi-source BFS from the current network gives, for every cell, the
    // number of new cells a shortest attachment path would add.
    std::vector<NodeId> net_nodes;
    net_nodes.reserve(network.size());
    for (const LocationId v : network) net_nodes.push_back(to_node(v));
    const BfsTree tree = bfs_tree(g, net_nodes);
    double best_ratio = 0.0;
    LocationId best_target = kInvalidLocation;
    for (const auto& [cell, p] : profit) {
      if (in_net[cell.index()] || p <= 0) continue;
      const std::int32_t hops = tree.distance[cell.index()];
      if (hops == kUnreachable) continue;
      if (static_cast<std::int32_t>(network.size()) + hops > K) continue;
      const double ratio =
          static_cast<double>(p) / static_cast<double>(std::max(hops, 1));
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_target = cell;
      }
    }
    if (!best_target.valid()) break;
    // Attach the whole shortest path (relay cells spend budget too).
    for (NodeId cur = to_node(best_target); cur != kNoParent;
         cur = tree.parent[static_cast<std::size_t>(cur)]) {
      if (!in_net[static_cast<std::size_t>(cur)]) {
        in_net[static_cast<std::size_t>(cur)] = true;
        network.push_back(to_cell(cur));
      }
    }
  }

  // Leftover budget: residual profits are all zero but idle UAVs still add
  // capacity where coverage overlaps, so spend the rest on the adjacent
  // cells with the most coverable users.
  while (static_cast<std::int32_t>(network.size()) < K) {
    LocationId best = kInvalidLocation;
    std::int32_t best_cov = -1;
    for (const LocationId v : network) {
      for (const NodeId nb : g.neighbors(to_node(v))) {
        if (in_net[static_cast<std::size_t>(nb)]) continue;
        const std::int32_t c = coverage.max_coverage(to_cell(nb));
        if (c > best_cov) {
          best_cov = c;
          best = to_cell(nb);
        }
      }
    }
    if (!best.valid()) break;
    in_net[best.index()] = true;
    network.push_back(best);
  }
  return finalize(scenario, coverage, network, "GreedyAssign",
                  watch.elapsed_s(), stats);
}

}  // namespace uavcov::baselines
