// KMeansPlace — a clustering baseline common in the UAV-placement
// literature (not one of the paper's four comparisons, included as an
// extra reference point): Lloyd's k-means over user positions seeded
// k-means++-style, centroids snapped to free grid cells, network made
// connected by inserting relay cells along MST shortest paths (which may
// displace the least-valuable serving cells when the fleet budget binds).
// Capacity-blind like the other baselines; final count by optimal
// assignment.
#pragma once

#include "baselines/common.hpp"
#include "common/rng.hpp"

namespace uavcov::baselines {

struct KMeansParams {
  std::int32_t iterations = 25;
  std::uint64_t seed = 17;
};

/// Unified solver entry point (same shape as every other solver:
/// solve(scenario, coverage, params, stats)).  `stats->iterations` counts
/// the Lloyd iterations requested.
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const KMeansParams& params, BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
