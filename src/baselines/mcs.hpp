// MCS — reimplementation of Kuo, Lin, Tsai, "Maximizing submodular set
// function with connectivity constraint: theory and application to
// networks", IEEE/ACM ToN 2015 (paper baseline (i), ratio
// (1−1/e)/(5(√K+1))).
//
// Interpretation implemented here (their core mechanism, adapted to the
// grid): connected greedy growth.  For each of the best `seed_trials`
// candidate cells, grow a connected set: repeatedly add the cell adjacent
// to the current set (in the R_uav location graph) with the largest
// *uncapacitated* marginal user coverage, until K cells are chosen; keep
// the best-scoring tree over all trials.  Capacity- and heterogeneity-
// blind (as published — homogeneous routers); UAVs land on the chosen
// cells in input order.
#pragma once

#include "baselines/common.hpp"

namespace uavcov::baselines {

struct McsParams {
  std::int32_t seed_trials = 10;  ///< try growth from the top-N cells.
};

/// Unified solver entry point (same shape as every other solver:
/// solve(scenario, coverage, params, stats)).  `stats->iterations` counts
/// the growth trials actually run.
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const McsParams& params, BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
