#include "baselines/random_connected.hpp"

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const RandomConnectedParams& params, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  UAVCOV_CHECK_MSG(params.trials >= 1, "need at least one trial");
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  Rng rng(params.seed);

  std::vector<LocationId> candidates = coverage.candidate_locations();
  if (candidates.empty()) candidates.push_back(LocationId{0});

  std::vector<LocationId> best_set;
  std::int64_t best_estimate = -1;
  for (std::int32_t trial = 0; trial < params.trials; ++trial) {
    if (stats != nullptr) ++stats->iterations;
    const LocationId seed = candidates[static_cast<std::size_t>(
        rng.next_below(candidates.size()))];
    std::vector<LocationId> set{seed};
    std::vector<bool> in_set(static_cast<std::size_t>(g.node_count()), false);
    in_set[seed.index()] = true;
    std::vector<LocationId> frontier;
    for (const NodeId nb : g.neighbors(to_node(seed))) {
      frontier.push_back(to_cell(nb));
    }
    while (static_cast<std::int32_t>(set.size()) < scenario.uav_count() &&
           !frontier.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(frontier.size()));
      const LocationId v = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (in_set[v.index()]) continue;
      in_set[v.index()] = true;
      set.push_back(v);
      for (const NodeId nb : g.neighbors(to_node(v))) {
        if (!in_set[static_cast<std::size_t>(nb)]) {
          frontier.push_back(to_cell(nb));
        }
      }
    }
    std::vector<Deployment> deps;
    deps.reserve(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      deps.push_back({UavId{i}, set[i]});
    }
    const std::int64_t estimate =
        greedy_served_estimate(scenario, coverage, deps);
    if (estimate > best_estimate) {
      best_estimate = estimate;
      best_set = set;
    }
  }
  return finalize(scenario, coverage, best_set, "RandomConnected",
                  watch.elapsed_s(), stats);
}

}  // namespace uavcov::baselines
