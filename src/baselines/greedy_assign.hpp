// GreedyAssign — reimplementation of Khuller, Purohit, Sarpatwar,
// "Analyzing the optimal neighborhood: algorithms for partial and budgeted
// connected dominating set problems", SIAM J. Discrete Math 2020 (paper
// baseline (iii)).
//
// The paper describes it as: "first assigns each candidate hovering
// location a profit in a greedy way, then deploys a network consisting of
// K UAVs such that the sum of profits in the network is maximized."
// Implemented as:
//   * profit labeling: repeatedly take the cell covering the most not-yet-
//     claimed users; its profit is that residual count (so overlapping
//     cells don't double count);
//   * budgeted connected growth: start from the max-profit cell; while
//     budget remains, attach the profitable cell with the best
//     profit / (path length) ratio via its shortest hop path (quota
//     spending includes relay cells on the path).
// Capacity- and heterogeneity-blind; UAVs land on chosen cells in order.
#pragma once

#include "baselines/common.hpp"

namespace uavcov::baselines {

/// GreedyAssign has no tunables today; the empty params struct exists so
/// the unified solve(scenario, coverage, params, stats) shape dispatches
/// to it like to every other solver.
struct GreedyAssignParams {};

/// Unified solver entry point.  `stats->iterations` counts the profit-
/// labeling rounds (cells that received a positive profit).
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const GreedyAssignParams& params,
               BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
