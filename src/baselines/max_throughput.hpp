// maxThroughput — reimplementation of Xu et al., "Throughput maximization
// of UAV networks", IEEE/ACM ToN 2022 (paper baseline (iv), ratio
// (1−1/e)/√K).
//
// Their algorithm places K *homogeneous* capacitated UAVs to maximize the
// total user data rate, using the same enumerate-a-seed / hop-budgeted
// greedy / stitch structure as approAlg but with s = 1 (a single seed).
// Key differences retained from the publication:
//   * homogeneous model — the greedy plans with a uniform capacity (the
//     fleet mean) and a single radio class, so it cannot steer big UAVs
//     toward dense cells;
//   * throughput objective — marginal gain is (served users) × (mean
//     achievable rate at the cell), not served users.
// The chosen cells then receive the real heterogeneous UAVs in input
// order, and the final count uses the optimal assignment.
#pragma once

#include "baselines/common.hpp"

namespace uavcov::baselines {

struct MaxThroughputParams {
  std::int32_t candidate_cap = 0;  ///< same knob as approAlg (0 = all).
};

/// Unified solver entry point (same shape as every other solver:
/// solve(scenario, coverage, params, stats)).  `stats->iterations` counts
/// the seed cells whose networks were evaluated.
Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const MaxThroughputParams& params,
               BaselineStats* stats = nullptr);

}  // namespace uavcov::baselines
