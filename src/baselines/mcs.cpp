#include "baselines/mcs.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

namespace {
/// Grow a connected set from `seed` by max uncapacitated marginal coverage.
std::vector<LocationId> grow_from(const Scenario& scenario,
                                  const CoverageModel& coverage,
                                  const Graph& g, LocationId seed,
                                  std::int32_t target_size) {
  CoverageCounter counter(scenario, coverage);
  // Coverage is scored under radio class 0 (the published algorithm is
  // homogeneous; class 0 is the fleet's first/base class).
  constexpr std::int32_t kCls = 0;
  std::vector<LocationId> chosen{seed};
  counter.add(seed, kCls);
  std::vector<bool> in_set(static_cast<std::size_t>(g.node_count()), false);
  std::vector<bool> on_frontier(static_cast<std::size_t>(g.node_count()),
                                false);
  std::vector<LocationId> frontier;
  in_set[seed.index()] = true;
  const auto extend_frontier = [&](LocationId v) {
    for (const NodeId nb : g.neighbors(to_node(v))) {
      if (!in_set[static_cast<std::size_t>(nb)] &&
          !on_frontier[static_cast<std::size_t>(nb)]) {
        on_frontier[static_cast<std::size_t>(nb)] = true;
        frontier.push_back(to_cell(nb));
      }
    }
  };
  extend_frontier(seed);
  while (static_cast<std::int32_t>(chosen.size()) < target_size &&
         !frontier.empty()) {
    std::int64_t best_gain = -1;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::int64_t gain = counter.marginal(frontier[i], kCls);
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    const LocationId pick = frontier[best_idx];
    frontier[best_idx] = frontier.back();
    frontier.pop_back();
    on_frontier[pick.index()] = false;
    in_set[pick.index()] = true;
    counter.add(pick, kCls);
    chosen.push_back(pick);
    extend_frontier(pick);
  }
  return chosen;
}
}  // namespace

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const McsParams& params, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  UAVCOV_CHECK_MSG(params.seed_trials >= 1, "need at least one seed trial");
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  const std::vector<LocationId> seeds =
      coverage.candidate_locations(params.seed_trials);
  if (stats != nullptr) {
    stats->iterations = static_cast<std::int64_t>(seeds.size());
  }

  std::vector<LocationId> best_set;
  std::int64_t best_estimate = -1;
  for (LocationId seed : seeds) {
    const std::vector<LocationId> set =
        grow_from(scenario, coverage, g, seed, scenario.uav_count());
    // Score trials with the cheap capacity-aware estimate; the winner gets
    // the optimal assignment in finalize().
    std::vector<Deployment> deps;
    deps.reserve(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      deps.push_back({UavId{i}, set[i]});
    }
    const std::int64_t estimate =
        greedy_served_estimate(scenario, coverage, deps);
    if (estimate > best_estimate) {
      best_estimate = estimate;
      best_set = set;
    }
  }
  if (best_set.empty() && scenario.grid.size() > 0) {
    best_set.push_back(LocationId{0});  // degenerate: nobody coverable, park one UAV
  }
  return finalize(scenario, coverage, best_set, "MCS", watch.elapsed_s(),
                  stats);
}

}  // namespace uavcov::baselines
