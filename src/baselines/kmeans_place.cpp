#include "baselines/kmeans_place.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"

namespace uavcov::baselines {

namespace {

/// k-means++ seeding followed by Lloyd iterations over the user points.
std::vector<Vec2> lloyd_centroids(const IdVector<UserTag, User>& users,
                                  std::int32_t k, std::int32_t iterations,
                                  Rng& rng) {
  std::vector<Vec2> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  // k-means++: first uniform, then proportional to squared distance.
  centroids.push_back(users[UserId{rng.next_below(users.size())}].pos);
  std::vector<double> d2(users.size());
  const std::vector<User>& pts = users.raw();
  while (static_cast<std::int32_t>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Vec2& c : centroids) {
        best = std::min(best, distance2(pts[i].pos, c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0) {  // all users coincide with centroids
      centroids.push_back(pts[0].pos);
      continue;
    }
    double pick = rng.uniform01() * total;
    std::size_t chosen = users.size() - 1;
    for (std::size_t i = 0; i < users.size(); ++i) {
      pick -= d2[i];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(pts[chosen].pos);
  }
  // Lloyd.
  std::vector<std::int32_t> owner(users.size(), 0);
  for (std::int32_t it = 0; it < iterations; ++it) {
    bool moved = false;
    for (std::size_t i = 0; i < users.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::int32_t arg = 0;
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = distance2(pts[i].pos, centroids[c]);
        if (d < best) {
          best = d;
          arg = static_cast<std::int32_t>(c);
        }
      }
      if (owner[i] != arg) {
        owner[i] = arg;
        moved = true;
      }
    }
    std::vector<Vec2> sum(centroids.size(), {0, 0});
    std::vector<std::int32_t> count(centroids.size(), 0);
    for (std::size_t i = 0; i < users.size(); ++i) {
      sum[static_cast<std::size_t>(owner[i])] =
          sum[static_cast<std::size_t>(owner[i])] + pts[i].pos;
      ++count[static_cast<std::size_t>(owner[i])];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (count[c] > 0) centroids[c] = sum[c] / count[c];
    }
    if (!moved) break;
  }
  return centroids;
}

}  // namespace

Solution solve(const Scenario& scenario, const CoverageModel& coverage,
               const KMeansParams& params, BaselineStats* stats) {
  Stopwatch watch;
  scenario.validate();
  UAVCOV_CHECK_MSG(params.iterations >= 1, "need at least one iteration");
  const std::int32_t K = scenario.uav_count();
  if (stats != nullptr) stats->iterations = params.iterations;
  if (scenario.users.empty()) {
    const std::vector<LocationId> fallback{LocationId{0}};
    return finalize(scenario, coverage, fallback, "KMeansPlace",
                    watch.elapsed_s(), stats);
  }

  Rng rng(params.seed);
  const std::int32_t k = std::min<std::int32_t>(K, scenario.user_count());
  const std::vector<Vec2> centroids =
      lloyd_centroids(scenario.users, k, params.iterations, rng);

  // Snap centroids to distinct grid cells (nearest free cell).
  std::vector<bool> taken(static_cast<std::size_t>(scenario.grid.size()),
                          false);
  std::vector<LocationId> snapped;
  for (const Vec2& c : centroids) {
    LocationId best = kInvalidLocation;
    double best_d = std::numeric_limits<double>::infinity();
    for (const LocationId v : scenario.grid.cells()) {
      if (taken[v.index()]) continue;
      const double d = distance2(scenario.grid.center(v), c);
      if (d < best_d) {
        best_d = d;
        best = v;
      }
    }
    if (!best.valid()) break;  // grid exhausted
    taken[best.index()] = true;
    snapped.push_back(best);
  }

  // Budgeted connection: add serving cells in coverage-descending order
  // while the stitched network still fits the fleet.
  std::stable_sort(snapped.begin(), snapped.end(),
                   [&coverage](LocationId a, LocationId b) {
                     return coverage.max_coverage(a) > coverage.max_coverage(b);
                   });
  const Graph g = build_location_graph(scenario.grid, scenario.uav_range_m);
  std::vector<LocationId> kept;
  std::vector<LocationId> network;
  for (LocationId cell : snapped) {
    std::vector<LocationId> attempt = kept;
    attempt.push_back(cell);
    const auto plan = stitch_connected(g, attempt);
    if (plan.has_value() &&
        static_cast<std::int32_t>(plan->nodes.size()) <= K) {
      kept = std::move(attempt);
      network = plan->nodes;
    }
  }
  if (network.empty() && !snapped.empty()) network.push_back(snapped[0]);
  if (network.empty()) network.push_back(LocationId{0});
  return finalize(scenario, coverage, network, "KMeansPlace",
                  watch.elapsed_s(), stats);
}

}  // namespace uavcov::baselines
