#include "baselines/common.hpp"

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace uavcov::baselines {

Solution finalize(const Scenario& scenario, const CoverageModel& coverage,
                  std::span<const LocationId> locations,
                  std::string algorithm_name, double solve_seconds,
                  BaselineStats* stats) {
  // Every baseline funnels through here, so this is the one place that
  // gives all six solvers a uniform "solve.<algorithm>.*" metrics surface
  // (approAlg records its own in src/core/appro_alg.cpp).
  obs::counter("solve." + algorithm_name + ".runs").inc();
  obs::histogram("solve." + algorithm_name + ".seconds")
      .observe_seconds(solve_seconds);
  if (stats) {
    stats->locations_selected = static_cast<std::int64_t>(locations.size());
    stats->seconds = solve_seconds;
  }
  UAVCOV_CHECK_MSG(
      static_cast<std::int32_t>(locations.size()) <= scenario.uav_count(),
      "baseline selected more locations than UAVs");
  std::vector<Deployment> deployments;
  deployments.reserve(locations.size());
  for (std::size_t i = 0; i < locations.size(); ++i) {
    deployments.push_back({UavId{i}, locations[i]});
  }
  const AssignmentResult assignment =
      solve_assignment(scenario, coverage, deployments);
  Solution solution;
  solution.algorithm = std::move(algorithm_name);
  solution.deployments = std::move(deployments);
  solution.user_to_deployment = assignment.user_to_deployment;
  solution.served = assignment.served;
  solution.solve_seconds = solve_seconds;
  if (analysis::audit_env_enabled()) {
    // Baselines are exempt from the connectivity constraint only when
    // their published logic is (they all claim connected outputs), so the
    // full feasibility audit applies to them too.
    analysis::AuditReport report =
        analysis::audit_solution(scenario, coverage, solution);
    report.subject = "baselines." + solution.algorithm;
    analysis::require_clean(report);
  }
  return solution;
}

CoverageCounter::CoverageCounter(const Scenario& scenario,
                                 const CoverageModel& coverage)
    : coverage_(coverage),
      covered_(static_cast<std::size_t>(scenario.user_count()), false) {}

std::int64_t CoverageCounter::marginal(LocationId v, std::int32_t cls) const {
  std::int64_t add = 0;
  for (const UserId u : coverage_.eligible_users(v, cls)) {
    if (!covered_[u.index()]) ++add;
  }
  return add;
}

void CoverageCounter::add(LocationId v, std::int32_t cls) {
  for (const UserId u : coverage_.eligible_users(v, cls)) {
    covered_[u.index()] = true;
  }
}

void CoverageCounter::reset() {
  std::fill(covered_.begin(), covered_.end(), false);
}

std::int64_t greedy_served_estimate(const Scenario& scenario,
                                    const CoverageModel& coverage,
                                    std::span<const Deployment> deployments) {
  std::vector<bool> taken(static_cast<std::size_t>(scenario.user_count()),
                          false);
  std::int64_t served = 0;
  for (const Deployment& d : deployments) {
    std::int64_t cap =
        scenario.fleet[d.uav].capacity;
    const std::int32_t cls = coverage.radio_class_of(d.uav);
    for (const UserId u : coverage.eligible_users(d.loc, cls)) {
      if (cap == 0) break;
      if (!taken[u.index()]) {
        taken[u.index()] = true;
        --cap;
        ++served;
      }
    }
  }
  return served;
}

}  // namespace uavcov::baselines
