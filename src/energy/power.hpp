// UAV energy model: hover power, mission endurance, and network lifetime.
//
// The paper grounds heterogeneity in payload *and battery capacity*
// (§I/§II-A: "different UAVs have different capacities, in terms of
// payloads, battery capacities") and the 72-golden-hour context makes
// endurance operationally central.  This module provides the standard
// rotary-wing hover model so fleets can be described physically:
//
//   hover power  P_h = (m g)^{3/2} / sqrt(2 ρ A)  / η     (momentum theory)
//   total power  P   = P_h + P_avionics + P_basestation
//   endurance    T   = E_battery / P
//
// with ρ the air density, A the total rotor disc area, η the propulsive
// efficiency.  Numbers land in the right range for the paper's airframes
// (DJI M300-class: ~40 min clean, ~25 min with a 2.7 kg payload).
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov::energy {

/// Physical description of one UAV airframe + payload.
struct Airframe {
  double mass_kg = 6.3;            ///< airframe + battery (DJI M300-ish).
  double payload_kg = 2.7;         ///< mounted base station.
  double rotor_disc_area_m2 = 0.89;///< four 21-inch rotors.
  double propulsive_efficiency = 0.65;
  double avionics_w = 60.0;        ///< flight controller, radios, cameras.
  double basestation_w = 45.0;     ///< SkyRAN/SkyCore compute + PA.
  double battery_wh = 590.0;       ///< e.g. 2 × TB60 ≈ 590 Wh usable.
};

/// Air density at sea level, 15 °C [kg/m³].
inline constexpr double kAirDensity = 1.225;
/// Standard gravity [m/s²].
inline constexpr double kGravity = 9.80665;

/// Ideal hover power for the loaded airframe [W].
double hover_power_w(const Airframe& airframe);

/// Total electrical draw while hovering on station [W].
double total_power_w(const Airframe& airframe);

/// Hover endurance [s].
double endurance_s(const Airframe& airframe);

/// Energy audit of a deployed network.
struct EnduranceReport {
  std::vector<double> per_uav_endurance_s;  ///< parallel to deployments.
  double network_lifetime_s = 0.0;  ///< first UAV to drop (min endurance).
  std::int32_t limiting_deployment = -1;
  /// Deployments that cannot stay up for `mission_s` (empty = feasible).
  std::vector<std::int32_t> infeasible;
};

/// Audits `solution` with one airframe description per fleet UAV
/// (`airframes[k]` describes fleet UAV k).  `mission_s` is the required
/// time on station.
EnduranceReport endurance_report(const Solution& solution,
                                 const std::vector<Airframe>& airframes,
                                 double mission_s);

/// Heterogeneous fleet airframes matching the paper's M600/M300 story:
/// UAVs with capacity above `heavy_threshold` get the big airframe
/// (more payload, bigger battery), the rest the small one.
std::vector<Airframe> airframes_for_fleet(const Scenario& scenario,
                                          std::int32_t heavy_threshold = 200);

}  // namespace uavcov::energy
