#include "energy/power.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace uavcov::energy {

double hover_power_w(const Airframe& airframe) {
  UAVCOV_CHECK_MSG(airframe.mass_kg > 0 && airframe.payload_kg >= 0,
                   "mass must be positive");
  UAVCOV_CHECK_MSG(airframe.rotor_disc_area_m2 > 0,
                   "rotor disc area must be positive");
  UAVCOV_CHECK_MSG(
      airframe.propulsive_efficiency > 0 &&
          airframe.propulsive_efficiency <= 1.0,
      "propulsive efficiency must be in (0, 1]");
  const double weight_n =
      (airframe.mass_kg + airframe.payload_kg) * kGravity;
  const double ideal =
      std::pow(weight_n, 1.5) /
      std::sqrt(2.0 * kAirDensity * airframe.rotor_disc_area_m2);
  return ideal / airframe.propulsive_efficiency;
}

double total_power_w(const Airframe& airframe) {
  UAVCOV_CHECK_MSG(airframe.avionics_w >= 0 && airframe.basestation_w >= 0,
                   "electronics draw must be nonnegative");
  return hover_power_w(airframe) + airframe.avionics_w +
         airframe.basestation_w;
}

double endurance_s(const Airframe& airframe) {
  UAVCOV_CHECK_MSG(airframe.battery_wh > 0, "battery must be positive");
  return airframe.battery_wh * 3600.0 / total_power_w(airframe);
}

EnduranceReport endurance_report(const Solution& solution,
                                 const std::vector<Airframe>& airframes,
                                 double mission_s) {
  UAVCOV_CHECK_MSG(mission_s >= 0, "mission duration must be nonnegative");
  EnduranceReport report;
  report.network_lifetime_s = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < solution.deployments.size(); ++d) {
    const UavId k = solution.deployments[d].uav;
    UAVCOV_CHECK_MSG(k.valid() && k.index() < airframes.size(),
                     "no airframe description for a deployed UAV");
    const double t = endurance_s(airframes[k.index()]);
    report.per_uav_endurance_s.push_back(t);
    if (t < report.network_lifetime_s) {
      report.network_lifetime_s = t;
      report.limiting_deployment = static_cast<std::int32_t>(d);
    }
    if (t < mission_s) {
      report.infeasible.push_back(static_cast<std::int32_t>(d));
    }
  }
  if (solution.deployments.empty()) report.network_lifetime_s = 0.0;
  return report;
}

std::vector<Airframe> airframes_for_fleet(const Scenario& scenario,
                                          std::int32_t heavy_threshold) {
  // DJI M600-class (heavy): 9.5 kg frame, 5.5 kg payload budget, six
  // rotors, 6 × TB47S ≈ 600 Wh.  M300-class (light): 6.3 kg, 2.7 kg,
  // 2 × TB60 ≈ 590 Wh but a smaller disc.
  Airframe heavy;
  heavy.mass_kg = 9.5;
  heavy.payload_kg = 5.5;
  heavy.rotor_disc_area_m2 = 1.7;
  heavy.battery_wh = 600.0;
  heavy.basestation_w = 90.0;  // the more powerful base station

  Airframe light;  // defaults are the M300-ish numbers

  std::vector<Airframe> out;
  out.reserve(scenario.fleet.size());
  for (const UavSpec& u : scenario.fleet) {
    out.push_back(u.capacity >= heavy_threshold ? heavy : light);
  }
  return out;
}

}  // namespace uavcov::energy
