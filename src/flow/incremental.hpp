// RAII helper around DinicFlow's checkpoint/rollback: a FlowProbe opens a
// journaled region on construction and rolls it back on destruction unless
// commit() was called.  This is how Algorithm 2 evaluates "what if UAV k
// hovered at v_l?" without disturbing the flow of the committed prefix.
#pragma once

#include "flow/dinic.hpp"

namespace uavcov {

class FlowProbe {
 public:
  explicit FlowProbe(DinicFlow& flow)
      : flow_(flow), checkpoint_(flow.checkpoint()) {}

  ~FlowProbe() {
    if (!closed_) flow_.rollback(checkpoint_);
  }

  FlowProbe(const FlowProbe&) = delete;
  FlowProbe& operator=(const FlowProbe&) = delete;

  /// Keep the probed changes permanently (the winning candidate).
  void commit() {
    UAVCOV_CHECK_MSG(!closed_, "probe already closed");
    flow_.commit(checkpoint_);
    closed_ = true;
  }

  /// Roll back early (before destruction).
  void rollback() {
    UAVCOV_CHECK_MSG(!closed_, "probe already closed");
    flow_.rollback(checkpoint_);
    closed_ = true;
  }

 private:
  DinicFlow& flow_;
  DinicFlow::Checkpoint checkpoint_;
  bool closed_ = false;
};

}  // namespace uavcov
