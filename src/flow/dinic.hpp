// Dinic's maximum-flow algorithm with integral capacities and support for
// incremental probing.
//
// The optimal user→UAV assignment of §II-D is an integral max flow:
//   s → user (cap 1) → deployed UAV (cap 1 if eligible) → t (cap C_k).
// Algorithm 2's greedy placement needs the *marginal* gain of deploying one
// more UAV thousands of times; recomputing the whole flow each time would
// be ruinous.  Instead, callers take a checkpoint, add the candidate UAV's
// node and edges, augment (at most C_k augmenting paths, each O(E)), read
// the gain, and roll back.  Rollback restores every touched residual
// capacity via a journal and truncates the added nodes/edges, so the
// structure is bit-identical to its checkpointed state.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace uavcov {

class DinicFlow {
 public:
  using FlowNode = std::int32_t;
  using EdgeId = std::int32_t;

  DinicFlow() = default;

  /// Pre-allocate for `nodes` nodes and `edges` directed edges.
  void reserve(std::int32_t nodes, std::int64_t edges);

  FlowNode add_node();
  std::int32_t node_count() const {
    return static_cast<std::int32_t>(head_.size());
  }

  /// Adds directed edge u→v with capacity `cap` (and its zero-capacity
  /// residual twin).  Returns the forward edge id.
  EdgeId add_edge(FlowNode u, FlowNode v, std::int64_t cap);

  std::int32_t edge_count() const {
    return static_cast<std::int32_t>(to_.size());
  }

  /// Current flow on forward edge `e` (initial capacity minus residual).
  std::int64_t edge_flow(EdgeId e) const {
    UAVCOV_DCHECK(e >= 0 && e < edge_count() && e % 2 == 0);
    return initial_cap_[static_cast<std::size_t>(e)] -
           cap_[static_cast<std::size_t>(e)];
  }

  // Read-only structural accessors for external invariant auditing
  // (src/analysis/audit.hpp): edges come in forward/residual pairs, the
  // forward edge is the even id and `e ^ 1` is its twin.

  /// Endpoints (u, v) of forward edge `e`; the residual twin runs v → u.
  std::pair<FlowNode, FlowNode> edge_endpoints(EdgeId e) const {
    UAVCOV_DCHECK(e >= 0 && e < edge_count() && e % 2 == 0);
    return {to_[static_cast<std::size_t>(e ^ 1)],
            to_[static_cast<std::size_t>(e)]};
  }

  /// Capacity edge `e` was created with (0 for residual twins).
  std::int64_t edge_capacity(EdgeId e) const {
    UAVCOV_DCHECK(e >= 0 && e < edge_count());
    return initial_cap_[static_cast<std::size_t>(e)];
  }

  /// Current residual capacity of edge `e` (forward or twin).
  std::int64_t edge_residual(EdgeId e) const {
    UAVCOV_DCHECK(e >= 0 && e < edge_count());
    return cap_[static_cast<std::size_t>(e)];
  }

  /// Pushes as much additional flow from s to t as the residual network
  /// allows; returns the amount added.  Calling on a fresh network computes
  /// the max flow; calling after edge additions augments incrementally.
  std::int64_t augment(FlowNode s, FlowNode t);

  /// Opaque token capturing the full state (nodes, edges, residuals).
  struct Checkpoint {
    std::int32_t node_count = 0;
    std::int32_t edge_count = 0;
    std::size_t journal_size = 0;
  };

  /// Begin (or nest) a journaled region.  All residual-capacity changes and
  /// node/edge additions after this call are undone by rollback().
  Checkpoint checkpoint();

  /// Restore the state captured by `cp` (checkpoints must be rolled back
  /// in LIFO order).
  void rollback(const Checkpoint& cp);

  /// Close the most recent checkpoint keeping all changes.  Journal entries
  /// are retained so an enclosing checkpoint still rolls back correctly.
  void commit(const Checkpoint& cp);

 private:
  void journal_touch(EdgeId e);
  bool bfs_levels(FlowNode s, FlowNode t);
  std::int64_t dfs_push(FlowNode u, FlowNode t, std::int64_t limit);

  // Linked-list adjacency: head_[u] is the first edge id out of u, next_[e]
  // chains edges.  New edges prepend, which makes truncation-on-rollback a
  // simple pop.
  std::vector<EdgeId> head_;
  std::vector<EdgeId> next_;
  std::vector<FlowNode> to_;
  std::vector<std::int64_t> cap_;
  std::vector<std::int64_t> initial_cap_;

  // Journal of (edge, previous residual cap); only filled while at least
  // one checkpoint is active.
  std::vector<std::pair<EdgeId, std::int64_t>> journal_;
  std::vector<std::int32_t> journal_epoch_;  // last epoch an edge was journaled
  std::int32_t epoch_ = 0;
  std::int32_t active_checkpoints_ = 0;

  // Scratch for BFS/DFS (kept as members to avoid per-call allocation).
  std::vector<std::int32_t> level_;
  std::vector<EdgeId> iter_;
  std::vector<FlowNode> queue_;
};

}  // namespace uavcov
