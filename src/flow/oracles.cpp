#include "flow/oracles.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace uavcov::oracle {

namespace {
std::int64_t search(const std::vector<std::vector<std::int32_t>>& eligible,
                    std::vector<std::int64_t>& remaining, std::size_t item) {
  if (item == eligible.size()) return 0;
  // Option 1: leave item unassigned.
  std::int64_t best = search(eligible, remaining, item + 1);
  // Option 2: assign to any eligible bin with remaining capacity.
  for (std::int32_t b : eligible[item]) {
    auto& slot = remaining[static_cast<std::size_t>(b)];
    if (slot > 0) {
      --slot;
      best = std::max(best, 1 + search(eligible, remaining, item + 1));
      ++slot;
    }
  }
  return best;
}
}  // namespace

std::int64_t brute_force_assignment(
    const std::vector<std::vector<std::int32_t>>& eligible,
    const std::vector<std::int64_t>& bin_capacity) {
  UAVCOV_CHECK_MSG(eligible.size() <= 14,
                   "brute-force assignment limited to 14 items");
  for (const auto& bins : eligible) {
    for (std::int32_t b : bins) {
      UAVCOV_CHECK_MSG(
          b >= 0 && static_cast<std::size_t>(b) < bin_capacity.size(),
          "bin index out of range");
    }
  }
  std::vector<std::int64_t> remaining = bin_capacity;
  return search(eligible, remaining, 0);
}

}  // namespace uavcov::oracle
