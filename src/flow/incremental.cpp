#include "flow/incremental.hpp"

// Header-only implementation; this TU anchors the target.
