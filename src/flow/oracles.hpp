// Brute-force flow references for tests: exhaustive maximum "assignment"
// on tiny bipartite instances, checked against Dinic.
#pragma once

#include <cstdint>
#include <vector>

namespace uavcov::oracle {

/// Maximum number of left-side items assignable to right-side bins, where
/// `eligible[i]` lists the bins item i may use and `bin_capacity[b]` bounds
/// bin b.  Solved by exhaustive search (items <= ~12, bins small);
/// exponential — test-only.
std::int64_t brute_force_assignment(
    const std::vector<std::vector<std::int32_t>>& eligible,
    const std::vector<std::int64_t>& bin_capacity);

}  // namespace uavcov::oracle
