#include "flow/dinic.hpp"

#include <algorithm>

namespace uavcov {

void DinicFlow::reserve(std::int32_t nodes, std::int64_t edges) {
  head_.reserve(static_cast<std::size_t>(nodes));
  const auto directed = static_cast<std::size_t>(edges) * 2;
  next_.reserve(directed);
  to_.reserve(directed);
  cap_.reserve(directed);
  initial_cap_.reserve(directed);
  journal_epoch_.reserve(directed);
}

DinicFlow::FlowNode DinicFlow::add_node() {
  head_.push_back(-1);
  return static_cast<FlowNode>(head_.size()) - 1;
}

DinicFlow::EdgeId DinicFlow::add_edge(FlowNode u, FlowNode v,
                                      std::int64_t cap) {
  UAVCOV_CHECK_MSG(u >= 0 && u < node_count() && v >= 0 && v < node_count(),
                   "flow edge endpoint out of range");
  UAVCOV_CHECK_MSG(cap >= 0, "flow capacity must be nonnegative");
  const auto push_half = [this](FlowNode from, FlowNode to, std::int64_t c) {
    const EdgeId e = static_cast<EdgeId>(to_.size());
    to_.push_back(to);
    cap_.push_back(c);
    initial_cap_.push_back(c);
    next_.push_back(head_[static_cast<std::size_t>(from)]);
    head_[static_cast<std::size_t>(from)] = e;
    journal_epoch_.push_back(-1);
    return e;
  };
  const EdgeId forward = push_half(u, v, cap);
  push_half(v, u, 0);
  return forward;
}

void DinicFlow::journal_touch(EdgeId e) {
  if (active_checkpoints_ == 0) return;
  auto& stamp = journal_epoch_[static_cast<std::size_t>(e)];
  if (stamp == epoch_) return;
  stamp = epoch_;
  journal_.emplace_back(e, cap_[static_cast<std::size_t>(e)]);
}

bool DinicFlow::bfs_levels(FlowNode s, FlowNode t) {
  level_.assign(head_.size(), -1);
  queue_.clear();
  queue_.push_back(s);
  level_[static_cast<std::size_t>(s)] = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const FlowNode u = queue_[qi];
    for (EdgeId e = head_[static_cast<std::size_t>(u)]; e != -1;
         e = next_[static_cast<std::size_t>(e)]) {
      const FlowNode v = to_[static_cast<std::size_t>(e)];
      if (cap_[static_cast<std::size_t>(e)] > 0 &&
          level_[static_cast<std::size_t>(v)] == -1) {
        level_[static_cast<std::size_t>(v)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue_.push_back(v);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] != -1;
}

std::int64_t DinicFlow::dfs_push(FlowNode u, FlowNode t, std::int64_t limit) {
  if (u == t) return limit;
  for (EdgeId& e = iter_[static_cast<std::size_t>(u)]; e != -1;
       e = next_[static_cast<std::size_t>(e)]) {
    const FlowNode v = to_[static_cast<std::size_t>(e)];
    if (cap_[static_cast<std::size_t>(e)] <= 0 ||
        level_[static_cast<std::size_t>(v)] !=
            level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const std::int64_t pushed = dfs_push(
        v, t, std::min(limit, cap_[static_cast<std::size_t>(e)]));
    if (pushed > 0) {
      journal_touch(e);
      journal_touch(e ^ 1);
      cap_[static_cast<std::size_t>(e)] -= pushed;
      cap_[static_cast<std::size_t>(e ^ 1)] += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t DinicFlow::augment(FlowNode s, FlowNode t) {
  UAVCOV_CHECK_MSG(s >= 0 && s < node_count() && t >= 0 && t < node_count(),
                   "source/sink out of range");
  UAVCOV_CHECK_MSG(s != t, "source and sink must differ");
  std::int64_t total = 0;
  while (bfs_levels(s, t)) {
    iter_ = head_;
    constexpr std::int64_t kInf = std::int64_t{1} << 62;
    while (const std::int64_t pushed = dfs_push(s, t, kInf)) {
      total += pushed;
    }
  }
  return total;
}

DinicFlow::Checkpoint DinicFlow::checkpoint() {
  ++active_checkpoints_;
  ++epoch_;
  return Checkpoint{node_count(), edge_count(), journal_.size()};
}

void DinicFlow::rollback(const Checkpoint& cp) {
  UAVCOV_CHECK_MSG(active_checkpoints_ > 0, "rollback without checkpoint");
  UAVCOV_CHECK_MSG(cp.node_count <= node_count() &&
                       cp.edge_count <= edge_count() &&
                       cp.journal_size <= journal_.size(),
                   "stale or out-of-order checkpoint");
  // Undo residual-capacity changes newest-first so repeated touches of one
  // edge across epochs resolve to the oldest recorded value.
  while (journal_.size() > cp.journal_size) {
    const auto [e, old_cap] = journal_.back();
    journal_.pop_back();
    cap_[static_cast<std::size_t>(e)] = old_cap;
  }
  // Drop edges added after the checkpoint.  Edges come in (forward,
  // backward) pairs and prepend to their owners' adjacency lists, so the
  // head pointers unwind by walking the removed pairs newest-first
  // (backward twin before forward within each pair).
  UAVCOV_DCHECK(cp.edge_count % 2 == 0 && edge_count() % 2 == 0);
  for (EdgeId fe = edge_count() - 2; fe >= cp.edge_count; fe -= 2) {
    const FlowNode fwd_owner = to_[static_cast<std::size_t>(fe) + 1];
    const FlowNode bwd_owner = to_[static_cast<std::size_t>(fe)];
    UAVCOV_DCHECK(head_[static_cast<std::size_t>(bwd_owner)] == fe + 1);
    head_[static_cast<std::size_t>(bwd_owner)] =
        next_[static_cast<std::size_t>(fe) + 1];
    UAVCOV_DCHECK(head_[static_cast<std::size_t>(fwd_owner)] == fe);
    head_[static_cast<std::size_t>(fwd_owner)] =
        next_[static_cast<std::size_t>(fe)];
    for (int twice = 0; twice < 2; ++twice) {
      to_.pop_back();
      cap_.pop_back();
      initial_cap_.pop_back();
      next_.pop_back();
      journal_epoch_.pop_back();
    }
  }
  head_.resize(static_cast<std::size_t>(cp.node_count));
  --active_checkpoints_;
  ++epoch_;  // invalidate journal stamps from the rolled-back region
}

void DinicFlow::commit(const Checkpoint& cp) {
  UAVCOV_CHECK_MSG(active_checkpoints_ > 0, "commit without checkpoint");
  UAVCOV_CHECK_MSG(cp.journal_size <= journal_.size(),
                   "stale or out-of-order checkpoint");
  --active_checkpoints_;
  if (active_checkpoints_ == 0) journal_.clear();
  ++epoch_;
}

}  // namespace uavcov
