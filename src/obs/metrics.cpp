#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/check.hpp"

namespace uavcov::obs {

namespace {

/// Global uid source for registries; keys the thread-local shard cache so
/// a test registry destroyed and reallocated at the same address can never
/// inherit a stale shard.
// atomic-invariant: fetch_add-only counter, so every registry draws a
// distinct uid; no ordering needed beyond the RMW's own atomicity.
std::atomic<std::uint64_t> next_registry_uid{1};

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::int64_t histogram_bucket_bound(std::int32_t i) {
  UAVCOV_CHECK(i >= 0 && i < kHistogramBucketCount);
  return std::int64_t{1} << (2 * i);  // 4^i
}

void HistogramData::record(std::int64_t value) {
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
  std::int32_t bucket = kHistogramBucketCount;  // overflow by default
  for (std::int32_t i = 0; i < kHistogramBucketCount; ++i) {
    if (value <= histogram_bucket_bound(i)) {
      bucket = i;
      break;
    }
  }
  ++buckets[static_cast<std::size_t>(bucket)];
}

void HistogramData::merge(const HistogramData& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

void HistogramData::reset() { *this = HistogramData{}; }

const SnapshotEntry* Snapshot::find(std::string_view name) const {
  for (const SnapshotEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::int64_t Snapshot::counter_value(std::string_view name) const {
  const SnapshotEntry* e = find(name);
  return (e != nullptr && e->kind == MetricKind::kCounter) ? e->value : 0;
}

// ---------------------------------------------------------------------------
// Registry

/// Per-thread recording shard.  The owning thread takes `mu` on every
/// record (uncontended — only snapshot/reset ever touch it from outside),
/// so there is no cross-thread cache-line ping-pong on the hot path and
/// merging is a simple, order-independent summation.
struct Registry::Shard {
  sync::Mutex mu;
  std::vector<std::int64_t> counters UAVCOV_GUARDED_BY(mu);
  std::vector<HistogramData> hists UAVCOV_GUARDED_BY(mu);
};

Registry& Registry::instance() {
  static Registry* global = [] {
    // lint:allow naked-new -- immortal registry: instrumentation handles outlive static dtors
    auto* r = new Registry();
    r->set_enabled(metrics_env_enabled());
    return r;
  }();
  return *global;
}

Registry::Registry() : uid_(next_registry_uid.fetch_add(1)) {}

Registry::~Registry() = default;

std::int32_t Registry::intern(MetricKind kind, const std::string& name) {
  UAVCOV_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  const sync::LockGuard lock(mu_);
  const auto it = std::lower_bound(
      metrics_.begin(), metrics_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != metrics_.end() && it->first == name) {
    UAVCOV_CHECK_MSG(it->second.kind == kind,
                     "metric '" + name + "' already registered as a " +
                         kind_name(it->second.kind));
    return it->second.id;
  }
  std::int32_t id = 0;
  switch (kind) {
    case MetricKind::kCounter:
      id = static_cast<std::int32_t>(counter_names_.size());
      counter_names_.push_back(name);
      break;
    case MetricKind::kGauge:
      id = static_cast<std::int32_t>(gauge_names_.size());
      gauge_names_.push_back(name);
      gauges_.emplace_back();
      break;
    case MetricKind::kHistogram:
      id = static_cast<std::int32_t>(histogram_names_.size());
      histogram_names_.push_back(name);
      break;
  }
  metrics_.insert(it, {name, Registered{kind, id}});
  return id;
}

Counter Registry::counter(const std::string& name) {
  return Counter(this, intern(MetricKind::kCounter, name));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(this, intern(MetricKind::kGauge, name));
}

Histogram Registry::histogram(const std::string& name) {
  return Histogram(this, intern(MetricKind::kHistogram, name));
}

Registry::Shard& Registry::local_shard() {
  // Cache keyed by registry uid, not address: a stale entry for a dead
  // registry can only leak its (detached) shard, never be reused.
  thread_local std::unordered_map<std::uint64_t, std::shared_ptr<Shard>>
      cache;
  std::shared_ptr<Shard>& slot = cache[uid_];
  if (!slot) {
    slot = std::make_shared<Shard>();
    const sync::LockGuard lock(mu_);
    shards_.push_back(slot);
  }
  return *slot;
}

void Registry::counter_add(std::int32_t id, std::int64_t delta) {
  Shard& shard = local_shard();
  const sync::LockGuard lock(shard.mu);
  if (static_cast<std::size_t>(id) >= shard.counters.size()) {
    shard.counters.resize(static_cast<std::size_t>(id) + 1, 0);
  }
  shard.counters[static_cast<std::size_t>(id)] += delta;
}

void Registry::gauge_set(std::int32_t id, std::int64_t value) {
  const sync::LockGuard lock(mu_);
  GaugeData& g = gauges_[static_cast<std::size_t>(id)];
  g.value = value;
  g.high_water = std::max(g.high_water, value);
}

void Registry::gauge_add(std::int32_t id, std::int64_t delta) {
  const sync::LockGuard lock(mu_);
  GaugeData& g = gauges_[static_cast<std::size_t>(id)];
  g.value += delta;
  g.high_water = std::max(g.high_water, g.value);
}

void Registry::histogram_observe(std::int32_t id, std::int64_t value) {
  Shard& shard = local_shard();
  const sync::LockGuard lock(shard.mu);
  if (static_cast<std::size_t>(id) >= shard.hists.size()) {
    shard.hists.resize(static_cast<std::size_t>(id) + 1);
  }
  shard.hists[static_cast<std::size_t>(id)].record(value);
}

Snapshot Registry::snapshot() const {
  // Copy the registration tables and shard list under the registry lock,
  // then merge shard contents under each shard's own lock.
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::vector<GaugeData> gauges;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const sync::LockGuard lock(mu_);
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    histogram_names = histogram_names_;
    gauges = gauges_;
    shards = shards_;
  }
  std::vector<std::int64_t> counters(counter_names.size(), 0);
  std::vector<HistogramData> hists(histogram_names.size());
  for (const auto& shard : shards) {
    const sync::LockGuard lock(shard->mu);
    for (std::size_t i = 0;
         i < shard->counters.size() && i < counters.size(); ++i) {
      counters[i] += shard->counters[i];
    }
    for (std::size_t i = 0; i < shard->hists.size() && i < hists.size();
         ++i) {
      hists[i].merge(shard->hists[i]);
    }
  }

  Snapshot snap;
  snap.entries.reserve(counter_names.size() + gauge_names.size() +
                       histogram_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    SnapshotEntry e;
    e.name = counter_names[i];
    e.kind = MetricKind::kCounter;
    e.value = counters[i];
    snap.entries.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    SnapshotEntry e;
    e.name = gauge_names[i];
    e.kind = MetricKind::kGauge;
    e.value = gauges[i].value;
    e.high_water =
        gauges[i].high_water == std::numeric_limits<std::int64_t>::min()
            ? gauges[i].value
            : gauges[i].high_water;
    snap.entries.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < histogram_names.size(); ++i) {
    SnapshotEntry e;
    e.name = histogram_names[i];
    e.kind = MetricKind::kHistogram;
    e.hist = hists[i];
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  const sync::LockGuard lock(mu_);
  for (GaugeData& g : gauges_) g = GaugeData{};
  for (const auto& shard : shards_) {
    const sync::LockGuard shard_lock(shard->mu);
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    for (HistogramData& h : shard->hists) h.reset();
  }
  // Shards whose thread has exited (we hold the only reference) carry no
  // future writes; drop them so long test runs do not accumulate one per
  // retired pool worker.
  std::erase_if(shards_,
                [](const std::shared_ptr<Shard>& s) { return s.use_count() == 1; });
}

// ---------------------------------------------------------------------------
// Handles

bool Counter::enabled() const {
  return registry_ != nullptr && registry_->enabled();
}

void Counter::inc(std::int64_t delta) const {
  if (enabled()) registry_->counter_add(id_, delta);
}

bool Gauge::enabled() const {
  return registry_ != nullptr && registry_->enabled();
}

void Gauge::set(std::int64_t value) const {
  if (enabled()) registry_->gauge_set(id_, value);
}

void Gauge::add(std::int64_t delta) const {
  if (enabled()) registry_->gauge_add(id_, delta);
}

bool Histogram::enabled() const {
  return registry_ != nullptr && registry_->enabled();
}

void Histogram::observe(std::int64_t value) const {
  if (enabled()) registry_->histogram_observe(id_, value);
}

void Histogram::observe_seconds(double seconds) const {
  observe(static_cast<std::int64_t>(seconds * 1e9));
}

Counter counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

bool metrics_env_enabled() {
  static const bool enabled = [] {
    // getenv is mt-unsafe only against concurrent setenv; nothing in this
    // process mutates the environment (same rationale as UAVCOV_AUDIT).
    const char* v = std::getenv("UAVCOV_METRICS");  // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return enabled;
}

}  // namespace uavcov::obs
