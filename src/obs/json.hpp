// Hand-rolled JSON writer (no third-party deps) plus the metrics-snapshot
// exporters.  The writer is deliberately minimal — objects, arrays, string
// escaping, and locale-independent number formatting — but general enough
// that bench/bench_runner.cpp builds the whole BENCH_coverage.json document
// with it.
//
// Output is deterministic: the caller controls key order, doubles print
// with max_digits10 (round-trip exact), and 64-bit identifiers that could
// lose precision as JSON numbers (fingerprints) should be written as hex
// strings by the caller.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace uavcov::obs {

/// Streaming JSON document builder.  Misuse (a key outside an object, two
/// keys in a row, unbalanced end_*) throws ContractError — writer bugs
/// must not produce silently malformed benchmark artifacts.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::int32_t v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    return key(k).value(v);
  }

  /// Finish and return the document; the writer must be balanced.
  std::string take();

  static std::string escape(std::string_view raw);
  /// Locale-independent double formatting with max_digits10.
  static std::string format_double(double v);

 private:
  enum class Frame { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// Snapshot → JSON object:
///   {"counters": {name: value, ...},
///    "gauges": {name: {"value": v, "high_water": m}, ...},
///    "histograms": {name: {"count": c, "sum": s, "min": lo, "max": hi,
///                          "buckets": [...]}, ...}}
/// Keys appear in snapshot (i.e. name-sorted) order.  Writes the object as
/// the next value of `w`, so it can be embedded in a larger document.
void write_snapshot(JsonWriter& w, const Snapshot& snapshot);

/// Standalone JSON document for one snapshot.
std::string to_json(const Snapshot& snapshot);

/// CSV export: header `kind,name,value,high_water,count,sum,min,max`, one
/// row per metric in snapshot order.  Histogram buckets are JSON-only.
std::string to_csv(const Snapshot& snapshot);

}  // namespace uavcov::obs
