#include "obs/json.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/check.hpp"

namespace uavcov::obs {

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  UAVCOV_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "end_object outside an object");
  UAVCOV_CHECK_MSG(!have_key_, "dangling key before end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  UAVCOV_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                   "end_array outside an array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  UAVCOV_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "key outside an object");
  UAVCOV_CHECK_MSG(!have_key_, "two keys in a row");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    UAVCOV_CHECK_MSG(have_key_, "object value without a key");
    have_key_ = false;
    return;  // key() already handled the comma
  }
  UAVCOV_CHECK_MSG(stack_.empty() ? out_.empty() : true,
                   "only one top-level value allowed");
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += format_double(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::take() {
  UAVCOV_CHECK_MSG(stack_.empty(), "unbalanced JSON document");
  UAVCOV_CHECK_MSG(!out_.empty(), "empty JSON document");
  std::string result;
  result.swap(out_);
  need_comma_ = false;
  return result;
}

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  // %.17g is locale-independent for the characters JSON needs and
  // round-trips every finite double.  Non-finite values have no JSON
  // representation; surface the bug instead of writing "inf".
  UAVCOV_CHECK_MSG(v == v && v <= 1.7976931348623157e308 &&
                       v >= -1.7976931348623157e308,
                   "non-finite double in JSON output");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_snapshot(JsonWriter& w, const Snapshot& snapshot) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const SnapshotEntry& e : snapshot.entries) {
    if (e.kind != MetricKind::kCounter) continue;
    w.kv(e.name, e.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const SnapshotEntry& e : snapshot.entries) {
    if (e.kind != MetricKind::kGauge) continue;
    w.key(e.name).begin_object();
    w.kv("value", e.value);
    w.kv("high_water", e.high_water);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const SnapshotEntry& e : snapshot.entries) {
    if (e.kind != MetricKind::kHistogram) continue;
    w.key(e.name).begin_object();
    w.kv("count", e.hist.count);
    w.kv("sum", e.hist.sum);
    // min/max are identities of an empty merge; export 0 for "no data".
    w.kv("min", e.hist.count > 0 ? e.hist.min : 0);
    w.kv("max", e.hist.count > 0 ? e.hist.max : 0);
    w.key("buckets").begin_array();
    for (const std::int64_t b : e.hist.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string to_json(const Snapshot& snapshot) {
  JsonWriter w;
  write_snapshot(w, snapshot);
  return w.take();
}

std::string to_csv(const Snapshot& snapshot) {
  std::string out = "kind,name,value,high_water,count,sum,min,max\n";
  const auto row = [&out](std::string_view kind, const std::string& name,
                    std::int64_t value, std::int64_t high_water,
                    std::int64_t count, std::int64_t sum, std::int64_t min,
                    std::int64_t max) {
    out += kind;
    out += ',';
    out += name;  // metric names never contain commas/quotes by convention
    for (const std::int64_t v : {value, high_water, count, sum, min, max}) {
      out += ',';
      out += std::to_string(v);
    }
    out += '\n';
  };
  for (const SnapshotEntry& e : snapshot.entries) {
    switch (e.kind) {
      case MetricKind::kCounter:
        row("counter", e.name, e.value, 0, 0, 0, 0, 0);
        break;
      case MetricKind::kGauge:
        row("gauge", e.name, e.value, e.high_water, 0, 0, 0, 0);
        break;
      case MetricKind::kHistogram:
        row("histogram", e.name, 0, 0, e.hist.count, e.hist.sum,
            e.hist.count > 0 ? e.hist.min : 0,
            e.hist.count > 0 ? e.hist.max : 0);
        break;
    }
  }
  return out;
}

}  // namespace uavcov::obs
