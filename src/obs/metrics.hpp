// Observability layer: a lightweight process-wide metrics registry.
//
// The paper's headline claims are quantitative (Fig. 6(b) plots approAlg's
// running time against the baselines), so the solver needs a way to see
// where time goes *inside* solve() beyond one wall clock.  This module
// provides:
//
//   * Counter    — monotonic 64-bit event counts (flow probes, deploys);
//   * Gauge      — instantaneous value + high-water mark (queue depth);
//   * Histogram  — latency/value distribution over fixed log-spaced
//                  buckets (powers of 4), with count/sum/min/max;
//   * ScopedTimer — RAII timing into a Histogram, built on the existing
//                  Stopwatch.
//
// Design constraints, in order:
//   1. Zero overhead when disabled.  Every recording call is one relaxed
//      atomic load + branch when the registry is off (the default).  The
//      UAVCOV_METRICS environment variable or set_enabled(true) turns it
//      on.  ScopedTimer does not even read the clock while disabled.
//   2. Never perturb results.  The registry is write-only from the
//      solver's point of view: nothing in src/core reads a metric back,
//      so serial/parallel bit-identity (DESIGN.md §7) is preserved with
//      metrics on — tests/parallel_search_test.cpp asserts exactly this.
//   3. Deterministic snapshots.  Counters and histograms are recorded in
//      per-thread shards (no cross-thread contention on the hot path) and
//      merged by summation, which is order-independent; snapshot entries
//      are sorted by name.  Two runs of a deterministic workload produce
//      identical counter values regardless of thread interleaving.
//
// Naming convention: dot-separated paths rooted at the subsystem, e.g.
// "core.assignment.probes", "appro.phase.search_seconds",
// "common.thread_pool.queue_depth".  Histograms that carry time observe
// nanoseconds and end in "_seconds" (the exporter converts).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/sync.hpp"

namespace uavcov::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Histogram bucket upper bounds: kBucketBound[i] = 4^i, i in [0, 20).
/// Log-spaced so one layout serves nanosecond latencies (4^19 ns ≈ 275 s)
/// and plain value distributions alike; the last bucket is the overflow.
inline constexpr std::int32_t kHistogramBucketCount = 20;

/// Upper bound of bucket `i` (values v with v <= bound land in the first
/// such bucket); index kHistogramBucketCount is the overflow bucket.
std::int64_t histogram_bucket_bound(std::int32_t i);

/// Merged histogram state (also the per-shard representation).
struct HistogramData {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::array<std::int64_t, kHistogramBucketCount + 1> buckets{};

  void record(std::int64_t value);
  void merge(const HistogramData& other);
  void reset();
};

/// One metric in a snapshot.  `value`/`high_water` are meaningful for
/// counters and gauges, `hist` for histograms.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;       ///< counter total or gauge current value.
  std::int64_t high_water = 0;  ///< gauge maximum since reset.
  HistogramData hist;
};

/// Deterministic point-in-time view: entries sorted by name.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(std::string_view name) const;
  /// Counter total by name; 0 when absent (unregistered or never hit).
  std::int64_t counter_value(std::string_view name) const;
};

class Registry;

/// Cheap copyable handles; obtain once (e.g. a function-local static) and
/// record through them.  All operations are no-ops while the owning
/// registry is disabled.
class Counter {
 public:
  Counter() = default;
  void inc(std::int64_t delta = 1) const;
  bool enabled() const;

 private:
  friend class Registry;
  Counter(Registry* registry, std::int32_t id)
      : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::int32_t id_ = -1;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const;
  void add(std::int64_t delta) const;
  bool enabled() const;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::int32_t id)
      : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::int32_t id_ = -1;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t value) const;
  void observe_seconds(double seconds) const;  ///< recorded as nanoseconds.
  bool enabled() const;

 private:
  friend class Registry;
  Histogram(Registry* registry, std::int32_t id)
      : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::int32_t id_ = -1;
};

/// RAII timer: reads the clock only while the histogram's registry is
/// enabled, records elapsed nanoseconds on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist) : hist_(hist) {
    if (hist_.enabled()) watch_.emplace();
  }
  ~ScopedTimer() {
    if (watch_) {
      hist_.observe(static_cast<std::int64_t>(watch_->elapsed_s() * 1e9));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  std::optional<Stopwatch> watch_;
};

class Registry {
 public:
  /// The process-wide registry used by all in-tree instrumentation.
  /// Enabled at startup iff UAVCOV_METRICS is set to a non-empty value
  /// other than "0" (same convention as UAVCOV_AUDIT).
  static Registry& instance();

  /// Registries other than instance() are supported for tests; they start
  /// disabled.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Interning: returns the (stable) handle for `name`, creating the
  /// metric on first use.  Throws ContractError if `name` is already
  /// registered with a different kind.
  Counter counter(const std::string& name) UAVCOV_EXCLUDES(mu_);
  Gauge gauge(const std::string& name) UAVCOV_EXCLUDES(mu_);
  Histogram histogram(const std::string& name) UAVCOV_EXCLUDES(mu_);

  /// Merge every shard into a deterministic, name-sorted snapshot.
  /// Thread-safe against concurrent recording: the registration tables
  /// and shard list are copied under mu_, then each shard is merged under
  /// its own lock, so a recording thread is never blocked for the whole
  /// merge and a thread exiting mid-merge cannot drop its shard (the
  /// copied shared_ptr keeps it alive).
  Snapshot snapshot() const UAVCOV_EXCLUDES(mu_);

  /// Zero every metric (values only; registrations and handles stay
  /// valid).  Test/bench support — call it only while no instrumented
  /// worker threads are running.
  void reset() UAVCOV_EXCLUDES(mu_);

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;

  std::int32_t intern(MetricKind kind, const std::string& name)
      UAVCOV_EXCLUDES(mu_);
  Shard& local_shard() UAVCOV_EXCLUDES(mu_);
  void counter_add(std::int32_t id, std::int64_t delta)
      UAVCOV_EXCLUDES(mu_);
  void gauge_set(std::int32_t id, std::int64_t value) UAVCOV_EXCLUDES(mu_);
  void gauge_add(std::int32_t id, std::int64_t delta) UAVCOV_EXCLUDES(mu_);
  void histogram_observe(std::int32_t id, std::int64_t value)
      UAVCOV_EXCLUDES(mu_);

  struct GaugeData {
    std::int64_t value = 0;
    std::int64_t high_water = std::numeric_limits<std::int64_t>::min();
  };

  // atomic-invariant: on/off flag only; read relaxed on every record, so a
  // toggle may be observed late — recorded values themselves always travel
  // through the shard/gauge locks below.
  std::atomic<bool> enabled_{false};
  const std::uint64_t uid_;  ///< keys the thread-local shard cache.

  mutable sync::Mutex mu_;
  // name → (kind, per-kind id); names_ mirrors ids back per kind.
  struct Registered {
    MetricKind kind;
    std::int32_t id;
  };
  // Sorted lookup table; ids index the per-kind vectors below.
  std::vector<std::pair<std::string, Registered>> metrics_
      UAVCOV_GUARDED_BY(mu_);
  std::vector<std::string> counter_names_ UAVCOV_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ UAVCOV_GUARDED_BY(mu_);
  std::vector<std::string> histogram_names_ UAVCOV_GUARDED_BY(mu_);
  // Gauges are global (no shard): every set/add lands here under mu_.
  std::vector<GaugeData> gauges_ UAVCOV_GUARDED_BY(mu_);
  // One recording shard per (thread, registry); shard contents are guarded
  // by each shard's own mu, the list itself by mu_.
  std::vector<std::shared_ptr<Shard>> shards_ UAVCOV_GUARDED_BY(mu_);
};

/// Convenience wrappers over Registry::instance().
Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Histogram histogram(const std::string& name);

/// True iff UAVCOV_METRICS requests metrics at startup.
bool metrics_env_enabled();

}  // namespace uavcov::obs
