// Plain-text persistence for scenarios and solutions.
//
// Format: a versioned, line-oriented `key value...` format (one record per
// line, '#' comments) — trivially diffable, stable across platforms, and
// parsed without third-party dependencies.  Floating-point values are
// written with max_digits10 so a save/load round trip is bit-exact.
//
//   uavcov-scenario v1
//   area 3000 3000 300
//   altitude 300
//   uav_range 600
//   channel 2e9 9.61 0.16 1 20
//   receiver -104 180000
//   user <x> <y> <min_rate>        (n lines)
//   uav <capacity> <tx_dbm> <gain_dbi> <user_range>   (K lines)
//
//   uavcov-solution v1
//   algorithm approAlg
//   served 2356
//   solve_seconds 12.5
//   deployment <uav> <loc>         (per deployment)
//   assignment <user> <deployment> (served users only)
#pragma once

#include <iosfwd>
#include <string>

#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov::io {

void save_scenario(std::ostream& out, const Scenario& scenario);
void save_scenario_file(const std::string& path, const Scenario& scenario);

/// Parses a scenario; throws ContractError on malformed input (wrong
/// magic/version, unknown keys, bad or trailing record arguments,
/// non-finite or overflowing grid dimensions).  Never truncates silently.
Scenario load_scenario(std::istream& in);
Scenario load_scenario_file(const std::string& path);

void save_solution(std::ostream& out, const Solution& solution);
void save_solution_file(const std::string& path, const Solution& solution);

/// Parses a solution.  `user_count` sizes the assignment vector (users not
/// listed are unserved).  Throws ContractError on malformed input: negative
/// ids/counts, users out of [0, user_count), duplicate assignments, and
/// assignments referencing deployments the file never declared.
Solution load_solution(std::istream& in, std::int32_t user_count);
Solution load_solution_file(const std::string& path,
                            std::int32_t user_count);

}  // namespace uavcov::io
