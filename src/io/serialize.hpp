// Scenario / solution persistence: one format-agnostic API over two
// on-disk formats.
//
// *Text* (the default) is a versioned, line-oriented `key value...` format
// (one record per line, '#' comments) — trivially diffable, stable across
// platforms, and parsed without third-party dependencies.  Floating-point
// values are written with max_digits10 so a save/load round trip is
// bit-exact.
//
//   uavcov-scenario v1
//   area 3000 3000 300
//   altitude 300
//   uav_range 600
//   channel 2e9 9.61 0.16 1 20
//   receiver -104 180000
//   user <x> <y> <min_rate>        (n lines)
//   uav <capacity> <tx_dbm> <gain_dbi> <user_range>   (K lines)
//
//   uavcov-solution v1
//   algorithm approAlg
//   served 2356
//   solve_seconds 12.5
//   deployment <uav> <loc>         (per deployment)
//   assignment <user> <deployment> (served users only)
//
// *Binary* (io/binary.hpp) is the column-oriented, checksummed format for
// large instances — at 10^6 users the text parser's per-field strtod
// dominates end-to-end time, the binary loader is one read plus memcpys.
//
// The loaders take either format: they read the input once, sniff the
// leading magic, and dispatch ("UAVCBIN1"/"UAVCSOL1" → binary, anything
// else → the text parser).  Callers choose a format only when *saving*,
// via the Format argument (text by default, so existing fixtures and
// golden files are unchanged).  Feeding a solution where a scenario is
// expected (or vice versa, in either format) fails with a ContractError
// naming the format that was actually detected.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov::io {

/// On-disk encoding selector for the save entry points.  Loaders never
/// take one — they detect the format from the input's magic.
enum class Format {
  kText,    ///< line-oriented records (diffable; the default).
  kBinary,  ///< sectioned little-endian columns (io/binary.hpp).
};

void save_scenario(std::ostream& out, const Scenario& scenario,
                   Format format = Format::kText);
void save_scenario_file(const std::string& path, const Scenario& scenario,
                        Format format = Format::kText);

/// Parses a scenario in either format (sniffed from the magic); throws
/// ContractError on malformed input (wrong magic/version, unknown keys or
/// sections, bad or trailing record arguments, checksum mismatches,
/// non-finite or overflowing grid dimensions).  Never truncates silently.
Scenario load_scenario(std::istream& in);
/// Same, from an in-memory image.
Scenario load_scenario(std::string_view bytes);
Scenario load_scenario_file(const std::string& path);

void save_solution(std::ostream& out, const Solution& solution,
                   Format format = Format::kText);
void save_solution_file(const std::string& path, const Solution& solution,
                        Format format = Format::kText);

/// Parses a solution in either format.  `user_count` sizes the assignment
/// vector (users not listed are unserved).  Throws ContractError on
/// malformed input: negative ids/counts, users out of [0, user_count),
/// duplicate assignments, and assignments referencing deployments the
/// input never declared.
Solution load_solution(std::istream& in, std::int32_t user_count);
Solution load_solution(std::string_view bytes, std::int32_t user_count);
Solution load_solution_file(const std::string& path,
                            std::int32_t user_count);

}  // namespace uavcov::io
