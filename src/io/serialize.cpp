#include "io/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "io/binary.hpp"

namespace uavcov::io {

namespace {

// Files open in binary mode for both formats: the loaders sniff bytes, and
// on POSIX text output is byte-identical either way (golden fixtures are
// unchanged).
void open_checked(std::ifstream& in, const std::string& path) {
  in.open(path, std::ios::in | std::ios::binary);
  UAVCOV_CHECK_MSG(in.good(), "cannot open for reading: " + path);
}

void open_checked(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::out | std::ios::binary);
  UAVCOV_CHECK_MSG(out.good(), "cannot open for writing: " + path);
}

/// The single read the format-agnostic loaders work from.
std::string slurp(std::istream& in) {
  std::string data;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    data.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return data;
}

/// Reads the next non-comment, non-empty line; returns false at EOF.
bool next_record(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

struct Record {
  std::string key;
  std::istringstream args;
};

Record parse_record(const std::string& line) {
  Record r;
  r.args.str(line);
  r.args >> r.key;
  return r;
}

template <typename T>
T read_arg(Record& r, const char* what) {
  T value;
  r.args >> value;
  UAVCOV_CHECK_MSG(!r.args.fail(),
                   std::string("malformed ") + what + " in record '" +
                       r.key + "'");
  return value;
}

/// Rejects trailing tokens after a record's declared arguments — the
/// alternative is silently dropping user data ("user 1 2 3 4" would load
/// as a 3-field user), which the round-trip fuzzer rightly flags.
void expect_end(Record& r) {
  std::string extra;
  r.args >> extra;
  UAVCOV_CHECK_MSG(extra.empty(), "trailing data '" + extra +
                                      "' in record '" + r.key + "'");
}

/// Names the binary format when its magic reaches the text parser, instead
/// of quoting a line of raw sections as a "bad header".  The dispatching
/// loaders normally catch this earlier; this guards direct text parses.
void reject_binary_input(const std::string& line, const std::string& magic) {
  UAVCOV_CHECK_MSG(
      !has_binary_scenario_magic(line),
      "expected text '" + magic +
          "' input but detected a binary uavcov scenario (magic " +
          std::string(kBinaryScenarioMagic) +
          "); the text parser cannot read it — load through io::load_* to "
          "auto-detect the format");
  UAVCOV_CHECK_MSG(
      !has_binary_solution_magic(line),
      "expected text '" + magic +
          "' input but detected a binary uavcov solution (magic " +
          std::string(kBinarySolutionMagic) +
          "); the text parser cannot read it — load through io::load_* to "
          "auto-detect the format");
}

void expect_magic(std::istream& in, const std::string& magic) {
  std::string line;
  UAVCOV_CHECK_MSG(next_record(in, line), "empty input, expected " + magic);
  reject_binary_input(line, magic);
  Record r = parse_record(line);
  const auto version = read_arg<std::string>(r, "version");
  UAVCOV_CHECK_MSG(r.key == magic && version == "v1",
                   "bad header: expected '" + magic + " v1', got '" + line +
                       "'");
  expect_end(r);
}

std::ostream& full_precision(std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

void save_scenario_text(std::ostream& out, const Scenario& scenario) {
  full_precision(out);
  out << "uavcov-scenario v1\n";
  out << "# disaster area: width height cell_side (meters)\n";
  out << "area " << scenario.grid.width() << ' ' << scenario.grid.height()
      << ' ' << scenario.grid.cell_side() << '\n';
  out << "altitude " << scenario.altitude_m << '\n';
  out << "uav_range " << scenario.uav_range_m << '\n';
  out << "channel " << scenario.channel.carrier_hz << ' '
      << scenario.channel.environment.a << ' '
      << scenario.channel.environment.b << ' '
      << scenario.channel.environment.eta_los_db << ' '
      << scenario.channel.environment.eta_nlos_db << '\n';
  out << "receiver " << scenario.receiver.noise_dbm << ' '
      << scenario.receiver.bandwidth_hz << '\n';
  for (const User& u : scenario.users) {
    out << "user " << u.pos.x << ' ' << u.pos.y << ' ' << u.min_rate_bps
        << '\n';
  }
  for (const UavSpec& u : scenario.fleet) {
    out << "uav " << u.capacity << ' ' << u.radio.tx_power_dbm << ' '
        << u.radio.antenna_gain_dbi << ' ' << u.user_range_m << '\n';
  }
}

Scenario load_scenario_text(std::istream& in) {
  expect_magic(in, "uavcov-scenario");
  double width = 0, height = 0, cell = 0;
  Scenario* scenario = nullptr;
  // The grid is immutable, so buffer records until `area` arrives (it is
  // written first, but we stay tolerant of reordering of later keys).
  std::string line;
  UAVCOV_CHECK_MSG(next_record(in, line), "missing 'area' record");
  {
    Record r = parse_record(line);
    UAVCOV_CHECK_MSG(r.key == "area", "first record must be 'area'");
    width = read_arg<double>(r, "width");
    height = read_arg<double>(r, "height");
    cell = read_arg<double>(r, "cell side");
    expect_end(r);
  }
  Scenario result{
      .grid = Grid(width, height, cell),
      .altitude_m = 300.0,
      .uav_range_m = 600.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  scenario = &result;
  while (next_record(in, line)) {
    Record r = parse_record(line);
    if (r.key == "altitude") {
      scenario->altitude_m = read_arg<double>(r, "altitude");
    } else if (r.key == "uav_range") {
      scenario->uav_range_m = read_arg<double>(r, "range");
    } else if (r.key == "channel") {
      scenario->channel.carrier_hz = read_arg<double>(r, "carrier");
      scenario->channel.environment.a = read_arg<double>(r, "a");
      scenario->channel.environment.b = read_arg<double>(r, "b");
      scenario->channel.environment.eta_los_db = read_arg<double>(r, "eta");
      scenario->channel.environment.eta_nlos_db = read_arg<double>(r, "eta");
    } else if (r.key == "receiver") {
      scenario->receiver.noise_dbm = read_arg<double>(r, "noise");
      scenario->receiver.bandwidth_hz = read_arg<double>(r, "bandwidth");
    } else if (r.key == "user") {
      User u;
      u.pos.x = read_arg<double>(r, "x");
      u.pos.y = read_arg<double>(r, "y");
      u.min_rate_bps = read_arg<double>(r, "rate");
      scenario->users.push_back(u);
    } else if (r.key == "uav") {
      UavSpec u;
      u.capacity = read_arg<std::int32_t>(r, "capacity");
      u.radio.tx_power_dbm = read_arg<double>(r, "tx power");
      u.radio.antenna_gain_dbi = read_arg<double>(r, "gain");
      u.user_range_m = read_arg<double>(r, "user range");
      scenario->fleet.push_back(u);
    } else {
      UAVCOV_CHECK_MSG(false, "unknown scenario record: " + r.key);
    }
    expect_end(r);
  }
  result.validate();
  return result;
}

void save_solution_text(std::ostream& out, const Solution& solution) {
  full_precision(out);
  out << "uavcov-solution v1\n";
  out << "algorithm " << solution.algorithm << '\n';
  out << "served " << solution.served << '\n';
  out << "solve_seconds " << solution.solve_seconds << '\n';
  for (const Deployment& d : solution.deployments) {
    out << "deployment " << d.uav.value() << ' ' << d.loc.value() << '\n';
  }
  for (const UserId u : solution.user_to_deployment.ids()) {
    if (solution.user_to_deployment[u] != -1) {
      out << "assignment " << u.value() << ' '
          << solution.user_to_deployment[u] << '\n';
    }
  }
}

Solution load_solution_text(std::istream& in, std::int32_t user_count) {
  expect_magic(in, "uavcov-solution");
  Solution solution;
  solution.user_to_deployment.assign(static_cast<std::size_t>(user_count),
                                     -1);
  std::string line;
  while (next_record(in, line)) {
    Record r = parse_record(line);
    if (r.key == "algorithm") {
      solution.algorithm = read_arg<std::string>(r, "name");
    } else if (r.key == "served") {
      solution.served = read_arg<std::int64_t>(r, "served");
      UAVCOV_CHECK_MSG(solution.served >= 0, "served must be nonnegative");
    } else if (r.key == "solve_seconds") {
      solution.solve_seconds = read_arg<double>(r, "seconds");
    } else if (r.key == "deployment") {
      Deployment d;
      d.uav = UavId{read_arg<std::int32_t>(r, "uav")};
      d.loc = LocationId{read_arg<std::int32_t>(r, "location")};
      UAVCOV_CHECK_MSG(d.uav.valid(),
                       "deployment UAV id must be nonnegative");
      UAVCOV_CHECK_MSG(d.loc.valid(),
                       "deployment location must be nonnegative");
      solution.deployments.push_back(d);
    } else if (r.key == "assignment") {
      const auto user = read_arg<std::int32_t>(r, "user");
      const auto dep = read_arg<std::int32_t>(r, "deployment");
      UAVCOV_CHECK_MSG(user >= 0 && user < user_count,
                       "assignment user out of range");
      UAVCOV_CHECK_MSG(dep >= 0, "assignment deployment must be nonnegative");
      UAVCOV_CHECK_MSG(solution.user_to_deployment[UserId{user}] == -1,
                       "duplicate assignment for user " +
                           std::to_string(user));
      solution.user_to_deployment[UserId{user}] = dep;
    } else {
      UAVCOV_CHECK_MSG(false, "unknown solution record: " + r.key);
    }
    expect_end(r);
  }
  // Deployment/assignment records may arrive in any order, so referential
  // integrity is a whole-file property: every assignment must point at a
  // deployment that actually exists (an out-of-range index previously
  // loaded "successfully" and blew up whoever consumed it).
  const auto deployment_count =
      static_cast<std::int32_t>(solution.deployments.size());
  for (const UserId u : solution.user_to_deployment.ids()) {
    const std::int32_t dep = solution.user_to_deployment[u];
    UAVCOV_CHECK_MSG(dep == -1 || dep < deployment_count,
                     "assignment for user " + std::to_string(u.value()) +
                         " references nonexistent deployment " +
                         std::to_string(dep));
  }
  return solution;
}

}  // namespace

void save_scenario(std::ostream& out, const Scenario& scenario,
                   Format format) {
  if (format == Format::kBinary) {
    save_scenario_binary(out, scenario);
    return;
  }
  save_scenario_text(out, scenario);
}

Scenario load_scenario(std::string_view bytes) {
  if (has_binary_scenario_magic(bytes)) return load_scenario_binary(bytes);
  UAVCOV_CHECK_MSG(
      !has_binary_solution_magic(bytes),
      "load_scenario: input is a binary uavcov solution (magic " +
          std::string(kBinarySolutionMagic) + "), not a scenario");
  std::istringstream in{std::string(bytes)};
  return load_scenario_text(in);
}

Scenario load_scenario(std::istream& in) {
  return load_scenario(std::string_view(slurp(in)));
}

void save_solution(std::ostream& out, const Solution& solution,
                   Format format) {
  if (format == Format::kBinary) {
    save_solution_binary(out, solution);
    return;
  }
  save_solution_text(out, solution);
}

Solution load_solution(std::string_view bytes, std::int32_t user_count) {
  UAVCOV_CHECK_MSG(user_count >= 0, "user count must be nonnegative");
  if (has_binary_solution_magic(bytes)) {
    return load_solution_binary(bytes, user_count);
  }
  UAVCOV_CHECK_MSG(
      !has_binary_scenario_magic(bytes),
      "load_solution: input is a binary uavcov scenario (magic " +
          std::string(kBinaryScenarioMagic) + "), not a solution");
  std::istringstream in{std::string(bytes)};
  return load_solution_text(in, user_count);
}

Solution load_solution(std::istream& in, std::int32_t user_count) {
  return load_solution(std::string_view(slurp(in)), user_count);
}

void save_scenario_file(const std::string& path, const Scenario& scenario,
                        Format format) {
  std::ofstream out;
  open_checked(out, path);
  save_scenario(out, scenario, format);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in;
  open_checked(in, path);
  return load_scenario(in);
}

void save_solution_file(const std::string& path, const Solution& solution,
                        Format format) {
  std::ofstream out;
  open_checked(out, path);
  save_solution(out, solution, format);
}

Solution load_solution_file(const std::string& path,
                            std::int32_t user_count) {
  std::ifstream in;
  open_checked(in, path);
  return load_solution(in, user_count);
}

}  // namespace uavcov::io
