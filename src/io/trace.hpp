// Churn-trace persistence (docs/STREAMING.md): the same one-API-two-formats
// scheme as io/serialize.hpp.
//
// *Text* — versioned line-oriented records, full precision, diffable:
//
//   uavcov-trace v1
//   epochs <E>
//   epoch <index> <event_count>          (E blocks, in order)
//   arrive <uid> <x> <y> <min_rate>
//   depart <uid>
//   move <uid> <x> <y>
//
// *Binary* — the sectioned little-endian layout of io/binary.hpp under its
// own magic "UAVCTRC1": one section of per-epoch event counts and one flat
// section of fixed-width event records, both FNV-checksummed.
//
// The loaders sniff the magic and take either format; both round-trip
// byte-exactly (save(load(save(x))) == save(x)).  Liveness discipline is
// NOT checked here — callers run ChurnTrace::validate() against their
// initial population.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "io/serialize.hpp"
#include "stream/churn.hpp"

namespace uavcov::io {

/// Leading bytes of a binary churn trace.
inline constexpr std::string_view kBinaryTraceMagic = "UAVCTRC1";

void save_trace(std::ostream& out, const stream::ChurnTrace& trace,
                Format format = Format::kText);
void save_trace_file(const std::string& path, const stream::ChurnTrace& trace,
                     Format format = Format::kText);

/// Parses a trace in either format (sniffed from the magic); throws
/// ContractError on malformed input: bad magic/version, unknown or
/// out-of-order records, counts that disagree with the declared totals,
/// negative uids, non-finite coordinates or rates, checksum mismatches.
stream::ChurnTrace load_trace(std::istream& in);
stream::ChurnTrace load_trace(std::string_view bytes);
stream::ChurnTrace load_trace_file(const std::string& path);

}  // namespace uavcov::io
