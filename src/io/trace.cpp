#include "io/trace.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/fingerprint.hpp"
#include "io/binary.hpp"

namespace uavcov::io {

namespace {

using stream::ChurnEvent;
using stream::ChurnKind;
using stream::ChurnTrace;
using stream::Epoch;

// ---- shared parsing scaffolding (mirrors io/serialize.cpp) --------------

void open_checked(std::ifstream& in, const std::string& path) {
  in.open(path, std::ios::in | std::ios::binary);
  UAVCOV_CHECK_MSG(in.good(), "cannot open for reading: " + path);
}

void open_checked(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::out | std::ios::binary);
  UAVCOV_CHECK_MSG(out.good(), "cannot open for writing: " + path);
}

std::string slurp(std::istream& in) {
  std::string data;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    data.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return data;
}

bool next_record(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

struct Record {
  std::string key;
  std::istringstream args;
};

Record parse_record(const std::string& line) {
  Record r;
  r.args.str(line);
  r.args >> r.key;
  return r;
}

template <typename T>
T read_arg(Record& r, const char* what) {
  T value;
  r.args >> value;
  UAVCOV_CHECK_MSG(!r.args.fail(), std::string("malformed ") + what +
                                       " in record '" + r.key + "'");
  return value;
}

void expect_end(Record& r) {
  std::string extra;
  r.args >> extra;
  UAVCOV_CHECK_MSG(extra.empty(), "trailing data '" + extra +
                                      "' in record '" + r.key + "'");
}

std::ostream& full_precision(std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

void check_event_fields(const ChurnEvent& ev, const char* where) {
  UAVCOV_CHECK_MSG(ev.uid >= 0, std::string(where) + ": negative uid");
  UAVCOV_CHECK_MSG(std::isfinite(ev.pos.x) && std::isfinite(ev.pos.y),
                   std::string(where) + ": non-finite position");
  UAVCOV_CHECK_MSG(std::isfinite(ev.min_rate_bps),
                   std::string(where) + ": non-finite rate");
}

// ---- text format --------------------------------------------------------

void save_trace_text(std::ostream& out, const ChurnTrace& trace) {
  full_precision(out);
  out << "uavcov-trace v1\n";
  out << "epochs " << trace.epochs.size() << '\n';
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    const Epoch& epoch = trace.epochs[e];
    out << "epoch " << e << ' ' << epoch.events.size() << '\n';
    for (const ChurnEvent& ev : epoch.events) {
      switch (ev.kind) {
        case ChurnKind::kArrive:
          out << "arrive " << ev.uid << ' ' << ev.pos.x << ' ' << ev.pos.y
              << ' ' << ev.min_rate_bps << '\n';
          break;
        case ChurnKind::kDepart:
          out << "depart " << ev.uid << '\n';
          break;
        case ChurnKind::kMove:
          out << "move " << ev.uid << ' ' << ev.pos.x << ' ' << ev.pos.y
              << '\n';
          break;
      }
    }
  }
}

ChurnTrace load_trace_text(std::istream& in) {
  std::string line;
  UAVCOV_CHECK_MSG(next_record(in, line),
                   "empty input, expected uavcov-trace");
  {
    Record r = parse_record(line);
    const auto version = read_arg<std::string>(r, "version");
    UAVCOV_CHECK_MSG(r.key == "uavcov-trace" && version == "v1",
                     "bad header: expected 'uavcov-trace v1', got '" + line +
                         "'");
    expect_end(r);
  }
  ChurnTrace trace;
  UAVCOV_CHECK_MSG(next_record(in, line), "missing 'epochs' record");
  std::int64_t declared = 0;
  {
    Record r = parse_record(line);
    UAVCOV_CHECK_MSG(r.key == "epochs", "expected 'epochs', got '" + r.key +
                                            "'");
    declared = read_arg<std::int64_t>(r, "epoch count");
    UAVCOV_CHECK_MSG(declared >= 0, "epoch count must be nonnegative");
    expect_end(r);
  }
  trace.epochs.reserve(static_cast<std::size_t>(declared));
  for (std::int64_t e = 0; e < declared; ++e) {
    UAVCOV_CHECK_MSG(next_record(in, line),
                     "missing 'epoch' record " + std::to_string(e));
    Record r = parse_record(line);
    UAVCOV_CHECK_MSG(r.key == "epoch",
                     "expected 'epoch', got '" + r.key + "'");
    const auto index = read_arg<std::int64_t>(r, "epoch index");
    UAVCOV_CHECK_MSG(index == e, "epoch records out of order: expected " +
                                     std::to_string(e) + ", got " +
                                     std::to_string(index));
    const auto count = read_arg<std::int64_t>(r, "event count");
    UAVCOV_CHECK_MSG(count >= 0, "event count must be nonnegative");
    expect_end(r);

    Epoch epoch;
    epoch.events.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      UAVCOV_CHECK_MSG(next_record(in, line),
                       "truncated epoch " + std::to_string(e));
      Record ev_r = parse_record(line);
      ChurnEvent ev;
      if (ev_r.key == "arrive") {
        ev.kind = ChurnKind::kArrive;
        ev.uid = read_arg<std::int64_t>(ev_r, "uid");
        ev.pos.x = read_arg<double>(ev_r, "x");
        ev.pos.y = read_arg<double>(ev_r, "y");
        ev.min_rate_bps = read_arg<double>(ev_r, "rate");
      } else if (ev_r.key == "depart") {
        ev.kind = ChurnKind::kDepart;
        ev.uid = read_arg<std::int64_t>(ev_r, "uid");
        ev.pos = {};
        ev.min_rate_bps = 0.0;
      } else if (ev_r.key == "move") {
        ev.kind = ChurnKind::kMove;
        ev.uid = read_arg<std::int64_t>(ev_r, "uid");
        ev.pos.x = read_arg<double>(ev_r, "x");
        ev.pos.y = read_arg<double>(ev_r, "y");
        ev.min_rate_bps = 0.0;
      } else {
        UAVCOV_CHECK_MSG(false, "unknown trace record: " + ev_r.key);
      }
      expect_end(ev_r);
      check_event_fields(ev, "text trace");
      epoch.events.push_back(ev);
    }
    trace.epochs.push_back(std::move(epoch));
  }
  UAVCOV_CHECK_MSG(!next_record(in, line),
                   "trailing record after the declared epochs: " + line);
  return trace;
}

// ---- binary format ------------------------------------------------------
//
// Same envelope as io/binary.cpp (whose helpers are deliberately
// file-local): header magic[8] + u32 version + u32 section count +
// u64 total size; 32-byte table entries (id, reserved, offset, size, FNV
// checksum); 8-byte-aligned payloads.

constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kEntryBytes = 32;
constexpr std::size_t kAlign = 8;

constexpr std::uint32_t kSecEpochCounts = 1;  // u64 E, then E u64 counts.
constexpr std::uint32_t kSecEvents = 2;       // 40-byte records, in order.
constexpr std::size_t kEventBytes = 40;       // kind,pad,uid,x,y,rate.

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t size) {
  Fnv1a h;
  for (std::size_t i = 0; i < size; ++i) h.mix_byte(data[i]);
  return h.digest();
}

std::size_t align_up(std::size_t at) {
  return (at + kAlign - 1) / kAlign * kAlign;
}

void save_trace_binary(std::ostream& out, const ChurnTrace& trace) {
  std::vector<std::uint8_t> counts(8 + 8 * trace.epochs.size());
  put_u64(counts.data(), static_cast<std::uint64_t>(trace.epochs.size()));
  std::size_t total_events = 0;
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    put_u64(counts.data() + 8 + 8 * e,
            static_cast<std::uint64_t>(trace.epochs[e].events.size()));
    total_events += trace.epochs[e].events.size();
  }

  std::vector<std::uint8_t> events(total_events * kEventBytes);
  std::size_t at = 0;
  for (const Epoch& epoch : trace.epochs) {
    for (const ChurnEvent& ev : epoch.events) {
      std::uint8_t* rec = events.data() + at;
      put_u32(rec, static_cast<std::uint32_t>(ev.kind));
      put_u32(rec + 4, 0);  // reserved.
      put_u64(rec + 8, static_cast<std::uint64_t>(ev.uid));
      put_u64(rec + 16, std::bit_cast<std::uint64_t>(ev.pos.x));
      put_u64(rec + 24, std::bit_cast<std::uint64_t>(ev.pos.y));
      put_u64(rec + 32, std::bit_cast<std::uint64_t>(ev.min_rate_bps));
      at += kEventBytes;
    }
  }

  const std::uint8_t* payloads[2] = {counts.data(), events.data()};
  const std::size_t sizes[2] = {counts.size(), events.size()};
  const std::uint32_t ids[2] = {kSecEpochCounts, kSecEvents};

  std::size_t offset = align_up(kHeaderBytes + 2 * kEntryBytes);
  std::size_t offsets[2];
  for (int i = 0; i < 2; ++i) {
    offsets[i] = offset;
    offset = align_up(offset + sizes[i]);
  }
  const std::size_t total = offsets[1] + sizes[1];
  std::vector<std::uint8_t> file(total, 0);
  std::memcpy(file.data(), kBinaryTraceMagic.data(), kMagicBytes);
  put_u32(file.data() + 8, kBinaryFormatVersion);
  put_u32(file.data() + 12, 2);
  put_u64(file.data() + 16, static_cast<std::uint64_t>(total));
  for (int i = 0; i < 2; ++i) {
    std::uint8_t* entry = file.data() + kHeaderBytes +
                          static_cast<std::size_t>(i) * kEntryBytes;
    put_u32(entry, ids[i]);
    put_u32(entry + 4, 0);
    put_u64(entry + 8, static_cast<std::uint64_t>(offsets[i]));
    put_u64(entry + 16, static_cast<std::uint64_t>(sizes[i]));
    put_u64(entry + 24, payload_checksum(payloads[i], sizes[i]));
    if (sizes[i] > 0) {
      std::memcpy(file.data() + offsets[i], payloads[i], sizes[i]);
    }
  }
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  UAVCOV_CHECK_MSG(out.good(), "failed writing binary trace");
}

ChurnTrace load_trace_binary(std::string_view data) {
  UAVCOV_CHECK_MSG(data.size() >= kHeaderBytes,
                   "binary trace: truncated header at byte offset " +
                       std::to_string(data.size()) + " (need " +
                       std::to_string(kHeaderBytes) + " bytes)");
  UAVCOV_CHECK_MSG(data.substr(0, kMagicBytes) == kBinaryTraceMagic,
                   "binary trace: bad magic");
  const std::uint8_t* raw =
      reinterpret_cast<const std::uint8_t*>(data.data());
  const std::uint32_t version = get_u32(raw + 8);
  UAVCOV_CHECK_MSG(version == kBinaryFormatVersion,
                   "binary trace: unsupported format version " +
                       std::to_string(version));
  const std::uint32_t count = get_u32(raw + 12);
  UAVCOV_CHECK_MSG(count == 2, "binary trace: expected 2 sections, got " +
                                   std::to_string(count));
  const std::uint64_t declared_size = get_u64(raw + 16);
  UAVCOV_CHECK_MSG(declared_size == data.size(),
                   "binary trace: declared size " +
                       std::to_string(declared_size) +
                       " (size field at byte offset 16) != actual " +
                       std::to_string(data.size()) + " (truncated?)");

  std::string_view sections[2];
  std::uint32_t ids[2];
  for (int i = 0; i < 2; ++i) {
    const std::size_t entry_offset =
        kHeaderBytes + static_cast<std::size_t>(i) * kEntryBytes;
    const std::uint8_t* entry = raw + entry_offset;
    ids[i] = get_u32(entry);
    const std::uint64_t offset = get_u64(entry + 8);
    const std::uint64_t size = get_u64(entry + 16);
    const std::uint64_t checksum = get_u64(entry + 24);
    UAVCOV_CHECK_MSG(offset <= data.size() && size <= data.size() - offset,
                     "binary trace: section " + std::to_string(ids[i]) +
                         " (table entry at byte offset " +
                         std::to_string(entry_offset) +
                         ") exceeds the file (bytes [" +
                         std::to_string(offset) + ", " +
                         std::to_string(offset) + "+" + std::to_string(size) +
                         ") in a " + std::to_string(data.size()) +
                         "-byte file)");
    sections[i] = data.substr(offset, size);
    UAVCOV_CHECK_MSG(
        payload_checksum(
            reinterpret_cast<const std::uint8_t*>(sections[i].data()),
            sections[i].size()) == checksum,
        "binary trace: checksum mismatch in section " +
            std::to_string(ids[i]));
  }
  UAVCOV_CHECK_MSG(ids[0] == kSecEpochCounts && ids[1] == kSecEvents,
                   "binary trace: unexpected section ids");

  const std::uint8_t* counts =
      reinterpret_cast<const std::uint8_t*>(sections[0].data());
  UAVCOV_CHECK_MSG(sections[0].size() >= 8,
                   "binary trace: truncated epoch-count section (" +
                       std::to_string(sections[0].size()) +
                       " bytes at byte offset " +
                       std::to_string(sections[0].data() - data.data()) +
                       ", need 8)");
  const std::uint64_t epoch_count = get_u64(counts);
  UAVCOV_CHECK_MSG(sections[0].size() == 8 + 8 * epoch_count,
                   "binary trace: epoch-count section at byte offset " +
                       std::to_string(sections[0].data() - data.data()) +
                       " has " + std::to_string(sections[0].size()) +
                       " bytes, but the declared epoch count needs " +
                       std::to_string(8 + 8 * epoch_count));

  ChurnTrace trace;
  trace.epochs.resize(static_cast<std::size_t>(epoch_count));
  std::uint64_t total_events = 0;
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    total_events += get_u64(counts + 8 + 8 * e);
  }
  UAVCOV_CHECK_MSG(sections[1].size() == total_events * kEventBytes,
                   "binary trace: event section at byte offset " +
                       std::to_string(sections[1].data() - data.data()) +
                       " has " + std::to_string(sections[1].size()) +
                       " bytes, but the declared event counts need " +
                       std::to_string(total_events * kEventBytes));

  const std::uint8_t* rec =
      reinterpret_cast<const std::uint8_t*>(sections[1].data());
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    const std::uint64_t n = get_u64(counts + 8 + 8 * e);
    Epoch& epoch = trace.epochs[static_cast<std::size_t>(e)];
    epoch.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i, rec += kEventBytes) {
      const std::uint32_t kind = get_u32(rec);
      UAVCOV_CHECK_MSG(kind <= 2, "binary trace: unknown event kind " +
                                      std::to_string(kind));
      ChurnEvent ev;
      ev.kind = static_cast<ChurnKind>(kind);
      ev.uid = static_cast<std::int64_t>(get_u64(rec + 8));
      ev.pos.x = std::bit_cast<double>(get_u64(rec + 16));
      ev.pos.y = std::bit_cast<double>(get_u64(rec + 24));
      ev.min_rate_bps = std::bit_cast<double>(get_u64(rec + 32));
      check_event_fields(ev, "binary trace");
      epoch.events.push_back(ev);
    }
  }
  return trace;
}

}  // namespace

void save_trace(std::ostream& out, const stream::ChurnTrace& trace,
                Format format) {
  if (format == Format::kBinary) {
    save_trace_binary(out, trace);
  } else {
    save_trace_text(out, trace);
  }
}

void save_trace_file(const std::string& path, const stream::ChurnTrace& trace,
                     Format format) {
  std::ofstream out;
  open_checked(out, path);
  save_trace(out, trace, format);
  UAVCOV_CHECK_MSG(out.good(), "failed writing trace to " + path);
}

stream::ChurnTrace load_trace(std::string_view bytes) {
  if (bytes.substr(0, kBinaryTraceMagic.size()) == kBinaryTraceMagic) {
    return load_trace_binary(bytes);
  }
  UAVCOV_CHECK_MSG(!has_binary_scenario_magic(bytes) &&
                       !has_binary_solution_magic(bytes),
                   "expected a churn trace but detected a binary uavcov "
                   "scenario/solution document");
  std::istringstream in{std::string(bytes)};
  return load_trace_text(in);
}

stream::ChurnTrace load_trace(std::istream& in) {
  return load_trace(std::string_view(slurp(in)));
}

stream::ChurnTrace load_trace_file(const std::string& path) {
  std::ifstream in;
  open_checked(in, path);
  return load_trace(in);
}

}  // namespace uavcov::io
