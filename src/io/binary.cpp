#include "io/binary.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fingerprint.hpp"
#include "obs/metrics.hpp"

namespace uavcov::io {

namespace {

// Load-path metrics (docs/OBSERVABILITY.md).  Counters only carry
// deterministic values (call and byte counts), so the bench identity gate
// can compare them exactly.
struct BinaryIoMetrics {
  obs::Counter loads = obs::counter("io.binary.loads");
  obs::Counter saves = obs::counter("io.binary.saves");
  obs::Counter bytes_read = obs::counter("io.binary.bytes_read");
  obs::Counter bytes_written = obs::counter("io.binary.bytes_written");
  obs::Histogram load_seconds = obs::histogram("io.binary.load_seconds");
};

const BinaryIoMetrics& binary_metrics() {
  static const BinaryIoMetrics metrics;
  return metrics;
}

constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kHeaderBytes = 24;   // magic + version + count + size.
constexpr std::size_t kEntryBytes = 32;    // id + reserved + off + size + sum.
constexpr std::size_t kAlign = 8;
constexpr std::uint32_t kMaxSections = 4096;

// Scenario section ids.
constexpr std::uint32_t kSecGeometry = 1;   // width,height,cell,alt,range.
constexpr std::uint32_t kSecChannel = 2;    // carrier,a,b,eta_los,eta_nlos.
constexpr std::uint32_t kSecReceiver = 3;   // noise,bandwidth.
constexpr std::uint32_t kSecUserX = 4;
constexpr std::uint32_t kSecUserY = 5;
constexpr std::uint32_t kSecUserRate = 6;
constexpr std::uint32_t kSecUavCapacity = 7;
constexpr std::uint32_t kSecUavTx = 8;
constexpr std::uint32_t kSecUavGain = 9;
constexpr std::uint32_t kSecUavRange = 10;

// Solution section ids.
constexpr std::uint32_t kSecAlgorithm = 1;
constexpr std::uint32_t kSecMeta = 2;       // served i64, solve_seconds f64.
constexpr std::uint32_t kSecDeployUav = 3;
constexpr std::uint32_t kSecDeployLoc = 4;
constexpr std::uint32_t kSecAssignment = 5;

constexpr bool kHostLittleEndian = std::endian::native == std::endian::little;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t payload_checksum(std::string_view bytes) {
  Fnv1a h;
  for (const char c : bytes) h.mix_byte(static_cast<std::uint8_t>(c));
  return h.digest();
}

using Payload = std::vector<std::uint8_t>;

void append_doubles(Payload& out, const double* data, std::size_t count) {
  const std::size_t at = out.size();
  out.resize(at + count * sizeof(double));
  if constexpr (kHostLittleEndian) {
    if (count > 0) std::memcpy(out.data() + at, data, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      put_u64(out.data() + at + i * 8, std::bit_cast<std::uint64_t>(data[i]));
    }
  }
}

void append_i32s(Payload& out, const std::int32_t* data, std::size_t count) {
  const std::size_t at = out.size();
  out.resize(at + count * sizeof(std::int32_t));
  if constexpr (kHostLittleEndian) {
    if (count > 0) {
      std::memcpy(out.data() + at, data, count * sizeof(std::int32_t));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      put_u32(out.data() + at + i * 4,
              static_cast<std::uint32_t>(data[i]));
    }
  }
}

void append_double(Payload& out, double v) { append_doubles(out, &v, 1); }

struct Section {
  std::uint32_t id = 0;
  Payload bytes;
};

std::size_t align_up(std::size_t at) {
  return (at + kAlign - 1) / kAlign * kAlign;
}

/// Assembles header + table + aligned payloads into one buffer and writes
/// it with a single out.write.
void write_document(std::ostream& out, std::string_view magic,
                    const std::vector<Section>& sections) {
  std::size_t at = align_up(kHeaderBytes + sections.size() * kEntryBytes);
  std::vector<std::size_t> offsets;
  offsets.reserve(sections.size());
  for (const Section& s : sections) {
    offsets.push_back(at);
    at = align_up(at + s.bytes.size());
  }
  // Total size is the end of the last payload, unpadded.
  const std::size_t total =
      sections.empty()
          ? kHeaderBytes
          : offsets.back() + sections.back().bytes.size();
  std::vector<std::uint8_t> file(total, 0);
  std::memcpy(file.data(), magic.data(), kMagicBytes);
  put_u32(file.data() + 8, kBinaryFormatVersion);
  put_u32(file.data() + 12, static_cast<std::uint32_t>(sections.size()));
  put_u64(file.data() + 16, static_cast<std::uint64_t>(total));
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::uint8_t* entry = file.data() + kHeaderBytes + i * kEntryBytes;
    put_u32(entry, sections[i].id);
    put_u32(entry + 4, 0);  // reserved.
    put_u64(entry + 8, static_cast<std::uint64_t>(offsets[i]));
    put_u64(entry + 16, static_cast<std::uint64_t>(sections[i].bytes.size()));
    put_u64(entry + 24,
            payload_checksum({reinterpret_cast<const char*>(
                                  sections[i].bytes.data()),
                              sections[i].bytes.size()}));
    if (!sections[i].bytes.empty()) {
      std::memcpy(file.data() + offsets[i], sections[i].bytes.data(),
                  sections[i].bytes.size());
    }
  }
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  UAVCOV_CHECK_MSG(out.good(), "failed writing binary document");
  binary_metrics().saves.inc();
  binary_metrics().bytes_written.inc(static_cast<std::int64_t>(file.size()));
}

struct SectionView {
  std::uint32_t id = 0;
  std::string_view bytes;
};

/// Validates the header and section table of an in-memory document and
/// verifies every checksum.  `what` names the expected document kind in
/// error messages; a recognizable magic of the *other* kind produces a
/// specific error so a solution handed to the scenario loader (or vice
/// versa) fails by name, not by "bad magic".
std::vector<SectionView> parse_document(std::string_view data,
                                        std::string_view magic,
                                        const std::string& what) {
  UAVCOV_CHECK_MSG(data.size() >= kHeaderBytes,
                   "binary " + what + ": truncated header at byte offset " +
                       std::to_string(data.size()) + " (need " +
                       std::to_string(kHeaderBytes) + " bytes)");
  if (data.substr(0, kMagicBytes) != magic) {
    const std::string_view other = (magic == kBinaryScenarioMagic)
                                       ? kBinarySolutionMagic
                                       : kBinaryScenarioMagic;
    UAVCOV_CHECK_MSG(data.substr(0, kMagicBytes) != other,
                     "binary " + what + ": input is a binary uavcov " +
                         (magic == kBinaryScenarioMagic ? "solution"
                                                        : "scenario") +
                         ", not a " + what);
    UAVCOV_CHECK_MSG(false, "binary " + what + ": bad magic");
  }
  const std::uint8_t* raw =
      reinterpret_cast<const std::uint8_t*>(data.data());
  const std::uint32_t version = get_u32(raw + 8);
  UAVCOV_CHECK_MSG(version == kBinaryFormatVersion,
                   "binary " + what + ": unsupported format version " +
                       std::to_string(version) + " (reader supports " +
                       std::to_string(kBinaryFormatVersion) + ")");
  const std::uint32_t count = get_u32(raw + 12);
  UAVCOV_CHECK_MSG(count <= kMaxSections,
                   "binary " + what + ": unreasonable section count " +
                       std::to_string(count));
  const std::uint64_t declared_size = get_u64(raw + 16);
  UAVCOV_CHECK_MSG(declared_size == data.size(),
                   "binary " + what + ": declared size " +
                       std::to_string(declared_size) +
                       " (size field at byte offset 16) != actual " +
                       std::to_string(data.size()) + " (truncated?)");
  const std::size_t table_end = kHeaderBytes + count * kEntryBytes;
  UAVCOV_CHECK_MSG(table_end <= data.size(),
                   "binary " + what +
                       ": section table ends at byte offset " +
                       std::to_string(table_end) + " but the file is " +
                       std::to_string(data.size()) + " bytes");

  std::vector<SectionView> sections;
  sections.reserve(count);
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry_offset = kHeaderBytes + i * kEntryBytes;
    const std::uint8_t* entry = raw + entry_offset;
    SectionView s;
    s.id = get_u32(entry);
    const std::uint64_t offset = get_u64(entry + 8);
    const std::uint64_t size = get_u64(entry + 16);
    const std::uint64_t checksum = get_u64(entry + 24);
    const std::string where = "binary " + what + " section " +
                              std::to_string(s.id) +
                              " (table entry at byte offset " +
                              std::to_string(entry_offset) + ")";
    UAVCOV_CHECK_MSG(seen.insert(s.id).second, where + ": duplicate id");
    UAVCOV_CHECK_MSG(offset % kAlign == 0,
                     where + ": unaligned offset " + std::to_string(offset));
    UAVCOV_CHECK_MSG(offset >= table_end && size <= data.size() &&
                         offset <= data.size() - size,
                     where + ": payload out of bounds (bytes [" +
                         std::to_string(offset) + ", " +
                         std::to_string(offset) + "+" + std::to_string(size) +
                         ") in a " + std::to_string(data.size()) +
                         "-byte file)");
    s.bytes = data.substr(static_cast<std::size_t>(offset),
                          static_cast<std::size_t>(size));
    UAVCOV_CHECK_MSG(payload_checksum(s.bytes) == checksum,
                     where + ": checksum mismatch (corrupt payload)");
    sections.push_back(s);
  }
  return sections;
}

const SectionView& require_section(const std::vector<SectionView>& sections,
                                   std::uint32_t id, const std::string& what,
                                   const char* name) {
  for (const SectionView& s : sections) {
    if (s.id == id) return s;
  }
  UAVCOV_CHECK_MSG(false, "binary " + what + ": missing required section " +
                              name);
  // Unreachable; UAVCOV_CHECK_MSG throws.
  std::abort();
}

void require_known_ids(const std::vector<SectionView>& sections,
                       std::uint32_t max_id, const std::string& what) {
  for (const SectionView& s : sections) {
    UAVCOV_CHECK_MSG(s.id >= 1 && s.id <= max_id,
                     "binary " + what + ": unknown section id " +
                         std::to_string(s.id));
  }
}

std::vector<double> read_doubles(const SectionView& s,
                                 const std::string& what, const char* name) {
  UAVCOV_CHECK_MSG(s.bytes.size() % sizeof(double) == 0,
                   "binary " + what + " section " + name +
                       ": size is not a multiple of 8");
  const std::size_t count = s.bytes.size() / sizeof(double);
  std::vector<double> out(count);
  if constexpr (kHostLittleEndian) {
    if (count > 0) std::memcpy(out.data(), s.bytes.data(), s.bytes.size());
  } else {
    const std::uint8_t* raw =
        reinterpret_cast<const std::uint8_t*>(s.bytes.data());
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = std::bit_cast<double>(get_u64(raw + i * 8));
    }
  }
  return out;
}

std::vector<std::int32_t> read_i32s(const SectionView& s,
                                    const std::string& what,
                                    const char* name) {
  UAVCOV_CHECK_MSG(s.bytes.size() % sizeof(std::int32_t) == 0,
                   "binary " + what + " section " + name +
                       ": size is not a multiple of 4");
  const std::size_t count = s.bytes.size() / sizeof(std::int32_t);
  std::vector<std::int32_t> out(count);
  if constexpr (kHostLittleEndian) {
    if (count > 0) std::memcpy(out.data(), s.bytes.data(), s.bytes.size());
  } else {
    const std::uint8_t* raw =
        reinterpret_cast<const std::uint8_t*>(s.bytes.data());
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = static_cast<std::int32_t>(get_u32(raw + i * 4));
    }
  }
  return out;
}

std::vector<double> read_fixed_doubles(const SectionView& s,
                                       std::size_t count,
                                       const std::string& what,
                                       const char* name) {
  UAVCOV_CHECK_MSG(s.bytes.size() == count * sizeof(double),
                   "binary " + what + " section " + name + ": expected " +
                       std::to_string(count * sizeof(double)) +
                       " bytes, got " + std::to_string(s.bytes.size()));
  return read_doubles(s, what, name);
}

/// One large read of the remaining stream — the binary loaders work from
/// an in-memory image.
std::string slurp(std::istream& in) {
  std::string data;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    data.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return data;
}

}  // namespace

bool has_binary_scenario_magic(std::string_view bytes) {
  return bytes.substr(0, kMagicBytes) == kBinaryScenarioMagic;
}

bool has_binary_solution_magic(std::string_view bytes) {
  return bytes.substr(0, kMagicBytes) == kBinarySolutionMagic;
}

void save_scenario_binary(std::ostream& out, const Scenario& scenario) {
  const std::size_t n = scenario.users.size();
  const std::size_t K = scenario.fleet.size();
  std::vector<Section> sections;
  sections.reserve(10);

  Section geometry{kSecGeometry, {}};
  append_double(geometry.bytes, scenario.grid.width());
  append_double(geometry.bytes, scenario.grid.height());
  append_double(geometry.bytes, scenario.grid.cell_side());
  append_double(geometry.bytes, scenario.altitude_m);
  append_double(geometry.bytes, scenario.uav_range_m);
  sections.push_back(std::move(geometry));

  Section channel{kSecChannel, {}};
  append_double(channel.bytes, scenario.channel.carrier_hz);
  append_double(channel.bytes, scenario.channel.environment.a);
  append_double(channel.bytes, scenario.channel.environment.b);
  append_double(channel.bytes, scenario.channel.environment.eta_los_db);
  append_double(channel.bytes, scenario.channel.environment.eta_nlos_db);
  sections.push_back(std::move(channel));

  Section receiver{kSecReceiver, {}};
  append_double(receiver.bytes, scenario.receiver.noise_dbm);
  append_double(receiver.bytes, scenario.receiver.bandwidth_hz);
  sections.push_back(std::move(receiver));

  // User columns (SoA on disk, mirroring FlatScenario's layout in memory).
  std::vector<double> column(n);
  for (std::size_t i = 0; i < n; ++i) column[i] = scenario.users.raw()[i].pos.x;
  Section user_x{kSecUserX, {}};
  append_doubles(user_x.bytes, column.data(), n);
  sections.push_back(std::move(user_x));
  for (std::size_t i = 0; i < n; ++i) column[i] = scenario.users.raw()[i].pos.y;
  Section user_y{kSecUserY, {}};
  append_doubles(user_y.bytes, column.data(), n);
  sections.push_back(std::move(user_y));
  for (std::size_t i = 0; i < n; ++i) {
    column[i] = scenario.users.raw()[i].min_rate_bps;
  }
  Section user_rate{kSecUserRate, {}};
  append_doubles(user_rate.bytes, column.data(), n);
  sections.push_back(std::move(user_rate));

  std::vector<std::int32_t> capacity(K);
  std::vector<double> tx(K);
  std::vector<double> gain(K);
  std::vector<double> range(K);
  for (std::size_t k = 0; k < K; ++k) {
    const UavSpec& u = scenario.fleet.raw()[k];
    capacity[k] = u.capacity;
    tx[k] = u.radio.tx_power_dbm;
    gain[k] = u.radio.antenna_gain_dbi;
    range[k] = u.user_range_m;
  }
  Section uav_capacity{kSecUavCapacity, {}};
  append_i32s(uav_capacity.bytes, capacity.data(), K);
  sections.push_back(std::move(uav_capacity));
  Section uav_tx{kSecUavTx, {}};
  append_doubles(uav_tx.bytes, tx.data(), K);
  sections.push_back(std::move(uav_tx));
  Section uav_gain{kSecUavGain, {}};
  append_doubles(uav_gain.bytes, gain.data(), K);
  sections.push_back(std::move(uav_gain));
  Section uav_range{kSecUavRange, {}};
  append_doubles(uav_range.bytes, range.data(), K);
  sections.push_back(std::move(uav_range));

  write_document(out, kBinaryScenarioMagic, sections);
}

Scenario load_scenario_binary(std::string_view bytes) {
  const obs::ScopedTimer timer(binary_metrics().load_seconds);
  const std::string what = "scenario";
  const std::vector<SectionView> sections =
      parse_document(bytes, kBinaryScenarioMagic, what);
  require_known_ids(sections, kSecUavRange, what);

  const std::vector<double> geometry = read_fixed_doubles(
      require_section(sections, kSecGeometry, what, "geometry"), 5, what,
      "geometry");
  const std::vector<double> channel = read_fixed_doubles(
      require_section(sections, kSecChannel, what, "channel"), 5, what,
      "channel");
  const std::vector<double> receiver = read_fixed_doubles(
      require_section(sections, kSecReceiver, what, "receiver"), 2, what,
      "receiver");
  const std::vector<double> user_x = read_doubles(
      require_section(sections, kSecUserX, what, "user_x"), what, "user_x");
  const std::vector<double> user_y = read_doubles(
      require_section(sections, kSecUserY, what, "user_y"), what, "user_y");
  const std::vector<double> user_rate =
      read_doubles(require_section(sections, kSecUserRate, what, "user_rate"),
                   what, "user_rate");
  const std::vector<std::int32_t> capacity = read_i32s(
      require_section(sections, kSecUavCapacity, what, "uav_capacity"), what,
      "uav_capacity");
  const std::vector<double> tx = read_doubles(
      require_section(sections, kSecUavTx, what, "uav_tx"), what, "uav_tx");
  const std::vector<double> gain =
      read_doubles(require_section(sections, kSecUavGain, what, "uav_gain"),
                   what, "uav_gain");
  const std::vector<double> range =
      read_doubles(require_section(sections, kSecUavRange, what, "uav_range"),
                   what, "uav_range");

  UAVCOV_CHECK_MSG(
      user_x.size() == user_y.size() && user_x.size() == user_rate.size(),
      "binary scenario: user column lengths differ");
  UAVCOV_CHECK_MSG(capacity.size() == tx.size() &&
                       capacity.size() == gain.size() &&
                       capacity.size() == range.size(),
                   "binary scenario: UAV column lengths differ");

  Scenario result{
      .grid = Grid(geometry[0], geometry[1], geometry[2]),
      .altitude_m = geometry[3],
      .uav_range_m = geometry[4],
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  result.channel.carrier_hz = channel[0];
  result.channel.environment.a = channel[1];
  result.channel.environment.b = channel[2];
  result.channel.environment.eta_los_db = channel[3];
  result.channel.environment.eta_nlos_db = channel[4];
  result.receiver.noise_dbm = receiver[0];
  result.receiver.bandwidth_hz = receiver[1];
  result.users.reserve(user_x.size());
  for (std::size_t i = 0; i < user_x.size(); ++i) {
    result.users.push_back({{user_x[i], user_y[i]}, user_rate[i]});
  }
  result.fleet.reserve(capacity.size());
  for (std::size_t k = 0; k < capacity.size(); ++k) {
    result.fleet.push_back({capacity[k], {tx[k], gain[k]}, range[k]});
  }
  result.validate();
  binary_metrics().loads.inc();
  binary_metrics().bytes_read.inc(static_cast<std::int64_t>(bytes.size()));
  return result;
}

Scenario load_scenario_binary(std::istream& in) {
  return load_scenario_binary(std::string_view(slurp(in)));
}

void save_solution_binary(std::ostream& out, const Solution& solution) {
  std::vector<Section> sections;
  sections.reserve(5);

  Section algorithm{kSecAlgorithm, {}};
  algorithm.bytes.assign(solution.algorithm.begin(), solution.algorithm.end());
  sections.push_back(std::move(algorithm));

  Section meta{kSecMeta, {}};
  meta.bytes.resize(8);
  put_u64(meta.bytes.data(),
          static_cast<std::uint64_t>(solution.served));
  append_double(meta.bytes, solution.solve_seconds);
  sections.push_back(std::move(meta));

  const std::size_t deployment_count = solution.deployments.size();
  std::vector<std::int32_t> uav(deployment_count);
  std::vector<std::int32_t> loc(deployment_count);
  for (std::size_t d = 0; d < deployment_count; ++d) {
    uav[d] = solution.deployments[d].uav.value();
    loc[d] = solution.deployments[d].loc.value();
  }
  Section deploy_uav{kSecDeployUav, {}};
  append_i32s(deploy_uav.bytes, uav.data(), deployment_count);
  sections.push_back(std::move(deploy_uav));
  Section deploy_loc{kSecDeployLoc, {}};
  append_i32s(deploy_loc.bytes, loc.data(), deployment_count);
  sections.push_back(std::move(deploy_loc));

  Section assignment{kSecAssignment, {}};
  append_i32s(assignment.bytes, solution.user_to_deployment.data(),
              solution.user_to_deployment.size());
  sections.push_back(std::move(assignment));

  write_document(out, kBinarySolutionMagic, sections);
}

Solution load_solution_binary(std::string_view bytes,
                              std::int32_t user_count) {
  UAVCOV_CHECK_MSG(user_count >= 0, "user count must be nonnegative");
  const obs::ScopedTimer timer(binary_metrics().load_seconds);
  const std::string what = "solution";
  const std::vector<SectionView> sections =
      parse_document(bytes, kBinarySolutionMagic, what);
  require_known_ids(sections, kSecAssignment, what);

  const SectionView& algorithm =
      require_section(sections, kSecAlgorithm, what, "algorithm");
  const SectionView& meta = require_section(sections, kSecMeta, what, "meta");
  UAVCOV_CHECK_MSG(meta.bytes.size() == 16,
                   "binary solution section meta: expected 16 bytes, got " +
                       std::to_string(meta.bytes.size()));
  const std::vector<std::int32_t> uav = read_i32s(
      require_section(sections, kSecDeployUav, what, "deploy_uav"), what,
      "deploy_uav");
  const std::vector<std::int32_t> loc = read_i32s(
      require_section(sections, kSecDeployLoc, what, "deploy_loc"), what,
      "deploy_loc");
  const std::vector<std::int32_t> assignment = read_i32s(
      require_section(sections, kSecAssignment, what, "assignment"), what,
      "assignment");
  UAVCOV_CHECK_MSG(uav.size() == loc.size(),
                   "binary solution: deployment column lengths differ");
  UAVCOV_CHECK_MSG(
      assignment.size() == static_cast<std::size_t>(user_count),
      "binary solution: assignment column has " +
          std::to_string(assignment.size()) + " users, expected " +
          std::to_string(user_count));

  Solution solution;
  solution.algorithm.assign(algorithm.bytes.begin(), algorithm.bytes.end());
  const std::uint8_t* meta_raw =
      reinterpret_cast<const std::uint8_t*>(meta.bytes.data());
  solution.served = static_cast<std::int64_t>(get_u64(meta_raw));
  UAVCOV_CHECK_MSG(solution.served >= 0, "served must be nonnegative");
  solution.solve_seconds = std::bit_cast<double>(get_u64(meta_raw + 8));

  const auto deployment_count = static_cast<std::int32_t>(uav.size());
  solution.deployments.reserve(uav.size());
  for (std::size_t d = 0; d < uav.size(); ++d) {
    const Deployment dep{UavId{uav[d]}, LocationId{loc[d]}};
    UAVCOV_CHECK_MSG(dep.uav.valid(),
                     "deployment UAV id must be nonnegative");
    UAVCOV_CHECK_MSG(dep.loc.valid(),
                     "deployment location must be nonnegative");
    solution.deployments.push_back(dep);
  }
  solution.user_to_deployment = assignment;
  for (const UserId u : solution.user_to_deployment.ids()) {
    const std::int32_t dep = solution.user_to_deployment[u];
    UAVCOV_CHECK_MSG(dep >= -1 && dep < deployment_count,
                     "assignment for user " + std::to_string(u.value()) +
                         " references nonexistent deployment " +
                         std::to_string(dep));
  }
  binary_metrics().loads.inc();
  binary_metrics().bytes_read.inc(static_cast<std::int64_t>(bytes.size()));
  return solution;
}

Solution load_solution_binary(std::istream& in, std::int32_t user_count) {
  return load_solution_binary(std::string_view(slurp(in)), user_count);
}

}  // namespace uavcov::io
