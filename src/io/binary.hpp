// Versioned binary persistence for scenarios and solutions — the
// million-user load path.
//
// The text format (io/serialize.hpp) parses one record per line, which is
// the right tool for diffable fixtures but costs a strtod per field; at
// 10^6+ users load time dominates before the solver starts.  The binary
// format is column-oriented and validated, then loaded with bulk copies:
//
//   header   magic[8] ("UAVCBIN1" scenario / "UAVCSOL1" solution)
//            u32 schema version (currently 1)   u32 section count
//            u64 total file size
//   table    per section: u32 id, u32 reserved(0), u64 payload offset,
//            u64 payload size, u64 FNV-1a checksum of the payload bytes
//   payload  8-byte-aligned little-endian sections (zero-padded between)
//
// Scenario sections are the SoA columns (user x / y / min-rate arrays, UAV
// capacity / tx / gain / range arrays) plus fixed-size geometry / channel /
// receiver blocks; solution sections are the deployment and assignment
// id arrays.  A loader reads the whole stream once, verifies magic,
// version, table bounds, and every checksum, then reconstructs the arrays
// with memcpy on little-endian hosts (per-element decode otherwise) — zero
// per-record parsing.  Save → load → save is byte-identical and a
// text↔binary round trip preserves Scenario::fingerprint() exactly, since
// doubles travel as their IEEE-754 bits in both directions.
//
// Versioning policy (docs/FORMATS.md): the magic pins the format family,
// the schema version gates incompatible layout changes (a reader rejects
// versions it does not know), and unknown section ids are an error — this
// format carries solver inputs, so silent partial loads are worse than
// hard failures.
//
// Callers normally go through the format-agnostic io::load_scenario /
// io::save_scenario entry points (io/serialize.hpp), which sniff the magic
// and dispatch here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "core/scenario.hpp"
#include "core/solution.hpp"

namespace uavcov::io {

inline constexpr std::string_view kBinaryScenarioMagic = "UAVCBIN1";
inline constexpr std::string_view kBinarySolutionMagic = "UAVCSOL1";
inline constexpr std::uint32_t kBinaryFormatVersion = 1;

/// True if `bytes` begin with the binary scenario / solution magic —
/// the sniff the format-agnostic loaders dispatch on.
bool has_binary_scenario_magic(std::string_view bytes);
bool has_binary_solution_magic(std::string_view bytes);

void save_scenario_binary(std::ostream& out, const Scenario& scenario);

/// Loads a binary scenario; throws ContractError on anything malformed:
/// wrong or truncated magic, unsupported schema version, a section table
/// that exceeds the file, overlapping / unaligned / out-of-bounds
/// sections, checksum mismatches, duplicate or unknown section ids,
/// missing required sections, array sections whose size is not a multiple
/// of the element size, and column length mismatches.  The reconstructed
/// scenario is re-validated like any other load.
Scenario load_scenario_binary(std::istream& in);
/// Same, from an in-memory image (the single large read already done).
Scenario load_scenario_binary(std::string_view bytes);

void save_solution_binary(std::ostream& out, const Solution& solution);

/// Loads a binary solution; `user_count` must match the assignment
/// column's length.  Performs the same referential-integrity checks as the
/// text loader (ids in range, no assignment to a nonexistent deployment).
Solution load_solution_binary(std::istream& in, std::int32_t user_count);
Solution load_solution_binary(std::string_view bytes,
                              std::int32_t user_count);

}  // namespace uavcov::io
