// Self-healing repair controller (docs/RESILIENCE.md).
//
// Reacting to every fault with a full Algorithm 2 re-solve would be both
// slow (seconds at scale) and disruptive (the whole fleet may relocate).
// This controller mirrors RedeployController's hysteresis: after each
// fault it first attempts *local repair* —
//
//   1. drop the failed UAV's deployment;
//   2. if the survivors' mesh is disconnected, re-stitch it: plan relay
//      cells with the solver's own MST stitching (core/relay.hpp) and
//      re-task the lowest-marginal-value survivors onto them (the UAVs
//      whose loss of coverage duty costs the fewest served users);
//   3. if stitching is impossible (survivors mutually unreachable), fall
//      back to the best surviving component and spend the cut-off UAVs as
//      greedy frontier reinforcements (the fill_leftover_uavs idiom);
//   4. re-run the optimal assignment (Lemma 1) and, optionally, a bounded
//      refine_solution pass —
//
// and escalates to a full approAlg re-solve on the degraded instance only
// when the repaired coverage falls below `local_repair_floor` of the last
// full solve's served count, or on gateway loss (local stitching cannot
// restore the Fig. 1 backhaul).  Full re-solves run under
// RepairPolicy::appro, so ApproAlgParams::time_budget_s bounds repair
// latency in emergency operation.
//
// Every solution the controller emits is §II-C feasible for the *degraded*
// instance (fewer users served, never an invalid network), and — because
// degradation only shrinks ranges and removes UAVs — feasible for the
// original instance too.  With UAVCOV_AUDIT=1 (or RepairPolicy::audit)
// each emitted solution must additionally pass the deep
// analysis/audit.hpp solution audit, mid-repair included.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/appro_alg.hpp"
#include "core/coverage.hpp"
#include "core/scenario.hpp"
#include "core/solution.hpp"
#include "resilience/fault_plan.hpp"

namespace uavcov::resilience {

/// Escalation helper shared by RepairController and the mission service's
/// supervisor (docs/SERVICE.md): a copy of `base` whose time_budget_s is
/// the budget *remaining* after `elapsed_s` already spent on earlier work
/// (local repair, failed attempts).  An unbudgeted base (0) passes through
/// unchanged — bit-identical to the pre-deadline behavior; a bound budget
/// never drops below a small floor so the solve still evaluates at least
/// one subset instead of failing validation.
ApproAlgParams with_remaining_budget(const ApproAlgParams& base,
                                     double elapsed_s);

struct RepairPolicy {
  /// Escalate to a full re-solve when local repair serves fewer than this
  /// fraction of the served count at the last full solve.  Must be in
  /// (0, 1] — shared validation with RedeployPolicy
  /// (validate_unit_threshold, core/redeploy.hpp).
  double local_repair_floor = 0.7;
  /// Gateway loss always escalates (local stitching cannot restore the
  /// backhaul); set false to measure what local repair alone would do.
  bool escalate_on_gateway_loss = true;
  /// refine_solution rounds after a successful local repair (0 = skip).
  std::int32_t refine_rounds = 2;
  /// Force the deep audits even without UAVCOV_AUDIT.
  bool audit = false;
  /// Parameters for full re-solves; time_budget_s bounds repair latency.
  ApproAlgParams appro{};

  /// Throws std::invalid_argument on out-of-domain fields.
  void validate() const;
};

enum class RepairAction : std::int32_t {
  kNone = 0,         ///< fault was a no-op (UAV already down / not deployed).
  kLocal = 1,        ///< local repair accepted.
  kFullResolve = 2,  ///< escalated to approAlg on the degraded instance.
};

const char* to_string(RepairAction action);

struct RepairOutcome {
  RepairAction action = RepairAction::kNone;
  FaultKind kind = FaultKind::kCrash;
  std::int64_t served_before = 0;  ///< served right before this fault.
  std::int64_t served_after = 0;   ///< served by the emitted solution.
  std::int32_t retasked = 0;   ///< survivors moved to new cells (incl. any
                               ///< spare redeployed by the fallback path).
  std::int32_t dropped = 0;    ///< surviving deployments abandoned.
  bool deadline_hit = false;   ///< full re-solve hit its time budget.
  double seconds = 0.0;        ///< wall clock of on_fault.
};

class RepairController {
 public:
  /// `scenario` must outlive the controller.
  RepairController(const Scenario& scenario, RepairPolicy policy);

  /// Solve the initial deployment with policy.appro on the intact
  /// instance.  Returns the adopted solution.
  const Solution& deploy();

  /// Adopt an externally produced standing solution (must be feasible for
  /// the intact scenario); the controller treats it as its last full
  /// solve for hysteresis purposes.
  void adopt(Solution solution);

  /// Apply one fault event and repair.  Events must arrive in plan order
  /// (times nondecreasing); the controller does not inspect time_s.
  RepairOutcome on_fault(const FaultEvent& event);

  /// Convenience: deploy() if nothing is standing, then on_fault for each
  /// event of `plan` in order.  Returns one outcome per event.
  std::vector<RepairOutcome> run(const FaultPlan& plan);

  /// Current solution in original-fleet terms: feasible for the original
  /// scenario; deployments reference original UAV ids.
  const Solution& current() const { return solution_; }

  /// The instance as degraded so far: failed UAVs removed from the fleet,
  /// ranges scaled.  Only valid while >= 1 UAV is alive.
  const Scenario& degraded_scenario() const { return degraded_; }

  std::int32_t alive_count() const;
  std::int32_t local_repairs() const { return local_repairs_; }
  std::int32_t full_solves() const { return full_solves_; }

 private:
  void rebuild_degraded();
  /// In-place local repair of `solution` (degraded-id terms).  Returns
  /// false when the mesh could not be fully reconnected and the fallback
  /// component drop ran instead (the result is still feasible).
  bool repair_locally(Solution& solution, RepairOutcome& outcome);
  void audit_emitted(const Solution& degraded_solution,
                     const char* subject) const;
  void store(Solution degraded_solution);

  const Scenario& scenario_;
  RepairPolicy policy_;
  Scenario degraded_;                      ///< fleet filtered, ranges scaled.
  std::optional<CoverageModel> coverage_;  ///< over degraded_.
  IdVector<UavTag, bool> alive_;           ///< by original UAV id.
  double range_scale_ = 1.0;
  /// Degraded instances renumber the surviving fleet densely; these two
  /// maps translate between the spaces.  Both sides are UavIds of
  /// *different* scenarios, so the maps are the only sanctioned crossing.
  IdVector<UavTag, UavId> to_original_;    ///< degraded id -> original id.
  IdVector<UavTag, UavId> from_original_;  ///< original -> degraded/invalid.
  Solution solution_;                 ///< original-id terms (public view).
  std::int64_t served_at_last_solve_ = -1;
  std::int32_t local_repairs_ = 0;
  std::int32_t full_solves_ = 0;
};

}  // namespace uavcov::resilience
