#include "resilience/impact.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/assignment.hpp"
#include "graph/articulation.hpp"
#include "graph/dsu.hpp"
#include "graph/graph.hpp"

namespace uavcov::resilience {

namespace {

/// True when UAVs at these two cells can hear each other (same altitude,
/// so the link length is the ground distance between cell centers —
/// matching validate_solution's connectivity rule).
bool linked(const Scenario& scenario, LocationId a, LocationId b,
            double range_m) {
  return distance(scenario.grid.center(a), scenario.grid.center(b)) <=
         range_m;
}

}  // namespace

ImpactReport analyze_impact(const Scenario& scenario,
                            const Solution& solution, const FaultPlan& plan) {
  plan.validate(scenario);
  ImpactReport report;

  const std::vector<Deployment>& deps = solution.deployments;
  const std::int32_t n = static_cast<std::int32_t>(deps.size());

  // Single points of failure of the intact network: articulation points
  // of the deployment graph, mapped back to fleet ids.
  {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (std::int32_t i = 0; i < n; ++i) {
      for (std::int32_t j = i + 1; j < n; ++j) {
        if (linked(scenario, deps[static_cast<std::size_t>(i)].loc,
                   deps[static_cast<std::size_t>(j)].loc,
                   scenario.uav_range_m)) {
          edges.emplace_back(i, j);
        }
      }
    }
    const Graph g = Graph::from_edges(n, edges);
    for (NodeId v : articulation_points(g)) {
      report.single_points_of_failure.push_back(
          deps[static_cast<std::size_t>(v)].uav);
    }
    std::sort(report.single_points_of_failure.begin(),
              report.single_points_of_failure.end());
  }

  // Walk the events, accumulating losses; nothing is repaired.
  std::vector<bool> alive(static_cast<std::size_t>(scenario.uav_count()),
                          true);
  double range_scale = 1.0;
  // Degraded instance for the "served_remaining" assignments: the range
  // scale shrinks both the mesh range and (to keep R_user <= R_uav, the
  // §II-B invariant) the user service radii.  Rebuilt only when the scale
  // actually changes — coverage is the expensive part.
  Scenario degraded = scenario;
  std::optional<CoverageModel> coverage;
  coverage.emplace(degraded);
  double built_scale = 1.0;

  report.events.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kLinkDegrade) {
      range_scale *= e.range_scale;
    } else {
      alive[e.uav.index()] = false;
    }
    if (range_scale != built_scale) {
      degraded.uav_range_m = scenario.uav_range_m * range_scale;
      for (const UavId k : degraded.fleet.ids()) {
        degraded.fleet[k].user_range_m = std::min(
            scenario.fleet[k].user_range_m, degraded.uav_range_m);
      }
      coverage.emplace(degraded);
      built_scale = range_scale;
    }

    EventImpact impact;
    impact.event = e;
    std::vector<std::int32_t> survivors;  // indices into deps
    for (std::int32_t i = 0; i < n; ++i) {
      if (alive[deps[static_cast<std::size_t>(i)].uav.index()]) {
        survivors.push_back(i);
      }
    }
    impact.deployments_alive = static_cast<std::int32_t>(survivors.size());

    if (!survivors.empty()) {
      Dsu dsu(static_cast<std::int32_t>(survivors.size()));
      for (std::size_t a = 0; a < survivors.size(); ++a) {
        for (std::size_t b = a + 1; b < survivors.size(); ++b) {
          if (linked(degraded,
                     deps[static_cast<std::size_t>(survivors[a])].loc,
                     deps[static_cast<std::size_t>(survivors[b])].loc,
                     degraded.uav_range_m)) {
            dsu.unite(static_cast<std::int32_t>(a),
                      static_cast<std::int32_t>(b));
          }
        }
      }
      impact.components = dsu.component_count();

      // Group survivors by DSU root, in first-member order (deterministic).
      std::vector<std::pair<std::int32_t, std::vector<Deployment>>> groups;
      for (std::size_t a = 0; a < survivors.size(); ++a) {
        const std::int32_t root = dsu.find(static_cast<std::int32_t>(a));
        auto it = std::find_if(groups.begin(), groups.end(),
                               [root](const auto& g) {
                                 return g.first == root;
                               });
        if (it == groups.end()) {
          groups.push_back({root, {}});
          it = groups.end() - 1;
        }
        it->second.push_back(deps[static_cast<std::size_t>(survivors[a])]);
      }
      for (const auto& [root, members] : groups) {
        const AssignmentResult r =
            solve_assignment(degraded, *coverage, members);
        // First group wins ties: groups are ordered by lowest member index.
        if (r.served > impact.served_remaining ||
            impact.main_component_size == 0) {
          impact.served_remaining = r.served;
          impact.main_component_size =
              static_cast<std::int32_t>(members.size());
        }
      }
    }
    impact.users_stranded =
        std::max<std::int64_t>(0, solution.served - impact.served_remaining);
    report.events.push_back(impact);
  }
  return report;
}

}  // namespace uavcov::resilience
