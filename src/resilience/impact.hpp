// Impact analysis: what does a fault plan cost if nobody reacts?
//
// Reuses the graph machinery the solver already trusts — Tarjan
// articulation points (graph/articulation.hpp) name the single points of
// failure of the standing network, and a DSU (graph/dsu.hpp) tracks the
// surviving connected components as events accumulate.  The "remaining"
// numbers are optimal for the surviving main component (Lemma 1
// assignment), so the report is a lower bound on damage: any real system
// without repair does no better.
#pragma once

#include "core/solution.hpp"
#include "resilience/fault_plan.hpp"

namespace uavcov::resilience {

/// State of the un-repaired network right after one event (cumulative:
/// every earlier event of the plan has already been applied).
struct EventImpact {
  FaultEvent event;
  std::int32_t deployments_alive = 0;   ///< deployments still flying.
  std::int32_t components = 0;          ///< connected components among them.
  /// Deployments in the *main* component — the one whose optimal served
  /// count is highest (ties: lowest deployment index).  Everything outside
  /// it is cut off from the mesh and effectively lost.
  std::int32_t main_component_size = 0;
  /// Optimal served count using only the main component, under the
  /// degraded UAV range.  0 once the fleet is gone.
  std::int64_t served_remaining = 0;
  /// Users the initial solution served that the main component can no
  /// longer serve: initial served − served_remaining (>= 0).
  std::int64_t users_stranded = 0;
};

struct ImpactReport {
  /// UAVs whose deployment is an articulation point of the *initial*
  /// network — losing any one of them disconnects survivors (§II-A's
  /// connectivity requirement makes these the critical airframes).
  std::vector<UavId> single_points_of_failure;
  std::vector<EventImpact> events;  ///< one entry per plan event, in order.
};

/// Pure analysis: `solution` is never modified and no repair is attempted.
/// The plan must validate against `scenario`.
[[nodiscard]] ImpactReport analyze_impact(const Scenario& scenario,
                            const Solution& solution, const FaultPlan& plan);

}  // namespace uavcov::resilience
