#include "resilience/repair.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/audit.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "core/assignment.hpp"
#include "core/redeploy.hpp"
#include "core/refine.hpp"
#include "core/relay.hpp"
#include "graph/bfs.hpp"
#include "graph/dsu.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace uavcov::resilience {

namespace {

struct ResilienceMetrics {
  obs::Counter fault_crash = obs::counter("resilience.faults.crash");
  obs::Counter fault_battery = obs::counter("resilience.faults.battery");
  obs::Counter fault_link = obs::counter("resilience.faults.link");
  obs::Counter fault_gateway = obs::counter("resilience.faults.gateway");
  obs::Counter repairs_local = obs::counter("resilience.repairs.local");
  obs::Counter repairs_full = obs::counter("resilience.repairs.full");
  obs::Counter deadline_hits =
      obs::counter("resilience.repairs.deadline_hits");
  obs::Histogram repair_seconds =
      obs::histogram("resilience.repair.seconds");
};

const ResilienceMetrics& resilience_metrics() {
  static const ResilienceMetrics m;
  return m;
}

void count_fault(FaultKind kind) {
  const ResilienceMetrics& m = resilience_metrics();
  switch (kind) {
    case FaultKind::kCrash: m.fault_crash.inc(); break;
    case FaultKind::kBatteryDrain: m.fault_battery.inc(); break;
    case FaultKind::kLinkDegrade: m.fault_link.inc(); break;
    case FaultKind::kGatewayLoss: m.fault_gateway.inc(); break;
  }
}

/// Per-deployment served-user counts under `assignment`.
std::vector<std::int64_t> loads_of(
    const std::vector<std::int32_t>& user_to_deployment,
    std::size_t deployment_count) {
  std::vector<std::int64_t> loads(deployment_count, 0);
  for (const std::int32_t d : user_to_deployment) {
    if (d >= 0) ++loads[static_cast<std::size_t>(d)];
  }
  return loads;
}

}  // namespace

ApproAlgParams with_remaining_budget(const ApproAlgParams& base,
                                     double elapsed_s) {
  ApproAlgParams params = base;
  if (params.time_budget_s > 0.0) {
    // Floor keeps the params valid and guarantees the solve still returns
    // a feasible best-effort solution (appro_alg always evaluates at least
    // one subset before checking the deadline).
    constexpr double kMinBudgetS = 1e-4;
    params.time_budget_s =
        std::max(kMinBudgetS, params.time_budget_s - elapsed_s);
  }
  return params;
}

const char* to_string(RepairAction action) {
  switch (action) {
    case RepairAction::kNone: return "none";
    case RepairAction::kLocal: return "local";
    case RepairAction::kFullResolve: return "full_resolve";
  }
  return "unknown";
}

void RepairPolicy::validate() const {
  validate_unit_threshold("RepairPolicy::local_repair_floor",
                          local_repair_floor);
  if (refine_rounds < 0) {
    throw std::invalid_argument(
        "RepairPolicy: refine_rounds must be >= 0 (got " +
        std::to_string(refine_rounds) + ")");
  }
  appro.validate();
}

RepairController::RepairController(const Scenario& scenario,
                                   RepairPolicy policy)
    : scenario_(scenario), policy_(std::move(policy)), degraded_(scenario) {
  policy_.validate();
  scenario_.validate();
  alive_.assign(static_cast<std::size_t>(scenario_.uav_count()), true);
  rebuild_degraded();
  solution_.algorithm = "repair";
  solution_.user_to_deployment.assign(scenario_.users.size(), -1);
}

void RepairController::rebuild_degraded() {
  degraded_.uav_range_m = scenario_.uav_range_m * range_scale_;
  degraded_.fleet.clear();
  to_original_.clear();
  from_original_.assign(static_cast<std::size_t>(scenario_.uav_count()),
                        UavId::invalid());
  for (const UavId k : scenario_.uav_ids()) {
    if (!alive_[k]) continue;
    UavSpec spec = scenario_.fleet[k];
    // Keep R_user^k <= R_uav (§II-B) under the scaled mesh range.
    spec.user_range_m = std::min(spec.user_range_m, degraded_.uav_range_m);
    from_original_[k] = UavId{degraded_.fleet.size()};
    to_original_.push_back(k);
    degraded_.fleet.push_back(spec);
  }
  if (degraded_.fleet.empty()) {
    coverage_.reset();
  } else {
    coverage_.emplace(degraded_);
  }
}

std::int32_t RepairController::alive_count() const {
  return static_cast<std::int32_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

void RepairController::audit_emitted(const Solution& degraded_solution,
                                     const char* subject) const {
  if (!(policy_.audit || analysis::audit_env_enabled())) return;
  UAVCOV_CHECK_MSG(coverage_.has_value(),
                   "audit requested with an empty fleet");
  analysis::AuditReport report =
      analysis::audit_solution(degraded_, *coverage_, degraded_solution);
  report.subject = subject;
  analysis::require_clean(report);
}

void RepairController::store(Solution degraded_solution) {
  for (Deployment& d : degraded_solution.deployments) {
    d.uav = to_original_[d.uav];
  }
  solution_ = std::move(degraded_solution);
}

const Solution& RepairController::deploy() {
  ApproAlgStats stats;
  Solution solved = appro_alg(degraded_, *coverage_, policy_.appro, &stats);
  served_at_last_solve_ = solved.served;
  ++full_solves_;
  audit_emitted(solved, "resilience.deploy");
  store(std::move(solved));
  return solution_;
}

void RepairController::adopt(Solution solution) {
  UAVCOV_CHECK_MSG(alive_count() == scenario_.uav_count(),
                   "adopt() requires an intact fleet (no faults yet)");
  // Intact fleet => degraded_ is the original instance and ids coincide.
  audit_emitted(solution, "resilience.adopt");
  served_at_last_solve_ = solution.served;
  solution_ = std::move(solution);
}

bool RepairController::repair_locally(Solution& solution,
                                      RepairOutcome& outcome) {
  const Graph g = build_location_graph(degraded_.grid, degraded_.uav_range_m);
  const std::int32_t fleet = degraded_.uav_count();

  // Phase 1: re-stitch the mesh by re-tasking low-value survivors onto
  // relay cells.  Vacating a cell can itself break connectivity, so the
  // loop re-checks and re-stitches; it either converges or falls through
  // to the component-drop path below.
  bool connected = false;
  for (std::int32_t iter = 0; iter <= fleet; ++iter) {
    std::vector<CellId> locs;
    std::vector<NodeId> loc_nodes;
    locs.reserve(solution.deployments.size());
    loc_nodes.reserve(solution.deployments.size());
    for (const Deployment& d : solution.deployments) {
      locs.push_back(d.loc);
      loc_nodes.push_back(to_node(d.loc));
    }
    if (locs.size() <= 1 || is_induced_subgraph_connected(g, loc_nodes)) {
      connected = true;
      break;
    }
    const std::optional<RelayPlan> plan = stitch_connected(g, locs);
    if (!plan) break;  // survivors mutually unreachable on the grid
    const std::size_t relay_count =
        plan->nodes.size() - locs.size();
    if (relay_count == 0 || relay_count >= solution.deployments.size()) {
      break;  // cannot vacate that many cells and stay a network
    }
    // Marginal value of each survivor = its served load under the optimal
    // assignment of the current (still disconnected) set; the cheapest
    // ones become relays.
    const AssignmentResult ar =
        solve_assignment(degraded_, *coverage_, solution.deployments);
    const std::vector<std::int64_t> loads =
        loads_of(ar.user_to_deployment.raw(), solution.deployments.size());
    std::vector<std::int32_t> order(solution.deployments.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::int32_t>(i);
    }
    std::sort(order.begin(), order.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto la = loads[static_cast<std::size_t>(a)];
                const auto lb = loads[static_cast<std::size_t>(b)];
                if (la != lb) return la < lb;
                return solution.deployments[static_cast<std::size_t>(a)]
                           .uav <
                       solution.deployments[static_cast<std::size_t>(b)].uav;
              });
    for (std::size_t r = 0; r < relay_count; ++r) {
      solution.deployments[static_cast<std::size_t>(order[r])].loc =
          plan->nodes[locs.size() + r];
      ++outcome.retasked;
    }
  }

  if (!connected) {
    // Phase 2 fallback: keep the best surviving component, abandon the
    // rest, and spend every idle UAV (cut-off survivors included) as
    // greedy frontier reinforcements — the fill_leftover_uavs idiom.
    std::vector<Deployment> deps = std::move(solution.deployments);
    solution.deployments.clear();
    if (!deps.empty()) {
      Dsu dsu(static_cast<std::int32_t>(deps.size()));
      for (std::size_t a = 0; a < deps.size(); ++a) {
        for (std::size_t b = a + 1; b < deps.size(); ++b) {
          if (distance(degraded_.grid.center(deps[a].loc),
                       degraded_.grid.center(deps[b].loc)) <=
              degraded_.uav_range_m) {
            dsu.unite(static_cast<std::int32_t>(a),
                      static_cast<std::int32_t>(b));
          }
        }
      }
      // Groups in first-member order; best optimal served wins, first
      // group wins ties (deterministic).
      std::vector<std::pair<std::int32_t, std::vector<Deployment>>> groups;
      for (std::size_t a = 0; a < deps.size(); ++a) {
        const std::int32_t root = dsu.find(static_cast<std::int32_t>(a));
        auto it = std::find_if(
            groups.begin(), groups.end(),
            [root](const auto& grp) { return grp.first == root; });
        if (it == groups.end()) {
          groups.push_back({root, {}});
          it = groups.end() - 1;
        }
        it->second.push_back(deps[a]);
      }
      std::int64_t best_served = -1;
      std::size_t best_group = 0;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const AssignmentResult r =
            solve_assignment(degraded_, *coverage_, groups[gi].second);
        if (r.served > best_served) {
          best_served = r.served;
          best_group = gi;
        }
      }
      solution.deployments = std::move(groups[best_group].second);
      outcome.dropped += static_cast<std::int32_t>(
          deps.size() - solution.deployments.size());
    }

    if (!solution.deployments.empty()) {
      // Idle UAVs = everyone not deployed in the kept component, largest
      // capacity first (the solver's own deployment order).
      std::vector<bool> deployed(static_cast<std::size_t>(fleet), false);
      for (const Deployment& d : solution.deployments) {
        deployed[d.uav.index()] = true;
      }
      IncrementalAssignment ia(degraded_, *coverage_);
      std::vector<bool> occupied(
          static_cast<std::size_t>(g.node_count()), false);
      for (const Deployment& d : solution.deployments) {
        ia.deploy(d.uav, d.loc);
        occupied[d.loc.index()] = true;
      }
      for (const UavId k : degraded_.uavs_by_capacity_desc()) {
        if (deployed[k.index()]) continue;
        std::vector<LocationId> frontier;
        std::vector<bool> seen(
            static_cast<std::size_t>(g.node_count()), false);
        for (const Deployment& d : ia.deployments()) {
          for (const NodeId nb : g.neighbors(to_node(d.loc))) {
            const LocationId cell = to_cell(nb);
            if (occupied[cell.index()] || seen[cell.index()] ||
                coverage_->max_coverage(cell) == 0) {
              continue;
            }
            seen[cell.index()] = true;
            frontier.push_back(cell);
          }
        }
        std::int64_t best_gain = 0;
        LocationId best_cell = kInvalidLocation;
        for (LocationId cell : frontier) {
          const std::int64_t gain = ia.probe(k, cell);
          if (gain > best_gain) {
            best_gain = gain;
            best_cell = cell;
          }
        }
        if (!best_cell.valid()) break;  // nothing gains
        ia.deploy(k, best_cell);
        occupied[best_cell.index()] = true;
        ++outcome.retasked;
      }
      solution.deployments = ia.deployments();
    }
  }

  // Final optimal assignment (Lemma 1), then a bounded polish.
  const AssignmentResult fin =
      solve_assignment(degraded_, *coverage_, solution.deployments);
  solution.user_to_deployment = fin.user_to_deployment;
  solution.served = fin.served;
  if (policy_.refine_rounds > 0 && !solution.deployments.empty()) {
    RefineParams params;
    params.max_rounds = policy_.refine_rounds;
    refine_solution(degraded_, *coverage_, solution, params);
  }
  audit_emitted(solution, "resilience.local_repair");
  return connected;
}

RepairOutcome RepairController::on_fault(const FaultEvent& event) {
  const Stopwatch watch;
  RepairOutcome outcome;
  outcome.kind = event.kind;
  outcome.served_before = solution_.served;

  // Per-event validation, mirroring FaultPlan::validate.
  if (event.kind == FaultKind::kLinkDegrade) {
    if (!(event.range_scale > 0.0) || event.range_scale > 1.0) {
      throw std::invalid_argument(
          "on_fault: link_degrade range_scale must be in (0, 1]");
    }
  } else {
    if (!event.uav.valid() || event.uav.value() >= scenario_.uav_count()) {
      throw std::invalid_argument("on_fault: UAV " +
                                  std::to_string(event.uav.value()) +
                                  " outside the fleet");
    }
    if (!alive_[event.uav]) {
      outcome.action = RepairAction::kNone;  // already down: no-op
      outcome.served_after = outcome.served_before;
      outcome.seconds = watch.elapsed_s();
      return outcome;
    }
  }
  count_fault(event.kind);

  if (event.kind == FaultKind::kLinkDegrade) {
    range_scale_ *= event.range_scale;
  } else {
    alive_[event.uav] = false;
  }
  rebuild_degraded();

  if (degraded_.fleet.empty()) {
    // Whole fleet gone: degrade gracefully to the empty network.
    solution_.deployments.clear();
    solution_.user_to_deployment.assign(scenario_.users.size(), -1);
    solution_.served = 0;
    outcome.action = RepairAction::kLocal;
    outcome.dropped = 0;
    outcome.served_after = 0;
    ++local_repairs_;
    resilience_metrics().repairs_local.inc();
    outcome.seconds = watch.elapsed_s();
    resilience_metrics().repair_seconds.observe_seconds(outcome.seconds);
    return outcome;
  }

  // Standing solution in degraded-id terms, failed deployments dropped.
  Solution work;
  work.algorithm = "repair.local";
  for (const Deployment& d : solution_.deployments) {
    if (!alive_[d.uav]) continue;
    work.deployments.push_back({from_original_[d.uav], d.loc});
  }

  repair_locally(work, outcome);

  const double floor =
      policy_.local_repair_floor * static_cast<double>(served_at_last_solve_);
  const bool escalate =
      (event.kind == FaultKind::kGatewayLoss &&
       policy_.escalate_on_gateway_loss) ||
      static_cast<double>(work.served) < floor;
  if (escalate) {
    // The policy budget bounds the *whole* on_fault call, so the full
    // re-solve only gets what local repair has not already spent.  With an
    // unbudgeted policy this is bit-identical to passing policy_.appro.
    const ApproAlgParams effective =
        with_remaining_budget(policy_.appro, watch.elapsed_s());
    ApproAlgStats stats;
    Solution solved = appro_alg(degraded_, *coverage_, effective, &stats);
    outcome.deadline_hit = stats.deadline_hit;
    if (stats.deadline_hit) resilience_metrics().deadline_hits.inc();
    solved.algorithm = "repair.full";
    audit_emitted(solved, "resilience.full_resolve");
    served_at_last_solve_ = solved.served;
    ++full_solves_;
    resilience_metrics().repairs_full.inc();
    outcome.action = RepairAction::kFullResolve;
    outcome.served_after = solved.served;
    store(std::move(solved));
  } else {
    ++local_repairs_;
    resilience_metrics().repairs_local.inc();
    outcome.action = RepairAction::kLocal;
    outcome.served_after = work.served;
    store(std::move(work));
  }
  outcome.seconds = watch.elapsed_s();
  resilience_metrics().repair_seconds.observe_seconds(outcome.seconds);
  return outcome;
}

std::vector<RepairOutcome> RepairController::run(const FaultPlan& plan) {
  plan.validate(scenario_);
  if (solution_.deployments.empty() && served_at_last_solve_ < 0) deploy();
  std::vector<RepairOutcome> outcomes;
  outcomes.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) outcomes.push_back(on_fault(e));
  return outcomes;
}

}  // namespace uavcov::resilience
