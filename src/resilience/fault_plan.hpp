// Fault injection (docs/RESILIENCE.md): a deterministic, seeded timeline
// of failure events applied to a standing deployment.
//
// The paper targets disaster-area operation, where losing UAVs mid-mission
// is the norm rather than the exception — batteries deplete, airframes
// crash, links get jammed, the backhaul gateway can go down with the
// emergency vehicle.  A FaultPlan models one such episode as an ordered
// event list; `analyze_impact` (impact.hpp) reports what each event would
// cost with no reaction, and RepairController (repair.hpp) reacts to the
// events one by one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"

namespace uavcov::resilience {

enum class FaultKind : std::int32_t {
  kCrash = 0,         ///< UAV lost instantly (airframe failure, collision).
  kBatteryDrain = 1,  ///< UAV lands and leaves the network (same effect as
                      ///< a crash at the network layer; counted apart so
                      ///< drills can attribute losses to energy planning).
  kLinkDegrade = 2,   ///< fleet-wide UAV-to-UAV range drops to
                      ///< range_scale × the current range (jamming, rain
                      ///< fade).  Cumulative across events.
  kGatewayLoss = 3,   ///< the UAV acting as backhaul gateway is lost; the
                      ///< network effect equals a crash, but repair policy
                      ///< treats it as an escalation trigger (the paper's
                      ///< Fig. 1 backhaul requirement cannot be restored
                      ///< by local re-stitching alone).
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  double time_s = 0.0;             ///< nondecreasing within a plan.
  FaultKind kind = FaultKind::kCrash;
  /// Target UAV (original fleet id) for kCrash / kBatteryDrain /
  /// kGatewayLoss; must be UavId::invalid() for kLinkDegrade (fleet-wide).
  UavId uav = UavId::invalid();
  /// kLinkDegrade only: multiplier in (0, 1] applied to the current
  /// UAV-to-UAV range.  Ignored (must be 1.0) for other kinds.
  double range_scale = 1.0;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< sorted by time_s, nondecreasing.

  /// Throws std::invalid_argument on the first malformed event: negative
  /// or non-finite time, out-of-order times, UAV id outside the fleet,
  /// range_scale outside (0, 1], or a kind/field combination that
  /// contradicts the rules above.
  void validate(const Scenario& scenario) const;

  /// FNV-1a 64-bit digest of every event (time bits, kind, uav, scale
  /// bits) — pins generator output in tests and the bench suite.
  std::uint64_t fingerprint() const;
};

struct FaultPlanConfig {
  std::int32_t events = 3;            ///< total events to generate.
  double horizon_s = 600.0;           ///< event times drawn from (0, horizon).
  double min_range_scale = 0.6;       ///< link-degrade scale ∈ [min, 1).
  bool include_link_degrade = true;
  bool include_gateway_loss = false;  ///< at most one per plan, always last.
};

/// Deterministic generator: the same (scenario, config, seed) triple
/// yields a bit-identical plan on every platform (Rng is xoshiro256**).
/// UAV-loss events target distinct UAVs and never exhaust the fleet (at
/// most K − 1 removals); surplus loss events become link degradations, or
/// are dropped when those are excluded.
FaultPlan make_fault_plan(const Scenario& scenario,
                          const FaultPlanConfig& config, std::uint64_t seed);

}  // namespace uavcov::resilience
