#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/fingerprint.hpp"
#include "common/rng.hpp"

namespace uavcov::resilience {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kBatteryDrain: return "battery_drain";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kGatewayLoss: return "gateway_loss";
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(std::size_t index, const std::string& what) {
  throw std::invalid_argument("FaultPlan: event " + std::to_string(index) +
                              ": " + what);
}

bool removes_uav(FaultKind kind) {
  return kind == FaultKind::kCrash || kind == FaultKind::kBatteryDrain ||
         kind == FaultKind::kGatewayLoss;
}

}  // namespace

void FaultPlan::validate(const Scenario& scenario) const {
  double prev_time = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (!std::isfinite(e.time_s) || e.time_s < 0.0) {
      fail(i, "time_s must be finite and >= 0 (got " +
                  std::to_string(e.time_s) + ")");
    }
    if (e.time_s < prev_time) {
      fail(i, "times must be nondecreasing (" + std::to_string(e.time_s) +
                  " after " + std::to_string(prev_time) + ")");
    }
    prev_time = e.time_s;
    if (removes_uav(e.kind)) {
      if (!e.uav.valid() || e.uav.value() >= scenario.uav_count()) {
        fail(i, std::string(to_string(e.kind)) + " targets UAV " +
                    std::to_string(e.uav.value()) + " outside the fleet [0, " +
                    std::to_string(scenario.uav_count()) + ")");
      }
      if (e.range_scale != 1.0) {
        fail(i, std::string(to_string(e.kind)) +
                    " must keep range_scale = 1.0");
      }
    } else {  // kLinkDegrade
      if (e.uav.valid()) {
        fail(i, "link_degrade is fleet-wide; uav must be invalid()");
      }
      if (!std::isfinite(e.range_scale) || e.range_scale <= 0.0 ||
          e.range_scale > 1.0) {
        fail(i, "link_degrade range_scale must be in (0, 1] (got " +
                    std::to_string(e.range_scale) + ")");
      }
    }
  }
}

std::uint64_t FaultPlan::fingerprint() const {
  Fnv1a h;
  h.mix(static_cast<std::int64_t>(events.size()));
  for (const FaultEvent& e : events) {
    h.mix(e.time_s);
    h.mix(static_cast<std::int32_t>(e.kind));
    h.mix(e.uav.value());
    h.mix(e.range_scale);
  }
  return h.digest();
}

FaultPlan make_fault_plan(const Scenario& scenario,
                          const FaultPlanConfig& config, std::uint64_t seed) {
  if (config.events < 0) {
    throw std::invalid_argument("FaultPlanConfig: events must be >= 0");
  }
  if (!(config.horizon_s > 0.0) || !std::isfinite(config.horizon_s)) {
    throw std::invalid_argument("FaultPlanConfig: horizon_s must be > 0");
  }
  if (!(config.min_range_scale > 0.0) || config.min_range_scale > 1.0) {
    throw std::invalid_argument(
        "FaultPlanConfig: min_range_scale must be in (0, 1]");
  }
  Rng rng(seed);

  // Event times first, sorted, so the kind/target draws below are
  // independent of ordering.
  std::vector<double> times(static_cast<std::size_t>(config.events));
  for (double& t : times) t = rng.uniform(0.0, config.horizon_s);
  std::sort(times.begin(), times.end());

  // Pool of UAVs that may still be lost: distinct targets, and the fleet
  // never dies entirely (the generator is for drills; the fuzz decoder is
  // free to exhaust it).
  std::vector<UavId> pool(static_cast<std::size_t>(scenario.uav_count()));
  for (std::size_t k = 0; k < pool.size(); ++k) {
    pool[k] = UavId{k};
  }
  rng.shuffle(pool);
  const std::size_t max_losses =
      pool.empty() ? 0 : pool.size() - 1;  // keep >= 1 alive
  std::size_t next_loss = 0;

  FaultPlan plan;
  plan.events.reserve(times.size());
  bool gateway_used = false;
  for (std::size_t i = 0; i < times.size(); ++i) {
    FaultEvent e;
    e.time_s = times[i];
    // Draw a kind; loss kinds degrade to link_degrade once the pool is
    // spent (or are dropped when link degradation is excluded).
    const bool last = i + 1 == times.size();
    std::int64_t kinds = config.include_link_degrade ? 3 : 2;
    const std::int64_t draw = rng.uniform_int(0, kinds - 1);
    FaultKind kind = draw == 2 ? FaultKind::kLinkDegrade
                     : draw == 1 ? FaultKind::kBatteryDrain
                                 : FaultKind::kCrash;
    if (config.include_gateway_loss && last && !gateway_used &&
        kind != FaultKind::kLinkDegrade) {
      kind = FaultKind::kGatewayLoss;  // at most one, always the finale.
    }
    if (removes_uav(kind) && next_loss >= max_losses) {
      if (!config.include_link_degrade) continue;
      kind = FaultKind::kLinkDegrade;
    }
    e.kind = kind;
    if (removes_uav(kind)) {
      e.uav = pool[next_loss++];
      if (kind == FaultKind::kGatewayLoss) gateway_used = true;
    } else {
      e.range_scale = rng.uniform(config.min_range_scale, 1.0);
    }
    plan.events.push_back(e);
  }
  plan.validate(scenario);
  return plan;
}

}  // namespace uavcov::resilience
