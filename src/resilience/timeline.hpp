// Fault-drill timeline: inject → repair → measure, end to end.
//
// Splits the mission horizon at each fault time into phases, runs the
// RepairController at every phase boundary, and pushes each phase's
// standing solution through the netsim service simulator so operators see
// service-level numbers (throughput, delay) before, during, and after the
// failures — not just solver-level served counts.
#pragma once

#include <vector>

#include "netsim/service_sim.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/repair.hpp"

namespace uavcov::resilience {

struct TimelineConfig {
  double horizon_s = 600.0;          ///< mission end; must cover the plan.
  RepairPolicy policy{};
  /// Per-phase service simulation template; duration_s is overwritten
  /// with each phase's length (which may be zero for coincident events —
  /// simulate_service returns zeroed stats rather than dividing by zero).
  netsim::ServiceSimConfig sim{};
};

struct TimelinePhase {
  double start_s = 0.0;
  double end_s = 0.0;
  /// Repair performed at start_s (action == kNone with a default event
  /// for phase 0, which begins with the intact deployment).
  RepairOutcome repair{};
  std::int64_t served = 0;  ///< solver-level served count during the phase.
  netsim::ServiceSimResult service;  ///< netsim stats over the phase.
};

struct TimelineReport {
  std::vector<TimelinePhase> phases;  ///< plan.events.size() + 1 entries.
  std::int64_t served_initial = 0;
  std::int64_t served_final = 0;
  std::int32_t local_repairs = 0;
  std::int32_t full_solves = 0;  ///< escalations only; the initial
                                 ///< solution is adopted, not re-solved.
};

/// Runs the whole drill.  `initial` must be feasible for `scenario`; the
/// plan must validate and fit inside the horizon.  Service simulation
/// always runs against the *original* scenario: solutions emitted by the
/// repair controller are feasible for it by construction (degradation
/// only shrinks ranges and removes UAVs).
TimelineReport run_fault_timeline(const Scenario& scenario,
                                  const Solution& initial,
                                  const FaultPlan& plan,
                                  const TimelineConfig& config);

}  // namespace uavcov::resilience
