#include "resilience/timeline.hpp"

#include <stdexcept>
#include <string>

namespace uavcov::resilience {

TimelineReport run_fault_timeline(const Scenario& scenario,
                                  const Solution& initial,
                                  const FaultPlan& plan,
                                  const TimelineConfig& config) {
  plan.validate(scenario);
  if (!(config.horizon_s > 0.0)) {
    throw std::invalid_argument("TimelineConfig: horizon_s must be > 0");
  }
  if (!plan.events.empty() &&
      plan.events.back().time_s > config.horizon_s) {
    throw std::invalid_argument(
        "TimelineConfig: plan extends past horizon_s (" +
        std::to_string(plan.events.back().time_s) + " > " +
        std::to_string(config.horizon_s) + ")");
  }

  RepairController controller(scenario, config.policy);
  controller.adopt(initial);

  TimelineReport report;
  report.served_initial = initial.served;
  report.phases.reserve(plan.events.size() + 1);

  double phase_start = 0.0;
  for (std::size_t i = 0; i <= plan.events.size(); ++i) {
    TimelinePhase phase;
    phase.start_s = phase_start;
    phase.end_s =
        i < plan.events.size() ? plan.events[i].time_s : config.horizon_s;
    if (i > 0) {
      phase.repair = controller.on_fault(plan.events[i - 1]);
      // (i-1 because phase i starts right after event i-1 fires.)
    }
    const Solution& standing = controller.current();
    phase.served = standing.served;
    netsim::ServiceSimConfig sim = config.sim;
    sim.duration_s = phase.end_s - phase.start_s;
    phase.service = netsim::simulate_service(scenario, standing, sim);
    phase_start = phase.end_s;
    report.phases.push_back(std::move(phase));
  }

  report.served_final = controller.current().served;
  report.local_repairs = controller.local_repairs();
  report.full_solves = controller.full_solves();
  return report;
}

}  // namespace uavcov::resilience
