#include "channel/a2g.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace uavcov {

A2gEnvironment suburban_environment() { return {4.88, 0.43, 0.1, 21.0}; }
A2gEnvironment urban_environment() { return {9.61, 0.16, 1.0, 20.0}; }
A2gEnvironment dense_urban_environment() { return {12.08, 0.11, 1.6, 23.0}; }
A2gEnvironment highrise_environment() { return {27.23, 0.08, 2.3, 34.0}; }

double elevation_angle_deg(double horizontal_m, double altitude_m) {
  UAVCOV_CHECK_MSG(altitude_m > 0, "altitude must be positive");
  UAVCOV_CHECK_MSG(horizontal_m >= 0, "horizontal distance must be >= 0");
  return rad_to_deg(std::atan2(altitude_m, horizontal_m));
}

double los_probability(const A2gEnvironment& env, double elevation_deg) {
  return 1.0 / (1.0 + env.a * std::exp(-env.b * (elevation_deg - env.a)));
}

double free_space_pathloss_db(double distance_m, double carrier_hz) {
  UAVCOV_CHECK_MSG(distance_m > 0 && carrier_hz > 0,
                   "distance and carrier frequency must be positive");
  return 20.0 *
         std::log10(4.0 * 3.14159265358979323846 * carrier_hz * distance_m /
                    kSpeedOfLight);
}

double a2g_pathloss_db(const ChannelParams& params, double horizontal_m,
                       double altitude_m) {
  const double d = std::sqrt(horizontal_m * horizontal_m +
                             altitude_m * altitude_m);
  const double fspl = free_space_pathloss_db(d, params.carrier_hz);
  const double theta = elevation_angle_deg(horizontal_m, altitude_m);
  const double p_los = los_probability(params.environment, theta);
  const double l_los = fspl + params.environment.eta_los_db;
  const double l_nlos = fspl + params.environment.eta_nlos_db;
  return p_los * l_los + (1.0 - p_los) * l_nlos;
}

double u2u_pathloss_db(const ChannelParams& params, double horizontal_m) {
  return free_space_pathloss_db(horizontal_m, params.carrier_hz);
}

}  // namespace uavcov
