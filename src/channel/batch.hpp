// Batched Al-Hourani link evaluation for the million-user hot path.
//
// The scalar entry points (a2g_pathloss_db / a2g_rate_bps) re-derive every
// scenario-constant subexpression per call: (4·π·f), the squared altitude,
// and the tx-power + antenna-gain sum.  BatchLinkEvaluator hoists those
// once per (channel, radio, receiver, altitude) tuple and evaluates whole
// user×cell candidate spans in one pass — the access pattern FlatScenario
// produces — while preserving the *exact* floating-point association order
// of the scalar chain, so a batched rate is bit-identical to
// a2g_rate_bps() for the same horizontal distance (channel_test pins this
// with EXPECT_EQ on doubles).
#pragma once

#include <span>

#include "channel/link_budget.hpp"

namespace uavcov {

class BatchLinkEvaluator {
 public:
  /// Hoists the per-pair-invariant subexpressions.  Throws ContractError on
  /// non-positive altitude, carrier frequency, or bandwidth (the same
  /// contracts the scalar chain checks per call).
  BatchLinkEvaluator(const ChannelParams& channel, const Radio& radio,
                     const Receiver& rx, double altitude_m);

  /// Achievable rate for one horizontal distance — bit-identical to
  /// a2g_rate_bps(channel, radio, rx, horizontal_m, altitude_m).
  double rate_bps(double horizontal_m) const;

  /// Batched rates over a span of horizontal distances; `out` must have
  /// the same extent as `horizontal_m`.
  void rates_bps(std::span<const double> horizontal_m,
                 std::span<double> out) const;

  /// Batched rates over *squared* horizontal distances — the form the CSR
  /// candidate index stores.  Each element is evaluated as
  /// rate_bps(sqrt(d2)), matching callers that derive the horizontal
  /// distance with geometry's distance() (itself sqrt of the squared norm).
  void rates_from_dist2(std::span<const double> horizontal2_m2,
                        std::span<double> out) const;

 private:
  // Al-Hourani environment constants (copied, not referenced: evaluators
  // outlive no scenario but are cheap enough to keep by value).
  double a_;
  double b_;
  double eta_los_db_;
  double eta_nlos_db_;
  double four_pi_f_;    ///< (4·π)·f_c, the FSPL numerator constant.
  double altitude_m_;
  double altitude2_m2_; ///< altitude², hoisted out of the 3-D distance.
  double gain_db_;      ///< P_t + g_t, hoisted out of the SNR sum.
  double noise_dbm_;
  double bandwidth_hz_;
};

}  // namespace uavcov
