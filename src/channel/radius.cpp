#include "channel/radius.hpp"

#include <cmath>

#include "common/check.hpp"

namespace uavcov {

double max_service_radius(const ChannelParams& channel, const Radio& radio,
                          const Receiver& rx, double altitude_m,
                          double min_rate_bps, double max_radius_m,
                          double tolerance_m) {
  UAVCOV_CHECK_MSG(min_rate_bps > 0, "rate requirement must be positive");
  UAVCOV_CHECK_MSG(max_radius_m > 0 && tolerance_m > 0,
                   "search bounds must be positive");
  const auto meets = [&](double horizontal) {
    return a2g_rate_bps(channel, radio, rx, horizontal, altitude_m) >=
           min_rate_bps;
  };
  if (!meets(0.0)) return 0.0;
  if (meets(max_radius_m)) return max_radius_m;
  double lo = 0.0, hi = max_radius_m;  // meets(lo), !meets(hi)
  while (hi - lo > tolerance_m) {
    const double mid = 0.5 * (lo + hi);
    (meets(mid) ? lo : hi) = mid;
  }
  return lo;
}

double optimal_altitude(const ChannelParams& channel, const Radio& radio,
                        const Receiver& rx, double min_rate_bps, double lo_m,
                        double hi_m, double tolerance_m) {
  UAVCOV_CHECK_MSG(0 < lo_m && lo_m < hi_m, "invalid altitude bracket");
  const auto radius_at = [&](double h) {
    return max_service_radius(channel, radio, rx, h, min_rate_bps);
  };
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = lo_m, b = hi_m;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = radius_at(c), fd = radius_at(d);
  while (b - a > tolerance_m) {
    if (fc >= fd) {  // maximum is in [a, d]
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = radius_at(c);
    } else {  // maximum is in [c, b]
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = radius_at(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace uavcov
