// Link budget of §II-B: SNR and achievable per-user data rate.
//
//   SNR_ij  = 10^((P_t^j + g_t^j − PL_ij − P_N) / 10)          (linear)
//   r_ij    = B_w · log2(1 + SNR_ij)                            [bit/s]
//
// with P_t transmission power [dBm], g_t antenna gain [dBi], PL the mean
// pathloss [dB], P_N the noise power [dBm], and B_w the per-user OFDMA
// bandwidth (paper example: 180 kHz — one LTE resource block).
#pragma once

#include "channel/a2g.hpp"

namespace uavcov {

/// Radio front-end of one UAV's mounted base station.  Heterogeneous UAVs
/// may differ in transmission power / antenna gain (paper §II-A).
struct Radio {
  double tx_power_dbm = 30.0;   ///< P_t — base-station transmit power.
  double antenna_gain_dbi = 5.0;///< g_t — antenna gain.
};

/// Receiver-side constants shared by all users.
struct Receiver {
  double noise_dbm = -104.0;    ///< P_N over the allocated bandwidth.
  double bandwidth_hz = 180e3;  ///< B_w — one OFDMA resource block.
};

/// Linear SNR for a user at horizontal distance `horizontal_m` from a UAV
/// hovering at `altitude_m`.
double a2g_snr(const ChannelParams& channel, const Radio& radio,
               const Receiver& rx, double horizontal_m, double altitude_m);

/// Achievable data rate r_ij [bit/s].
double a2g_rate_bps(const ChannelParams& channel, const Radio& radio,
                    const Receiver& rx, double horizontal_m,
                    double altitude_m);

/// Thermal noise power (dBm) for a bandwidth and noise figure — utility for
/// configuring Receiver::noise_dbm from first principles
/// (−174 dBm/Hz + 10·log10(B) + NF).
double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db);

}  // namespace uavcov
