// Air-to-ground (UAV-to-user) wireless channel model of §II-B, following
// Al-Hourani et al., "Optimal LAP altitude for maximum coverage", IEEE
// WCL 2014 — the model the paper adopts:
//
//   P_LoS(θ)   = 1 / (1 + a·exp(−b(θ − a)))          θ = elevation angle, deg
//   L_LoS(d)   = FSPL(d) + η_LoS                      FSPL = 20·log10(4π f d / c)
//   L_NLoS(d)  = FSPL(d) + η_NLoS
//   PL(d, θ)   = P_LoS·L_LoS + (1 − P_LoS)·L_NLoS     (all in dB)
//
// UAV-to-UAV links are free-space only (no obstacles in the air).
#pragma once

#include "geometry/vec.hpp"

namespace uavcov {

/// Environment-dependent constants of the Al-Hourani model.
struct A2gEnvironment {
  double a = 9.61;          ///< LoS-probability S-curve parameter.
  double b = 0.16;          ///< LoS-probability S-curve parameter [1/deg].
  double eta_los_db = 1.0;  ///< mean excess loss on LoS links [dB].
  double eta_nlos_db = 20.0;///< mean excess loss on NLoS links [dB].
};

/// Standard environment presets from Al-Hourani et al. (Table/ITU-R data).
A2gEnvironment suburban_environment();   // a=4.88,  b=0.43, η=0.1/21
A2gEnvironment urban_environment();      // a=9.61,  b=0.16, η=1/20
A2gEnvironment dense_urban_environment();// a=12.08, b=0.11, η=1.6/23
A2gEnvironment highrise_environment();   // a=27.23, b=0.08, η=2.3/34

/// The full channel configuration used across a scenario.
struct ChannelParams {
  A2gEnvironment environment{};  // urban by default
  double carrier_hz = 2.0e9;     ///< carrier frequency f_c [Hz].
};

/// Elevation angle (degrees) from a ground point to a UAV with horizontal
/// ground distance `horizontal_m` and altitude `altitude_m`.
double elevation_angle_deg(double horizontal_m, double altitude_m);

/// LoS probability P_LoS(θ) for elevation angle θ in degrees.
double los_probability(const A2gEnvironment& env, double elevation_deg);

/// Free-space pathloss 20·log10(4π f d / c) in dB for 3-D distance d [m].
double free_space_pathloss_db(double distance_m, double carrier_hz);

/// Mean air-to-ground pathloss PL(d, θ) in dB between a ground user and a
/// UAV at horizontal distance `horizontal_m`, altitude `altitude_m`.
double a2g_pathloss_db(const ChannelParams& params, double horizontal_m,
                       double altitude_m);

/// UAV-to-UAV pathloss (free space) for two UAVs at common altitude with
/// horizontal separation `horizontal_m`.
double u2u_pathloss_db(const ChannelParams& params, double horizontal_m);

}  // namespace uavcov
