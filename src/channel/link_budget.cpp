#include "channel/link_budget.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace uavcov {

double a2g_snr(const ChannelParams& channel, const Radio& radio,
               const Receiver& rx, double horizontal_m, double altitude_m) {
  const double pl = a2g_pathloss_db(channel, horizontal_m, altitude_m);
  const double snr_db =
      radio.tx_power_dbm + radio.antenna_gain_dbi - pl - rx.noise_dbm;
  return db_to_linear(snr_db);
}

double a2g_rate_bps(const ChannelParams& channel, const Radio& radio,
                    const Receiver& rx, double horizontal_m,
                    double altitude_m) {
  UAVCOV_CHECK_MSG(rx.bandwidth_hz > 0, "bandwidth must be positive");
  const double snr =
      a2g_snr(channel, radio, rx, horizontal_m, altitude_m);
  return rx.bandwidth_hz * std::log2(1.0 + snr);
}

double thermal_noise_dbm(double bandwidth_hz, double noise_figure_db) {
  UAVCOV_CHECK_MSG(bandwidth_hz > 0, "bandwidth must be positive");
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace uavcov
