#include "channel/batch.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace uavcov {

BatchLinkEvaluator::BatchLinkEvaluator(const ChannelParams& channel,
                                       const Radio& radio, const Receiver& rx,
                                       double altitude_m)
    : a_(channel.environment.a),
      b_(channel.environment.b),
      eta_los_db_(channel.environment.eta_los_db),
      eta_nlos_db_(channel.environment.eta_nlos_db),
      // Left-to-right like the scalar chain's `4.0 * π * f · d / c`: the
      // first two products are per-pair invariant, so hoisting them keeps
      // the remaining `(four_pi_f · d) / c` association identical.
      four_pi_f_(4.0 * 3.14159265358979323846 * channel.carrier_hz),
      altitude_m_(altitude_m),
      altitude2_m2_(altitude_m * altitude_m),
      gain_db_(radio.tx_power_dbm + radio.antenna_gain_dbi),
      noise_dbm_(rx.noise_dbm),
      bandwidth_hz_(rx.bandwidth_hz) {
  UAVCOV_CHECK_MSG(altitude_m > 0, "altitude must be positive");
  UAVCOV_CHECK_MSG(channel.carrier_hz > 0,
                   "carrier frequency must be positive");
  UAVCOV_CHECK_MSG(rx.bandwidth_hz > 0, "bandwidth must be positive");
}

double BatchLinkEvaluator::rate_bps(double horizontal_m) const {
  UAVCOV_DCHECK(horizontal_m >= 0);
  // Every line below mirrors one step of the scalar chain
  // a2g_rate_bps → a2g_snr → a2g_pathloss_db with the invariant factors
  // substituted; the association order of what remains is unchanged, so
  // the result is bit-identical (channel_test::BatchMatchesScalarExactly).
  const double d =
      std::sqrt(horizontal_m * horizontal_m + altitude2_m2_);
  const double fspl = 20.0 * std::log10(four_pi_f_ * d / kSpeedOfLight);
  const double theta = rad_to_deg(std::atan2(altitude_m_, horizontal_m));
  const double p_los = 1.0 / (1.0 + a_ * std::exp(-b_ * (theta - a_)));
  const double l_los = fspl + eta_los_db_;
  const double l_nlos = fspl + eta_nlos_db_;
  const double pl = p_los * l_los + (1.0 - p_los) * l_nlos;
  const double snr_db = gain_db_ - pl - noise_dbm_;
  return bandwidth_hz_ * std::log2(1.0 + db_to_linear(snr_db));
}

void BatchLinkEvaluator::rates_bps(std::span<const double> horizontal_m,
                                   std::span<double> out) const {
  UAVCOV_CHECK_MSG(horizontal_m.size() == out.size(),
                   "batch rate output span size mismatch");
  for (std::size_t i = 0; i < horizontal_m.size(); ++i) {
    out[i] = rate_bps(horizontal_m[i]);
  }
}

void BatchLinkEvaluator::rates_from_dist2(
    std::span<const double> horizontal2_m2, std::span<double> out) const {
  UAVCOV_CHECK_MSG(horizontal2_m2.size() == out.size(),
                   "batch rate output span size mismatch");
  for (std::size_t i = 0; i < horizontal2_m2.size(); ++i) {
    out[i] = rate_bps(std::sqrt(horizontal2_m2[i]));
  }
}

}  // namespace uavcov
