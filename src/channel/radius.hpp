// Derived coverage geometry:
//   * max_service_radius — largest horizontal distance at which a UAV still
//     delivers a target data rate (the physical origin of R_user^k; the
//     paper treats R_user^k as given, we can also derive it);
//   * optimal_altitude — the altitude maximizing that radius (the paper's
//     H_uav "can be calculated by the algorithms in [2]"; this is that
//     calculation, by golden-section search over a unimodal objective).
#pragma once

#include "channel/link_budget.hpp"

namespace uavcov {

/// Largest horizontal distance (meters) at which a2g_rate_bps >= min_rate,
/// for a UAV at `altitude_m`.  Returns 0 if even overhead (distance 0) the
/// rate is below the requirement.  Bisection on the monotone rate-vs-
/// distance curve; accurate to `tolerance_m`.
double max_service_radius(const ChannelParams& channel, const Radio& radio,
                          const Receiver& rx, double altitude_m,
                          double min_rate_bps, double max_radius_m = 20e3,
                          double tolerance_m = 0.1);

/// Altitude (meters) in [lo, hi] maximizing the service radius for the
/// given rate requirement — golden-section search (the radius-vs-altitude
/// curve of the Al-Hourani model is unimodal: too low → NLoS-dominated,
/// too high → FSPL-dominated).
double optimal_altitude(const ChannelParams& channel, const Radio& radio,
                        const Receiver& rx, double min_rate_bps,
                        double lo_m = 20.0, double hi_m = 3000.0,
                        double tolerance_m = 0.5);

}  // namespace uavcov
