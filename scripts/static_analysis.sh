#!/usr/bin/env bash
# Static analysis runner for src/ (docs/STATIC_ANALYSIS.md).
#
#   scripts/static_analysis.sh [--fix] [build-dir]
#
# --fix: forward clang-tidy's -fix -fix-errors so checks with rewrites
# (misc-const-correctness, modernize-use-*) patch the tree in place.
# Apply on a clean worktree and review the diff; only meaningful in the
# clang-tidy mode — the GCC fallback cannot rewrite and refuses the flag.
#
# Primary mode: clang-tidy over every src/**/*.cpp, driven by the
# compilation database the CMake configure step exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally).  The check
# profile and its curated suppression list live in .clang-tidy;
# WarningsAsErrors='*' there means ANY diagnostic fails this script, so
# new findings cannot land silently.
#
# Fallback mode (toolchains without clang-tidy, e.g. a gcc-only
# container): a strict-warning pass that re-runs every src/ translation
# unit from the same compilation database with -fsyntax-only and a
# hardened warning set promoted to errors.  Weaker than clang-tidy but
# still catches shadowing, conversion traps, and format bugs — and keeps
# the exit-status contract identical so CI can rely on it either way.
#
# Exit status: 0 iff no diagnostics.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIX=0
if [[ "${1:-}" == "--fix" ]]; then
  FIX=1
  shift
fi
BUILD_DIR="${1:-${BUILD_DIR:-$ROOT/build}}"
cd "$ROOT"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "==> no compile database in $BUILD_DIR; configuring" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json still missing" >&2
  exit 2
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  echo "error: no sources under src/" >&2
  exit 2
fi

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "$CLANG_TIDY"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$candidate" >/dev/null 2>&1; then
      echo "$candidate"
      return 0
    fi
  done
  return 1
}

if TIDY="$(find_clang_tidy)"; then
  TIDY_ARGS=(-p "$BUILD_DIR" --quiet)
  if [[ $FIX -eq 1 ]]; then
    # -fix-errors applies rewrites even though WarningsAsErrors='*'
    # upgrades every diagnostic; plain -fix would refuse to touch them.
    TIDY_ARGS+=(-fix -fix-errors)
    echo "==> applying fixes in place (-fix -fix-errors)" >&2
  fi
  echo "==> $TIDY over ${#SOURCES[@]} translation units (db: $BUILD_DIR)" >&2
  STATUS=0
  "$TIDY" "${TIDY_ARGS[@]}" "${SOURCES[@]}" || STATUS=$?
  if [[ $STATUS -ne 0 ]]; then
    echo "==> clang-tidy reported diagnostics (see above)" >&2
    exit 1
  fi
  echo "==> clang-tidy clean" >&2
  exit 0
fi

if [[ $FIX -eq 1 ]]; then
  echo "error: --fix requires clang-tidy (not found on PATH)" >&2
  exit 2
fi

echo "==> clang-tidy not found; GCC strict-warning fallback" >&2
# Warning set beyond the build's -Wall -Wextra; every one of these is clean
# on the current tree, so any hit is a new diagnostic.
EXTRA_WARNINGS=(
  -Wshadow
  -Wnon-virtual-dtor
  -Woverloaded-virtual
  -Wcast-qual
  -Wundef
  -Wformat=2
  -Wwrite-strings
  -Wvla
  -Wextra-semi
  -Wdeprecated-copy-dtor
  -Wredundant-decls
)
STATUS=0
FAILED=()
for src in "${SOURCES[@]}"; do
  # Recover the exact compile command for this TU from the database, strip
  # the output arguments, and re-run it as a syntax-plus-warnings pass.
  CMD="$(python3 - "$BUILD_DIR/compile_commands.json" "$src" <<'PY'
import json, shlex, sys
db_path, wanted = sys.argv[1], sys.argv[2]
for entry in json.load(open(db_path)):
    if entry["file"].endswith(wanted):
        args = shlex.split(entry["command"])
        out = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            out.append(a)
        print(shlex.join(out))
        break
PY
)"
  if [[ -z "$CMD" ]]; then
    echo "warning: $src not in compile database, skipping" >&2
    continue
  fi
  if ! eval "$CMD" -fsyntax-only -Werror "${EXTRA_WARNINGS[@]}"; then
    FAILED+=("$src")
    STATUS=1
  fi
done
if [[ $STATUS -ne 0 ]]; then
  echo "==> diagnostics in: ${FAILED[*]}" >&2
  exit 1
fi
echo "==> GCC strict-warning pass clean (${#SOURCES[@]} TUs)" >&2
exit 0
