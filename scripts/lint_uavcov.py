#!/usr/bin/env python3
"""Repo-specific linter for uavcov (see docs/STATIC_ANALYSIS.md).

Rules
-----
nondeterminism   Solver code under src/ must be bit-reproducible: no
                 iteration-order-unstable containers (std::unordered_map,
                 std::unordered_set), no std::rand, no wall-clock reads
                 (time(nullptr), std::chrono::*::now()).  Timing reads are
                 allowed only in src/obs/ and src/common/stopwatch.hpp,
                 where they feed observability histograms that are excluded
                 from fingerprints.
naked-new        No naked `new` / `malloc`-family allocation in src/; use
                 containers or std::make_unique.
metric-names     Every complete string-literal metric name passed to
                 obs::counter/gauge/histogram in src/ must appear in the
                 docs/OBSERVABILITY.md table, and every concrete name in the
                 table must appear in src/.  Table names may use {a,b} brace
                 alternation; rows with <placeholder> segments are wildcard
                 patterns (dynamic names) and are only checked src -> docs.
include-hygiene  Headers under src/ must use `#pragma once`, must not
                 include <iostream>, and must be self-contained (each header
                 compiles on its own; requires g++, skipped if absent or
                 with --no-compile).
concurrency-discipline
                 All locking goes through the capability-annotated wrappers
                 in src/common/sync.hpp so Clang's Thread Safety Analysis
                 sees every lock: raw std::mutex / std::lock_guard /
                 std::unique_lock / std::scoped_lock /
                 std::condition_variable / std::thread are forbidden outside
                 src/common/{sync,thread_pool}.{hpp,cpp}.  Lock-free shared
                 state must be reviewable: every std::atomic declaration
                 needs an adjacent `// atomic-invariant:` comment (same line
                 or the comment block directly above) stating why it is safe
                 without a lock.
no-unbounded-wait
                 The mission service must never block forever: every
                 blocking wait call site (`.wait(` / `->wait(` /
                 `.wait_idle(` / `->wait_idle(`) in src/service/ needs an
                 adjacent `// deadline:` comment (same line or the comment
                 block directly above) naming the bound that guarantees the
                 wait terminates (a deadline, a finite attempt ladder, a
                 shutdown path).  Other directories are out of scope — the
                 service layer is the one that owns job deadlines.

Suppression: append `// lint:allow <rule> -- <reason>` on the offending
line, or place it alone on the line directly above.  A reason is mandatory.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import itertools
import re
import shutil
import subprocess
import sys
from pathlib import Path

RULES = ("nondeterminism", "naked-new", "metric-names", "include-hygiene",
         "concurrency-discipline", "no-unbounded-wait")

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([a-z-]+)\s+--\s+\S")

# Paths (relative to the lint root, using '/' separators) where wall-clock
# reads are legitimate: the stopwatch abstraction and the observability
# layer that consumes it.
NONDET_TIME_ALLOWED = ("src/obs/", "src/common/stopwatch.hpp")

# The only files allowed to touch the raw std synchronization primitives:
# the annotated wrapper layer itself and the thread pool (which still owns
# std::thread workers; its locking already goes through sync::).
CONCURRENCY_ALLOWED = (
    "src/common/sync.hpp",
    "src/common/sync.cpp",
    "src/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
)

ATOMIC_DECL_RE = re.compile(r"\bstd::atomic\b")
ATOMIC_INVARIANT_RE = re.compile(r"//\s*atomic-invariant:\s*\S")

# Blocking-wait call sites in the service layer (member calls only, so
# declarations and definitions of methods *named* wait don't trip it).
WAIT_CALL_RE = re.compile(r"(?:\.|->)\s*wait(?:_idle)?\s*\(")
DEADLINE_COMMENT_RE = re.compile(r"//\s*deadline:\s*\S")

METRIC_CALL_RE = re.compile(
    r'obs::(?:counter|gauge|histogram)\s*\(\s*"([^"]+)"\s*\)')


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line count."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed_lines(text: str, rule: str) -> set[int]:
    """1-based line numbers where `rule` findings are suppressed."""
    lines = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            lines.add(lineno)
            lines.add(lineno + 1)  # allow-line above the offending line
    return lines


def iter_src_files(root: Path) -> list[Path]:
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(p for p in src.rglob("*")
                  if p.suffix in (".hpp", ".cpp") and p.is_file())


def rel(root: Path, path: Path) -> str:
    return path.relative_to(root).as_posix()


def scan_pattern_rule(root: Path, rule: str,
                      patterns: list[tuple[re.Pattern, str]],
                      path_filter=None) -> list[Finding]:
    findings = []
    for path in iter_src_files(root):
        relpath = rel(root, path)
        text = path.read_text()
        code = strip_comments_and_strings(text)
        allowed = suppressed_lines(text, rule)
        for lineno, line in enumerate(code.splitlines(), start=1):
            if lineno in allowed:
                continue
            for pat, message in patterns:
                if pat.search(line):
                    if path_filter and path_filter(relpath, pat):
                        continue
                    findings.append(Finding(path, lineno, rule, message))
    return findings


def check_nondeterminism(root: Path) -> list[Finding]:
    patterns = [
        (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"),
         "wall-clock read (time()) in solver code"),
        (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)"
                    r"\s*::\s*now\s*\("),
         "std::chrono clock read outside common/stopwatch and obs/"),
        (re.compile(r"\bstd::unordered_map\b"),
         "std::unordered_map has unspecified iteration order; "
         "use std::map or a sorted vector"),
        (re.compile(r"\bstd::unordered_set\b"),
         "std::unordered_set has unspecified iteration order; "
         "use std::set or a sorted vector"),
        (re.compile(r"\bstd::rand\b|\brand\s*\(\s*\)"),
         "std::rand is not seedable per-run; use common/rng"),
    ]

    def exempt(relpath: str, _pat) -> bool:
        return any(relpath == p or relpath.startswith(p)
                   for p in NONDET_TIME_ALLOWED)

    return scan_pattern_rule(root, "nondeterminism", patterns,
                             path_filter=exempt)


def check_naked_new(root: Path) -> list[Finding]:
    patterns = [
        (re.compile(r"\bnew\b(?!\s*\()"),
         "naked new; use std::make_unique or a container"),
        (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("),
         "C allocation; use containers or std::make_unique"),
    ]
    return scan_pattern_rule(root, "naked-new", patterns)


def parse_metric_table(doc_path: Path):
    """Return (concrete_names, wildcard_regexes) from the metric table."""
    concrete: dict[str, int] = {}
    wildcards: list[tuple[re.Pattern, int]] = []
    if not doc_path.is_file():
        return concrete, wildcards
    for lineno, line in enumerate(doc_path.read_text().splitlines(), 1):
        m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if not m:
            continue
        name = m.group(1)
        for expanded in expand_braces(name):
            if "<" in expanded:
                regex = re.escape(expanded)
                regex = re.sub(r"<[a-z_]+>", r"[A-Za-z0-9_]+", regex)
                wildcards.append((re.compile(f"^{regex}$"), lineno))
            else:
                concrete[expanded] = lineno
    return concrete, wildcards


def expand_braces(name: str) -> list[str]:
    m = re.search(r"\{([^{}]+)\}", name)
    if not m:
        return [name]
    head, tail = name[:m.start()], name[m.end():]
    return list(itertools.chain.from_iterable(
        expand_braces(head + alt + tail)
        for alt in m.group(1).split(",")))


def check_metric_names(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    doc_path = root / "docs" / "OBSERVABILITY.md"
    concrete, wildcards = parse_metric_table(doc_path)
    used: set[str] = set()
    for path in iter_src_files(root):
        text = path.read_text()
        allowed = suppressed_lines(text, "metric-names")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in METRIC_CALL_RE.finditer(line):
                name = m.group(1)
                used.add(name)
                if lineno in allowed:
                    continue
                if name in concrete:
                    continue
                if any(pat.match(name) for pat, _ in wildcards):
                    continue
                findings.append(Finding(
                    path, lineno, "metric-names",
                    f'metric "{name}" is not documented in '
                    f"docs/OBSERVABILITY.md"))
    for name, lineno in sorted(concrete.items()):
        if name not in used:
            findings.append(Finding(
                doc_path, lineno, "metric-names",
                f'documented metric "{name}" is never registered in src/'))
    return findings


def check_concurrency_discipline(root: Path) -> list[Finding]:
    """Raw sync primitives only in the annotated layer; atomics documented."""
    raw_primitives = [
        (re.compile(r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?"
                    r"mutex\b"),
         "raw std mutex; use sync::Mutex (common/sync.hpp) so Clang's "
         "thread-safety analysis sees the lock"),
        (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
         "raw std lock scope; use sync::LockGuard or sync::UniqueLock"),
        (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
         "raw condition variable; use sync::CondVar"),
        (re.compile(r"\bstd::j?thread\b"),
         "raw std::thread; run work through common/thread_pool"),
    ]
    findings: list[Finding] = []
    for path in iter_src_files(root):
        relpath = rel(root, path)
        text = path.read_text()
        original_lines = text.splitlines()
        code_lines = strip_comments_and_strings(text).splitlines()
        allowed = suppressed_lines(text, "concurrency-discipline")
        exempt_primitives = relpath in CONCURRENCY_ALLOWED
        for lineno, line in enumerate(code_lines, start=1):
            if lineno in allowed:
                continue
            if not exempt_primitives:
                for pat, message in raw_primitives:
                    if pat.search(line):
                        findings.append(Finding(
                            path, lineno, "concurrency-discipline", message))
            if ATOMIC_DECL_RE.search(line):
                if not has_adjacent_atomic_invariant(original_lines, lineno):
                    findings.append(Finding(
                        path, lineno, "concurrency-discipline",
                        "std::atomic without an adjacent "
                        "`// atomic-invariant:` comment stating why "
                        "lock-free access is safe"))
    return findings


def has_adjacent_atomic_invariant(lines: list[str], lineno: int) -> bool:
    """True if `// atomic-invariant:` sits on the declaration line or in
    the contiguous comment block directly above it."""
    return has_adjacent_comment(lines, lineno, ATOMIC_INVARIANT_RE)


def has_adjacent_comment(lines: list[str], lineno: int,
                         pattern: re.Pattern) -> bool:
    """True if `pattern` matches on line `lineno` (1-based) or in the
    contiguous comment block directly above it."""
    if pattern.search(lines[lineno - 1]):
        return True
    i = lineno - 2  # 0-based index of the line above
    while i >= 0 and lines[i].lstrip().startswith("//"):
        if pattern.search(lines[i]):
            return True
        i -= 1
    return False


def check_no_unbounded_wait(root: Path) -> list[Finding]:
    """Every blocking wait in src/service/ names its termination bound."""
    findings: list[Finding] = []
    for path in iter_src_files(root):
        if not rel(root, path).startswith("src/service/"):
            continue
        text = path.read_text()
        original_lines = text.splitlines()
        code_lines = strip_comments_and_strings(text).splitlines()
        allowed = suppressed_lines(text, "no-unbounded-wait")
        for lineno, line in enumerate(code_lines, start=1):
            if lineno in allowed:
                continue
            if WAIT_CALL_RE.search(line):
                if not has_adjacent_comment(original_lines, lineno,
                                            DEADLINE_COMMENT_RE):
                    findings.append(Finding(
                        path, lineno, "no-unbounded-wait",
                        "blocking wait without an adjacent `// deadline:` "
                        "comment naming the bound that guarantees it "
                        "terminates"))
    return findings


def check_include_hygiene(root: Path, compile_headers: bool) -> list[Finding]:
    findings: list[Finding] = []
    headers = [p for p in iter_src_files(root) if p.suffix == ".hpp"]
    for path in headers:
        text = path.read_text()
        allowed = suppressed_lines(text, "include-hygiene")
        code = strip_comments_and_strings(text)
        if "#pragma once" not in text and 1 not in allowed:
            findings.append(Finding(path, 1, "include-hygiene",
                                    "header is missing #pragma once"))
        for lineno, line in enumerate(code.splitlines(), start=1):
            if lineno in allowed:
                continue
            if re.search(r"#\s*include\s*<iostream>", line):
                findings.append(Finding(
                    path, lineno, "include-hygiene",
                    "<iostream> in a header injects static iostream "
                    "initializers into every TU; include it in .cpp files"))
    if compile_headers and shutil.which("g++"):
        for path in headers:
            proc = subprocess.run(
                ["g++", "-std=c++20", "-fsyntax-only", "-x", "c++",
                 "-I", str(root / "src"), str(path)],
                capture_output=True, text=True)
            if proc.returncode != 0:
                allowed = suppressed_lines(path.read_text(),
                                           "include-hygiene")
                if 1 in allowed:
                    continue
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[-1]
                    if proc.stderr.strip() else "compile failed")
                findings.append(Finding(
                    path, 1, "include-hygiene",
                    f"header is not self-contained: {first_error}"))
    return findings


def run_rules(root: Path, rules, compile_headers: bool) -> list[Finding]:
    findings: list[Finding] = []
    if "nondeterminism" in rules:
        findings += check_nondeterminism(root)
    if "naked-new" in rules:
        findings += check_naked_new(root)
    if "metric-names" in rules:
        findings += check_metric_names(root)
    if "include-hygiene" in rules:
        findings += check_include_hygiene(root, compile_headers)
    if "concurrency-discipline" in rules:
        findings += check_concurrency_discipline(root)
    if "no-unbounded-wait" in rules:
        findings += check_no_unbounded_wait(root)
    return findings


def self_test(fixtures_dir: Path, compile_headers: bool) -> int:
    failures = 0
    for rule in RULES:
        for kind in ("violating", "clean"):
            fixture_root = fixtures_dir / rule / kind
            if not fixture_root.is_dir():
                print(f"self-test: MISSING fixture {fixture_root}")
                failures += 1
                continue
            findings = [f for f in run_rules(fixture_root, [rule],
                                             compile_headers)
                        if f.rule == rule]
            if kind == "violating" and not findings:
                print(f"self-test: FAIL {rule}/{kind}: expected >=1 "
                      f"finding, got 0")
                failures += 1
            elif kind == "clean" and findings:
                print(f"self-test: FAIL {rule}/{kind}: expected 0 findings:")
                for f in findings:
                    print(f"  {f}")
                failures += 1
            else:
                print(f"self-test: ok {rule}/{kind} "
                      f"({len(findings)} finding(s))")
    if failures:
        print(f"self-test: {failures} fixture check(s) failed")
        return 1
    print("self-test: all fixtures behave as expected")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root to lint (default: this repo)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--no-compile", action="store_true",
                        help="skip the header self-containment compile pass")
    parser.add_argument("--self-test", action="store_true",
                        help="run each rule against its fixtures and exit")
    args = parser.parse_args(argv)

    compile_headers = not args.no_compile
    if args.self_test:
        fixtures = Path(__file__).resolve().parent / "lint_fixtures"
        return self_test(fixtures, compile_headers)

    rules = args.rule or list(RULES)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: no src/ directory under {root}", file=sys.stderr)
        return 2
    findings = run_rules(root, rules, compile_headers)
    for f in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(f)
    if findings:
        print(f"lint_uavcov: {len(findings)} finding(s)")
        return 1
    print(f"lint_uavcov: clean ({', '.join(rules)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
