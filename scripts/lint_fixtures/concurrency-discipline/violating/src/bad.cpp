// Fixture: every construct here must be flagged by the
// concurrency-discipline rule — raw primitives outside
// src/common/{sync,thread_pool}.* and an undocumented atomic.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

std::mutex raw_mu;                 // raw mutex outside the annotated layer
std::condition_variable raw_cv;    // raw condition variable
std::atomic<int> undocumented{0};  // missing the required invariant note

int bad() {
  const std::lock_guard<std::mutex> lock(raw_mu);  // raw lock scope
  std::thread worker([] {});                       // raw thread
  worker.join();
  return undocumented.load();
}
