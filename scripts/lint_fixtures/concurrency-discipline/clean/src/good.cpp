// Fixture: disciplined concurrency code plus one justified suppression;
// the concurrency-discipline rule must report nothing here.
#include <atomic>
#include <mutex>

// atomic-invariant: monotonic false→true latch; a late-observed flip only
// delays shutdown by one iteration, it never corrupts shared state.
std::atomic<bool> stop_requested{false};

// Same-line comment placement is also accepted.
std::atomic<long> events{0};  // atomic-invariant: increment-only counter, read after join

// Benchmark harnesses may need a bare thread to measure pool overhead
// itself; the suppression documents why the wrapper is bypassed.
#include <thread>
void spawn_raw() {
  // lint:allow concurrency-discipline -- harness measures raw thread spawn cost
  std::thread t([] { stop_requested.store(true); });
  t.join();
}

long observed() { return events.load(); }
