// Fixture: src/common/sync.hpp is the annotated wrapper layer, so the raw
// std primitives are allowed here (path exemption, not suppression).
#pragma once
#include <condition_variable>
#include <mutex>

namespace fixture {

class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace fixture
