// Fixture: every construct here must be flagged by the nondeterminism rule.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <unordered_map>
#include <unordered_set>

int bad() {
  std::unordered_map<int, int> m;          // unstable iteration order
  std::unordered_set<int> s;               // unstable iteration order
  const auto t0 = std::chrono::steady_clock::now();  // wall-clock read
  (void)t0;
  const auto wall = time(nullptr);         // wall-clock read
  (void)wall;
  return std::rand();                      // unseeded global RNG
}
