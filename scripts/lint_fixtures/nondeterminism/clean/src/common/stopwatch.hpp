#pragma once
// Fixture: src/common/stopwatch.hpp is the sanctioned home for clock
// reads, so the nondeterminism rule must not fire on this file.
#include <chrono>

inline double seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
