// Fixture: deterministic solver code plus one justified suppression;
// the nondeterminism rule must report nothing here.
#include <map>
#include <set>
#include <unordered_map>

int good() {
  std::map<int, int> m;  // ordered iteration: reproducible
  std::set<int> s;
  // Lookups never iterate, so hashing is safe when order can't leak out.
  std::unordered_map<int, int> cache;  // lint:allow nondeterminism -- lookup-only cache, never iterated
  m[1] = 2;
  s.insert(3);
  cache[4] = 5;
  return static_cast<int>(m.size() + s.size() + cache.size());
}
