// Fixture: every registered metric is documented (including via {a,b}
// alternation and a <placeholder> wildcard row) and every concrete
// documented name is registered; the metric-names rule must be silent.
#include <string>

namespace obs {
struct Counter {};
struct Histogram {};
Counter counter(const char*);
Counter counter(const std::string&);
Histogram histogram(const char*);
}  // namespace obs

void good(const std::string& algorithm_name) {
  (void)obs::counter("core.fixture.builds");
  (void)obs::counter("core.fixture.probes");
  (void)obs::histogram("solve.greedy.seconds");
  // Dynamic names are matched by the <algorithm> wildcard row.
  (void)obs::counter("solve." + algorithm_name + ".runs");
}
