// Fixture: one undocumented metric registration; together with the
// unused documented row in docs/OBSERVABILITY.md, the metric-names rule
// must flag both directions.
namespace obs {
struct Counter {};
Counter counter(const char*);
}  // namespace obs

void bad() {
  (void)obs::counter("solver.rogue.metric");  // not in the docs table
}
