// Fixture: every blocking wait in the service layer names its bound.
void drain_everything(Pool& pool, CondVar& cv, UniqueLock& lock) {
  // deadline: every task is bounded by the supervisor's attempt ladder.
  pool.wait_idle();
  cv.wait(lock);  // deadline: notified by the finite job set; shutdown_now.
  // Declarations and definitions of methods *named* wait are not call
  // sites, so they need no annotation:
  struct Queue {
    void wait(int job);
  };
}
