// Fixture: wait calls outside src/service/ are out of the rule's scope —
// a finding here would mean the path filter regressed.
void pump(Pool& pool, CondVar& cv, UniqueLock& lock) {
  pool.wait_idle();
  cv.wait(lock);
}
