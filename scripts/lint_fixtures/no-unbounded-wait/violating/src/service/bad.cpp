// Fixture: blocking waits in the service layer with no `// deadline:`
// comment — every call site below must be flagged.
void drain_everything(Pool& pool, CondVar& cv, UniqueLock& lock) {
  pool.wait_idle();
  cv.wait(lock);
  // A comment that is not a deadline annotation does not count.
  pool_->wait_idle();
}
