#pragma once
// Fixture: self-contained header with pragma-once and no <iostream>;
// the include-hygiene rule must be silent.
#include <string>

struct Widget {
  std::string name;
};

inline const std::string& widget_name(const Widget& w) { return w.name; }
