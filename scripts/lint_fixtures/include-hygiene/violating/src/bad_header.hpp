// Fixture: missing #pragma once, includes <iostream>, and references an
// undeclared type — the include-hygiene rule must flag this header.
#include <iostream>

inline void print_widget(const Widget& w) { std::cout << w.name; }
