// Fixture: owning containers, make_unique, and one justified suppression;
// the naked-new rule must report nothing here.
#include <memory>
#include <vector>

struct Node {
  int v = 0;
};

Node* good() {
  std::vector<int> xs(4, 0);
  auto owned = std::make_unique<Node>();
  // Intentional leak of a process-lifetime singleton.
  static Node* immortal = new Node();  // lint:allow naked-new -- immortal singleton, freed at exit by the OS
  (void)xs;
  (void)owned;
  return immortal;
}
