// Fixture: every allocation here must be flagged by the naked-new rule.
#include <cstdlib>

int* bad() {
  int* a = new int(7);                                   // naked new
  void* b = malloc(16);                                  // C allocation
  void* c = realloc(b, 32);                              // C allocation
  (void)c;
  return a;
}
