#!/usr/bin/env python3
"""Plot the CSV output of the figure benches with matplotlib.

Usage:
    ./build/bench/fig4_served_vs_k --csv fig4.csv
    python3 scripts/plot_figures.py fig4.csv --out fig4.png

The first CSV column is the x axis (K, n, or s); every other column is one
algorithm's served-user series.  Works for all three figure benches.
"""
import argparse
import csv
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path", help="CSV written by a figure bench")
    parser.add_argument("--out", default=None,
                        help="output image (default: <csv>.png)")
    parser.add_argument("--ylabel", default="served users")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; install it to plot", file=sys.stderr)
        return 1

    with open(args.csv_path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        print("CSV has no data rows", file=sys.stderr)
        return 1
    header, data = rows[0], rows[1:]
    x = [float(r[0]) for r in data]

    fig, ax = plt.subplots(figsize=(6, 4))
    markers = ["o", "s", "^", "v", "D", "x"]
    for col in range(1, len(header)):
        y = [float(r[col]) for r in data]
        ax.plot(x, y, marker=markers[(col - 1) % len(markers)],
                label=header[col])
    ax.set_xlabel(header[0])
    ax.set_ylabel(args.ylabel)
    ax.grid(True, alpha=0.3)
    ax.legend()
    fig.tight_layout()
    out = args.out or args.csv_path.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
