#!/usr/bin/env python3
"""Diff two BENCH_coverage.json documents (see docs/OBSERVABILITY.md).

Usage:
    bench_compare.py BASELINE CURRENT [--time-tolerance 0.25]
                     [--min-seconds 0.005] [--ignore-times]

Identity checks (always exact — any mismatch is a failure):
  * schema_version,
  * per-case scenario fingerprint and (seed, users, uavs, s) parameters,
  * per-algorithm served count and solution fingerprint,
  * every metrics counter value and histogram sample count.

Time checks (skipped with --ignore-times): per-algorithm wall times are
normalized by the calibration-workload ratio, then the gate fails when
    normalized_current > baseline * (1 + time_tolerance)
for algorithms whose baseline time is at least --min-seconds (timing
noise dominates below that).  Speedups never fail.

Cases are matched by name; the comparison runs over the intersection so a
`--quick` run can be checked against a full-suite baseline (and vice
versa).  An empty intersection is an error.
"""

import argparse
import json
import sys

# Histogram sums/min/max are wall-clock derived; only the sample counts are
# reproducible.  Gauges (queue depth) depend on thread scheduling.
_SKIPPED_METRIC_FIELDS = ("sum", "min", "max", "buckets")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


class Report:
    def __init__(self):
        self.failures = []
        self.notes = []

    def fail(self, message):
        self.failures.append(message)

    def note(self, message):
        self.notes.append(message)


def compare_algorithms(case_name, base_algos, cur_algos, report):
    cur_by_name = {a["name"]: a for a in cur_algos}
    for base in base_algos:
        name = base["name"]
        cur = cur_by_name.get(name)
        if cur is None:
            report.fail(f"{case_name}: algorithm {name} missing from current")
            continue
        if cur["served"] != base["served"]:
            report.fail(
                f"{case_name}/{name}: served {base['served']} -> "
                f"{cur['served']}"
            )
        if cur["fingerprint"] != base["fingerprint"]:
            report.fail(
                f"{case_name}/{name}: solution fingerprint "
                f"{base['fingerprint']} -> {cur['fingerprint']}"
            )


def compare_times(case_name, base_algos, cur_algos, scale, args, report):
    cur_by_name = {a["name"]: a for a in cur_algos}
    for base in base_algos:
        name = base["name"]
        cur = cur_by_name.get(name)
        if cur is None:
            continue  # already reported as an identity failure
        base_s = base["seconds"]
        if base_s < args.min_seconds:
            continue
        normalized = cur["seconds"] * scale
        limit = base_s * (1.0 + args.time_tolerance)
        if normalized > limit:
            report.fail(
                f"{case_name}/{name}: time regression "
                f"{base_s:.4f}s -> {normalized:.4f}s normalized "
                f"(raw {cur['seconds']:.4f}s, limit {limit:.4f}s)"
            )


def compare_metrics(case_name, base_metrics, cur_metrics, report):
    base_counters = base_metrics.get("counters", {})
    cur_counters = cur_metrics.get("counters", {})
    for name, value in sorted(base_counters.items()):
        if name not in cur_counters:
            report.fail(f"{case_name}: counter {name} missing from current")
        elif cur_counters[name] != value:
            report.fail(
                f"{case_name}: counter {name} {value} -> "
                f"{cur_counters[name]}"
            )
    base_hists = base_metrics.get("histograms", {})
    cur_hists = cur_metrics.get("histograms", {})
    for name, hist in sorted(base_hists.items()):
        if name not in cur_hists:
            report.fail(f"{case_name}: histogram {name} missing from current")
        elif cur_hists[name]["count"] != hist["count"]:
            report.fail(
                f"{case_name}: histogram {name} count {hist['count']} -> "
                f"{cur_hists[name]['count']}"
            )


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_coverage.json against a baseline."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown after normalization (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="skip time checks for baseline times below this (default 5 ms)",
    )
    parser.add_argument(
        "--ignore-times",
        action="store_true",
        help="identity checks only (local runs, VMs with noisy clocks)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    report = Report()

    if baseline["schema_version"] != current["schema_version"]:
        report.fail(
            f"schema_version {baseline['schema_version']} != "
            f"{current['schema_version']}"
        )

    # Calibration ratio > 1 means the current machine is slower than the
    # baseline machine; dividing by it credits the slowdown back.
    scale = 1.0
    if not args.ignore_times:
        base_cal = baseline.get("calibration_seconds", 0.0)
        cur_cal = current.get("calibration_seconds", 0.0)
        if base_cal > 0 and cur_cal > 0:
            scale = base_cal / cur_cal
            report.note(f"calibration scale: {scale:.3f}")
        else:
            report.note("no calibration data; comparing raw times")

    base_cases = {c["name"]: c for c in baseline["cases"]}
    cur_cases = {c["name"]: c for c in current["cases"]}
    shared = [n for n in base_cases if n in cur_cases]
    if not shared:
        report.fail("no common cases between baseline and current")
    for name in sorted(set(base_cases) ^ set(cur_cases)):
        report.note(f"case {name} present in only one document; skipped")

    for name in shared:
        base, cur = base_cases[name], cur_cases[name]
        for field in ("seed", "users", "uavs", "s", "scenario_fingerprint"):
            if base[field] != cur[field]:
                report.fail(
                    f"{name}: {field} {base[field]} != {cur[field]}"
                )
        compare_algorithms(name, base["algorithms"], cur["algorithms"], report)
        compare_metrics(
            name, base.get("metrics", {}), cur.get("metrics", {}), report
        )
        if not args.ignore_times:
            compare_times(
                name, base["algorithms"], cur["algorithms"], scale, args,
                report,
            )

    for note in report.notes:
        print(f"[bench_compare] note: {note}")
    if report.failures:
        for failure in report.failures:
            print(f"[bench_compare] FAIL: {failure}")
        print(f"[bench_compare] {len(report.failures)} failure(s)")
        return 1
    print(f"[bench_compare] OK: {len(shared)} case(s) match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
