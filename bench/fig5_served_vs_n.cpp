// Reproduces Fig. 5: number of served users vs number of to-be-served
// users n (paper: n = 1000..3000, K = 20 UAVs, s = 3).
//
// Default sweeps the paper's exact axis n = 1000..3000 at K = 20 with
// s = 2 (pass --s 3 for the paper's s at a much longer runtime; see
// EXPERIMENTS.md for the scale discussion).
#include <iostream>

#include "common/cli.hpp"
#include "eval/figures.hpp"

int main(int argc, char** argv) {
  uavcov::CliParser cli;
  cli.add_flag("uavs", "fleet size K", "20");
  cli.add_flag("s", "approAlg seed-set size", "2");
  cli.add_flag("cell", "hovering-grid cell side (m); paper uses 50", "300");
  cli.add_flag("candidate-cap", "top-M candidate cells (0 = all covering)",
               "40");
  cli.add_flag("nmin", "smallest user count", "1000");
  cli.add_flag("nmax", "largest user count", "3000");
  cli.add_flag("nstep", "user-count step", "500");
  cli.add_flag("reps", "repetitions averaged per point", "2");
  cli.add_flag("seed", "base RNG seed", "7");
  cli.add_flag("threads", "approAlg worker threads (0 = hardware)", "1");
  cli.add_flag("csv", "CSV output path (empty = none)", "");
  if (!cli.parse(argc, argv)) return 0;

  uavcov::eval::FigureScale scale;
  scale.uavs = static_cast<std::int32_t>(cli.get_int("uavs"));
  scale.s = static_cast<std::int32_t>(cli.get_int("s"));
  scale.cell_side_m = cli.get_double("cell");
  scale.candidate_cap =
      static_cast<std::int32_t>(cli.get_int("candidate-cap"));
  scale.repetitions = static_cast<std::int32_t>(cli.get_int("reps"));
  scale.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  scale.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  scale.csv_path = cli.get_string("csv");

  std::cout << "=== Fig. 5 reproduction: served users vs n (K = "
            << scale.uavs << ", s = " << scale.s << ") ===\n";
  const uavcov::Table table = uavcov::eval::fig5_served_vs_n(
      scale, static_cast<std::int32_t>(cli.get_int("nmin")),
      static_cast<std::int32_t>(cli.get_int("nmax")),
      static_cast<std::int32_t>(cli.get_int("nstep")));
  table.print(std::cout);
  return 0;
}
