// Micro-benchmarks for the §II-D assignment layer on generated scenarios:
// one-shot optimal solve, incremental probes, and the optimal-vs-greedy
// quality gap that justifies using max flow (Lemma 1) over a heuristic.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/common.hpp"
#include "core/assignment.hpp"
#include "workload/scenario_gen.hpp"

namespace {

using namespace uavcov;

Scenario bench_scenario(std::int32_t users, std::int32_t uavs) {
  Rng rng(99);
  workload::ScenarioConfig config;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  return workload::make_disaster_scenario(config, rng);
}

std::vector<Deployment> dense_deployments(const Scenario& sc,
                                          const CoverageModel& cov) {
  const auto candidates = cov.candidate_locations(sc.uav_count());
  std::vector<Deployment> deps;
  const std::int32_t limit = std::min<std::int32_t>(
      sc.uav_count(), static_cast<std::int32_t>(candidates.size()));
  for (const UavId k : IdRange<UavId>{limit}) {
    deps.push_back({k, candidates[k.index()]});
  }
  return deps;
}

void BM_OptimalAssignment(benchmark::State& state) {
  const Scenario sc = bench_scenario(
      static_cast<std::int32_t>(state.range(0)),
      static_cast<std::int32_t>(state.range(1)));
  const CoverageModel cov(sc);
  const auto deps = dense_deployments(sc, cov);
  std::int64_t served = 0;
  for (auto _ : state) {
    served = solve_assignment(sc, cov, deps).served;
    benchmark::DoNotOptimize(served);
  }
  state.counters["served"] = static_cast<double>(served);
}
BENCHMARK(BM_OptimalAssignment)
    ->Args({500, 10})
    ->Args({1500, 20})
    ->Args({3000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_GreedyEstimate(benchmark::State& state) {
  const Scenario sc = bench_scenario(
      static_cast<std::int32_t>(state.range(0)),
      static_cast<std::int32_t>(state.range(1)));
  const CoverageModel cov(sc);
  const auto deps = dense_deployments(sc, cov);
  std::int64_t served = 0;
  for (auto _ : state) {
    served = baselines::greedy_served_estimate(sc, cov, deps);
    benchmark::DoNotOptimize(served);
  }
  state.counters["served"] = static_cast<double>(served);
}
BENCHMARK(BM_GreedyEstimate)
    ->Args({500, 10})
    ->Args({1500, 20})
    ->Args({3000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalProbeOnScenario(benchmark::State& state) {
  const Scenario sc = bench_scenario(1500, 20);
  const CoverageModel cov(sc);
  const auto deps = dense_deployments(sc, cov);
  IncrementalAssignment ia(sc, cov);
  for (std::size_t d = 0; d + 1 < deps.size(); ++d) {
    ia.deploy(deps[d].uav, deps[d].loc);
  }
  const Deployment last = deps.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ia.probe(last.uav, last.loc));
  }
}
BENCHMARK(BM_IncrementalProbeOnScenario)->Unit(benchmark::kMicrosecond);

void BM_CoverageModelBuild(benchmark::State& state) {
  const Scenario sc = bench_scenario(
      static_cast<std::int32_t>(state.range(0)), 20);
  for (auto _ : state) {
    const CoverageModel cov(sc);
    benchmark::DoNotOptimize(cov.radio_class_count());
  }
}
BENCHMARK(BM_CoverageModelBuild)
    ->Arg(500)
    ->Arg(1500)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
