// Motivation-validation bench (paper §I): "if too many users access the
// UAV, each user will experience a very long service delay, e.g., a few
// seconds, and the network throughput also significantly decreases."
//
// One UAV, attached users swept across its sustainable-load point: the
// table should show flat millisecond delays below the knee and delays
// exploding toward the simulation horizon (with drops) beyond it — the
// behavioral justification for the service capacity C_k.
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/rng.hpp"
#include "netsim/service_sim.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("duration", "simulated seconds", "10");
  cli.add_flag("server-pkts", "on-board server packets/second", "100");
  if (!cli.parse(argc, argv)) return 0;

  netsim::ServiceSimConfig config;
  config.duration_s = cli.get_double("duration");
  config.server_pkts_per_s = cli.get_double("server-pkts");
  const std::int32_t knee = netsim::sustainable_users(config);
  std::cout << "=== §I motivation: per-user delay vs attached users (one "
               "UAV) ===\n";
  std::cout << "on-board server sustains ~" << knee
            << " users at the offered load -> that is this UAV's C_k\n\n";

  Table table;
  table.set_header({"attached users", "mean delay (ms)", "p95 delay (ms)",
                    "throughput (kb/s)", "dropped pkts"});
  for (double frac : {0.25, 0.5, 0.75, 0.95, 1.1, 1.5, 2.0}) {
    const auto users = static_cast<std::int32_t>(frac * knee);
    // One UAV in one cell; users scattered inside its radius.
    Scenario sc{
        .grid = Grid(1000, 1000, 1000),
        .altitude_m = 300.0,
        .uav_range_m = 600.0,
        .channel = {},
        .receiver = {},
        .users = {},
        .fleet = {{std::max(users, 1), Radio{}, 500.0}},
    };
    Rng rng(1);
    for (std::int32_t i = 0; i < users; ++i) {
      const double r = 400.0 * std::sqrt(rng.uniform01());
      const double phi = rng.uniform(0, 6.283185307);
      sc.users.push_back(
          {{500.0 + r * std::cos(phi), 500.0 + r * std::sin(phi)}, 2e3});
    }
    Solution sol;
    sol.algorithm = "static";
    sol.deployments = {{UavId{0}, LocationId{0}}};
    sol.user_to_deployment.assign(static_cast<std::size_t>(users), 0);
    sol.served = users;

    const auto result = netsim::simulate_service(sc, sol, config);
    std::int64_t dropped = 0;
    for (const auto& u : result.users) dropped += u.packets_dropped;
    table.add_row({std::to_string(users),
                   format_double(result.mean_delay_s * 1e3, 1),
                   format_double(result.p95_delay_s * 1e3, 1),
                   format_double(result.network_throughput_bps / 1e3, 1),
                   std::to_string(dropped)});
  }
  table.print(std::cout);
  std::cout << "\n(beyond the knee the queue never drains: delays are "
               "bounded only by the simulation horizon)\n";
  return 0;
}
