// Micro-benchmarks for the channel substrate: per-link evaluation cost and
// the derived-geometry solvers.
#include <benchmark/benchmark.h>

#include "channel/a2g.hpp"
#include "channel/link_budget.hpp"
#include "channel/radius.hpp"
#include "common/rng.hpp"

namespace {

using namespace uavcov;

void BM_A2gPathloss(benchmark::State& state) {
  const ChannelParams params{};
  Rng rng(1);
  std::vector<double> distances;
  for (int i = 0; i < 1024; ++i) distances.push_back(rng.uniform(10, 3000));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a2g_pathloss_db(params, distances[i++ & 1023], 300.0));
  }
}
BENCHMARK(BM_A2gPathloss);

void BM_A2gRate(benchmark::State& state) {
  const ChannelParams params{};
  const Radio radio{};
  const Receiver rx{};
  Rng rng(2);
  std::vector<double> distances;
  for (int i = 0; i < 1024; ++i) distances.push_back(rng.uniform(10, 3000));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a2g_rate_bps(params, radio, rx, distances[i++ & 1023], 300.0));
  }
}
BENCHMARK(BM_A2gRate);

void BM_MaxServiceRadius(benchmark::State& state) {
  const ChannelParams params{};
  const Radio radio{};
  const Receiver rx{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        max_service_radius(params, radio, rx, 300.0, 2e3));
  }
}
BENCHMARK(BM_MaxServiceRadius)->Unit(benchmark::kMicrosecond);

void BM_OptimalAltitude(benchmark::State& state) {
  const ChannelParams params{};
  const Radio radio{};
  const Receiver rx{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_altitude(params, radio, rx, 2e6));
  }
}
BENCHMARK(BM_OptimalAltitude)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
