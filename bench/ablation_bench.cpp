// Ablation bench for Algorithm 2's engineering knobs (DESIGN.md §3/§4):
//
//   A. candidate-cap M          — quality/time trade-off of pruning the
//                                 candidate cell set;
//   B. seed-pair pruning        — lossless subset filter (same answer,
//                                 fewer subsets);
//   C. lazy vs plain greedy     — identical output, fewer flow probes;
//   D. capacity order           — largest-first (paper) vs smallest-first:
//                                 isolates the heterogeneity-awareness win;
//   E. leftover-UAV fill        — our extension beyond the paper (grounded
//                                 UAVs get spent on adjacent cells);
//   F. refinement headroom      — how much the local-search post-optimizer
//                                 adds to each algorithm's output;
//   G. parallel subset search   — wall-clock scaling of the threaded
//                                 seed-subset engine (identical output by
//                                 construction, see DESIGN.md §7).
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "baselines/greedy_assign.hpp"
#include "baselines/kmeans_place.hpp"
#include "baselines/mcs.hpp"
#include "core/appro_alg.hpp"
#include "core/refine.hpp"
#include "workload/scenario_gen.hpp"

int main(int argc, char** argv) {
  using namespace uavcov;
  CliParser cli;
  cli.add_flag("users", "number of ground users", "1000");
  cli.add_flag("uavs", "fleet size K", "14");
  cli.add_flag("s", "approAlg seed-set size", "2");
  cli.add_flag("seed", "RNG seed", "7");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  workload::ScenarioConfig config;
  config.user_count = static_cast<std::int32_t>(cli.get_int("users"));
  config.fleet.uav_count = static_cast<std::int32_t>(cli.get_int("uavs"));
  const Scenario scenario = workload::make_disaster_scenario(config, rng);
  const CoverageModel coverage(scenario);
  const auto s = static_cast<std::int32_t>(cli.get_int("s"));

  auto run = [&](const ApproAlgParams& params, ApproAlgStats& stats) {
    const Solution sol = appro_alg(scenario, coverage, params, &stats);
    validate_solution(scenario, coverage, sol);
    return sol.served;
  };

  std::cout << "=== Ablation A: candidate cap M (s = " << s << ") ===\n";
  {
    Table t;
    t.set_header({"cap", "candidates", "subsets", "served", "seconds"});
    for (std::int32_t cap : {10, 20, 40, 80, 0}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = cap;
      ApproAlgStats stats;
      const auto served = run(params, stats);
      t.add_row({cap == 0 ? "all" : std::to_string(cap),
                 std::to_string(stats.candidates),
                 std::to_string(stats.subsets_evaluated),
                 std::to_string(served), format_double(stats.seconds, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation B: seed-pair pruning ===\n";
  {
    Table t;
    t.set_header({"pruning", "subsets", "served", "seconds"});
    for (bool prune : {false, true}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = 40;
      params.prune_seed_pairs = prune;
      ApproAlgStats stats;
      const auto served = run(params, stats);
      t.add_row({prune ? "on" : "off",
                 std::to_string(stats.subsets_evaluated),
                 std::to_string(served), format_double(stats.seconds, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation C: lazy vs plain greedy ===\n";
  {
    Table t;
    t.set_header({"greedy", "flow probes", "served", "seconds"});
    for (bool lazy : {false, true}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = 40;
      params.lazy_greedy = lazy;
      ApproAlgStats stats;
      const auto served = run(params, stats);
      t.add_row({lazy ? "lazy" : "plain", std::to_string(stats.probes),
                 std::to_string(served), format_double(stats.seconds, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation D: UAV deployment order (heterogeneity "
               "awareness) ===\n";
  {
    Table t;
    t.set_header({"order", "served", "seconds"});
    for (bool ascending : {false, true}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = 40;
      params.capacity_ascending = ascending;
      ApproAlgStats stats;
      const auto served = run(params, stats);
      t.add_row({ascending ? "smallest-first" : "largest-first (paper)",
                 std::to_string(served), format_double(stats.seconds, 3)});
    }
    t.print(std::cout);
  }
  std::cout << "\n=== Ablation E: leftover-UAV fill (extension beyond the "
               "paper) ===\n";
  {
    Table t;
    t.set_header({"leftover fill", "deployed", "served", "seconds"});
    for (bool fill : {false, true}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = 40;
      params.fill_leftover_uavs = fill;
      ApproAlgStats stats;
      const Solution sol = appro_alg(scenario, coverage, params, &stats);
      validate_solution(scenario, coverage, sol);
      t.add_row({fill ? "on" : "off (paper)",
                 std::to_string(sol.deployments.size()),
                 std::to_string(sol.served),
                 format_double(stats.seconds, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation F: local-search refinement headroom ===\n";
  {
    Table t;
    t.set_header({"algorithm", "served", "after refine", "moves"});
    auto refine_row = [&](Solution sol) {
      const std::int64_t before = sol.served;
      const RefineStats rs = refine_solution(scenario, coverage, sol);
      t.add_row({sol.algorithm, std::to_string(before),
                 std::to_string(sol.served),
                 std::to_string(rs.relocations + rs.swaps)});
    };
    ApproAlgParams params;
    params.s = s;
    params.candidate_cap = 40;
    refine_row(appro_alg(scenario, coverage, params));
    refine_row(baselines::solve(scenario, coverage, baselines::McsParams{}));
    refine_row(
        baselines::solve(scenario, coverage, baselines::GreedyAssignParams{}));
    refine_row(
        baselines::solve(scenario, coverage, baselines::KMeansParams{}));
    t.print(std::cout);
  }

  std::cout << "\n=== Ablation G: parallel subset search (threads) ===\n";
  {
    // Uncapped candidates so the subset fan-out is large enough for the
    // workers to matter (>= 100 candidate locations at default scale).
    Table t;
    t.set_header({"threads", "candidates", "subsets", "served", "seconds",
                  "speedup"});
    double serial_seconds = 0.0;
    std::int64_t serial_served = 0;
    for (std::int32_t threads : {1, 2, 4}) {
      ApproAlgParams params;
      params.s = s;
      params.candidate_cap = 0;
      params.threads = threads;
      ApproAlgStats stats;
      const auto served = run(params, stats);
      if (threads == 1) {
        serial_seconds = stats.seconds;
        serial_served = served;
      }
      // The parallel path is bit-identical to serial; fail loudly if not.
      UAVCOV_CHECK_MSG(served == serial_served,
                       "parallel served count diverged from serial");
      t.add_row({std::to_string(threads), std::to_string(stats.candidates),
                 std::to_string(stats.subsets_evaluated),
                 std::to_string(served), format_double(stats.seconds, 3),
                 format_double(serial_seconds / stats.seconds, 2) + "x"});
    }
    t.print(std::cout);
  }

  return 0;
}
