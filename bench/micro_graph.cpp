// Micro-benchmarks for the graph substrate at deployment-relevant scales
// (the paper's literal grid is 60×60 = 3600 cells).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/articulation.hpp"
#include "graph/bfs.hpp"
#include "graph/euler.hpp"
#include "graph/mst.hpp"

namespace {

using namespace uavcov;

Graph grid_graph(std::int32_t side, double range_cells) {
  const Grid grid(side * 100.0, side * 100.0, 100.0);
  return build_location_graph(grid, range_cells * 100.0);
}

void BM_BuildLocationGraph(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Grid grid(side * 100.0, side * 100.0, 100.0);
  for (auto _ : state) {
    const Graph g = build_location_graph(grid, 150.0);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BuildLocationGraph)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)  // the paper's 3600-cell grid
    ->Unit(benchmark::kMillisecond);

void BM_MultiSourceBfs(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Graph g = grid_graph(side, 1.5);
  const NodeId sources[] = {0, static_cast<NodeId>(side * side / 2),
                            static_cast<NodeId>(side * side - 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, sources));
  }
}
BENCHMARK(BM_MultiSourceBfs)->Arg(10)->Arg(30)->Arg(60)->Unit(
    benchmark::kMicrosecond);

void BM_PrimDense(benchmark::State& state) {
  // MST over L_max chosen locations (hop-distance matrix), the relay
  // stitching inner step.  k = 12 matches L_max at K = 20, s = 3.
  const NodeId k = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  std::vector<double> w(static_cast<std::size_t>(k) *
                        static_cast<std::size_t>(k));
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId j = i; j < k; ++j) {
      const double v = (i == j) ? 0.0 : rng.uniform(1.0, 12.0);
      w[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
        static_cast<std::size_t>(j)] = v;
      w[static_cast<std::size_t>(j) * static_cast<std::size_t>(k) +
        static_cast<std::size_t>(i)] = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim_mst_dense(w, k));
  }
}
BENCHMARK(BM_PrimDense)->Arg(8)->Arg(12)->Arg(20);

void BM_ArticulationPoints(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const Graph g = grid_graph(side, 1.1);  // 4-neighbor grid
  for (auto _ : state) {
    benchmark::DoNotOptimize(articulation_points(g));
  }
}
BENCHMARK(BM_ArticulationPoints)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->Unit(benchmark::kMicrosecond);

void BM_EulerDoubledTree(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> tree;
  for (NodeId v = 1; v < n; ++v) {
    tree.emplace_back(
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v))),
        v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_double_euler_path(n, tree));
  }
}
BENCHMARK(BM_EulerDoubledTree)->Arg(20)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
