// Micro-benchmarks (google-benchmark) for the flow substrate: from-scratch
// Dinic vs the incremental probe path that Algorithm 2's greedy relies on.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "flow/dinic.hpp"

namespace {

using uavcov::DinicFlow;
using uavcov::Rng;

struct BipartiteInstance {
  std::int32_t users;
  std::int32_t uavs;
  std::vector<std::vector<std::int32_t>> eligible;  // per uav: user list
  std::vector<std::int64_t> capacity;
};

BipartiteInstance make_instance(std::int32_t users, std::int32_t uavs,
                                std::int32_t degree, std::uint64_t seed) {
  Rng rng(seed);
  BipartiteInstance inst{users, uavs, {}, {}};
  inst.eligible.resize(static_cast<std::size_t>(uavs));
  for (auto& list : inst.eligible) {
    for (std::int32_t d = 0; d < degree; ++d) {
      list.push_back(static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(users))));
    }
    inst.capacity.push_back(
        50 + static_cast<std::int64_t>(rng.next_below(250)));
  }
  return inst;
}

/// Build s/t/users base network; returns (s, t, user nodes).
std::tuple<DinicFlow::FlowNode, DinicFlow::FlowNode,
           std::vector<DinicFlow::FlowNode>>
build_base(DinicFlow& f, std::int32_t users) {
  const auto s = f.add_node();
  const auto t = f.add_node();
  std::vector<DinicFlow::FlowNode> user_node;
  for (std::int32_t i = 0; i < users; ++i) {
    user_node.push_back(f.add_node());
    f.add_edge(s, user_node.back(), 1);
  }
  return {s, t, user_node};
}

void add_uav(DinicFlow& f, const BipartiteInstance& inst,
             const std::vector<DinicFlow::FlowNode>& user_node,
             DinicFlow::FlowNode t, std::int32_t k) {
  const auto uav = f.add_node();
  for (std::int32_t u : inst.eligible[static_cast<std::size_t>(k)]) {
    f.add_edge(user_node[static_cast<std::size_t>(u)], uav, 1);
  }
  f.add_edge(uav, t, inst.capacity[static_cast<std::size_t>(k)]);
}

void BM_DinicFromScratch(benchmark::State& state) {
  const auto users = static_cast<std::int32_t>(state.range(0));
  const auto uavs = static_cast<std::int32_t>(state.range(1));
  const auto inst = make_instance(users, uavs, /*degree=*/users / 8, 42);
  std::int64_t flow_value = 0;
  for (auto _ : state) {
    DinicFlow f;
    auto [s, t, user_node] = build_base(f, users);
    for (std::int32_t k = 0; k < uavs; ++k) add_uav(f, inst, user_node, t, k);
    flow_value = f.augment(s, t);
    benchmark::DoNotOptimize(flow_value);
  }
  state.counters["served"] = static_cast<double>(flow_value);
}
BENCHMARK(BM_DinicFromScratch)
    ->Args({500, 10})
    ->Args({1500, 20})
    ->Args({3000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalProbe(benchmark::State& state) {
  // Cost of one probe (add candidate UAV, augment, roll back) on a network
  // that already carries K−1 deployed UAVs — Algorithm 2's inner loop.
  const auto users = static_cast<std::int32_t>(state.range(0));
  const auto uavs = static_cast<std::int32_t>(state.range(1));
  const auto inst = make_instance(users, uavs, users / 8, 42);
  DinicFlow f;
  auto [s, t, user_node] = build_base(f, users);
  for (std::int32_t k = 0; k + 1 < uavs; ++k) add_uav(f, inst, user_node, t, k);
  f.augment(s, t);
  for (auto _ : state) {
    const auto cp = f.checkpoint();
    add_uav(f, inst, user_node, t, uavs - 1);
    benchmark::DoNotOptimize(f.augment(s, t));
    f.rollback(cp);
  }
}
BENCHMARK(BM_IncrementalProbe)
    ->Args({500, 10})
    ->Args({1500, 20})
    ->Args({3000, 20})
    ->Unit(benchmark::kMicrosecond);

void BM_CheckpointOverhead(benchmark::State& state) {
  // Checkpoint + rollback with no changes: the fixed cost per probe.
  DinicFlow f;
  auto [s, t, user_node] = build_base(f, 1000);
  (void)s;
  (void)t;
  (void)user_node;
  for (auto _ : state) {
    const auto cp = f.checkpoint();
    f.rollback(cp);
  }
}
BENCHMARK(BM_CheckpointOverhead);

}  // namespace

BENCHMARK_MAIN();
