// Reproduces Fig. 6(a) (served users vs s) and Fig. 6(b) (running time vs
// s) in one sweep (paper: s = 1..4, n = 3000 users, K = 20; their runtimes
// were 0.34 s / 3.1 s / 95 s / 47 min on an i5-10400).
//
// Default sweeps s = 1..3; --smax 4 adds the paper's most expensive point
// (expect a long run, exactly as the paper reports).
#include <iostream>

#include "common/cli.hpp"
#include "eval/figures.hpp"

int main(int argc, char** argv) {
  uavcov::CliParser cli;
  cli.add_flag("users", "number of ground users n", "3000");
  cli.add_flag("uavs", "fleet size K", "20");
  cli.add_flag("cell", "hovering-grid cell side (m); paper uses 50", "300");
  cli.add_flag("candidate-cap", "top-M candidate cells (0 = all covering)",
               "40");
  cli.add_flag("smin", "smallest s", "1");
  cli.add_flag("smax", "largest s", "3");
  cli.add_flag("reps", "repetitions averaged per point", "1");
  cli.add_flag("seed", "base RNG seed", "7");
  cli.add_flag("threads", "approAlg worker threads (0 = hardware)", "1");
  cli.add_flag("csv", "CSV output path for 6(a) (empty = none)", "");
  if (!cli.parse(argc, argv)) return 0;

  uavcov::eval::FigureScale scale;
  scale.users = static_cast<std::int32_t>(cli.get_int("users"));
  scale.uavs = static_cast<std::int32_t>(cli.get_int("uavs"));
  scale.cell_side_m = cli.get_double("cell");
  scale.candidate_cap =
      static_cast<std::int32_t>(cli.get_int("candidate-cap"));
  scale.repetitions = static_cast<std::int32_t>(cli.get_int("reps"));
  scale.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  scale.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  scale.csv_path = cli.get_string("csv");

  uavcov::Table runtime;
  std::cout << "=== Fig. 6(a) reproduction: served users vs s (n = "
            << scale.users << ", K = " << scale.uavs << ") ===\n";
  const uavcov::Table served = uavcov::eval::fig6_s_tradeoff(
      scale, runtime, static_cast<std::int32_t>(cli.get_int("smin")),
      static_cast<std::int32_t>(cli.get_int("smax")));
  served.print(std::cout);
  std::cout << "\n=== Fig. 6(b) reproduction: running time (seconds) vs s "
               "===\n";
  runtime.print(std::cout);
  return 0;
}
