// Benchmark-regression runner (docs/OBSERVABILITY.md): executes a pinned-
// seed suite of scenarios through approAlg and every baseline and emits a
// schema-versioned BENCH_coverage.json with, per case:
//   * the scenario fingerprint (generator identity),
//   * per-algorithm served count, solution fingerprint, and best-of-repeats
//     wall time,
//   * the full metrics snapshot of one run (counters are deterministic:
//     threads = 1 and the registry is reset before the measured repeat).
// scripts/bench_compare.py diffs the document against the committed
// baseline at the repo root; CI's bench-smoke job runs `--quick`.
//
// Everything except wall times is bit-reproducible across machines.  Times
// are normalized by the calibration workload below before comparison.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/fingerprint.hpp"
#include "common/stopwatch.hpp"
#include "core/assignment.hpp"
#include "eval/experiment.hpp"
#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/repair.hpp"
#include "service/service.hpp"
#include "stream/engine.hpp"
#include "workload/builder.hpp"

namespace {

using uavcov::Fnv1a;

struct BenchCase {
  std::string name;
  std::uint64_t seed = 1;
  std::int32_t users = 400;
  std::int32_t uavs = 8;
  std::int32_t s = 2;
  std::int32_t capacity_max = 150;  ///< C_max (C_min stays at 50).
  bool quick = true;                ///< part of the --quick subset.
};

/// The pinned suite.  Append-only: renaming or reseeding a case silently
/// invalidates the committed baseline, so add new cases instead.
std::vector<BenchCase> suite() {
  return {
      {"small_s1", 101, 300, 6, 1, 100, true},
      {"small_s2", 102, 400, 8, 2, 100, true},
      {"medium_s2", 103, 800, 10, 2, 150, true},
      {"medium_s3", 104, 800, 12, 3, 150, false},
      {"large_s2", 105, 2000, 16, 2, 300, false},
  };
}

uavcov::eval::RunConfig make_config(const BenchCase& c) {
  uavcov::eval::RunConfig config;
  config.seed = c.seed;
  config.scenario.user_count = c.users;
  config.scenario.fleet.uav_count = c.uavs;
  config.scenario.fleet.capacity_max = c.capacity_max;
  config.appro.s = c.s;
  config.appro.candidate_cap = 40;
  config.appro.threads = 1;  // deterministic metrics counters
  config.run_random = true;
  return config;
}

/// Fixed CPU-bound workload (FNV over a synthetic buffer) whose wall time
/// proxies single-core speed.  bench_compare.py divides solver times by
/// the calibration ratio so a faster/slower CI machine does not trip the
/// regression gate.
double calibration_seconds() {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const uavcov::Stopwatch watch;
    Fnv1a h;
    for (std::uint64_t i = 0; i < 2'000'000; ++i) h.mix(i);
    // Consume the digest so the loop cannot be optimized away.
    volatile std::uint64_t sink = h.digest();
    (void)sink;
    best = std::min(best, watch.elapsed_s());
  }
  return best;
}

/// Process peak RSS in bytes (Linux ru_maxrss is KiB).
std::int64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  uavcov::CliParser cli;
  cli.add_flag("quick", "run only the quick subset (CI bench-smoke)", "false");
  cli.add_flag("repeats", "timed repeats per case (min wall time wins)", "3");
  cli.add_flag("out", "output JSON path", "BENCH_coverage.json");
  if (!cli.parse(argc, argv)) return 0;

  const bool quick = cli.get_bool("quick");
  const auto repeats = static_cast<std::int32_t>(cli.get_int("repeats"));
  UAVCOV_CHECK_MSG(repeats >= 1, "--repeats must be >= 1");

  uavcov::obs::Registry& registry = uavcov::obs::Registry::instance();
  registry.set_enabled(true);

  uavcov::obs::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", std::int64_t{1});
  w.kv("suite", quick ? "quick" : "full");
  w.kv("calibration_seconds", calibration_seconds());
  w.key("cases").begin_array();

  for (const BenchCase& c : suite()) {
    if (quick && !c.quick) continue;
    std::cerr << "[bench_runner] " << c.name << " (n=" << c.users
              << ", K=" << c.uavs << ", s=" << c.s << ")\n";
    const uavcov::eval::RunConfig config = make_config(c);
    uavcov::Rng rng(config.seed);
    const uavcov::Scenario scenario =
        uavcov::workload::make_disaster_scenario(config.scenario, rng);
    const uavcov::CoverageModel coverage(scenario);

    // Best-of-repeats timing; the registry is reset before the *last*
    // repeat so the embedded snapshot counts exactly one run of each
    // algorithm — bit-reproducible with threads = 1.
    std::vector<uavcov::eval::AlgoResult> results;
    std::vector<double> best_seconds;
    for (std::int32_t rep = 0; rep < repeats; ++rep) {
      if (rep == repeats - 1) registry.reset();
      const std::vector<uavcov::eval::AlgoResult> run =
          uavcov::eval::run_all_on(scenario, coverage, config);
      if (results.empty()) {
        results = run;
        for (const auto& r : run) best_seconds.push_back(r.seconds);
      } else {
        UAVCOV_CHECK_MSG(run.size() == results.size(),
                         "algorithm set changed between repeats");
        for (std::size_t i = 0; i < run.size(); ++i) {
          UAVCOV_CHECK_MSG(run[i].fingerprint == results[i].fingerprint,
                           "non-deterministic solver output for " +
                               run[i].name + " in case " + c.name);
          best_seconds[i] = std::min(best_seconds[i], run[i].seconds);
        }
      }
    }
    const uavcov::obs::Snapshot snapshot = registry.snapshot();

    w.begin_object();
    w.kv("name", c.name);
    w.kv("seed", static_cast<std::int64_t>(c.seed));
    w.kv("users", c.users);
    w.kv("uavs", c.uavs);
    w.kv("s", c.s);
    w.kv("scenario_fingerprint",
         uavcov::fingerprint_hex(scenario.fingerprint()));
    w.key("algorithms").begin_array();
    for (std::size_t i = 0; i < results.size(); ++i) {
      w.begin_object();
      w.kv("name", results[i].name);
      w.kv("served", results[i].served);
      w.kv("fingerprint", uavcov::fingerprint_hex(results[i].fingerprint));
      w.kv("seconds", best_seconds[i]);
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    uavcov::obs::write_snapshot(w, snapshot);
    w.end_object();
  }

  // Failure-repair drill (docs/RESILIENCE.md): one pinned (scenario,
  // fault plan) pair through deploy → inject → self-healing repair.
  // Append-only like the solver suite; part of the quick subset.  The
  // identity entries are the initial deployment and the post-drill
  // solution, so any behavioral change to fault injection or repair
  // moves a pinned fingerprint here.
  {
    const BenchCase c{"repair_drill_s2", 106, 500, 10, 2, 150, true};
    std::cerr << "[bench_runner] " << c.name << " (n=" << c.users
              << ", K=" << c.uavs << ", s=" << c.s << ")\n";
    const uavcov::eval::RunConfig config = make_config(c);
    uavcov::Rng rng(config.seed);
    const uavcov::Scenario scenario =
        uavcov::workload::make_disaster_scenario(config.scenario, rng);

    uavcov::resilience::RepairPolicy policy;
    policy.appro = config.appro;
    uavcov::resilience::FaultPlanConfig faults;
    faults.events = 3;
    faults.include_gateway_loss = true;  // exercises the escalation path
    const uavcov::resilience::FaultPlan plan =
        uavcov::resilience::make_fault_plan(scenario, faults, c.seed * 1009);

    std::uint64_t initial_fp = 0;
    std::uint64_t final_fp = 0;
    std::int64_t initial_served = 0;
    std::int64_t final_served = 0;
    double deploy_seconds = 1e300;
    double repair_seconds = 1e300;
    for (std::int32_t rep = 0; rep < repeats; ++rep) {
      if (rep == repeats - 1) registry.reset();
      uavcov::resilience::RepairController controller(scenario, policy);
      const uavcov::Stopwatch deploy_watch;
      const uavcov::Solution& initial = controller.deploy();
      const double deploy_s = deploy_watch.elapsed_s();
      const std::uint64_t fp0 = initial.fingerprint();
      const std::int64_t served0 = initial.served;
      const uavcov::Stopwatch repair_watch;
      for (const uavcov::resilience::FaultEvent& e : plan.events) {
        controller.on_fault(e);
      }
      const double repair_s = repair_watch.elapsed_s();
      if (rep == 0) {
        initial_fp = fp0;
        initial_served = served0;
        final_fp = controller.current().fingerprint();
        final_served = controller.current().served;
      } else {
        UAVCOV_CHECK_MSG(fp0 == initial_fp &&
                             controller.current().fingerprint() == final_fp,
                         "non-deterministic repair drill in repair_drill_s2");
      }
      deploy_seconds = std::min(deploy_seconds, deploy_s);
      repair_seconds = std::min(repair_seconds, repair_s);
    }
    const uavcov::obs::Snapshot snapshot = registry.snapshot();

    w.begin_object();
    w.kv("name", c.name);
    w.kv("seed", static_cast<std::int64_t>(c.seed));
    w.kv("users", c.users);
    w.kv("uavs", c.uavs);
    w.kv("s", c.s);
    w.kv("scenario_fingerprint",
         uavcov::fingerprint_hex(scenario.fingerprint()));
    w.kv("fault_plan_fingerprint",
         uavcov::fingerprint_hex(plan.fingerprint()));
    w.key("algorithms").begin_array();
    w.begin_object();
    w.kv("name", "approAlg_initial");
    w.kv("served", initial_served);
    w.kv("fingerprint", uavcov::fingerprint_hex(initial_fp));
    w.kv("seconds", deploy_seconds);
    w.end_object();
    w.begin_object();
    w.kv("name", "repair_final");
    w.kv("served", final_served);
    w.kv("fingerprint", uavcov::fingerprint_hex(final_fp));
    w.kv("seconds", repair_seconds);
    w.end_object();
    w.end_array();
    w.key("metrics");
    uavcov::obs::write_snapshot(w, snapshot);
    w.end_object();
  }

  // Million-user hot-path cases (docs/FORMATS.md): generate → binary save →
  // binary load (fingerprint-checked) → CoverageModel (FlatScenario CSR
  // build) → deterministic greedy placement + max-flow assignment.  The
  // placement pairs capacity-descending UAVs with the top max-coverage
  // cells and skips the relay stitching — this benchmarks the IO and
  // flat-index layers, not the paper algorithm.  load/save/coverage times
  // and peak RSS ride along as extra keys (bench_compare.py ignores keys
  // it does not know; served counts and fingerprints are identity-checked
  // like every other case).
  {
    struct FlatCase {
      std::string name;
      std::uint64_t seed;
      std::int32_t users;
      std::int32_t uavs;
      double side_m;
      bool quick;
    };
    const std::vector<FlatCase> flat_cases = {
        {"flat_100k_users", 108, 100'000, 12, 6000.0, true},
        {"flat_1m_users", 107, 1'000'000, 20, 12000.0, false},
    };
    const std::string out_path = cli.get_string("out");
    for (const FlatCase& c : flat_cases) {
      if (quick && !c.quick) continue;
      std::cerr << "[bench_runner] " << c.name << " (n=" << c.users
                << ", K=" << c.uavs << ")\n";
      const uavcov::Scenario scenario =
          uavcov::workload::ScenarioBuilder()
              .area(c.side_m, c.side_m)
              .cell_side(600.0)
              .users(c.users)
              .uavs(c.uavs)
              .seed(c.seed)
              .build();
      const std::string bin_path = out_path + "." + c.name + ".bin";

      double save_seconds = 1e300;
      double load_seconds = 1e300;
      double coverage_seconds = 1e300;
      double solve_seconds = 1e300;
      std::int64_t served = 0;
      std::uint64_t solution_fp = 0;
      for (std::int32_t rep = 0; rep < repeats; ++rep) {
        if (rep == repeats - 1) registry.reset();
        const uavcov::Stopwatch save_watch;
        uavcov::io::save_scenario_file(bin_path, scenario,
                                       uavcov::io::Format::kBinary);
        save_seconds = std::min(save_seconds, save_watch.elapsed_s());

        const uavcov::Stopwatch load_watch;
        const uavcov::Scenario loaded =
            uavcov::io::load_scenario_file(bin_path);
        load_seconds = std::min(load_seconds, load_watch.elapsed_s());
        UAVCOV_CHECK_MSG(loaded.fingerprint() == scenario.fingerprint(),
                         "binary round trip changed the scenario in " +
                             c.name);

        const uavcov::Stopwatch coverage_watch;
        const uavcov::CoverageModel coverage(loaded);
        coverage_seconds =
            std::min(coverage_seconds, coverage_watch.elapsed_s());

        const uavcov::Stopwatch solve_watch;
        const std::vector<uavcov::LocationId> candidates =
            coverage.candidate_locations(loaded.uav_count());
        const std::vector<uavcov::UavId> order =
            loaded.uavs_by_capacity_desc();
        std::vector<uavcov::Deployment> deployments;
        for (std::size_t i = 0;
             i < candidates.size() &&
             i < static_cast<std::size_t>(loaded.uav_count());
             ++i) {
          deployments.push_back({order[i], candidates[i]});
        }
        const uavcov::AssignmentResult assignment =
            uavcov::solve_assignment(loaded, coverage, deployments);
        solve_seconds = std::min(solve_seconds, solve_watch.elapsed_s());

        uavcov::Solution solution;
        solution.algorithm = "greedy_place_flow";
        solution.deployments = deployments;
        solution.user_to_deployment = assignment.user_to_deployment;
        solution.served = assignment.served;
        if (rep == 0) {
          served = solution.served;
          solution_fp = solution.fingerprint();
        } else {
          UAVCOV_CHECK_MSG(solution.fingerprint() == solution_fp,
                           "non-deterministic flat-case solve in " + c.name);
        }
      }
      const uavcov::obs::Snapshot snapshot = registry.snapshot();
      std::remove(bin_path.c_str());

      w.begin_object();
      w.kv("name", c.name);
      w.kv("seed", static_cast<std::int64_t>(c.seed));
      w.kv("users", c.users);
      w.kv("uavs", c.uavs);
      w.kv("s", 1);
      w.kv("scenario_fingerprint",
           uavcov::fingerprint_hex(scenario.fingerprint()));
      w.kv("save_seconds", save_seconds);
      w.kv("load_seconds", load_seconds);
      w.kv("coverage_seconds", coverage_seconds);
      w.kv("peak_rss_bytes", peak_rss_bytes());
      w.key("algorithms").begin_array();
      w.begin_object();
      w.kv("name", "greedy_place_flow");
      w.kv("served", served);
      w.kv("fingerprint", uavcov::fingerprint_hex(solution_fp));
      w.kv("seconds", solve_seconds);
      w.end_object();
      w.end_array();
      w.key("metrics");
      uavcov::obs::write_snapshot(w, snapshot);
      w.end_object();
    }
  }

  // Streaming churn drill (docs/STREAMING.md): one pinned (scenario,
  // churn trace) pair through the StreamEngine — epoch-batched ingest,
  // delta patches, hysteresis-gated full re-solves.  Append-only like the
  // other cases; part of the quick subset.  The identity entries are the
  // first-epoch full solve and the final standing solution, so any
  // behavioral change to the trace generator, ingest, patch path, or
  // hysteresis moves a pinned fingerprint here; the stream.* counters land
  // in the embedded metrics snapshot.
  {
    const BenchCase c{"stream_churn_s1", 109, 400, 8, 2, 150, true};
    std::cerr << "[bench_runner] " << c.name << " (n=" << c.users
              << ", K=" << c.uavs << ", s=" << c.s << ")\n";
    const uavcov::eval::RunConfig config = make_config(c);
    uavcov::Rng rng(config.seed);
    const uavcov::Scenario scenario =
        uavcov::workload::make_disaster_scenario(config.scenario, rng);

    uavcov::stream::ChurnTraceConfig trace_config;
    trace_config.epochs = 8;
    trace_config.max_arrivals_per_epoch = 12;
    trace_config.max_departures_per_epoch = 8;
    trace_config.flash_crowd_epoch = 4;
    trace_config.flash_crowd_size = 40;
    const uavcov::stream::ChurnTrace trace =
        uavcov::stream::generate_trace(scenario, trace_config,
                                       c.seed * 1013);

    uavcov::stream::StreamPolicy policy;
    policy.appro = config.appro;
    std::uint64_t initial_fp = 0;
    std::uint64_t final_fp = 0;
    std::int64_t initial_served = 0;
    std::int64_t final_served = 0;
    std::int64_t full_solves = 0;
    std::int64_t patches = 0;
    double stream_seconds = 1e300;
    for (std::int32_t rep = 0; rep < repeats; ++rep) {
      if (rep == repeats - 1) registry.reset();
      uavcov::stream::StreamEngine engine(scenario, policy);
      const uavcov::Stopwatch watch;
      const std::vector<uavcov::stream::EpochResult> results =
          engine.run(trace);
      const double run_s = watch.elapsed_s();
      const std::uint64_t fp0 = results.front().solution.fingerprint();
      const std::uint64_t fpN = results.back().solution.fingerprint();
      if (rep == 0) {
        initial_fp = fp0;
        initial_served = results.front().solution.served;
        final_fp = fpN;
        final_served = results.back().solution.served;
        full_solves = engine.full_solves();
        patches = engine.patches();
      } else {
        UAVCOV_CHECK_MSG(fp0 == initial_fp && fpN == final_fp &&
                             engine.full_solves() == full_solves,
                         "non-deterministic streamed run in stream_churn_s1");
      }
      stream_seconds = std::min(stream_seconds, run_s);
    }
    const uavcov::obs::Snapshot snapshot = registry.snapshot();

    w.begin_object();
    w.kv("name", c.name);
    w.kv("seed", static_cast<std::int64_t>(c.seed));
    w.kv("users", c.users);
    w.kv("uavs", c.uavs);
    w.kv("s", c.s);
    w.kv("scenario_fingerprint",
         uavcov::fingerprint_hex(scenario.fingerprint()));
    w.kv("trace_fingerprint", uavcov::fingerprint_hex(trace.fingerprint()));
    w.kv("full_solves", full_solves);
    w.kv("patches", patches);
    w.key("algorithms").begin_array();
    w.begin_object();
    w.kv("name", "stream_initial");
    w.kv("served", initial_served);
    w.kv("fingerprint", uavcov::fingerprint_hex(initial_fp));
    w.kv("seconds", stream_seconds);
    w.end_object();
    w.begin_object();
    w.kv("name", "stream_final");
    w.kv("served", final_served);
    w.kv("fingerprint", uavcov::fingerprint_hex(final_fp));
    w.kv("seconds", stream_seconds);
    w.end_object();
    w.end_array();
    w.key("metrics");
    uavcov::obs::write_snapshot(w, snapshot);
    w.end_object();
  }

  // Sharded mission-service drill (docs/SERVICE.md): one pinned
  // (scenario, tiling, shard-fault plan) triple through solve_mission —
  // tile, supervise with retries and a seeded fault, fall back, stitch.
  // Append-only like the other cases; part of the quick subset.  The
  // identity entry is the stitched solution (algorithm service.sharded),
  // and the degraded-tile / attempt counters ride along as extra keys; the
  // service.* counters land in the embedded metrics snapshot.
  {
    const BenchCase c{"service_sharded_s1", 110, 400, 8, 1, 150, true};
    std::cerr << "[bench_runner] " << c.name << " (n=" << c.users
              << ", K=" << c.uavs << ", s=" << c.s << ")\n";
    const uavcov::eval::RunConfig config = make_config(c);
    uavcov::Rng rng(config.seed);
    const uavcov::Scenario scenario =
        uavcov::workload::make_disaster_scenario(config.scenario, rng);

    uavcov::service::MissionConfig mission;
    mission.tiling.tiles_x = 2;
    mission.tiling.tiles_y = 2;
    mission.tiling.halo_cells = 1;
    mission.appro = config.appro;
    mission.threads = 1;  // deterministic metrics counters
    uavcov::service::ShardFaultConfig chaos_config;
    chaos_config.faults = 2;
    chaos_config.max_poison_depth = 3;
    const uavcov::service::ShardFaultPlan chaos =
        uavcov::service::make_shard_fault_plan(
            mission.tiling.tiles_x * mission.tiling.tiles_y, chaos_config,
            c.seed * 1019);

    std::uint64_t solution_fp = 0;
    std::int64_t served = 0;
    std::int32_t degraded = 0;
    std::int32_t attempts = 0;
    std::int32_t retries = 0;
    double mission_seconds = 1e300;
    for (std::int32_t rep = 0; rep < repeats; ++rep) {
      if (rep == repeats - 1) registry.reset();
      const uavcov::Stopwatch watch;
      const uavcov::service::JobResult result =
          uavcov::service::solve_mission(scenario, mission, &chaos);
      const double run_s = watch.elapsed_s();
      if (rep == 0) {
        solution_fp = result.solution.fingerprint();
        served = result.solution.served;
        degraded = result.report.degraded_tiles();
        attempts = result.stats.attempts;
        retries = result.stats.retries;
      } else {
        UAVCOV_CHECK_MSG(result.solution.fingerprint() == solution_fp &&
                             result.stats.attempts == attempts,
                         "non-deterministic sharded mission in "
                         "service_sharded_s1");
      }
      mission_seconds = std::min(mission_seconds, run_s);
    }
    const uavcov::obs::Snapshot snapshot = registry.snapshot();

    w.begin_object();
    w.kv("name", c.name);
    w.kv("seed", static_cast<std::int64_t>(c.seed));
    w.kv("users", c.users);
    w.kv("uavs", c.uavs);
    w.kv("s", c.s);
    w.kv("scenario_fingerprint",
         uavcov::fingerprint_hex(scenario.fingerprint()));
    w.kv("fault_plan_fingerprint",
         uavcov::fingerprint_hex(chaos.fingerprint()));
    w.kv("degraded_tiles", static_cast<std::int64_t>(degraded));
    w.kv("attempts", static_cast<std::int64_t>(attempts));
    w.kv("retries", static_cast<std::int64_t>(retries));
    w.key("algorithms").begin_array();
    w.begin_object();
    w.kv("name", "service_sharded");
    w.kv("served", served);
    w.kv("fingerprint", uavcov::fingerprint_hex(solution_fp));
    w.kv("seconds", mission_seconds);
    w.end_object();
    w.end_array();
    w.key("metrics");
    uavcov::obs::write_snapshot(w, snapshot);
    w.end_object();
  }

  w.end_array();
  w.end_object();

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path);
  UAVCOV_CHECK_MSG(out.good(), "cannot open output file " + out_path);
  out << w.take() << "\n";
  UAVCOV_CHECK_MSG(out.good(), "failed writing " + out_path);
  std::cerr << "[bench_runner] wrote " << out_path << "\n";
  return 0;
}
