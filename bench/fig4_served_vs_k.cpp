// Reproduces Fig. 4: number of served users vs number of UAVs K
// (paper: K = 2..20, n = 3000 users, s = 3).
//
// Default uses the paper's n = 3000 with s = 2 and a coarsened hovering
// grid for minute-scale wall time (see EXPERIMENTS.md); pass --s 3
// --cell 50 --candidate-cap 0 to approach the paper's exact parameters
// (hours of compute).
#include <iostream>

#include "common/cli.hpp"
#include "eval/figures.hpp"

int main(int argc, char** argv) {
  uavcov::CliParser cli;
  cli.add_flag("users", "number of ground users n", "3000");
  cli.add_flag("s", "approAlg seed-set size", "2");
  cli.add_flag("cell", "hovering-grid cell side (m); paper uses 50", "300");
  cli.add_flag("candidate-cap", "top-M candidate cells (0 = all covering)",
               "40");
  cli.add_flag("kmin", "smallest fleet size", "2");
  cli.add_flag("kmax", "largest fleet size", "20");
  cli.add_flag("kstep", "fleet-size step", "2");
  cli.add_flag("reps", "repetitions averaged per point", "2");
  cli.add_flag("seed", "base RNG seed", "7");
  cli.add_flag("threads", "approAlg worker threads (0 = hardware)", "1");
  cli.add_flag("csv", "CSV output path (empty = none)", "");
  if (!cli.parse(argc, argv)) return 0;

  uavcov::eval::FigureScale scale;
  scale.users = static_cast<std::int32_t>(cli.get_int("users"));
  scale.s = static_cast<std::int32_t>(cli.get_int("s"));
  scale.cell_side_m = cli.get_double("cell");
  scale.candidate_cap =
      static_cast<std::int32_t>(cli.get_int("candidate-cap"));
  scale.repetitions = static_cast<std::int32_t>(cli.get_int("reps"));
  scale.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  scale.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  scale.csv_path = cli.get_string("csv");

  std::cout << "=== Fig. 4 reproduction: served users vs K (n = "
            << scale.users << ", s = " << scale.s << ") ===\n";
  const uavcov::Table table = uavcov::eval::fig4_served_vs_k(
      scale, static_cast<std::int32_t>(cli.get_int("kmin")),
      static_cast<std::int32_t>(cli.get_int("kmax")),
      static_cast<std::int32_t>(cli.get_int("kstep")));
  table.print(std::cout);
  return 0;
}
