// Micro-benchmarks for the matroid layer and Algorithm 1 — the per-subset
// fixed costs inside approAlg's enumeration loop.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/matroid.hpp"
#include "core/segment_plan.hpp"
#include "graph/bfs.hpp"

namespace {

using namespace uavcov;

void BM_SegmentPlan(benchmark::State& state) {
  const auto K = static_cast<std::int32_t>(state.range(0));
  const auto s = static_cast<std::int32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_segment_plan(K, s));
  }
}
BENCHMARK(BM_SegmentPlan)
    ->Args({20, 1})
    ->Args({20, 3})
    ->Args({100, 3})
    ->Args({500, 4});

void BM_HopMatroidCanAdd(benchmark::State& state) {
  // Feasibility oracle cost on a paper-scale grid distance field.
  const SegmentPlan plan = compute_segment_plan(20, 3);
  const Grid grid(3000, 3000, 100);
  const Graph g = build_location_graph(grid, 150.0);
  const NodeId seeds[] = {0, 450, 899};
  const auto dist = bfs_distances(g, seeds);
  HopBudgetMatroid m2(dist, plan.quotas);
  Rng rng(5);
  std::vector<LocationId> probe_order;
  for (int i = 0; i < 1024; ++i) {
    probe_order.push_back(static_cast<LocationId>(
        rng.next_below(static_cast<std::uint64_t>(grid.size()))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m2.can_add(probe_order[i++ & 1023]));
  }
}
BENCHMARK(BM_HopMatroidCanAdd);

void BM_HopMatroidAddRemove(benchmark::State& state) {
  const SegmentPlan plan = compute_segment_plan(20, 3);
  std::vector<std::int32_t> dist{0, 0, 0, 1, 1, 2, 2, 3};
  HopBudgetMatroid m2(dist, plan.quotas);
  for (auto _ : state) {
    m2.add(LocationId{3});
    m2.remove(LocationId{3});
  }
}
BENCHMARK(BM_HopMatroidAddRemove);

void BM_MatroidAxiomCheck(benchmark::State& state) {
  // Exhaustive axiom verification cost (test infrastructure).
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto independent = [n](std::span<const std::int32_t> set) {
    return static_cast<std::int32_t>(set.size()) <= n / 2;  // uniform matroid
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_matroid_axioms(n, independent));
  }
}
BENCHMARK(BM_MatroidAxiomCheck)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
