// Tests for the §II-D assignment subproblem: optimality vs brute force,
// incremental probe/deploy/scope semantics, capacity handling.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/assignment.hpp"
#include "core/coverage.hpp"
#include "flow/oracles.hpp"

namespace uavcov {
namespace {

/// Tiny scenario factory: `width_cells` × 1 grid of 100 m cells, users at
/// explicit positions, UAVs with given capacities (shared default radio).
Scenario make_scenario(std::int32_t width_cells,
                       std::vector<Vec2> user_positions,
                       std::vector<std::int32_t> capacities,
                       double user_range_m = 120.0) {
  Scenario sc{
      .grid = Grid(width_cells * 100.0, 100.0, 100.0),
      .altitude_m = 50.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (const Vec2& p : user_positions) sc.users.push_back({p, 1e3});
  for (std::int32_t c : capacities) {
    sc.fleet.push_back({c, Radio{}, user_range_m});
  }
  return sc;
}

TEST(Assignment, EmptyDeploymentsServeNobody) {
  const Scenario sc = make_scenario(3, {{50, 50}, {150, 50}}, {5});
  const CoverageModel cov(sc);
  const auto result = solve_assignment(sc, cov, {});
  EXPECT_EQ(result.served, 0);
  EXPECT_EQ(result.user_to_deployment,
            (std::vector<std::int32_t>{-1, -1}));
}

TEST(Assignment, CapacityCapsServedUsers) {
  // 4 users under one cell, capacity 2 → exactly 2 served.
  const Scenario sc = make_scenario(
      1, {{50, 50}, {60, 50}, {40, 50}, {50, 60}}, {2});
  const CoverageModel cov(sc);
  const std::vector<Deployment> deps{{UavId{0}, LocationId{0}}};
  const auto result = solve_assignment(sc, cov, deps);
  EXPECT_EQ(result.served, 2);
  int assigned = 0;
  for (auto d : result.user_to_deployment) assigned += (d == 0);
  EXPECT_EQ(assigned, 2);
}

TEST(Assignment, FlowBeatsGreedyOnOverlap) {
  // Two cells 100 m apart, R_user = 120: users near the left cell are
  // eligible under both; a greedy left-first fill would strand the far-left
  // user, but max flow serves everyone.
  const Scenario sc = make_scenario(
      2, {{50, 50}, {90, 50}, {110, 50}, {150, 50}}, {2, 2});
  const CoverageModel cov(sc);
  const std::vector<Deployment> deps{{UavId{0}, LocationId{0}},
                                     {UavId{1}, LocationId{1}}};
  const auto result = solve_assignment(sc, cov, deps);
  EXPECT_EQ(result.served, 4);
}

TEST(Assignment, RespectsEligibilityInMapping) {
  const Scenario sc =
      make_scenario(3, {{50, 50}, {250, 50}}, {3, 3});
  const CoverageModel cov(sc);
  const std::vector<Deployment> deps{{UavId{0}, LocationId{0}},
                                     {UavId{1}, LocationId{2}}};
  const auto result = solve_assignment(sc, cov, deps);
  EXPECT_EQ(result.served, 2);
  for (const UserId u : sc.user_ids()) {
    const auto d = result.user_to_deployment[u];
    ASSERT_NE(d, -1);
    EXPECT_TRUE(cov.is_eligible(sc, u, deps[static_cast<std::size_t>(d)].loc,
                                deps[static_cast<std::size_t>(d)].uav));
  }
}

class AssignmentRandom : public testing::TestWithParam<int> {};

TEST_P(AssignmentRandom, OptimalVsBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 313 + 11);
  const std::int32_t cells = 4;
  const std::int32_t n = 2 + static_cast<std::int32_t>(rng.next_below(9));
  std::vector<Vec2> users;
  for (std::int32_t i = 0; i < n; ++i) {
    users.push_back({rng.uniform(0, 400), rng.uniform(0, 100)});
  }
  std::vector<std::int32_t> caps;
  const std::int32_t k = 1 + static_cast<std::int32_t>(rng.next_below(3));
  for (std::int32_t i = 0; i < k; ++i) {
    caps.push_back(1 + static_cast<std::int32_t>(rng.next_below(3)));
  }
  const Scenario sc = make_scenario(cells, users, caps);
  const CoverageModel cov(sc);

  std::vector<Deployment> deps;
  std::vector<LocationId> free_cells{LocationId{0}, LocationId{1},
                                     LocationId{2}, LocationId{3}};
  for (const UavId u : IdRange<UavId>{k}) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.next_below(free_cells.size()));
    deps.push_back({u, free_cells[pick]});
    free_cells.erase(free_cells.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  const auto result = solve_assignment(sc, cov, deps);

  // Oracle input: per-user list of eligible deployments.
  std::vector<std::vector<std::int32_t>> eligible(
      static_cast<std::size_t>(n));
  std::vector<std::int64_t> capacity;
  for (const Deployment& d : deps) {
    capacity.push_back(sc.fleet[d.uav].capacity);
  }
  for (const UserId u : IdRange<UserId>{n}) {
    for (std::size_t d = 0; d < deps.size(); ++d) {
      if (cov.is_eligible(sc, u, deps[d].loc, deps[d].uav)) {
        eligible[u.index()].push_back(
            static_cast<std::int32_t>(d));
      }
    }
  }
  EXPECT_EQ(result.served,
            oracle::brute_force_assignment(eligible, capacity));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentRandom, testing::Range(0, 25));

TEST(IncrementalAssignment, ProbeEqualsDeployGain) {
  const Scenario sc = make_scenario(
      3, {{50, 50}, {60, 40}, {150, 50}, {250, 50}, {240, 60}}, {2, 2, 2});
  const CoverageModel cov(sc);
  IncrementalAssignment ia(sc, cov);
  for (const UavId k : IdRange<UavId>{3}) {
    const LocationId loc{k.value()};
    const auto probed = ia.probe(k, loc);
    const auto deployed = ia.deploy(k, loc);
    EXPECT_EQ(probed, deployed) << "UAV " << k.value();
  }
  EXPECT_EQ(ia.served(), 5);
}

TEST(IncrementalAssignment, ProbeLeavesStateUntouched) {
  const Scenario sc =
      make_scenario(2, {{50, 50}, {150, 50}}, {1, 1});
  const CoverageModel cov(sc);
  IncrementalAssignment ia(sc, cov);
  ia.deploy(UavId{0}, LocationId{0});
  const auto served_before = ia.served();
  for (int i = 0; i < 5; ++i) ia.probe(UavId{1}, LocationId{1});
  EXPECT_EQ(ia.served(), served_before);
  EXPECT_EQ(ia.deployments().size(), 1u);
  // Deploy after many probes must still work and match a fresh solve.
  ia.deploy(UavId{1}, LocationId{1});
  const std::vector<Deployment> deps{{UavId{0}, LocationId{0}},
                                     {UavId{1}, LocationId{1}}};
  EXPECT_EQ(ia.served(), solve_assignment(sc, cov, deps).served);
}

TEST(IncrementalAssignment, MatchesOneShotSolveOnRandomSequences) {
  Rng rng(5150);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int32_t n = 12;
    std::vector<Vec2> users;
    for (std::int32_t i = 0; i < n; ++i) {
      users.push_back({rng.uniform(0, 500), rng.uniform(0, 100)});
    }
    const Scenario sc = make_scenario(5, users, {2, 3, 1, 2});
    const CoverageModel cov(sc);
    IncrementalAssignment ia(sc, cov);
    std::vector<Deployment> deps;
    std::vector<LocationId> cells{LocationId{0}, LocationId{1}, LocationId{2},
                                  LocationId{3}, LocationId{4}};
    rng.shuffle(cells);
    for (const UavId k : IdRange<UavId>{4}) {
      ia.probe(k, cells[k.index()]);  // interleaved noise
      ia.deploy(k, cells[k.index()]);
      deps.push_back({k, cells[k.index()]});
      EXPECT_EQ(ia.served(), solve_assignment(sc, cov, deps).served);
    }
  }
}

TEST(IncrementalAssignment, ScopesResetEverything) {
  const Scenario sc =
      make_scenario(2, {{50, 50}, {150, 50}}, {1, 1});
  const CoverageModel cov(sc);
  IncrementalAssignment ia(sc, cov);
  const auto scope = ia.begin_scope();
  ia.deploy(UavId{0}, LocationId{0});
  ia.deploy(UavId{1}, LocationId{1});
  EXPECT_EQ(ia.served(), 2);
  ia.end_scope(scope);
  EXPECT_EQ(ia.served(), 0);
  EXPECT_TRUE(ia.deployments().empty());
  // Reusable after reset.
  const auto scope2 = ia.begin_scope();
  EXPECT_EQ(ia.deploy(UavId{1}, LocationId{0}), 1);
  ia.end_scope(scope2);
  EXPECT_EQ(ia.served(), 0);
}

TEST(IncrementalAssignment, NestedScopes) {
  const Scenario sc =
      make_scenario(3, {{50, 50}, {150, 50}, {250, 50}}, {1, 1, 1});
  const CoverageModel cov(sc);
  IncrementalAssignment ia(sc, cov);
  const auto outer = ia.begin_scope();
  ia.deploy(UavId{0}, LocationId{0});
  const auto inner = ia.begin_scope();
  ia.deploy(UavId{1}, LocationId{1});
  EXPECT_EQ(ia.served(), 2);
  ia.end_scope(inner);
  EXPECT_EQ(ia.served(), 1);
  ia.end_scope(outer);
  EXPECT_EQ(ia.served(), 0);
}

}  // namespace
}  // namespace uavcov
