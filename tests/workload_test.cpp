// Tests for src/workload: distributions, fleet generation, scenario
// assembly — bounds, determinism, and statistical shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "workload/builder.hpp"
#include "workload/distributions.hpp"
#include "workload/fleet.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov::workload {
namespace {

TEST(FatTailed, AllPointsInsideArea) {
  Rng rng(2);
  const auto pts = fat_tailed_positions(500, 3000, 2000, {}, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 3000);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 2000);
  }
}

TEST(FatTailed, Deterministic) {
  Rng a(7), b(7);
  EXPECT_EQ(fat_tailed_positions(100, 1000, 1000, {}, a),
            fat_tailed_positions(100, 1000, 1000, {}, b));
}

TEST(FatTailed, IsActuallyClustered) {
  // Paper: "many users are located at a small portion of places".  Count
  // users per 300 m cell; the top 10% of nonempty cells should hold a
  // disproportionate share vs uniform.
  Rng rng(3);
  FatTailedConfig config;
  config.cluster_sigma_m = 100.0;
  const auto pts = fat_tailed_positions(2000, 3000, 3000, config, rng);
  std::map<std::pair<int, int>, int> cell_count;
  for (const Vec2& p : pts) {
    cell_count[{static_cast<int>(p.x / 300), static_cast<int>(p.y / 300)}]++;
  }
  std::vector<int> counts;
  for (const auto& [cell, c] : cell_count) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  const std::size_t top = std::max<std::size_t>(1, counts.size() / 10);
  int top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += counts[i];
  EXPECT_GT(top_sum, 2000 / 3)
      << "top 10% of cells should hold > 1/3 of users";
}

TEST(FatTailed, MoreUniformThanClusteredSpread) {
  Rng rng1(4), rng2(4);
  const auto clustered = fat_tailed_positions(1500, 3000, 3000, {}, rng1);
  const auto uniform = uniform_positions(1500, 3000, 3000, rng2);
  auto occupied_cells = [](const std::vector<Vec2>& pts) {
    std::map<std::pair<int, int>, int> cells;
    for (const Vec2& p : pts) {
      // Points clamped exactly onto the far boundary belong to cell 9.
      cells[{std::min(static_cast<int>(p.x / 300), 9),
             std::min(static_cast<int>(p.y / 300), 9)}]++;
    }
    return cells.size();
  };
  EXPECT_LT(occupied_cells(clustered), occupied_cells(uniform));
}

TEST(FatTailed, RejectsBadConfig) {
  Rng rng(1);
  FatTailedConfig config;
  config.cluster_count = 0;
  EXPECT_THROW(fat_tailed_positions(10, 100, 100, config, rng),
               ContractError);
  config = {};
  config.background_fraction = 1.5;
  EXPECT_THROW(fat_tailed_positions(10, 100, 100, config, rng),
               ContractError);
}

TEST(Uniform, CoversTheWholeArea) {
  Rng rng(8);
  const auto pts = uniform_positions(4000, 1000, 1000, rng);
  // Every quadrant gets a healthy share.
  int q[4] = {0, 0, 0, 0};
  for (const Vec2& p : pts) {
    q[(p.x >= 500) + 2 * (p.y >= 500)]++;
  }
  for (int i = 0; i < 4; ++i) EXPECT_GT(q[i], 800);
}

TEST(Hotspots, RespectsWeightsAndRadii) {
  Rng rng(5);
  const std::vector<Hotspot> spots = {{{200, 200}, 100.0, 9.0},
                                      {{800, 800}, 100.0, 1.0}};
  const auto pts = hotspot_positions(1000, 1000, 1000, spots, 0.0, rng);
  int near_a = 0, near_b = 0;
  for (const Vec2& p : pts) {
    if (distance(p, {200, 200}) <= 101) ++near_a;
    if (distance(p, {800, 800}) <= 101) ++near_b;
  }
  EXPECT_EQ(near_a + near_b, 1000);  // zero background
  EXPECT_GT(near_a, 5 * near_b);     // 9:1 weights
}

TEST(Hotspots, RejectsEmptyList) {
  Rng rng(1);
  EXPECT_THROW(hotspot_positions(10, 100, 100, {}, 0.0, rng),
               ContractError);
}

TEST(Fleet, CapacitiesInInterval) {
  Rng rng(11);
  FleetConfig config;
  config.uav_count = 200;
  config.capacity_min = 50;
  config.capacity_max = 300;
  const auto fleet = make_fleet(config, rng);
  ASSERT_EQ(fleet.size(), 200u);
  bool low_half = false, high_half = false;
  for (const UavSpec& u : fleet) {
    EXPECT_GE(u.capacity, 50);
    EXPECT_LE(u.capacity, 300);
    low_half |= u.capacity < 175;
    high_half |= u.capacity >= 175;
  }
  EXPECT_TRUE(low_half);
  EXPECT_TRUE(high_half);
}

TEST(Fleet, HeavyFractionCreatesSecondRadioClass) {
  Rng rng(12);
  FleetConfig config;
  config.uav_count = 100;
  config.heavy_fraction = 0.5;
  const auto fleet = make_fleet(config, rng);
  int heavy = 0;
  for (const UavSpec& u : fleet) {
    heavy += (u.user_range_m > config.user_range_m);
  }
  EXPECT_GT(heavy, 20);
  EXPECT_LT(heavy, 80);
}

TEST(Fleet, RejectsBadConfig) {
  Rng rng(1);
  FleetConfig config;
  config.capacity_min = 10;
  config.capacity_max = 5;
  EXPECT_THROW(make_fleet(config, rng), ContractError);
  config = {};
  config.uav_count = 0;
  EXPECT_THROW(make_fleet(config, rng), ContractError);
}

TEST(ScenarioGen, ProducesValidScenario) {
  Rng rng(13);
  ScenarioConfig config;
  config.user_count = 300;
  config.fleet.uav_count = 8;
  const Scenario sc = make_disaster_scenario(config, rng);
  EXPECT_NO_THROW(sc.validate());
  EXPECT_EQ(sc.user_count(), 300);
  EXPECT_EQ(sc.uav_count(), 8);
  EXPECT_EQ(sc.grid.size(), 100);  // 3000/300 squared
}

TEST(ScenarioGen, DeterministicGivenSeed) {
  ScenarioConfig config;
  config.user_count = 50;
  config.fleet.uav_count = 4;
  Rng a(21), b(21);
  const Scenario s1 = make_disaster_scenario(config, a);
  const Scenario s2 = make_disaster_scenario(config, b);
  for (const UserId i : IdRange<UserId>{50}) {
    EXPECT_EQ(s1.users[i].pos, s2.users[i].pos);
  }
  for (const UavId k : IdRange<UavId>{4}) {
    EXPECT_EQ(s1.fleet[k].capacity, s2.fleet[k].capacity);
  }
}

TEST(ScenarioGen, UniformDistributionSelectable) {
  Rng rng(22);
  ScenarioConfig config;
  config.user_count = 100;
  config.distribution = UserDistribution::kUniform;
  config.fleet.uav_count = 2;
  const Scenario sc = make_disaster_scenario(config, rng);
  EXPECT_EQ(sc.user_count(), 100);
}

TEST(ScenarioGen, PaperScaleParametersAccepted) {
  // λ = 50 m at 3 × 3 km → m = 3600 candidate cells (the paper's grid).
  Rng rng(23);
  ScenarioConfig config;
  config.cell_side_m = 50.0;
  config.user_count = 100;
  config.fleet.uav_count = 5;
  const Scenario sc = make_disaster_scenario(config, rng);
  EXPECT_EQ(sc.grid.size(), 3600);
}

TEST(ScenarioBuilder, BitIdenticalToHandFilledConfig) {
  // The builder adds no policy: same fields + same seed → the same
  // instance, down to the fingerprint.
  ScenarioConfig config;
  config.width_m = 2400.0;
  config.height_m = 1800.0;
  config.cell_side_m = 300.0;
  config.user_count = 120;
  config.min_rate_bps = 4e3;
  config.fleet.uav_count = 6;
  config.fleet.capacity_min = 40;
  config.fleet.capacity_max = 200;
  config.fleet.heavy_fraction = 0.5;
  Rng rng(99);
  const Scenario by_config = make_disaster_scenario(config, rng);

  const Scenario by_builder = ScenarioBuilder()
                                  .area(2400.0, 1800.0)
                                  .cell_side(300.0)
                                  .users(120)
                                  .min_rate(4e3)
                                  .uavs(6)
                                  .capacity_range(40, 200)
                                  .heavy_fraction(0.5)
                                  .seed(99)
                                  .build();
  EXPECT_EQ(by_builder.fingerprint(), by_config.fingerprint());
}

TEST(ScenarioBuilder, SettersWriteExactlyTheNamedFields) {
  const ScenarioBuilder builder = ScenarioBuilder()
                                      .altitude(250.0)
                                      .uav_range(700.0)
                                      .user_range(450.0)
                                      .uniform_users();
  const ScenarioConfig& config = builder.config();
  EXPECT_EQ(config.altitude_m, 250.0);
  EXPECT_EQ(config.uav_range_m, 700.0);
  EXPECT_EQ(config.fleet.user_range_m, 450.0);
  EXPECT_EQ(config.distribution, UserDistribution::kUniform);
  // Untouched fields keep the struct defaults.
  const ScenarioConfig defaults;
  EXPECT_EQ(config.width_m, defaults.width_m);
  EXPECT_EQ(config.user_count, defaults.user_count);
}

TEST(ScenarioBuilder, CallerOwnedRngMatchesGeneratorCall) {
  const ScenarioBuilder builder =
      ScenarioBuilder().users(60).uavs(3).uniform_users();
  Rng a(7), b(7);
  const Scenario via_builder = builder.build(a);
  const Scenario direct = make_disaster_scenario(builder.config(), b);
  EXPECT_EQ(via_builder.fingerprint(), direct.fingerprint());
}

}  // namespace
}  // namespace uavcov::workload
