// FlatScenario (core/flat.hpp): the CSR candidate index and the batched
// channel evaluator are checked against first-principles brute force —
// membership, ordering, stored distances, the transpose, and bit-exact
// agreement with the scalar a2g chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/batch.hpp"
#include "channel/link_budget.hpp"
#include "core/coverage.hpp"
#include "core/flat.hpp"
#include "workload/builder.hpp"

namespace uavcov {
namespace {

Scenario heterogeneous_scenario(std::uint64_t seed) {
  // heavy_fraction > 0 forces two radio classes so the per-class paths
  // (radii, evaluators, eligibility filters) are all exercised.
  return workload::ScenarioBuilder()
      .area(1800.0, 1200.0)
      .cell_side(300.0)
      .users(180)
      .uavs(7)
      .heavy_fraction(0.4)
      .seed(seed)
      .build();
}

TEST(FlatScenario, SoAColumnsMirrorScenario) {
  const Scenario scenario = heterogeneous_scenario(11);
  const FlatScenario flat(scenario);
  ASSERT_EQ(flat.user_count(), scenario.user_count());
  ASSERT_EQ(flat.uav_count(), scenario.uav_count());
  for (const UserId u : scenario.user_ids()) {
    EXPECT_EQ(flat.user_x()[u.index()], scenario.users[u].pos.x);
    EXPECT_EQ(flat.user_y()[u.index()], scenario.users[u].pos.y);
    EXPECT_EQ(flat.user_min_rate_bps()[u.index()],
              scenario.users[u].min_rate_bps);
  }
  for (const UavId k : scenario.uav_ids()) {
    EXPECT_EQ(flat.uav_capacity()[k.index()], scenario.fleet[k].capacity);
    EXPECT_EQ(flat.uav_user_range_m()[k.index()],
              scenario.fleet[k].user_range_m);
  }
}

TEST(FlatScenario, CsrMatchesBruteForceAndIsSorted) {
  const Scenario scenario = heterogeneous_scenario(12);
  const FlatScenario flat(scenario);
  const std::int32_t classes = flat.radio_class_count();
  ASSERT_GE(classes, 2);

  // Per-user candidate radius: the largest per-class effective radius.
  std::vector<double> max_radius(static_cast<std::size_t>(
      scenario.user_count()));
  for (const UserId u : scenario.user_ids()) {
    double r = 0.0;
    for (std::int32_t c = 0; c < classes; ++c) {
      r = std::max(r, flat.effective_radius_m(
                          c, scenario.users[u].min_rate_bps));
    }
    max_radius[u.index()] = r;
  }

  std::int64_t pairs = 0;
  for (const LocationId v : scenario.grid.cells()) {
    const Vec2 center = scenario.grid.center(v);
    std::vector<UserId> expected;
    for (const UserId u : scenario.user_ids()) {
      const double r = max_radius[u.index()];
      if (r > 0.0 &&
          distance2(center, scenario.users[u].pos) <= r * r) {
        expected.push_back(u);  // ascending by construction
      }
    }
    const auto got = flat.users_near(v);
    const auto dist2s = flat.dist2_near(v);
    ASSERT_EQ(got.size(), expected.size());
    ASSERT_EQ(dist2s.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]);
      // Stored distances are the exact same expression the scalar path
      // evaluates — bitwise equality, not tolerance.
      EXPECT_EQ(dist2s[i],
                distance2(center, scenario.users[expected[i]].pos));
    }
    pairs += static_cast<std::int64_t>(got.size());
  }
  EXPECT_EQ(flat.candidate_pair_count(), pairs);
}

TEST(FlatScenario, TransposeIsConsistent) {
  const Scenario scenario = heterogeneous_scenario(13);
  const FlatScenario flat(scenario);

  std::int64_t transpose_pairs = 0;
  for (const UserId u : scenario.user_ids()) {
    const auto cells = flat.cells_near(u);
    transpose_pairs += static_cast<std::int64_t>(cells.size());
    EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
    for (const LocationId v : cells) {
      const auto users = flat.users_near(v);
      EXPECT_TRUE(std::binary_search(users.begin(), users.end(), u))
          << "cells_near/users_near disagree for user " << u.value()
          << " cell " << v.value();
    }
  }
  EXPECT_EQ(transpose_pairs, flat.candidate_pair_count());
}

TEST(FlatScenario, EligibilityFilterMatchesCoverageModel) {
  const Scenario scenario = heterogeneous_scenario(14);
  const CoverageModel coverage(scenario);
  const FlatScenario& flat = coverage.flat();
  for (const LocationId v : scenario.grid.cells()) {
    const auto candidates = flat.users_near(v);
    const auto dist2s = flat.dist2_near(v);
    for (std::int32_t c = 0; c < flat.radio_class_count(); ++c) {
      std::vector<UserId> filtered;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (dist2s[i] <= flat.effective_radius2(candidates[i], c)) {
          filtered.push_back(candidates[i]);
        }
      }
      const auto eligible = coverage.eligible_users(v, c);
      ASSERT_EQ(eligible.size(), filtered.size());
      for (std::size_t i = 0; i < filtered.size(); ++i) {
        EXPECT_EQ(eligible[i], filtered[i]);
      }
    }
  }
}

TEST(BatchLinkEvaluator, BitExactAgainstScalarChain) {
  const Scenario scenario = heterogeneous_scenario(15);
  const FlatScenario flat(scenario);
  std::vector<double> distances;
  for (double d = 0.0; d <= 900.0; d += 37.5) distances.push_back(d);

  for (std::int32_t c = 0; c < flat.radio_class_count(); ++c) {
    const BatchLinkEvaluator evaluator = flat.class_evaluator(c);
    std::vector<double> rates(distances.size());
    evaluator.rates_bps(distances, rates);
    std::vector<double> dist2(distances.size());
    for (std::size_t i = 0; i < distances.size(); ++i) {
      dist2[i] = distances[i] * distances[i];
    }
    std::vector<double> rates_from_d2(distances.size());
    evaluator.rates_from_dist2(dist2, rates_from_d2);

    for (std::size_t i = 0; i < distances.size(); ++i) {
      const double scalar =
          a2g_rate_bps(scenario.channel, flat.class_radio(c),
                       scenario.receiver, distances[i],
                       scenario.altitude_m);
      // EXPECT_EQ on doubles: the batch path must reproduce the scalar
      // chain bit for bit, or golden fingerprints would drift.
      EXPECT_EQ(rates[i], scalar) << "class " << c << " d=" << distances[i];
      EXPECT_EQ(rates_from_d2[i],
                evaluator.rate_bps(std::sqrt(dist2[i])));
    }
  }
}

TEST(FlatScenario, RatesNearAlignsWithCandidates) {
  const Scenario scenario = heterogeneous_scenario(16);
  const FlatScenario flat(scenario);
  std::vector<double> rates;
  for (const LocationId v : scenario.grid.cells()) {
    const auto users = flat.users_near(v);
    const auto dist2s = flat.dist2_near(v);
    for (std::int32_t c = 0; c < flat.radio_class_count(); ++c) {
      flat.rates_near(v, c, rates);
      ASSERT_EQ(rates.size(), users.size());
      const BatchLinkEvaluator evaluator = flat.class_evaluator(c);
      for (std::size_t i = 0; i < users.size(); ++i) {
        EXPECT_EQ(rates[i], evaluator.rate_bps(std::sqrt(dist2s[i])));
      }
    }
  }
}

}  // namespace
}  // namespace uavcov
