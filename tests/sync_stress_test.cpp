// Concurrency stress suite (ISSUE: run under the tsan preset in CI).
// Three surfaces get hammered with real thread churn:
//   * obs shards: recording threads racing snapshot() and reset();
//   * obs shard lifecycle: threads exiting while a snapshot merge runs
//     must neither drop nor double-count their shard (the registry's
//     shared_ptr keeps a dead thread's shard mergeable until reset()
//     prunes it);
//   * ThreadPool: submit/wait_idle churn with throwing tasks — the pool
//     must surface the first exception and stay usable.
// Counts are asserted exactly wherever the contract promises determinism
// and only for sanity (monotonicity, bounds) while the race is live.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace uavcov {
namespace {

TEST(ObsStress, HammerDuringSnapshotsKeepsTotalsMonotone) {
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter counter = reg.counter("stress.counter");
  obs::Histogram hist = reg.histogram("stress.hist");

  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  // atomic-invariant: started-thread latch for the snapshot loop below;
  // exact timing is irrelevant, only eventual visibility.
  std::atomic<bool> done{false};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([counter, hist] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.observe(i & 0xff);
      }
    });
  }

  // Concurrent merges: totals can lag but must never decrease and never
  // exceed the true count — a drop would mean a lost shard, an overshoot
  // a double-merged one.
  std::int64_t last_total = 0;
  while (!done.load()) {
    const obs::Snapshot snap = reg.snapshot();
    const std::int64_t total = snap.counter_value("stress.counter");
    EXPECT_GE(total, last_total);
    EXPECT_LE(total, kThreads * kPerThread);
    last_total = total;
    if (total == kThreads * kPerThread) break;
    std::this_thread::yield();
  }

  for (std::thread& t : writers) t.join();
  done.store(true);
  const obs::Snapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter_value("stress.counter"),
            kThreads * kPerThread);
  const obs::SnapshotEntry* h = final_snap.find("stress.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.count, kThreads * kPerThread);
}

TEST(ObsStress, SnapshotAndResetChurnIsRaceFree) {
  // reset() only promises deterministic values while no writer is live;
  // this test asserts the weaker (but mandatory) property that the churn
  // itself is race-free — TSan is the real judge here — and that the
  // registry is consistent again once writers quiesce.
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter counter = reg.counter("churn.counter");
  obs::Histogram hist = reg.histogram("churn.hist");

  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([counter, hist] {
      for (int i = 0; i < kRounds; ++i) {
        counter.inc();
        hist.observe(i);
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kRounds; ++i) {
    const obs::Snapshot snap = reg.snapshot();
    EXPECT_GE(snap.counter_value("churn.counter"), 0);
    if (i % 10 == 0) reg.reset();
  }
  for (std::thread& t : writers) t.join();

  // Quiesced: reset now really zeroes, and recording still works.
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter_value("churn.counter"), 0);
  counter.inc(7);
  EXPECT_EQ(reg.snapshot().counter_value("churn.counter"), 7);
}

TEST(ObsShardLifecycle, ThreadDeathDuringMergeNeverDropsCounts) {
  // Regression pin for the shard lifecycle edge: a thread that records
  // and exits hands its shard over to the registry (the shards_ vector's
  // shared_ptr keeps it alive), so every snapshot — including ones racing
  // the thread's exit — sees a monotone, never-lost, never-doubled total.
  obs::Registry reg;
  reg.set_enabled(true);
  obs::Counter counter = reg.counter("death.counter");

  constexpr int kThreads = 32;
  constexpr std::int64_t kPerThread = 100;
  // atomic-invariant: join-progress marker written only by the spawner
  // loop below; the assertion only needs eventual visibility.
  std::atomic<int> spawned{0};

  std::thread spawner([&] {
    for (int t = 0; t < kThreads; ++t) {
      std::thread writer([counter] { counter.inc(kPerThread); });
      writer.join();  // thread fully dead; its shard must survive it
      spawned.fetch_add(1);
    }
  });

  // Merge while threads are being born and dying.
  std::int64_t last_total = 0;
  while (spawned.load() < kThreads) {
    const std::int64_t total =
        reg.snapshot().counter_value("death.counter");
    EXPECT_GE(total, last_total);           // no shard dropped
    EXPECT_LE(total, kThreads * kPerThread);  // no shard double-counted
    last_total = total;
  }
  spawner.join();
  EXPECT_EQ(reg.snapshot().counter_value("death.counter"),
            kThreads * kPerThread);

  // Dead-thread shards are pruned by reset() (the registry holds the only
  // reference) without losing the registry's consistency.
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter_value("death.counter"), 0);
  counter.inc();
  EXPECT_EQ(reg.snapshot().counter_value("death.counter"), 1);
}

TEST(ThreadPoolStress, ThrowingChurnSurfacesErrorsAndStaysUsable) {
  ThreadPool pool(4);
  // atomic-invariant: increment-only success counter, read only after
  // wait_idle() (whose internal lock publishes every task's effects).
  std::atomic<std::int64_t> succeeded{0};

  constexpr int kRounds = 25;
  constexpr int kTasksPerRound = 32;
  std::int64_t expected_successes = 0;
  for (int round = 0; round < kRounds; ++round) {
    const bool poison = round % 2 == 0;
    for (int i = 0; i < kTasksPerRound; ++i) {
      if (poison && i % 8 == 3) {
        pool.submit([] { throw std::runtime_error("poisoned task"); });
      } else {
        pool.submit([&succeeded] { succeeded.fetch_add(1); });
        ++expected_successes;
      }
    }
    if (poison) {
      EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    } else {
      EXPECT_NO_THROW(pool.wait_idle());
    }
  }
  // Every non-throwing task ran exactly once despite the exceptions, and
  // the pool is still fully usable after 12 poisoned rounds.
  EXPECT_EQ(succeeded.load(), expected_successes);
  pool.submit([&succeeded] { succeeded.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(succeeded.load(), expected_successes + 1);
}

TEST(ThreadPoolStress, SubmitRacesWaitIdle) {
  // Submissions from a second thread racing wait_idle() on the main
  // thread: TSan checks the locking, the count checks nothing is lost.
  ThreadPool pool(2);
  // atomic-invariant: increment-only counter, read after both the
  // submitting thread joined and wait_idle() drained the queue.
  std::atomic<std::int64_t> ran{0};
  constexpr int kTasks = 500;
  std::thread submitter([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  });
  for (int i = 0; i < 20; ++i) pool.wait_idle();
  submitter.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
}  // namespace uavcov
