// Negative-compile probe (docs/STATIC_ANALYSIS.md, "Thread-safety
// capability analysis"): calling a UAVCOV_REQUIRES-annotated function
// without holding the named mutex must be rejected by Clang's analysis.
// Compiled by ctest (sync_negcompile_requires_without_lock, WILL_FAIL)
// with -Werror=thread-safety; if this file ever compiles, the REQUIRES
// contract has stopped being enforced.
#include "common/sync.hpp"

namespace {

class Queue {
 public:
  void push_locked() UAVCOV_REQUIRES(mu_) { ++size_; }

  uavcov::sync::Mutex mu_;

 private:
  int size_ UAVCOV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.push_locked();  // ERROR: requires holding `mu_`
  return 0;
}
