// Positive control for the negative-compile probes: the same shapes as
// guarded_without_lock.cpp / requires_without_lock.cpp but with correct
// locking, so it must compile cleanly under -Werror=thread-safety.  This
// pins that a WILL_FAIL "pass" in the sibling probes can only come from
// the thread-safety diagnostic, not from the harness being broken code.
#include "common/sync.hpp"

namespace {

class Queue {
 public:
  void push_locked() UAVCOV_REQUIRES(mu_) { ++size_; }
  int size_locked() const UAVCOV_REQUIRES(mu_) { return size_; }

  uavcov::sync::Mutex mu_;

 private:
  int size_ UAVCOV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  {
    const uavcov::sync::LockGuard lock(queue.mu_);
    queue.push_locked();
  }
  int size = 0;
  {
    uavcov::sync::UniqueLock lock(queue.mu_);
    queue.push_locked();
    lock.unlock();  // relockable scope: analysis tracks both states
    lock.lock();
    size = queue.size_locked();
  }
  return size == 2 ? 0 : 1;
}
