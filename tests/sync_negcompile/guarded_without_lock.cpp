// Negative-compile probe (docs/STATIC_ANALYSIS.md, "Thread-safety
// capability analysis"): writing a UAVCOV_GUARDED_BY member without
// holding its mutex must be rejected by Clang's analysis.  Compiled by
// ctest (sync_negcompile_guarded_without_lock, WILL_FAIL) with
// -Werror=thread-safety; if this file ever compiles, the guard
// annotations have stopped being enforced.
#include "common/sync.hpp"

namespace {

struct Account {
  uavcov::sync::Mutex mu;
  int balance UAVCOV_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Account account;
  account.balance = 42;  // ERROR: writing `balance` requires holding `mu`
  return account.balance;
}
