// Tests for the local-search post-optimizer.
#include <gtest/gtest.h>

#include "baselines/mcs.hpp"
#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "core/refine.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

Scenario random_scenario(std::uint64_t seed, std::int32_t users = 60,
                         std::int32_t uavs = 5) {
  Rng rng(seed);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  config.fleet.capacity_min = 5;
  config.fleet.capacity_max = 30;
  return workload::make_disaster_scenario(config, rng);
}

TEST(Refine, RelocateFixesAnObviouslyBadPlacement) {
  // One UAV parked on an empty cell next to a crowd.
  Scenario sc{
      .grid = Grid(600, 300, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{5, Radio{}, 110.0}},
  };
  for (int i = 0; i < 5; ++i) {
    sc.users.push_back({{450.0 + 4 * i, 50.0}, 1e3});
  }
  const CoverageModel cov(sc);
  Solution sol;
  sol.algorithm = "bad";
  sol.deployments = {{UavId{0}, sc.grid.locate({350, 50})}};
  sol.user_to_deployment.assign(5, -1);
  sol.served = 0;
  const auto stats = refine_solution(sc, cov, sol);
  EXPECT_GE(stats.relocations, 1);
  EXPECT_EQ(sol.served, 5);
  validate_solution(sc, cov, sol);
}

TEST(Refine, SwapExchangesMismatchedCapacities) {
  // Big crowd on the left cell, single user on the right; the small UAV
  // sits on the crowd — one swap fixes it.
  Scenario sc{
      .grid = Grid(200, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      // Tight 60 m discs so each cell covers only its own crowd.
      .fleet = {{1, Radio{}, 60.0}, {6, Radio{}, 60.0}},
  };
  for (int i = 0; i < 6; ++i) {
    sc.users.push_back({{40.0 + 4 * i, 50.0}, 1e3});
  }
  sc.users.push_back({{150, 50}, 1e3});
  const CoverageModel cov(sc);
  Solution sol;
  sol.algorithm = "mismatched";
  sol.deployments = {{UavId{0}, LocationId{0}},
                     {UavId{1}, LocationId{1}}};  // small UAV on the crowd
  const AssignmentResult initial = solve_assignment(sc, cov, sol.deployments);
  sol.user_to_deployment = initial.user_to_deployment;
  sol.served = initial.served;
  ASSERT_LT(sol.served, 7);

  RefineParams params;
  params.enable_relocate = false;  // isolate the swap move
  const auto stats = refine_solution(sc, cov, sol, params);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_EQ(sol.served, 7);
  validate_solution(sc, cov, sol);
}

class RefineRandom : public testing::TestWithParam<int> {};

TEST_P(RefineRandom, NeverWorseAlwaysFeasible) {
  const Scenario sc =
      random_scenario(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const CoverageModel cov(sc);
  for (const bool use_mcs : {false, true}) {
    Solution sol;
    if (use_mcs) {
      sol = baselines::solve(sc, cov, baselines::McsParams{});
    } else {
      ApproAlgParams params;
      params.s = 1;
      sol = appro_alg(sc, cov, params);
    }
    const std::int64_t before = sol.served;
    const auto stats = refine_solution(sc, cov, sol);
    EXPECT_GE(sol.served, before);
    EXPECT_EQ(stats.served_after, sol.served);
    EXPECT_EQ(stats.served_before, before);
    validate_solution(sc, cov, sol);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineRandom, testing::Range(0, 8));

TEST(Refine, IdempotentAtLocalOptimum) {
  const Scenario sc = random_scenario(99);
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  Solution sol = appro_alg(sc, cov, params);
  refine_solution(sc, cov, sol);
  const auto second = refine_solution(sc, cov, sol);
  EXPECT_EQ(second.relocations, 0);
  EXPECT_EQ(second.swaps, 0);
  EXPECT_EQ(second.served_before, second.served_after);
}

TEST(Refine, EmptySolutionIsANoop) {
  const Scenario sc = random_scenario(5);
  const CoverageModel cov(sc);
  Solution empty;
  empty.user_to_deployment.assign(sc.users.size(), -1);
  const auto stats = refine_solution(sc, cov, empty);
  EXPECT_EQ(stats.relocations, 0);
  EXPECT_EQ(stats.served_after, 0);
}

TEST(Refine, RejectsInfeasibleInput) {
  const Scenario sc = random_scenario(6);
  const CoverageModel cov(sc);
  Solution bogus;
  bogus.deployments = {{UavId{0}, LocationId{0}},
                       {UavId{0}, LocationId{1}}};  // duplicate UAV
  bogus.user_to_deployment.assign(sc.users.size(), -1);
  EXPECT_THROW(refine_solution(sc, cov, bogus), ContractError);
}

}  // namespace
}  // namespace uavcov
