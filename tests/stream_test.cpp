// Streaming-engine acceptance suite (docs/STREAMING.md).  Registered with
// UAVCOV_AUDIT=1 (tests/CMakeLists.txt), so every solution the engine
// emits — delta-patched epochs included — runs through the deep §II-C
// feasibility audits.
//
// The load-bearing property is streamed-vs-scratch equivalence: over
// pinned trace seeds, every full-re-solve epoch must be bit-identical
// (solution fingerprint + served count) to a from-scratch solve_snapshot
// of the independently materialized scenario, every delta-patched epoch
// must hold the hysteresis floor, and the whole run must be bit-identical
// across threads=1 and threads=4.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/flat.hpp"
#include "io/trace.hpp"
#include "obs/metrics.hpp"
#include "stream/churn.hpp"
#include "stream/engine.hpp"
#include "stream/ingest.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

using stream::ChurnEvent;
using stream::ChurnKind;
using stream::ChurnTrace;
using stream::ChurnTraceConfig;
using stream::Epoch;
using stream::EpochResult;
using stream::Ingest;
using stream::StreamEngine;
using stream::StreamPolicy;

Scenario stream_scenario(std::uint64_t seed, std::int32_t users = 40,
                         std::int32_t uavs = 5) {
  Rng rng(seed);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  config.fleet.capacity_min = 10;
  config.fleet.capacity_max = 30;
  return workload::make_disaster_scenario(config, rng);
}

ChurnTraceConfig drill_trace_config() {
  ChurnTraceConfig config;
  config.epochs = 6;
  config.max_arrivals_per_epoch = 5;
  config.max_departures_per_epoch = 4;
  config.flash_crowd_epoch = 3;
  config.flash_crowd_size = 12;
  return config;
}

StreamPolicy drill_policy(std::int32_t threads = 1) {
  StreamPolicy policy;
  policy.appro.s = 2;
  policy.appro.threads = threads;
  policy.appro.max_seed_subsets = 64;
  return policy;
}

/// Runs `trace` through a fresh engine and cross-checks every epoch
/// against an independent shadow ingest: identical materializations,
/// full-solve epochs bit-identical to a cold solve_snapshot, patched
/// epochs at or above the hysteresis floor.
std::vector<EpochResult> run_checked(const Scenario& base,
                                     const ChurnTrace& trace,
                                     const StreamPolicy& policy) {
  StreamEngine engine(base, policy);
  Ingest shadow(base);
  std::vector<EpochResult> results;
  std::int64_t floor_ref = 0;
  for (const Epoch& epoch : trace.epochs) {
    const EpochResult res = engine.step(epoch);
    shadow.apply(epoch);
    const Scenario& materialized = shadow.scenario();
    EXPECT_EQ(res.scenario_fingerprint, materialized.fingerprint());
    EXPECT_EQ(engine.ingest().scenario().fingerprint(),
              materialized.fingerprint());

    const CoverageModel coverage(materialized);
    EXPECT_NO_THROW(validate_solution(materialized, coverage, res.solution));

    if (materialized.user_count() == 0) {
      EXPECT_EQ(res.solution.served, 0);
      floor_ref = 0;
    } else if (res.full_solve) {
      const Solution fresh =
          stream::solve_snapshot(materialized, policy.appro);
      EXPECT_EQ(fresh.fingerprint(), res.solution.fingerprint());
      EXPECT_EQ(fresh.served, res.solution.served);
      floor_ref = res.solution.served;
    } else {
      EXPECT_EQ(res.served_at_last_full_solve, floor_ref);
      EXPECT_GE(static_cast<double>(res.solution.served),
                policy.served_floor * static_cast<double>(floor_ref));
    }
    results.push_back(res);
  }
  EXPECT_EQ(engine.epochs_processed(),
            static_cast<std::int32_t>(trace.epochs.size()));
  EXPECT_EQ(engine.full_solves() + engine.patches(),
            static_cast<std::int64_t>(trace.epochs.size()));
  return results;
}

// ---------------------------------------------------------------------------
// Streamed-vs-scratch equivalence over pinned trace seeds.

TEST(StreamEquivalence, SixPinnedSeedsMatchScratchAndHoldHysteresisFloor) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Scenario base = stream_scenario(seed);
    const ChurnTrace trace =
        stream::generate_trace(base, drill_trace_config(), seed * 7 + 1);
    ASSERT_NO_THROW(trace.validate(base.user_count()));
    const std::vector<EpochResult> results =
        run_checked(base, trace, drill_policy());
    ASSERT_EQ(results.size(), trace.epochs.size());
    // The first epoch always escalates (no standing solution yet).
    EXPECT_TRUE(results.front().full_solve);
  }
}

TEST(StreamEquivalence, HeavyChurnForcesEscalationMidTrace) {
  // A tight drift threshold with a busy trace must escalate after the
  // first epoch too — the hysteresis is live, not vacuous.
  const Scenario base = stream_scenario(77, /*users=*/30, /*uavs=*/4);
  ChurnTraceConfig config = drill_trace_config();
  config.epochs = 8;
  config.max_arrivals_per_epoch = 8;
  config.max_departures_per_epoch = 6;
  StreamPolicy policy = drill_policy();
  policy.max_drift_fraction = 0.15;
  const ChurnTrace trace = stream::generate_trace(base, config, 404);
  StreamEngine engine(base, policy);
  const std::vector<EpochResult> results = engine.run(trace);
  std::int64_t late_full_solves = 0;
  for (std::size_t e = 1; e < results.size(); ++e) {
    if (results[e].full_solve) ++late_full_solves;
  }
  EXPECT_GE(late_full_solves, 1);
}

TEST(StreamEquivalence, BitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {19u, 91u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Scenario base = stream_scenario(seed);
    const ChurnTrace trace =
        stream::generate_trace(base, drill_trace_config(), seed + 5);
    StreamEngine serial(base, drill_policy(/*threads=*/1));
    StreamEngine parallel(base, drill_policy(/*threads=*/4));
    const std::vector<EpochResult> a = serial.run(trace);
    const std::vector<EpochResult> b = parallel.run(trace);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].full_solve, b[e].full_solve) << "epoch " << e;
      EXPECT_EQ(a[e].solution.fingerprint(), b[e].solution.fingerprint())
          << "epoch " << e;
      EXPECT_EQ(a[e].solution.served, b[e].solution.served) << "epoch " << e;
    }
  }
}

TEST(StreamEquivalence, TraceGenerationIsDeterministic) {
  const Scenario base = stream_scenario(5);
  const ChurnTrace a = stream::generate_trace(base, drill_trace_config(), 9);
  const ChurnTrace b = stream::generate_trace(base, drill_trace_config(), 9);
  const ChurnTrace c = stream::generate_trace(base, drill_trace_config(), 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------------------
// Ingest edge cases.

TEST(StreamIngest, DepartOfUnknownUidThrowsAndDiscardsTheEpoch) {
  const Scenario base = stream_scenario(3, /*users=*/6, /*uavs=*/2);
  Ingest ingest(base);
  const std::uint64_t before = ingest.scenario().fingerprint();
  Epoch bad;
  bad.events.push_back({ChurnKind::kArrive, ingest.next_uid(),
                        {100.0, 100.0}, 2e3});
  bad.events.push_back({ChurnKind::kDepart, 999, {}, 0.0});
  EXPECT_THROW(ingest.apply(bad), ContractError);
  // All-or-nothing: the arrive staged before the bad depart is gone too.
  EXPECT_EQ(ingest.scenario().fingerprint(), before);
  EXPECT_EQ(ingest.live_users(), base.user_count());
  EXPECT_FALSE(ingest.is_live(999));

  Epoch bad_move;
  bad_move.events.push_back({ChurnKind::kMove, 999, {1.0, 1.0}, 0.0});
  EXPECT_THROW(ingest.apply(bad_move), ContractError);
  Epoch dup;
  dup.events.push_back({ChurnKind::kArrive, 0, {1.0, 1.0}, 2e3});
  EXPECT_THROW(ingest.apply(dup), ContractError);
}

/// Serialized text image of the materialized scenario — the byte-identity
/// witness for the all-or-nothing apply() contract.
std::string scenario_image(const Ingest& ingest) {
  std::ostringstream out;
  io::save_scenario(out, ingest.scenario());
  return out.str();
}

/// Copies every FlatScenario column the solvers read (SoA user columns,
/// UAV columns, and both CSR directions) into one comparable snapshot.
struct FlatSnapshot {
  std::vector<double> user_x, user_y, user_rate;
  std::vector<std::int32_t> uav_capacity;
  std::vector<double> uav_range;
  std::vector<UserId> cell_users;
  std::vector<LocationId> user_cells;
  std::int64_t pairs = 0;

  explicit FlatSnapshot(const FlatScenario& flat)
      : user_x(flat.user_x().begin(), flat.user_x().end()),
        user_y(flat.user_y().begin(), flat.user_y().end()),
        user_rate(flat.user_min_rate_bps().begin(),
                  flat.user_min_rate_bps().end()),
        uav_capacity(flat.uav_capacity().begin(), flat.uav_capacity().end()),
        uav_range(flat.uav_user_range_m().begin(),
                  flat.uav_user_range_m().end()),
        pairs(flat.candidate_pair_count()) {
    for (std::int32_t v = 0; v < flat.cell_count(); ++v) {
      const auto users = flat.users_near(LocationId{v});
      cell_users.insert(cell_users.end(), users.begin(), users.end());
    }
    for (std::int32_t u = 0; u < flat.user_count(); ++u) {
      const auto cells = flat.cells_near(UserId{u});
      user_cells.insert(user_cells.end(), cells.begin(), cells.end());
    }
  }

  bool operator==(const FlatSnapshot&) const = default;
};

TEST(StreamIngest, MidEpochFaultLeavesTheMaterializedPairByteIdentical) {
  const Scenario base = stream_scenario(11, /*users=*/10, /*uavs=*/3);
  Ingest ingest(base);

  // Two good epochs establish a materialized state well away from the
  // seed population.
  Epoch first;
  first.events.push_back({ChurnKind::kDepart, 1, {}, 0.0});
  first.events.push_back(
      {ChurnKind::kArrive, ingest.next_uid(), {120.0, 80.0}, 3e3});
  ingest.apply(first);
  Epoch second;
  second.events.push_back({ChurnKind::kMove, 0, {700.0, 900.0}, 0.0});
  ingest.apply(second);

  const std::string good_bytes = scenario_image(ingest);
  const std::uint64_t good_fp = ingest.scenario().fingerprint();
  const FlatSnapshot good_flat(ingest.flat());
  const std::int64_t good_live = ingest.live_users();
  const std::int64_t good_next_uid = ingest.next_uid();

  // A batch that stages real mutations (arrive + move + depart) before a
  // throwing event in the middle: arrive of an already-live uid.
  Epoch faulted;
  faulted.events.push_back(
      {ChurnKind::kArrive, ingest.next_uid(), {50.0, 60.0}, 2e3});
  faulted.events.push_back({ChurnKind::kMove, 2, {400.0, 400.0}, 0.0});
  faulted.events.push_back({ChurnKind::kDepart, 3, {}, 0.0});
  faulted.events.push_back({ChurnKind::kArrive, 0, {1.0, 1.0}, 2e3});  // boom
  faulted.events.push_back({ChurnKind::kDepart, 4, {}, 0.0});  // never reached
  EXPECT_THROW(ingest.apply(faulted), ContractError);

  // All-or-nothing: the Scenario serializes to the same bytes, the
  // FlatScenario columns and CSR index are unchanged, and the liveness
  // bookkeeping still reflects the last good epoch.
  EXPECT_EQ(scenario_image(ingest), good_bytes);
  EXPECT_EQ(ingest.scenario().fingerprint(), good_fp);
  EXPECT_TRUE(FlatSnapshot(ingest.flat()) == good_flat);
  EXPECT_EQ(ingest.live_users(), good_live);
  EXPECT_EQ(ingest.next_uid(), good_next_uid);
  EXPECT_TRUE(ingest.is_live(3));   // the staged depart was rolled back
  EXPECT_TRUE(ingest.is_live(4));

  // The ingest is still usable: the same batch without the poison applies.
  Epoch repaired;
  repaired.events.push_back(
      {ChurnKind::kArrive, ingest.next_uid(), {50.0, 60.0}, 2e3});
  repaired.events.push_back({ChurnKind::kMove, 2, {400.0, 400.0}, 0.0});
  repaired.events.push_back({ChurnKind::kDepart, 3, {}, 0.0});
  ingest.apply(repaired);
  EXPECT_FALSE(ingest.is_live(3));
  EXPECT_NE(ingest.scenario().fingerprint(), good_fp);
}

TEST(StreamIngest, SlotRecyclingNeverAliasesALiveUser) {
  const Scenario base = stream_scenario(4, /*users=*/4, /*uavs=*/2);
  Ingest ingest(base);
  // Depart uid 0 and 2, then arrive two fresh users: they must reuse the
  // freed slots without disturbing uids 1 and 3.
  Epoch churn;
  churn.events.push_back({ChurnKind::kDepart, 0, {}, 0.0});
  churn.events.push_back({ChurnKind::kDepart, 2, {}, 0.0});
  churn.events.push_back({ChurnKind::kArrive, 4, {10.0, 20.0}, 2e3});
  churn.events.push_back({ChurnKind::kArrive, 5, {30.0, 40.0}, 2e3});
  ingest.apply(churn);

  EXPECT_FALSE(ingest.is_live(0));
  EXPECT_FALSE(ingest.is_live(2));
  EXPECT_TRUE(ingest.is_live(1));
  EXPECT_TRUE(ingest.is_live(3));
  EXPECT_TRUE(ingest.is_live(4));
  EXPECT_TRUE(ingest.is_live(5));
  EXPECT_EQ(ingest.live_users(), 4);
  EXPECT_EQ(ingest.next_uid(), 6);
  EXPECT_THROW(ingest.slot_of(0), ContractError);

  // The surviving original users kept their positions; the recycled slots
  // hold the new arrivals — uid identity, not slot position, is the handle.
  const Scenario& mat = ingest.scenario();
  ASSERT_EQ(mat.user_count(), 4);
  const User& u1 = mat.users[ingest.slot_of(1)];
  EXPECT_EQ(u1.pos.x, base.users[UserId{1}].pos.x);
  EXPECT_EQ(u1.pos.y, base.users[UserId{1}].pos.y);
  const User& u4 = mat.users[ingest.slot_of(4)];
  EXPECT_EQ(u4.pos.x, 10.0);
  EXPECT_EQ(u4.pos.y, 20.0);
  for (const UserId u : mat.users.ids()) {
    EXPECT_TRUE(ingest.is_live(ingest.uid_at(u)));
    EXPECT_EQ(ingest.slot_of(ingest.uid_at(u)), u);
  }
}

TEST(StreamIngest, ZeroEventEpochIsAFingerprintNoOp) {
  const Scenario base = stream_scenario(6, /*users=*/12, /*uavs=*/3);
  Ingest ingest(base);
  const std::uint64_t before = ingest.scenario().fingerprint();
  ingest.apply(Epoch{});
  EXPECT_EQ(ingest.scenario().fingerprint(), before);

  // Engine view: after the first full solve, an empty epoch is a patch
  // whose materialization and solution are unchanged.
  StreamEngine engine(base, drill_policy());
  Epoch arrivals;
  arrivals.events.push_back({ChurnKind::kArrive, ingest.next_uid(),
                             {700.0, 700.0}, 2e3});
  const EpochResult first = engine.step(arrivals);
  const EpochResult idle = engine.step(Epoch{});
  EXPECT_FALSE(idle.full_solve);
  EXPECT_EQ(idle.scenario_fingerprint, first.scenario_fingerprint);
  EXPECT_EQ(idle.solution.fingerprint(), first.solution.fingerprint());
}

TEST(StreamIngest, OutOfAreaPositionsAreClampedToTheBorder) {
  const Scenario base = stream_scenario(8, /*users=*/4, /*uavs=*/2);
  Ingest ingest(base);
  Epoch churn;
  churn.events.push_back({ChurnKind::kArrive, 4, {-50.0, 5000.0}, 2e3});
  churn.events.push_back({ChurnKind::kMove, 0, {2000.0, -1.0}, 0.0});
  ingest.apply(churn);
  const Scenario& mat = ingest.scenario();
  const User& arrived = mat.users[ingest.slot_of(4)];
  EXPECT_EQ(arrived.pos.x, 0.0);
  EXPECT_EQ(arrived.pos.y, base.grid.height());
  const User& moved = mat.users[ingest.slot_of(0)];
  EXPECT_EQ(moved.pos.x, base.grid.width());
  EXPECT_EQ(moved.pos.y, 0.0);
  EXPECT_NO_THROW(mat.validate());
}

TEST(StreamIngest, EngineDrainsToEmptyAndRecovers) {
  const Scenario base = stream_scenario(9, /*users=*/3, /*uavs=*/2);
  StreamEngine engine(base, drill_policy());
  Epoch drain;
  for (std::int64_t uid = 0; uid < 3; ++uid) {
    drain.events.push_back({ChurnKind::kDepart, uid, {}, 0.0});
  }
  const EpochResult empty = engine.step(drain);
  EXPECT_EQ(empty.solution.served, 0);
  EXPECT_TRUE(empty.solution.deployments.empty());
  EXPECT_EQ(engine.ingest().live_users(), 0);

  Epoch revive;
  revive.events.push_back({ChurnKind::kArrive, engine.ingest().next_uid(),
                           {750.0, 750.0}, 2e3});
  const EpochResult back = engine.step(revive);
  EXPECT_TRUE(back.full_solve);  // repopulation always re-solves.
  EXPECT_EQ(back.solution.served, 1);
}

// ---------------------------------------------------------------------------
// Trace persistence.

TEST(StreamTraceIo, TextAndBinaryRoundTripByteExactly) {
  const Scenario base = stream_scenario(13);
  const ChurnTrace trace =
      stream::generate_trace(base, drill_trace_config(), 21);
  for (const io::Format format : {io::Format::kText, io::Format::kBinary}) {
    SCOPED_TRACE(format == io::Format::kText ? "text" : "binary");
    std::ostringstream first;
    io::save_trace(first, trace, format);
    const ChurnTrace loaded = io::load_trace(first.str());
    EXPECT_EQ(loaded, trace);
    EXPECT_EQ(loaded.fingerprint(), trace.fingerprint());
    std::ostringstream second;
    io::save_trace(second, loaded, format);
    EXPECT_EQ(first.str(), second.str());  // byte-exact, not just equal.
  }
}

TEST(StreamTraceIo, EmptyAndDegenerateTracesRoundTrip) {
  for (const io::Format format : {io::Format::kText, io::Format::kBinary}) {
    ChurnTrace empty;
    std::ostringstream out;
    io::save_trace(out, empty, format);
    EXPECT_EQ(io::load_trace(out.str()), empty);

    ChurnTrace sparse;
    sparse.epochs.resize(3);  // zero-event epochs must survive the trip.
    sparse.epochs[1].events.push_back(
        {ChurnKind::kArrive, 0, {1.5, 2.5}, 2e3});
    std::ostringstream out2;
    io::save_trace(out2, sparse, format);
    EXPECT_EQ(io::load_trace(out2.str()), sparse);
  }
}

TEST(StreamTraceIo, MalformedInputThrowsContractError) {
  EXPECT_THROW(io::load_trace("uavcov-trace v2\nepochs 0\n"), ContractError);
  EXPECT_THROW(io::load_trace("UAVCTRC1garbage"), ContractError);
  EXPECT_THROW(io::load_trace("uavcov-trace v1\nepochs 1\n"), ContractError);

  const Scenario base = stream_scenario(14, /*users=*/6, /*uavs=*/2);
  ChurnTraceConfig config = drill_trace_config();
  config.epochs = 2;
  const ChurnTrace trace = stream::generate_trace(base, config, 31);
  std::ostringstream out;
  io::save_trace(out, trace, io::Format::kBinary);
  std::string corrupted = out.str();
  corrupted[corrupted.size() - 5] ^= 0x40;  // flip a payload byte.
  EXPECT_THROW(io::load_trace(corrupted), ContractError);
}

TEST(StreamTraceIo, GeneratorRejectsBadConfig) {
  ChurnTraceConfig config;
  config.epochs = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  ChurnTraceConfig bias;
  bias.arrival_cluster_bias = 1.5;
  EXPECT_THROW(bias.validate(), std::invalid_argument);
  StreamPolicy policy;
  policy.served_floor = 0.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(StreamMetrics, CountersAndEpochTimerRecorded) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.set_enabled(true);

  const Scenario base = stream_scenario(17, /*users=*/20, /*uavs=*/3);
  ChurnTraceConfig config = drill_trace_config();
  config.epochs = 4;
  const ChurnTrace trace = stream::generate_trace(base, config, 23);
  StreamEngine engine(base, drill_policy());
  engine.run(trace);

  registry.set_enabled(false);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("stream.epochs"), 4);
  EXPECT_EQ(snap.counter_value("stream.events.arrive") +
                snap.counter_value("stream.events.depart") +
                snap.counter_value("stream.events.move"),
            trace.event_count());
  EXPECT_EQ(snap.counter_value("stream.full_solves"), engine.full_solves());
  EXPECT_EQ(snap.counter_value("stream.patches"), engine.patches());
  const obs::SnapshotEntry* timer = snap.find("stream.epoch_seconds");
  ASSERT_NE(timer, nullptr);
}

}  // namespace
}  // namespace uavcov
