// Tests for the experiment harness and figure sweeps at toy scale.
#include <gtest/gtest.h>

#include <fstream>

#include "eval/experiment.hpp"
#include "eval/figures.hpp"

namespace uavcov::eval {
namespace {

RunConfig toy_config() {
  RunConfig config;
  config.scenario.width_m = 1200;
  config.scenario.height_m = 1200;
  config.scenario.cell_side_m = 300;
  config.scenario.user_count = 60;
  config.scenario.fleet.uav_count = 4;
  config.scenario.fleet.capacity_min = 5;
  config.scenario.fleet.capacity_max = 20;
  config.appro.s = 1;
  config.seed = 5;
  return config;
}

TEST(RunAll, RunsEveryAlgorithmAndValidates) {
  RunConfig config = toy_config();
  config.run_random = true;
  const auto results = run_all(config);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].name, "approAlg");
  EXPECT_EQ(results[1].name, "maxThroughput");
  EXPECT_EQ(results[2].name, "MotionCtrl");
  EXPECT_EQ(results[3].name, "MCS");
  EXPECT_EQ(results[4].name, "GreedyAssign");
  EXPECT_EQ(results[5].name, "RandomConnected");
  for (const auto& r : results) {
    EXPECT_GE(r.served, 0) << r.name;
    EXPECT_GE(r.seconds, 0.0) << r.name;
  }
}

TEST(RunAll, SelectionFlagsRespected) {
  RunConfig config = toy_config();
  config.run_motion_ctrl = false;
  config.run_mcs = false;
  config.run_greedy_assign = false;
  config.run_max_throughput = false;
  const auto results = run_all(config);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "approAlg");
}

TEST(RunAll, DeterministicAcrossCalls) {
  const RunConfig config = toy_config();
  const auto a = run_all(config);
  const auto b = run_all(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].served, b[i].served) << a[i].name;
  }
}

TEST(RunAll, StatsPlumbing) {
  RunConfig config = toy_config();
  ApproAlgStats stats;
  (void)run_all(config, &stats);
  EXPECT_GT(stats.subsets_evaluated, 0);
}

TEST(RunAveraged, AveragesOverSeeds) {
  RunConfig config = toy_config();
  config.run_motion_ctrl = false;
  config.run_mcs = false;
  config.run_greedy_assign = false;
  config.run_max_throughput = false;
  const auto mean = run_averaged(config, 3);
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_GE(mean[0].served, 0);
}

FigureScale toy_scale() {
  FigureScale scale;
  scale.users = 60;
  scale.uavs = 4;
  scale.s = 1;
  scale.cell_side_m = 300;
  scale.candidate_cap = 10;
  scale.seed = 5;
  return scale;
}

TEST(Figures, Fig4TableShape) {
  // Shrink the scenario via the scale's own knobs.
  FigureScale scale = toy_scale();
  const Table table = fig4_served_vs_k(scale, 2, 4, 2);
  EXPECT_EQ(table.row_count(), 2u);  // K = 2, 4
  const std::string out = table.to_string();
  EXPECT_NE(out.find("approAlg"), std::string::npos);
  EXPECT_NE(out.find("GreedyAssign"), std::string::npos);
}

TEST(Figures, Fig5TableShape) {
  FigureScale scale = toy_scale();
  const Table table = fig5_served_vs_n(scale, 30, 60, 30);
  EXPECT_EQ(table.row_count(), 2u);  // n = 30, 60
}

TEST(Figures, Fig6ProducesServedAndRuntime) {
  FigureScale scale = toy_scale();
  Table runtime;
  const Table served = fig6_s_tradeoff(scale, runtime, 1, 2);
  EXPECT_EQ(served.row_count(), 2u);
  EXPECT_EQ(runtime.row_count(), 2u);
}

TEST(Figures, CsvSideOutput) {
  FigureScale scale = toy_scale();
  scale.csv_path = testing::TempDir() + "/uavcov_fig4.csv";
  (void)fig4_served_vs_k(scale, 2, 2, 2);
  std::ifstream in(scale.csv_path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("approAlg"), std::string::npos);
}

}  // namespace
}  // namespace uavcov::eval
