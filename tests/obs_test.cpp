// Tests for the observability layer (src/obs/): registry semantics
// (interning, enable/disable, reset), deterministic snapshots under
// multi-threaded recording, histogram bucketing, the JSON/CSV exporters,
// and the two timing-unification invariants the instrumentation promises:
//   * ApproAlgPhases::sum_s() <= ApproAlgStats::seconds (one Stopwatch);
//   * ApproAlgStats::probes == the "core.assignment.probes" counter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/appro_alg.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace uavcov::obs {
namespace {

TEST(Registry, StartsDisabledAndIgnoresRecords) {
  Registry reg;
  EXPECT_FALSE(reg.enabled());
  Counter c = reg.counter("test.counter");
  Gauge g = reg.gauge("test.gauge");
  Histogram h = reg.histogram("test.hist");
  c.inc();
  g.set(42);
  h.observe(7);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), 0);
  EXPECT_EQ(snap.find("test.gauge")->value, 0);
  EXPECT_EQ(snap.find("test.hist")->hist.count, 0);
}

TEST(Registry, CountersGaugesHistogramsRecordWhenEnabled) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("test.counter");
  c.inc();
  c.inc(4);
  Gauge g = reg.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  g.set(2);
  Histogram h = reg.histogram("test.hist");
  h.observe(1);
  h.observe(100);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), 5);
  const SnapshotEntry* gauge = snap.find("test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 2);
  EXPECT_EQ(gauge->high_water, 10);
  const SnapshotEntry* hist = snap.find("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 2);
  EXPECT_EQ(hist->hist.sum, 101);
  EXPECT_EQ(hist->hist.min, 1);
  EXPECT_EQ(hist->hist.max, 100);
}

TEST(Registry, InterningReturnsSameMetricAndChecksKind) {
  Registry reg;
  reg.set_enabled(true);
  Counter a = reg.counter("same.name");
  Counter b = reg.counter("same.name");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().counter_value("same.name"), 2);
  EXPECT_THROW(reg.gauge("same.name"), ContractError);
  EXPECT_THROW(reg.histogram("same.name"), ContractError);
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("zebra").inc();
  reg.histogram("middle").observe(1);
  reg.gauge("alpha").set(1);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  std::vector<std::string> names;
  for (const SnapshotEntry& e : snap.entries) names.push_back(e.name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
}

TEST(Registry, ShardsMergeAcrossThreadsDeterministically) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("mt.counter");
  Histogram h = reg.histogram("mt.hist");
  constexpr int kTasks = 64;
  constexpr std::int64_t kPerTask = 100;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([c, h] {
        for (std::int64_t i = 0; i < kPerTask; ++i) {
          c.inc();
          h.observe(i);
        }
      });
    }
    pool.wait_idle();
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("mt.counter"), kTasks * kPerTask);
  const SnapshotEntry* hist = snap.find("mt.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, kTasks * kPerTask);
  EXPECT_EQ(hist->hist.min, 0);
  EXPECT_EQ(hist->hist.max, kPerTask - 1);
  // Sum over buckets equals the total count (no sample lost or doubled).
  std::int64_t bucket_total = 0;
  for (const std::int64_t b : hist->hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("r.counter");
  Gauge g = reg.gauge("r.gauge");
  Histogram h = reg.histogram("r.hist");
  c.inc(9);
  g.set(9);
  h.observe(9);
  reg.reset();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("r.counter"), 0);
  EXPECT_EQ(snap.find("r.gauge")->value, 0);
  EXPECT_EQ(snap.find("r.hist")->hist.count, 0);
  // Handles stay live after reset.
  c.inc();
  EXPECT_EQ(reg.snapshot().counter_value("r.counter"), 1);
}

TEST(Histogram, BucketBoundsArePowersOfFour) {
  EXPECT_EQ(histogram_bucket_bound(0), 1);
  EXPECT_EQ(histogram_bucket_bound(1), 4);
  EXPECT_EQ(histogram_bucket_bound(2), 16);
  EXPECT_EQ(histogram_bucket_bound(kHistogramBucketCount - 1),
            std::int64_t{1} << (2 * (kHistogramBucketCount - 1)));
}

TEST(Histogram, RecordPlacesValuesInFirstCoveringBucket) {
  HistogramData data;
  data.record(0);    // <= 4^0 → bucket 0
  data.record(1);    // <= 4^0 → bucket 0
  data.record(4);    // <= 4^1 → bucket 1
  data.record(5);    // <= 4^2 → bucket 2
  data.record(histogram_bucket_bound(kHistogramBucketCount - 1) +
              1);    // overflow bucket
  EXPECT_EQ(data.buckets[0], 2);
  EXPECT_EQ(data.buckets[1], 1);
  EXPECT_EQ(data.buckets[2], 1);
  EXPECT_EQ(data.buckets[kHistogramBucketCount], 1);
  EXPECT_EQ(data.count, 5);
}

TEST(ScopedTimer, RecordsOneSampleWhenEnabled) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("timer.hist");
  { const ScopedTimer timer(h); }
  const Snapshot snap = reg.snapshot();
  const SnapshotEntry* e = snap.find("timer.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.count, 1);
  EXPECT_GE(e->hist.min, 0);
}

TEST(ScopedTimer, NoopWhenDisabled) {
  Registry reg;
  Histogram h = reg.histogram("timer.hist");
  { const ScopedTimer timer(h); }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("timer.hist")->hist.count, 0);
}

TEST(JsonWriter, BuildsNestedDocuments) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "va\"lue\n");
  w.kv("count", std::int64_t{3});
  w.kv("ratio", 0.5);
  w.kv("on", true);
  w.key("list").begin_array().value(std::int64_t{1}).value(std::int64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\"name\":\"va\\\"lue\\n\",\"count\":3,\"ratio\":0.5,"
            "\"on\":true,\"list\":[1,2]}");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    EXPECT_THROW(w.key("k"), ContractError);  // key outside an object
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.take(), ContractError);  // unbalanced
  }
  {
    JsonWriter w;
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), ContractError);  // two keys in a row
  }
}

TEST(Exporters, JsonAndCsvCoverEveryMetric) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("e.counter").inc(3);
  reg.gauge("e.gauge").set(7);
  reg.histogram("e.hist").observe(12);
  const Snapshot snap = reg.snapshot();

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"counters\":{\"e.counter\":3}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"e.gauge\":{\"value\":7,\"high_water\":7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"e.hist\":{\"count\":1,\"sum\":12"),
            std::string::npos)
      << json;

  const std::string csv = to_csv(snap);
  EXPECT_NE(csv.find("kind,name,value,high_water,count,sum,min,max"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,e.counter,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,e.gauge,7,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,e.hist"), std::string::npos);
}

/// Small deterministic scenario for the instrumentation-invariant tests
/// (same construction as parallel_search_test.cpp).
Scenario small_scenario() {
  Rng rng(77);
  Scenario sc{
      .grid = Grid(500.0, 500.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < 30; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, 500.0), rng.uniform(0, 500.0)}, 1e3});
  }
  for (std::int32_t k = 0; k < 5; ++k) {
    sc.fleet.push_back({2, Radio{}, 120.0});
  }
  return sc;
}

TEST(Instrumentation, PhaseTimesComeFromTheSolverStopwatch) {
  const Scenario sc = small_scenario();
  ApproAlgParams params;
  params.s = 2;
  ApproAlgStats stats;
  (void)appro_alg(sc, params, &stats);
  // All four phases are deltas of the one Stopwatch that also produces
  // `seconds`, so the sum can never exceed it.
  EXPECT_GE(stats.phases.plan_s, 0.0);
  EXPECT_GE(stats.phases.prepare_s, 0.0);
  EXPECT_GE(stats.phases.search_s, 0.0);
  EXPECT_GE(stats.phases.finalize_s, 0.0);
  EXPECT_LE(stats.phases.sum_s(), stats.seconds);
  // The search phase contains the whole subset evaluation; on any real
  // run it dominates enough to be non-zero.
  EXPECT_GT(stats.phases.sum_s(), 0.0);
}

TEST(Instrumentation, StatsProbesMatchTheFlowProbeCounter) {
  Registry& reg = Registry::instance();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();

  const Scenario sc = small_scenario();
  ApproAlgParams params;
  params.s = 2;
  params.threads = 1;  // keep the counter attributable to this run
  ApproAlgStats stats;
  (void)appro_alg(sc, params, &stats);

  const Snapshot snap = reg.snapshot();
  reg.set_enabled(was_enabled);
  EXPECT_GT(stats.probes, 0);
  EXPECT_EQ(snap.counter_value("core.assignment.probes"), stats.probes);
  EXPECT_EQ(snap.counter_value("solve.approAlg.runs"), 1);
  const SnapshotEntry* probe_hist = snap.find("core.assignment.probe_seconds");
  ASSERT_NE(probe_hist, nullptr);
  EXPECT_EQ(probe_hist->hist.count, stats.probes);
}

}  // namespace
}  // namespace uavcov::obs
