// Fault-tolerance acceptance suite (docs/RESILIENCE.md).  Registered with
// UAVCOV_AUDIT=1 (tests/CMakeLists.txt), so every solution the repair
// controller emits — mid-repair included — runs through the deep
// analysis/audit feasibility audits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/redeploy.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/impact.hpp"
#include "resilience/repair.hpp"
#include "resilience/timeline.hpp"
#include "workload/scenario_gen.hpp"

namespace uavcov {
namespace {

using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultPlanConfig;
using resilience::RepairAction;
using resilience::RepairController;
using resilience::RepairOutcome;
using resilience::RepairPolicy;

Scenario drill_scenario(std::uint64_t seed, std::int32_t users = 120,
                        std::int32_t uavs = 6) {
  Rng rng(seed);
  workload::ScenarioConfig config;
  config.width_m = 1500;
  config.height_m = 1500;
  config.cell_side_m = 300;
  config.user_count = users;
  config.fleet.uav_count = uavs;
  config.fleet.capacity_min = 15;
  config.fleet.capacity_max = 40;
  return workload::make_disaster_scenario(config, rng);
}

RepairPolicy drill_policy(std::int32_t threads = 1) {
  RepairPolicy policy;
  policy.appro.s = 2;
  policy.appro.threads = threads;
  return policy;
}

/// A 5-cell line topology: cells 0..4 in a row, R_uav reaches only the
/// next cell, `per_cell` users on each cell center servable only by their
/// own cell's UAV.  UAV k at cell k is a line network whose interior
/// nodes are all articulation points — the sharpest hand-analyzable
/// failure geometry.
Scenario line_scenario(std::int32_t fleet_size = 5,
                       std::int32_t per_cell = 4) {
  Scenario sc{
      .grid = Grid(1500, 300, 300),
      .altitude_m = 100.0,
      .uav_range_m = 320.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t c = 0; c < 5; ++c) {
    const Vec2 center = sc.grid.center(LocationId{c});
    for (std::int32_t i = 0; i < per_cell; ++i) {
      sc.users.push_back({{center.x - 20.0 + 10.0 * i, center.y}, 2e3});
    }
  }
  for (std::int32_t k = 0; k < fleet_size; ++k) {
    sc.fleet.push_back({per_cell, Radio{}, 140.0});
  }
  sc.validate();
  return sc;
}

/// Feasible line solution: UAV k at cell k, users assigned to their own
/// cell's UAV.
Solution line_solution(const Scenario& sc, std::int32_t per_cell = 4) {
  Solution sol;
  sol.algorithm = "line";
  for (std::int32_t c = 0; c < 5; ++c) {
    sol.deployments.push_back({UavId{c}, LocationId{c}});
  }
  sol.user_to_deployment.assign(sc.users.size(), -1);
  for (const UserId u : sc.users.ids()) {
    sol.user_to_deployment[u] = u.value() / per_cell;
  }
  sol.served = sc.user_count();
  return sol;
}

// ---- Fault plans --------------------------------------------------------

TEST(FaultPlan, GeneratorIsDeterministicAndValid) {
  const Scenario sc = drill_scenario(11);
  FaultPlanConfig config;
  config.events = 5;
  config.include_gateway_loss = true;
  const FaultPlan a = resilience::make_fault_plan(sc, config, 77);
  const FaultPlan b = resilience::make_fault_plan(sc, config, 77);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NO_THROW(a.validate(sc));
  const FaultPlan c = resilience::make_fault_plan(sc, config, 78);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  // Loss events target distinct UAVs and never exhaust the fleet.
  std::vector<UavId> lost;
  for (const FaultEvent& e : a.events) {
    if (e.kind != FaultKind::kLinkDegrade) lost.push_back(e.uav);
  }
  std::sort(lost.begin(), lost.end());
  EXPECT_EQ(std::adjacent_find(lost.begin(), lost.end()), lost.end());
  EXPECT_LT(static_cast<std::int32_t>(lost.size()), sc.uav_count());
}

TEST(FaultPlan, ValidateRejectsMalformedEvents) {
  const Scenario sc = drill_scenario(12);
  FaultPlan plan;
  plan.events = {{10.0, FaultKind::kCrash, UavId{0}, 1.0},
                 {5.0, FaultKind::kCrash, UavId{1}, 1.0}};  // out of order
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{1.0, FaultKind::kCrash, UavId{sc.uav_count()}, 1.0}};
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{1.0, FaultKind::kLinkDegrade, UavId{0}, 0.5}};  // uav must be -1
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{1.0, FaultKind::kLinkDegrade, UavId::invalid(), 1.5}};  // scale > 1
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{1.0, FaultKind::kCrash, UavId{0}, 0.5}};  // crash scales nothing
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{-1.0, FaultKind::kCrash, UavId{0}, 1.0}};
  EXPECT_THROW(plan.validate(sc), std::invalid_argument);
  plan.events = {{0.0, FaultKind::kLinkDegrade, UavId::invalid(), 0.9},
                 {3.0, FaultKind::kGatewayLoss, UavId{0}, 1.0}};
  EXPECT_NO_THROW(plan.validate(sc));
}

// ---- Impact analysis on the hand-built line -----------------------------

TEST(Impact, LineNetworkSpofAndStranding) {
  const Scenario sc = line_scenario();
  const Solution sol = line_solution(sc);
  // Interior UAVs 1, 2, 3 are the articulation points of a 5-node line.
  FaultPlan plan;
  plan.events = {{10.0, FaultKind::kCrash, UavId{2}, 1.0}};
  const resilience::ImpactReport report =
      resilience::analyze_impact(sc, sol, plan);
  EXPECT_EQ(report.single_points_of_failure,
            (std::vector<UavId>{UavId{1}, UavId{2}, UavId{3}}));
  ASSERT_EQ(report.events.size(), 1u);
  const resilience::EventImpact& e = report.events[0];
  EXPECT_EQ(e.deployments_alive, 4);
  EXPECT_EQ(e.components, 2);  // {0,1} and {3,4}
  EXPECT_EQ(e.main_component_size, 2);
  EXPECT_EQ(e.served_remaining, 8);   // 2 cells x 4 users
  EXPECT_EQ(e.users_stranded, 12);    // the other 3 cells
}

TEST(Impact, LeafLossStrandsOnlyItsOwnUsers) {
  const Scenario sc = line_scenario();
  const Solution sol = line_solution(sc);
  FaultPlan plan;
  plan.events = {{10.0, FaultKind::kCrash, UavId{4}, 1.0}};  // leaf, not a SPOF
  const resilience::ImpactReport report =
      resilience::analyze_impact(sc, sol, plan);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].components, 1);
  EXPECT_EQ(report.events[0].served_remaining, 16);
  EXPECT_EQ(report.events[0].users_stranded, 4);
}

TEST(Impact, LinkDegradeCanShatterTheLine) {
  const Scenario sc = line_scenario();
  const Solution sol = line_solution(sc);
  FaultPlan plan;
  // 320 m range * 0.5 < 300 m spacing: every link dies at once.
  plan.events = {{10.0, FaultKind::kLinkDegrade, UavId::invalid(), 0.5}};
  const resilience::ImpactReport report =
      resilience::analyze_impact(sc, sol, plan);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].components, 5);
  EXPECT_EQ(report.events[0].main_component_size, 1);
}

// ---- Repair controller on the line -------------------------------------

TEST(Repair, RestitchesLineAfterInteriorLoss) {
  const Scenario sc = line_scenario();
  RepairPolicy policy = drill_policy();
  policy.local_repair_floor = 0.05;  // accept any local repair: we want to
                                     // observe the re-stitch itself
  RepairController controller(sc, policy);
  controller.adopt(line_solution(sc));

  const RepairOutcome out =
      controller.on_fault({10.0, FaultKind::kCrash, UavId{2}, 1.0});
  EXPECT_EQ(out.action, RepairAction::kLocal);
  EXPECT_EQ(out.served_before, 20);
  // A survivor was re-tasked onto the cut cell: the mesh is whole again
  // and only the re-tasked UAV's old cell (plus the crashed UAV's users)
  // lost service.
  EXPECT_GE(out.retasked, 1);
  EXPECT_TRUE(deployments_connected(sc, controller.current().deployments));
  EXPECT_GE(out.served_after, 12);  // >= 3 of 5 cells still served
  EXPECT_EQ(controller.current().served, out.served_after);
}

TEST(Repair, SecondFaultOnDeadUavIsNoOp) {
  const Scenario sc = line_scenario();
  RepairPolicy policy = drill_policy();
  policy.local_repair_floor = 0.05;
  RepairController controller(sc, policy);
  controller.adopt(line_solution(sc));
  controller.on_fault({10.0, FaultKind::kCrash, UavId{4}, 1.0});
  const RepairOutcome again =
      controller.on_fault({20.0, FaultKind::kCrash, UavId{4}, 1.0});
  EXPECT_EQ(again.action, RepairAction::kNone);
  EXPECT_EQ(again.served_after, again.served_before);
}

TEST(Repair, SurvivesFleetExhaustion) {
  const Scenario sc = line_scenario(/*fleet_size=*/5);
  RepairPolicy policy = drill_policy();
  policy.local_repair_floor = 0.05;
  RepairController controller(sc, policy);
  controller.adopt(line_solution(sc));
  for (std::int32_t k = 0; k < 5; ++k) {
    EXPECT_NO_THROW(controller.on_fault(
        {10.0 * (k + 1), FaultKind::kCrash, UavId{k}, 1.0}));
  }
  EXPECT_EQ(controller.alive_count(), 0);
  EXPECT_TRUE(controller.current().deployments.empty());
  EXPECT_EQ(controller.current().served, 0);
}

// ---- Pinned drills: determinism, audits, retention, escalation ----------

/// One full drill: deploy with `threads`, apply every event, return the
/// step-by-step solution fingerprints plus the outcomes.
std::pair<std::vector<std::uint64_t>, std::vector<RepairOutcome>> run_drill(
    const Scenario& sc, const FaultPlan& plan, std::int32_t threads) {
  RepairController controller(sc, drill_policy(threads));
  controller.deploy();
  std::vector<std::uint64_t> fingerprints{controller.current().fingerprint()};
  std::vector<RepairOutcome> outcomes;
  for (const FaultEvent& e : plan.events) {
    outcomes.push_back(controller.on_fault(e));
    fingerprints.push_back(controller.current().fingerprint());
  }
  return {std::move(fingerprints), std::move(outcomes)};
}

TEST(Repair, PinnedDrillsBitIdenticalSerialVsParallel) {
  // >= 5 pinned (scenario, plan) seed pairs; every intermediate solution
  // is audited (UAVCOV_AUDIT=1 in the test environment), and the whole
  // inject→repair trajectory must be bit-identical across thread counts
  // (the parallel engine's DESIGN.md §7 contract extended to repair).
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u, 26u}) {
    const Scenario sc = drill_scenario(seed);
    FaultPlanConfig config;
    config.events = 4;
    config.include_gateway_loss = (seed % 2) == 0;
    const FaultPlan plan =
        resilience::make_fault_plan(sc, config, seed * 977);
    const auto serial = run_drill(sc, plan, /*threads=*/1);
    const auto parallel = run_drill(sc, plan, /*threads=*/4);
    EXPECT_EQ(serial.first, parallel.first) << "drill seed " << seed;
    ASSERT_EQ(serial.second.size(), parallel.second.size());
    for (std::size_t i = 0; i < serial.second.size(); ++i) {
      EXPECT_EQ(serial.second[i].action, parallel.second[i].action)
          << "drill seed " << seed << " event " << i;
      EXPECT_EQ(serial.second[i].served_after,
                parallel.second[i].served_after)
          << "drill seed " << seed << " event " << i;
    }
  }
}

TEST(Repair, LocalRepairRetains70PercentOnNonArticulationDrills) {
  // Crash every deployed non-articulation UAV in turn (fresh controller
  // each time): local repair must keep >= 70% of the pre-fault served
  // users without escalating.
  const Scenario sc = drill_scenario(31);
  RepairController seed_controller(sc, drill_policy());
  const Solution initial = seed_controller.deploy();
  const resilience::ImpactReport spof =
      resilience::analyze_impact(sc, initial, FaultPlan{});
  std::int32_t drills = 0;
  for (const Deployment& d : initial.deployments) {
    const bool is_spof =
        std::find(spof.single_points_of_failure.begin(),
                  spof.single_points_of_failure.end(),
                  d.uav) != spof.single_points_of_failure.end();
    if (is_spof) continue;
    RepairController controller(sc, drill_policy());
    controller.adopt(initial);
    const RepairOutcome out =
        controller.on_fault({10.0, FaultKind::kCrash, d.uav, 1.0});
    EXPECT_EQ(out.action, RepairAction::kLocal) << "uav " << d.uav.value();
    EXPECT_GE(static_cast<double>(out.served_after),
              0.7 * static_cast<double>(out.served_before))
        << "uav " << d.uav.value();
    ++drills;
  }
  EXPECT_GE(drills, 1);
}

TEST(Repair, GatewayLossEscalatesToFullResolve) {
  const Scenario sc = drill_scenario(32);
  RepairController controller(sc, drill_policy());
  const Solution initial = controller.deploy();
  ASSERT_FALSE(initial.deployments.empty());
  const std::int32_t before_full = controller.full_solves();
  const RepairOutcome out = controller.on_fault(
      {10.0, FaultKind::kGatewayLoss, initial.deployments[0].uav, 1.0});
  EXPECT_EQ(out.action, RepairAction::kFullResolve);
  EXPECT_EQ(controller.full_solves(), before_full + 1);
  // The re-solve ran on the degraded fleet: the dead UAV must be gone.
  for (const Deployment& d : controller.current().deployments) {
    EXPECT_NE(d.uav, initial.deployments[0].uav);
  }
}

TEST(Repair, EscalatedResolveRespectsRemainingTimeBudget) {
  // The policy's time_budget_s must bound the *escalated* full re-solve,
  // not just the initial deploy: with a sub-millisecond budget the
  // gateway-loss escalation has to stop early and report deadline_hit.
  const Scenario sc = drill_scenario(32);
  RepairPolicy tight = drill_policy();
  tight.appro.time_budget_s = 1e-4;
  RepairController controller(sc, tight);
  const Solution initial = controller.deploy();
  ASSERT_FALSE(initial.deployments.empty());
  const RepairOutcome out = controller.on_fault(
      {10.0, FaultKind::kGatewayLoss, initial.deployments[0].uav, 1.0});
  EXPECT_EQ(out.action, RepairAction::kFullResolve);
  EXPECT_TRUE(out.deadline_hit);

  // A generous budget never trips it — and the emitted solution is still
  // audited (UAVCOV_AUDIT=1) either way.
  RepairPolicy roomy = drill_policy();
  roomy.appro.time_budget_s = 1000.0;
  RepairController relaxed(sc, roomy);
  const Solution initial2 = relaxed.deploy();
  ASSERT_FALSE(initial2.deployments.empty());
  const RepairOutcome out2 = relaxed.on_fault(
      {10.0, FaultKind::kGatewayLoss, initial2.deployments[0].uav, 1.0});
  EXPECT_EQ(out2.action, RepairAction::kFullResolve);
  EXPECT_FALSE(out2.deadline_hit);
}

TEST(Repair, WithRemainingBudgetDeductsElapsedTime) {
  ApproAlgParams base;
  base.time_budget_s = 2.0;
  EXPECT_DOUBLE_EQ(resilience::with_remaining_budget(base, 0.5).time_budget_s,
                   1.5);
  // Overspent budgets floor at a tiny positive value (the solve must still
  // evaluate one subset) instead of going unbudgeted or negative.
  EXPECT_DOUBLE_EQ(resilience::with_remaining_budget(base, 5.0).time_budget_s,
                   1e-4);
  // Unbudgeted bases pass through bit-identical.
  ApproAlgParams unbounded;
  unbounded.time_budget_s = 0.0;
  EXPECT_DOUBLE_EQ(
      resilience::with_remaining_budget(unbounded, 3.0).time_budget_s, 0.0);
}

TEST(Repair, PolicyValidationShared) {
  const Scenario sc = drill_scenario(33);
  RepairPolicy bad = drill_policy();
  bad.local_repair_floor = 0.0;
  EXPECT_THROW(RepairController(sc, bad), std::invalid_argument);
  bad.local_repair_floor = 1.5;
  EXPECT_THROW(RepairController(sc, bad), std::invalid_argument);
  bad = drill_policy();
  bad.refine_rounds = -1;
  EXPECT_THROW(RepairController(sc, bad), std::invalid_argument);
  bad = drill_policy();
  bad.appro.time_budget_s = -1.0;
  EXPECT_THROW(RepairController(sc, bad), std::invalid_argument);
  EXPECT_THROW(validate_unit_threshold("x", 0.0), std::invalid_argument);
  EXPECT_THROW(validate_unit_threshold("x", 2.0), std::invalid_argument);
  EXPECT_NO_THROW(validate_unit_threshold("x", 1.0));
}

// ---- RedeployPolicy validation (shared with the repair policy) ----------

TEST(Redeploy, UpdateValidatesPolicyAtEntry) {
  const Scenario sc = drill_scenario(34, /*users=*/60, /*uavs=*/4);
  RedeployPolicy bad;
  bad.degradation_threshold = 0.0;
  RedeployController at_zero(bad);
  EXPECT_THROW(at_zero.update(sc), std::invalid_argument);
  bad.degradation_threshold = 1.0001;
  RedeployController above_one(bad);
  EXPECT_THROW(above_one.update(sc), std::invalid_argument);
  RedeployPolicy good;
  good.appro.s = 2;
  RedeployController controller(good);
  EXPECT_NO_THROW(controller.update(sc));
}

// ---- Deadline-bounded solving -------------------------------------------

TEST(Deadline, BindingBudgetStillReturnsValidSolution) {
  const Scenario sc = drill_scenario(41, /*users=*/150, /*uavs=*/7);
  const CoverageModel coverage(sc);
  ApproAlgParams params;
  params.s = 3;
  params.time_budget_s = 1e-6;  // expires before the search starts
  ApproAlgStats stats;
  const Solution sol = appro_alg(sc, coverage, params, &stats);
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_GE(stats.subsets_evaluated, 1);  // never gratuitously empty
  validate_solution(sc, coverage, sol);   // §II-C feasible regardless
}

TEST(Deadline, GenerousBudgetIsBitIdenticalToUnbudgeted) {
  const Scenario sc = drill_scenario(42);
  const CoverageModel coverage(sc);
  ApproAlgParams params;
  params.s = 2;
  ApproAlgStats unbudgeted_stats;
  const Solution unbudgeted = appro_alg(sc, coverage, params,
                                        &unbudgeted_stats);
  params.time_budget_s = 3600.0;
  ApproAlgStats budgeted_stats;
  const Solution budgeted = appro_alg(sc, coverage, params, &budgeted_stats);
  EXPECT_FALSE(budgeted_stats.deadline_hit);
  EXPECT_EQ(unbudgeted.fingerprint(), budgeted.fingerprint());
  EXPECT_EQ(unbudgeted_stats.subsets_evaluated,
            budgeted_stats.subsets_evaluated);
}

TEST(Deadline, BindingBudgetWorksInParallelToo) {
  const Scenario sc = drill_scenario(43, /*users=*/150, /*uavs=*/7);
  const CoverageModel coverage(sc);
  ApproAlgParams params;
  params.s = 3;
  params.threads = 4;
  params.time_budget_s = 1e-6;
  ApproAlgStats stats;
  const Solution sol = appro_alg(sc, coverage, params, &stats);
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_GE(stats.subsets_evaluated, 1);
  validate_solution(sc, coverage, sol);
}

TEST(Deadline, ParamValidation) {
  ApproAlgParams params;
  params.time_budget_s = -0.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.time_budget_s = std::nan("");
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.time_budget_s = 0.0;
  EXPECT_NO_THROW(params.validate());
}

// ---- Timeline + metrics -------------------------------------------------

TEST(Timeline, DrillProducesPhasesAndFiniteServiceStats) {
  const Scenario sc = drill_scenario(51, /*users=*/80, /*uavs=*/5);
  RepairController controller(sc, drill_policy());
  const Solution initial = controller.deploy();

  FaultPlan plan;
  const UavId victim = initial.deployments.empty()
                           ? UavId{0}
                           : initial.deployments[0].uav;
  const UavId second =
      initial.deployments.size() > 1 ? initial.deployments[1].uav : victim;
  plan.events = {{60.0, FaultKind::kLinkDegrade, UavId::invalid(), 0.9},
                 {120.0, FaultKind::kCrash, victim, 1.0},
                 {120.0, FaultKind::kBatteryDrain, second, 1.0}};
  // Events 2 and 3 coincide: the middle phase has zero length.

  resilience::TimelineConfig config;
  config.horizon_s = 300.0;
  config.policy = drill_policy();
  config.sim.slot_s = 0.01;  // coarse slots keep the suite fast
  const resilience::TimelineReport report =
      resilience::run_fault_timeline(sc, initial, plan, config);

  ASSERT_EQ(report.phases.size(), plan.events.size() + 1);
  EXPECT_EQ(report.served_initial, initial.served);
  EXPECT_EQ(report.phases.front().repair.action, RepairAction::kNone);
  double previous_end = 0.0;
  for (const resilience::TimelinePhase& phase : report.phases) {
    EXPECT_EQ(phase.start_s, previous_end);
    EXPECT_GE(phase.end_s, phase.start_s);
    previous_end = phase.end_s;
    EXPECT_TRUE(std::isfinite(phase.service.network_throughput_bps));
    EXPECT_TRUE(std::isfinite(phase.service.mean_delay_s));
  }
  EXPECT_EQ(report.phases.back().end_s, config.horizon_s);
  EXPECT_EQ(report.phases[2].end_s, report.phases[2].start_s);  // zero-length
  EXPECT_EQ(report.served_final, report.phases.back().served);
  EXPECT_GE(report.local_repairs + report.full_solves, 1);
}

TEST(Metrics, RepairAndRedeployCountersRecorded) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.set_enabled(true);

  const Scenario sc = drill_scenario(52, /*users=*/80, /*uavs=*/5);
  RepairController controller(sc, drill_policy());
  const Solution initial = controller.deploy();
  ASSERT_FALSE(initial.deployments.empty());
  controller.on_fault({10.0, FaultKind::kCrash, initial.deployments[0].uav,
                       1.0});
  controller.on_fault({20.0, FaultKind::kLinkDegrade, UavId::invalid(),
                       0.95});

  RedeployPolicy redeploy_policy;
  redeploy_policy.appro.s = 2;
  RedeployController redeploy(redeploy_policy);
  redeploy.update(sc);

  registry.set_enabled(false);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("resilience.faults.crash"), 1);
  EXPECT_EQ(snap.counter_value("resilience.faults.link"), 1);
  EXPECT_EQ(snap.counter_value("resilience.repairs.local") +
                snap.counter_value("resilience.repairs.full"),
            2);
  const obs::SnapshotEntry* latency = snap.find("resilience.repair.seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->hist.count, 2);
  EXPECT_EQ(snap.counter_value("redeploy.full_solves"), 1);
  const obs::SnapshotEntry* update_latency =
      snap.find("redeploy.update_seconds");
  ASSERT_NE(update_latency, nullptr);
  EXPECT_EQ(update_latency->hist.count, 1);
  EXPECT_NE(snap.find("redeploy.travel_m"), nullptr);
}

}  // namespace
}  // namespace uavcov
