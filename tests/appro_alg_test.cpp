// Tests for Algorithm 2 (approAlg): feasibility on randomized instances,
// agreement between lazy and plain greedy, determinism, comparison against
// the exhaustive optimum (including the 1/(3Δ) guarantee) on tiny cases.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/appro_alg.hpp"
#include "core/exhaustive.hpp"

namespace uavcov {
namespace {

/// Random small scenario on a cells×cells grid of 100 m cells.
Scenario random_scenario(Rng& rng, std::int32_t cells, std::int32_t users,
                         std::int32_t uavs, std::int32_t cap_max = 3) {
  Scenario sc{
      .grid = Grid(cells * 100.0, cells * 100.0, 100.0),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back(
        {{rng.uniform(0, cells * 100.0), rng.uniform(0, cells * 100.0)},
         1e3});
  }
  for (std::int32_t k = 0; k < uavs; ++k) {
    sc.fleet.push_back(
        {1 + static_cast<std::int32_t>(rng.next_below(
             static_cast<std::uint64_t>(cap_max))),
         Radio{}, 120.0});
  }
  return sc;
}

class ApproAlgFeasibility : public testing::TestWithParam<int> {};

TEST_P(ApproAlgFeasibility, SolutionsAlwaysValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 2);
  const std::int32_t cells = 4 + static_cast<std::int32_t>(rng.next_below(3));
  const std::int32_t users = 5 + static_cast<std::int32_t>(rng.next_below(30));
  const std::int32_t uavs = 2 + static_cast<std::int32_t>(rng.next_below(6));
  const Scenario sc = random_scenario(rng, cells, users, uavs);
  const CoverageModel cov(sc);
  for (std::int32_t s = 1; s <= 2; ++s) {
    ApproAlgParams params;
    params.s = s;
    const Solution sol = appro_alg(sc, cov, params);
    EXPECT_NO_THROW(validate_solution(sc, cov, sol)) << "s = " << s;
    EXPECT_EQ(sol.algorithm, "approAlg");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproAlgFeasibility, testing::Range(0, 12));

TEST(ApproAlg, Deterministic) {
  Rng rng(404);
  const Scenario sc = random_scenario(rng, 5, 25, 5);
  ApproAlgParams params;
  params.s = 2;
  const Solution a = appro_alg(sc, params);
  const Solution b = appro_alg(sc, params);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.deployments, b.deployments);
}

TEST(ApproAlg, LazyAndPlainGreedyAgree) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 1009);
    const Scenario sc = random_scenario(rng, 5, 20, 5);
    ApproAlgParams lazy;
    lazy.s = 2;
    lazy.lazy_greedy = true;
    ApproAlgParams plain = lazy;
    plain.lazy_greedy = false;
    // Lazy evaluation is an exact optimization of the same greedy.
    EXPECT_EQ(appro_alg(sc, lazy).served, appro_alg(sc, plain).served)
        << "seed " << seed;
  }
}

TEST(ApproAlg, NoCoverableUsersGivesEmptySolution) {
  Rng rng(1);
  Scenario sc = random_scenario(rng, 4, 0, 3);
  const CoverageModel cov(sc);
  const Solution sol = appro_alg(sc, cov, {});
  EXPECT_EQ(sol.served, 0);
  EXPECT_TRUE(sol.deployments.empty());
  EXPECT_NO_THROW(validate_solution(sc, cov, sol));
}

TEST(ApproAlg, SingleUavServesBestCell) {
  // One UAV, no connectivity concern: approAlg must match the best single
  // cell's capped coverage.
  Scenario sc{
      .grid = Grid(300, 300, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{2, Radio{}, 120.0}},
  };
  // 3 users on one cell, 1 on another: capacity 2 → serve 2.
  sc.users = {{{50, 50}, 1e3}, {{55, 50}, 1e3}, {{45, 55}, 1e3},
              {{250, 250}, 1e3}};
  const CoverageModel cov(sc);
  const Solution sol = appro_alg(sc, cov, {});
  EXPECT_EQ(sol.served, 2);
  validate_solution(sc, cov, sol);
}

TEST(ApproAlg, CapacityDescendingOrderMatters) {
  // Hand-built instance where the big-capacity UAV must take the dense
  // cell: 6 users on the left cell, 1 on the right, fleet {6, 1}.
  Scenario sc{
      .grid = Grid(400, 100, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {{6, Radio{}, 110.0}, {1, Radio{}, 110.0}},
  };
  for (int i = 0; i < 6; ++i) {
    sc.users.push_back({{40.0 + 4 * i, 50.0}, 1e3});
  }
  sc.users.push_back({{350, 50}, 1e3});
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 1;
  const Solution sol = appro_alg(sc, cov, params);
  validate_solution(sc, cov, sol);
  // Big UAV on the dense cell serves 6; the small one can reach the lone
  // user only if connectivity allows (cells 0 and 3 are 300 m apart, so
  // the network 0-1..-3 needs more UAVs than we have; expect 6+? —
  // the optimum here is to serve the 6 dense users plus place UAV 1
  // adjacently; it cannot reach (350,50), so served = 6 or 7 depending on
  // geometry.  Assert at least the dense cell is fully served.
  EXPECT_GE(sol.served, 6);
}

class ApproAlgVsExhaustive : public testing::TestWithParam<int> {};

TEST_P(ApproAlgVsExhaustive, WithinTheoreticalGuarantee) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  // Tiny: 4×2 grid (8 cells), 3 UAVs, handful of users.
  Scenario sc{
      .grid = Grid(400, 200, 100),
      .altitude_m = 60.0,
      .uav_range_m = 150.0,
      .channel = {},
      .receiver = {},
      .users = {},
      .fleet = {},
  };
  const std::int32_t users = 4 + static_cast<std::int32_t>(rng.next_below(8));
  for (std::int32_t i = 0; i < users; ++i) {
    sc.users.push_back({{rng.uniform(0, 400), rng.uniform(0, 200)}, 1e3});
  }
  for (std::int32_t k = 0; k < 3; ++k) {
    sc.fleet.push_back(
        {1 + static_cast<std::int32_t>(rng.next_below(3)), Radio{}, 120.0});
  }
  const CoverageModel cov(sc);
  const Solution optimal = exhaustive_optimal(sc, cov);
  validate_solution(sc, cov, optimal);

  for (std::int32_t s = 1; s <= 2; ++s) {
    ApproAlgParams params;
    params.s = s;
    const Solution approx = appro_alg(sc, cov, params);
    validate_solution(sc, cov, approx);
    EXPECT_LE(approx.served, optimal.served);
    // Guarantee: served >= ratio · OPT with ratio = 1/(3·⌈(2K−2)/L_max⌉).
    ApproAlgStats stats;
    (void)appro_alg(sc, cov, params, &stats);
    const double delta = std::ceil(
        (2.0 * sc.uav_count() - 2.0) / std::max(stats.plan.L_max, 1));
    const double ratio = 1.0 / (3.0 * std::max(delta, 1.0));
    EXPECT_GE(approx.served + 1e-9,
              ratio * static_cast<double>(optimal.served))
        << "s = " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproAlgVsExhaustive, testing::Range(0, 10));

TEST(ApproAlg, StatsArepopulated) {
  Rng rng(777);
  const Scenario sc = random_scenario(rng, 5, 20, 4);
  ApproAlgStats stats;
  ApproAlgParams params;
  params.s = 2;
  (void)appro_alg(sc, params, &stats);
  EXPECT_GT(stats.candidates, 0);
  EXPECT_GT(stats.subsets_enumerated, 0);
  EXPECT_GE(stats.subsets_enumerated, stats.subsets_evaluated);
  EXPECT_GT(stats.probes, 0);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_EQ(stats.plan.s, 2);
}

TEST(ApproAlg, SubsetBudgetStopsEarlyButStaysFeasible) {
  Rng rng(88);
  const Scenario sc = random_scenario(rng, 5, 24, 5);
  const CoverageModel cov(sc);
  ApproAlgParams params;
  params.s = 2;
  params.max_seed_subsets = 3;
  ApproAlgStats stats;
  const Solution sol = appro_alg(sc, cov, params, &stats);
  EXPECT_LE(stats.subsets_evaluated, 3);
  validate_solution(sc, cov, sol);
}

TEST(ApproAlg, CandidateCapReducesSearch) {
  Rng rng(99);
  const Scenario sc = random_scenario(rng, 6, 40, 5);
  ApproAlgParams wide;
  wide.s = 2;
  ApproAlgParams narrow = wide;
  narrow.candidate_cap = 5;
  ApproAlgStats ws, ns;
  (void)appro_alg(sc, wide, &ws);
  (void)appro_alg(sc, narrow, &ns);
  EXPECT_LE(ns.candidates, 5);
  EXPECT_LE(ns.subsets_enumerated, ws.subsets_enumerated);
}

TEST(ApproAlg, LeftoverFillNeverHurts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed * 311 + 7);
    const Scenario sc = random_scenario(rng, 5, 30, 6);
    const CoverageModel cov(sc);
    ApproAlgParams paper;
    paper.s = 1;
    paper.fill_leftover_uavs = false;
    ApproAlgParams filled = paper;
    filled.fill_leftover_uavs = true;
    const Solution a = appro_alg(sc, cov, paper);
    const Solution b = appro_alg(sc, cov, filled);
    validate_solution(sc, cov, a);
    validate_solution(sc, cov, b);
    EXPECT_GE(b.served, a.served) << "seed " << seed;
    EXPECT_GE(b.deployments.size(), a.deployments.size());
  }
}

TEST(ApproAlg, CapacityAscendingIsFeasibleButUsuallyWorse) {
  std::int64_t desc_total = 0, asc_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed * 41 + 3);
    // Strongly heterogeneous fleet: capacities 1 and 8.
    Scenario sc = random_scenario(rng, 5, 40, 6, /*cap_max=*/1);
    for (std::size_t k = 0; k < sc.fleet.size(); k += 2) {
      sc.fleet[UavId{k}].capacity = 8;
    }
    const CoverageModel cov(sc);
    ApproAlgParams desc;
    desc.s = 1;
    ApproAlgParams asc = desc;
    asc.capacity_ascending = true;
    const Solution a = appro_alg(sc, cov, desc);
    const Solution b = appro_alg(sc, cov, asc);
    validate_solution(sc, cov, a);
    validate_solution(sc, cov, b);
    desc_total += a.served;
    asc_total += b.served;
  }
  // The paper's largest-first rule must win in aggregate on
  // heterogeneous fleets.
  EXPECT_GE(desc_total, asc_total);
}

TEST(ApproAlgParamsValidate, RejectsOutOfRangeFields) {
  ApproAlgParams p;
  EXPECT_NO_THROW(p.validate());

  p = {};
  p.s = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.s = -3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.candidate_cap = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.threads = -2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_seed_subsets = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // Zero is in-range for everything except s (0 = "no cap" / "auto").
  p = {};
  p.candidate_cap = 0;
  p.threads = 0;
  p.max_seed_subsets = 0;
  EXPECT_NO_THROW(p.validate());
}

TEST(ApproAlgParamsValidate, BothSolverEntryPointsValidate) {
  Rng rng(7);
  const Scenario sc = random_scenario(rng, 4, 10, 3);
  const CoverageModel cov(sc);
  ApproAlgParams bad;
  bad.s = 0;
  // Coverage-reusing overload.
  EXPECT_THROW(appro_alg(sc, cov, bad), std::invalid_argument);
  // Convenience overload (builds its own coverage model).
  EXPECT_THROW(appro_alg(sc, bad), std::invalid_argument);
  // Unified entry point forwards to the same checks.
  EXPECT_THROW(solve(sc, cov, bad), std::invalid_argument);
}

TEST(ApproAlg, PruningNeverBreaksFeasibility) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed * 37 + 19);
    const Scenario sc = random_scenario(rng, 5, 25, 5);
    const CoverageModel cov(sc);
    ApproAlgParams no_prune;
    no_prune.s = 2;
    no_prune.prune_seed_pairs = false;
    ApproAlgParams prune = no_prune;
    prune.prune_seed_pairs = true;
    const Solution a = appro_alg(sc, cov, no_prune);
    const Solution b = appro_alg(sc, cov, prune);
    validate_solution(sc, cov, a);
    validate_solution(sc, cov, b);
    // Pruned enumeration is a subset of the full enumeration, so it can
    // only do worse or equal — and on these small instances should tie.
    EXPECT_LE(b.served, a.served);
  }
}

}  // namespace
}  // namespace uavcov
